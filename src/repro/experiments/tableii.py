"""Table II: the simulated system configuration, as a registered experiment.

Historically the CLI special-cased Table II outside the figure loop;
registering it as a (single-cell, parameterless) :class:`ExperimentSpec`
lets ``python -m repro.experiments all`` fold it into the same registry
iteration as the figures, with the same caching and error handling.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..runner import Cell
from ..sim.config import TABLE_II
from .registry import register_experiment

__all__ = ["TableIIConfig", "render_table_ii", "format_table_ii"]


@dataclass(frozen=True)
class TableIIConfig:
    """Table II has no tunable parameters; every scale is identical."""

    @classmethod
    def paper(cls) -> "TableIIConfig":
        return cls()

    @classmethod
    def scaled(cls) -> "TableIIConfig":
        return cls()

    @classmethod
    def smoke(cls) -> "TableIIConfig":
        return cls()


def render_table_ii() -> str:
    """The aligned two-column Table II text block."""
    rows = TABLE_II.describe()
    width = max(len(k) for k in rows)
    return "Table II: System Configuration\n" + "\n".join(
        f"  {k.ljust(width)}  {v}" for k, v in rows.items())


def _render_cell(config: TableIIConfig) -> str:
    return render_table_ii()


def reduce_table_ii(config: TableIIConfig, results) -> str:
    return results[0]


def format_table_ii(result: str) -> str:
    return result


@register_experiment(name="tableII", config_cls=TableIIConfig,
                     reduce=reduce_table_ii, format=format_table_ii,
                     description="Table II: simulated system configuration")
def cells_table_ii(config: TableIIConfig):
    return [Cell("tableII", ("render",), _render_cell, (config,))]

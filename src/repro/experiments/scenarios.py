"""Extension experiment: the lifecycle scenario suite.

Futility scaling's pitch is that replacement-based partitioning keeps its
guarantees *while the partition map is in motion* — targets move without
flushes and orphaned lines drain under normal replacement.  The per-figure
experiments all hold the tenant set fixed; this suite exercises the
partition control plane (:meth:`~repro.cache.cache.PartitionedCache.
create_partition` / ``retire_partition`` / ``set_targets``) with four
deterministic :class:`~repro.sim.scenario.ScenarioScript` timelines:

* ``churn`` — a tenant arrives at 25% of the run, another departs at 60%,
  shares are re-apportioned online (the acceptance scenario).
* ``hotset`` — a tenant's hot set migrates to a fresh address region
  mid-run; the dead lines must drain while the new set warms.
* ``diurnal`` — day/night share waves: the priority tenant flips twice.
* ``scanflood`` — an adversarial streaming tenant floods the cache
  mid-run; partitioning must contain the damage to its own share.

Each (scenario, scheme) cell reports the fairness triple — unfairness
factor, STP, ANTT — plus the lifecycle event log depth and final
occupancy/targets, under an online
:class:`~repro.alloc.reapportion.ReapportionController` when the config
asks for one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..alloc.reapportion import (
    FairnessReapportionPolicy,
    PhaseAwareReapportionPolicy,
    ReapportionController,
    UCPReapportionPolicy,
)
from ..cache.arrays import SetAssociativeArray
from ..cache.cache import PartitionedCache
from ..core.futility import CoarseTimestampLRURanking
from ..core.schemes.base import make_scheme
from ..errors import ConfigurationError
from ..runner import Cell, run_cells
from ..sim.scenario import (
    PhaseShift,
    Reapportion,
    ScenarioResult,
    ScenarioScript,
    Tenant,
    TenantArrival,
    TenantDeparture,
    WorkloadSpec,
    run_scenario,
)
from .common import format_table
from .registry import register_experiment

__all__ = ["ScenariosConfig", "ScenarioCell", "ScenariosResult",
           "build_script", "cells_scenarios", "reduce_scenarios",
           "run_scenarios", "format_scenarios", "SCENARIO_NAMES"]

SCENARIO_NAMES = ("churn", "hotset", "diurnal", "scanflood")

_POLICIES = {
    "ucp": UCPReapportionPolicy,
    "phase-aware": PhaseAwareReapportionPolicy,
    "fairness": FairnessReapportionPolicy,
}


@dataclass(frozen=True)
class ScenariosConfig:
    total_lines: int
    accesses: int
    ways: int = 16
    schemes: Tuple[str, ...] = ("fs", "fs-feedback", "vantage")
    scenarios: Tuple[str, ...] = SCENARIO_NAMES
    #: Online controller policy ("ucp" / "phase-aware" / "fairness");
    #: None runs on share-based targets alone.
    policy: Optional[str] = "phase-aware"
    #: Controller epoch, in observed accesses (0 picks accesses // 24).
    controller_interval: int = 0
    hit_latency: float = 1.0
    miss_latency: float = 10.0
    seed: int = 0

    @classmethod
    def paper(cls) -> "ScenariosConfig":
        return cls(total_lines=131_072, accesses=4_000_000)

    @classmethod
    def scaled(cls) -> "ScenariosConfig":
        return cls(total_lines=8_192, accesses=250_000)

    @classmethod
    def smoke(cls) -> "ScenariosConfig":
        return cls(total_lines=256, accesses=3_000, ways=8,
                   scenarios=("churn", "scanflood"),
                   schemes=("fs", "fs-feedback", "vantage"))


@dataclass
class ScenarioCell:
    scenario: str
    scheme: str
    unfairness: float
    stp: float
    antt: float
    lifecycle_events: int
    controller_decisions: int
    #: Lines still held by retired partitions when the run ended (the
    #: orphan drain backlog — replacement schemes should be near zero).
    retired_residue: int
    tenant_slowdowns: Dict[str, float]


@dataclass
class ScenariosResult:
    config: ScenariosConfig
    cells: Dict[Tuple[str, str], ScenarioCell]


def build_script(name: str, total_lines: int,
                 accesses: int, seed: int = 0) -> ScenarioScript:
    """The named scenario's deterministic timeline, scaled to the cache."""
    ws = total_lines  # shorthand: footprints are fractions of capacity
    if name == "churn":
        return ScenarioScript(
            initial=(
                Tenant("steady", WorkloadSpec("loop", ws // 2)),
                Tenant("mixed", WorkloadSpec("random", (3 * ws) // 4,
                                             seed=seed + 1)),
            ),
            events=(
                TenantArrival(at=accesses // 4, tenant=Tenant(
                    "newcomer", WorkloadSpec("loop", ws // 3), share=2.0)),
                TenantDeparture(at=(3 * accesses) // 5, name="mixed"),
                Reapportion(at=(4 * accesses) // 5,
                            shares=(("steady", 1.5), ("newcomer", 1.0))),
            ),
            total_accesses=accesses)
    if name == "hotset":
        return ScenarioScript(
            initial=(
                Tenant("migrant", WorkloadSpec("loop", ws // 2)),
                Tenant("anchor", WorkloadSpec("random", ws // 2,
                                              seed=seed + 2)),
            ),
            events=(
                # The hot set jumps to a disjoint region: every resident
                # line of "migrant" turns dead at once.
                PhaseShift(at=accesses // 2, name="migrant",
                           workload=WorkloadSpec("loop", ws // 2,
                                                 offset=4 * ws)),
            ),
            total_accesses=accesses)
    if name == "diurnal":
        return ScenarioScript(
            initial=(
                Tenant("day", WorkloadSpec("loop", (2 * ws) // 3),
                       share=3.0),
                Tenant("night", WorkloadSpec("random", (2 * ws) // 3,
                                             seed=seed + 3)),
            ),
            events=(
                Reapportion(at=accesses // 3,
                            shares=(("day", 1.0), ("night", 3.0))),
                Reapportion(at=(2 * accesses) // 3,
                            shares=(("day", 3.0), ("night", 1.0))),
            ),
            total_accesses=accesses)
    if name == "scanflood":
        return ScenarioScript(
            initial=(
                Tenant("victim", WorkloadSpec("loop", ws // 2)),
                Tenant("bystander", WorkloadSpec("random", ws // 3,
                                                 seed=seed + 4)),
            ),
            events=(
                # share=0.5: the flood is entitled to little capacity;
                # containment is the property under test.
                TenantArrival(at=accesses // 4, tenant=Tenant(
                    "flood", WorkloadSpec("scan", 1), share=0.5)),
                TenantDeparture(at=(3 * accesses) // 4, name="flood"),
            ),
            total_accesses=accesses)
    raise ConfigurationError(
        f"unknown scenario {name!r}; expected one of {SCENARIO_NAMES}")


def _cache_factory(config: ScenariosConfig, scheme_name: str):
    def factory(num_partitions: int) -> PartitionedCache:
        kwargs = {"seed": config.seed} if scheme_name == "prism" else {}
        return PartitionedCache(
            SetAssociativeArray(config.total_lines, config.ways),
            CoarseTimestampLRURanking(),
            make_scheme(scheme_name, **kwargs), num_partitions,
            track_eviction_futility=False)
    return factory


def _make_controller(config: ScenariosConfig
                     ) -> Optional[ReapportionController]:
    if config.policy is None:
        return None
    try:
        policy_cls = _POLICIES[config.policy]
    except KeyError:
        raise ConfigurationError(
            f"unknown reapportion policy {config.policy!r}; expected one "
            f"of {sorted(_POLICIES)}") from None
    interval = config.controller_interval or max(64, config.accesses // 24)
    return ReapportionController(
        config.total_lines, interval=interval,
        granule=max(1, config.total_lines // 64), policy=policy_cls())


def _run_cell(config: ScenariosConfig, scenario_name: str,
              scheme_name: str) -> ScenarioCell:
    script = build_script(scenario_name, config.total_lines,
                          config.accesses, seed=config.seed)
    factory = _cache_factory(config, scheme_name)
    controller = _make_controller(config)
    result: ScenarioResult = run_scenario(
        script, factory, hit_latency=config.hit_latency,
        miss_latency=config.miss_latency, controller=controller)
    retired_parts = {r.part for r in result.tenants
                     if r.departed_at is not None}
    residue = sum(result.final_occupancy[p] for p in sorted(retired_parts))
    return ScenarioCell(
        scenario=scenario_name, scheme=scheme_name,
        unfairness=result.unfairness, stp=result.stp, antt=result.antt,
        lifecycle_events=len(result.lifecycle),
        controller_decisions=(controller.decisions
                              if controller is not None else 0),
        retired_residue=residue,
        tenant_slowdowns={r.name: r.slowdown for r in result.tenants
                          if r.slowdown is not None})


def reduce_scenarios(config: ScenariosConfig,
                     results: List[ScenarioCell]) -> ScenariosResult:
    cells = {(cell.scenario, cell.scheme): cell for cell in results}
    return ScenariosResult(config=config, cells=cells)


def run_scenarios(config: ScenariosConfig = ScenariosConfig.scaled()
                  ) -> ScenariosResult:
    return reduce_scenarios(config, run_cells(cells_scenarios(config)))


def format_scenarios(result: ScenariosResult) -> str:
    rows = []
    for scenario in result.config.scenarios:
        for scheme in result.config.schemes:
            cell = result.cells[(scenario, scheme)]
            rows.append([
                scenario, scheme,
                f"{cell.unfairness:.3f}",
                f"{cell.stp:.3f}",
                f"{cell.antt:.3f}",
                cell.lifecycle_events,
                cell.controller_decisions,
                cell.retired_residue,
            ])
    policy = result.config.policy or "static shares"
    return format_table(
        ["scenario", "scheme", "unfairness", "STP", "ANTT",
         "lifecycle events", "reapportions", "retired residue"],
        rows,
        title=f"Extension: lifecycle scenario suite (policy: {policy})")


@register_experiment(name="scenarios", config_cls=ScenariosConfig,
                     reduce=reduce_scenarios, format=format_scenarios,
                     description="Extension: tenant churn / lifecycle "
                                 "scenario suite with fairness metrics")
def cells_scenarios(config: ScenariosConfig) -> List[Cell]:
    """One cell per (scenario, scheme) pair."""
    return [Cell("scenarios", (scenario, scheme), _run_cell,
                 (config, scenario, scheme))
            for scenario in config.scenarios
            for scheme in config.schemes]

"""Shared infrastructure for the per-figure experiment drivers.

Every figure module exposes a config dataclass with three constructors:

* ``paper()`` — the paper's exact parameters (8MB L2, 512KB partitions,
  250M-instruction regions scaled to trace lengths that reach steady
  state).  Minutes-to-hours in pure Python; intended for offline runs.
* ``scaled()`` — the default: all capacities and working sets shrunk by
  :data:`DEFAULT_SCALE` (1/8) and traces shortened accordingly.  The
  qualitative shapes (orderings, crossovers, relative factors) are
  preserved; this is what the benchmark harness runs.
* ``smoke()`` — tiny, for tests.

``run_*`` functions return plain result objects; ``format_*`` helpers
render the paper-style rows the benchmark harness prints.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence

from .. import api
from ..cache.arrays import CacheArray
from ..cache.cache import PartitionedCache
from ..trace.access import Trace
from ..trace.mixing import TraceCursor
from ..trace.spec import get_profile

__all__ = [
    "DEFAULT_SCALE",
    "build_array",
    "build_cache",
    "duplicated_traces",
    "mixed_traces",
    "prefill_to_targets",
    "format_table",
    "format_cdf_summary",
    "ADDRESS_SPACING",
]

#: Default capacity/working-set shrink factor for scaled() configs.
DEFAULT_SCALE = 0.125

#: Address-space stride separating threads in multiprogrammed mixes.
ADDRESS_SPACING = 1 << 40


def build_array(kind: str, num_lines: int, *, ways: int = 16,
                candidates: int = 16, seed: int = 0) -> CacheArray:
    """Array factory for experiment configs.

    Thin wrapper over the stable facade :func:`repro.api.build_array`;
    kept for backward compatibility with the positional signature.
    """
    return api.build_array(kind, num_lines, ways=ways,
                           candidates=candidates, seed=seed)


def build_cache(array: CacheArray, ranking, scheme, num_partitions: int,
                **cache_kwargs) -> PartitionedCache:
    """Cache factory accepting names or instances for ranking/scheme.

    Thin wrapper over the stable facade :func:`repro.api.build_cache`;
    kept for backward compatibility with the positional signature.
    """
    return api.build_cache(array=array, ranking=ranking, scheme=scheme,
                           num_partitions=num_partitions, **cache_kwargs)


def duplicated_traces(benchmark: str, n: int, length: int, *,
                      scale: float = 1.0, seed: int = 0) -> List[Trace]:
    """``n`` copies of a benchmark in disjoint address spaces.

    This is how the paper builds its Fig. 2 workloads ("constructed by
    duplicating a SPEC CPU2006 benchmark N times").  Each copy gets its own
    random stream so duplicated threads are statistically identical but not
    lock-stepped.
    """
    profile = get_profile(benchmark)
    return [profile.trace(length, seed=seed + tid,
                          addr_base=(tid + 1) * ADDRESS_SPACING, scale=scale)
            for tid in range(n)]


def mixed_traces(benchmarks: Sequence[str], length: int, *,
                 scale: float = 1.0, seed: int = 0) -> List[Trace]:
    """One trace per benchmark name (repeats allowed), disjoint address
    spaces — the Fig. 7 subject/background mixes."""
    traces = []
    for tid, name in enumerate(benchmarks):
        profile = get_profile(name)
        traces.append(profile.trace(
            length, seed=seed + tid,
            addr_base=(tid + 1) * ADDRESS_SPACING, scale=scale))
    return traces


def prefill_to_targets(cache: PartitionedCache, traces: Sequence[Trace],
                       *, budget_per_line: int = 40) -> None:
    """Warm a partitioned cache to its steady-state occupancy.

    Feeds the threads round-robin until every partition has reached its
    target occupancy (or a per-partition access budget expires — a thread
    whose footprint is below its target can never fill it).  Statistics are
    reset afterwards, so subsequent measurements see steady state rather
    than the cold-start convergence transient, matching the paper's
    long-run methodology.  Rankings needing future knowledge (OPT) are fed
    the traces' next-use annotations.
    """
    needs_future = cache.ranking.needs_future
    cursors = [TraceCursor(t, with_next_use=needs_future) for t in traces]
    budgets = [budget_per_line * max(1, cache.targets[tid]) +
               len(traces[tid]) for tid in range(len(traces))]
    while True:
        # Re-derive the worklist every round: filling one partition can
        # drain another back below its target.
        pending = [tid for tid in range(len(traces))
                   if cache.actual_sizes[tid] < cache.targets[tid]
                   and budgets[tid] > 0]
        if not pending:
            break
        for tid in pending:
            for _ in range(64):
                if (cache.actual_sizes[tid] >= cache.targets[tid]
                        or budgets[tid] <= 0):
                    break
                addr, next_use, _gap = cursors[tid].next()
                cache.access(addr, tid, next_use)
                budgets[tid] -= 1
    cache.reset_stats()


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                 *, title: Optional[str] = None) -> str:
    """Render an aligned text table (the harness's printed output)."""
    cells = [[str(h) for h in headers]]
    for row in rows:
        cells.append(["" if v is None else
                      (f"{v:.4g}" if isinstance(v, float) else str(v))
                      for v in row])
    widths = [max(len(r[c]) for r in cells) for c in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    for i, row in enumerate(cells):
        lines.append("  ".join(cell.rjust(w) for cell, w in zip(row, widths)))
        if i == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def format_cdf_summary(x: Sequence[float], cdf: Sequence[float],
                       points: Sequence[float] = (0.25, 0.5, 0.75, 0.9)) -> str:
    """Compact textual summary of a CDF at selected x positions."""
    parts = []
    for p in points:
        # Nearest grid point.
        idx = min(range(len(x)), key=lambda i: abs(x[i] - p))
        parts.append(f"F({x[idx]:.2f})={cdf[idx]:.3f}")
    return ", ".join(parts)

"""Extension experiment: smooth resizing (the paper's property 1).

Section II-A lists *smooth resizing* — repartitioning with no data
flushing or migration — as the first requirement of an enforcement
scheme, and Section II-B argues placement-based schemes fail it.  The
paper asserts the property but never measures it; this extension does.

Protocol: two threads share a cache with a 3:1 split; after reaching
steady state the allocation flips to 1:3 (a phase change an allocation
policy would make).  For each scheme we measure:

* **flushed lines** — data invalidated by the resize itself (placement
  schemes only);
* **convergence** — accesses until both partitions are within 10% of
  their new targets;
* **disruption** — the miss-rate *increase* in the window right after the
  flip, relative to pre-flip steady state, for the thread whose partition
  *shrank*: its lines must be handed over gradually (replacement-based)
  or were just flushed (placement).

Expected: replacement-based schemes (FS, PF, CQVP) flush nothing and
disrupt mildly; way-partitioning invalidates every transferred way.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..cache.arrays import SetAssociativeArray
from ..cache.cache import PartitionedCache
from ..core.futility import CoarseTimestampLRURanking, LRURanking
from ..core.schemes.base import make_scheme
from ..runner import Cell, run_cells
from ..trace.mixing import TraceCursor
from ..trace.spec import get_profile
from .common import ADDRESS_SPACING, DEFAULT_SCALE, format_table
from .registry import register_experiment

__all__ = ["ResizingConfig", "ResizingCell", "ResizingResult",
           "cells_resizing", "reduce_resizing",
           "run_resizing", "format_resizing"]

SCHEMES = ("fs-feedback", "pf", "cqvp", "way-partition")


@dataclass(frozen=True)
class ResizingConfig:
    total_lines: int
    trace_length: int
    steady_accesses: int          # per phase-A steady-state measurement
    window_accesses: int          # post-flip disruption window
    schemes: Tuple[str, ...] = SCHEMES
    # Both capacity-hungry, so the grown partition has real demand
    # and the shrink can complete.
    benchmarks: Tuple[str, str] = ("mcf", "omnetpp")
    split: Tuple[float, float] = (0.75, 0.25)
    ways: int = 16
    workload_scale: float = 1.0
    convergence_tolerance: float = 0.10
    seed: int = 0

    @classmethod
    def paper(cls) -> "ResizingConfig":
        return cls(total_lines=131_072, trace_length=400_000,
                   steady_accesses=600_000, window_accesses=200_000)

    @classmethod
    def scaled(cls) -> "ResizingConfig":
        return cls(total_lines=8_192, trace_length=40_000,
                   steady_accesses=60_000, window_accesses=20_000,
                   workload_scale=DEFAULT_SCALE)

    @classmethod
    def smoke(cls) -> "ResizingConfig":
        return cls(total_lines=512, trace_length=4_000,
                   steady_accesses=4_000, window_accesses=1_500,
                   schemes=("fs-feedback", "way-partition"),
                   workload_scale=1.0 / 64.0)


@dataclass
class ResizingCell:
    scheme: str
    flushed_lines: int
    #: accesses until the shrinking partition is within tolerance of its
    #: new target (None if not converged within the measurement horizon).
    convergence_accesses: Optional[int]
    steady_miss_rate: float        # shrinking thread, before the flip
    window_miss_rate: float        # shrinking thread, right after the flip
    disruption: float              # window - steady miss-rate delta
    #: The flip as the control plane logged it (one "retarget" row).
    lifecycle: List[dict]


@dataclass
class ResizingResult:
    config: ResizingConfig
    cells: Dict[str, ResizingCell]


def _build(config: ResizingConfig, scheme_name: str) -> PartitionedCache:
    scheme = make_scheme(scheme_name)
    ranking = (CoarseTimestampLRURanking()
               if scheme_name == "fs-feedback" else LRURanking())
    return PartitionedCache(
        SetAssociativeArray(config.total_lines, config.ways), ranking,
        scheme, 2, track_eviction_futility=False)


def _targets(config: ResizingConfig,
             split: Sequence[float]) -> List[int]:
    first = int(split[0] * config.total_lines)
    return [first, config.total_lines - first]


def _run_cell(config: ResizingConfig, scheme_name: str) -> ResizingCell:
    cache = _build(config, scheme_name)
    cache.set_targets(_targets(config, config.split))
    cursors = [
        TraceCursor(get_profile(name).trace(
            config.trace_length, seed=config.seed + tid,
            addr_base=(tid + 1) * ADDRESS_SPACING,
            scale=config.workload_scale))
        for tid, name in enumerate(config.benchmarks)]

    def feed(count: int) -> None:
        access = cache.access
        for i in range(count):
            tid = i & 1
            addr, next_use, _gap = cursors[tid].next()
            access(addr, tid, next_use)

    # Phase A: reach and measure steady state.
    feed(config.steady_accesses)
    cache.reset_stats()
    feed(config.steady_accesses)
    shrinking = 0 if config.split[0] > config.split[1] else 1
    steady_miss = cache.stats.miss_rate(shrinking)

    # The flip, through the partition control plane: one retarget event,
    # logged with the access index it happened at.
    flushes_before = cache.stats.flushes
    log_before = len(cache.lifecycle_log)
    cache.set_targets(_targets(config, config.split[::-1]))
    flip_log = [dict(row, access=2 * config.steady_accesses)
                for row in cache.lifecycle_log[log_before:]]
    flushed = cache.stats.flushes - flushes_before
    cache.reset_stats()

    # Disruption window + convergence tracking.
    new_targets = cache.targets
    tolerance = config.convergence_tolerance
    convergence: Optional[int] = None
    access = cache.access
    horizon = max(config.window_accesses, 4 * config.steady_accesses)
    window_misses = 0
    window_accesses_seen = 0
    for i in range(horizon):
        tid = i & 1
        addr, next_use, _gap = cursors[tid].next()
        hit = access(addr, tid, next_use)
        if tid == shrinking and i < config.window_accesses:
            window_accesses_seen += 1
            if not hit:
                window_misses += 1
        if convergence is None and (
                abs(cache.actual_sizes[shrinking] - new_targets[shrinking])
                <= tolerance * max(1, new_targets[shrinking])):
            convergence = i + 1
        if convergence is not None and i >= config.window_accesses:
            break
    window_miss = (window_misses / window_accesses_seen
                   if window_accesses_seen else 0.0)
    return ResizingCell(
        scheme=scheme_name, flushed_lines=flushed,
        convergence_accesses=convergence, steady_miss_rate=steady_miss,
        window_miss_rate=window_miss,
        disruption=window_miss - steady_miss,
        lifecycle=flip_log)


def reduce_resizing(config: ResizingConfig,
                    results: List[ResizingCell]) -> ResizingResult:
    return ResizingResult(
        config=config,
        cells={cell.scheme: cell for cell in results})


def run_resizing(config: ResizingConfig = ResizingConfig.scaled()
                 ) -> ResizingResult:
    return reduce_resizing(config, run_cells(cells_resizing(config)))


def format_resizing(result: ResizingResult) -> str:
    rows = []
    for name, cell in result.cells.items():
        rows.append([
            name,
            cell.flushed_lines,
            ("not converged" if cell.convergence_accesses is None
             else cell.convergence_accesses),
            f"{cell.steady_miss_rate:.3f}",
            f"{cell.window_miss_rate:.3f}",
            f"{cell.disruption:+.3f}",
        ])
    split = result.config.split
    return format_table(
        ["scheme", "flushed lines", "convergence (accesses)",
         "steady miss", "post-flip miss", "disruption"],
        rows,
        title=(f"Extension: smooth resizing — flip "
               f"{split[0]:.0%}/{split[1]:.0%} -> "
               f"{split[1]:.0%}/{split[0]:.0%}"))


@register_experiment(name="resizing", config_cls=ResizingConfig,
                     reduce=reduce_resizing, format=format_resizing,
                     description="Extension: smooth-resizing measurement "
                                 "(paper property 1)")
def cells_resizing(config: ResizingConfig) -> List[Cell]:
    """One cell per enforcement scheme."""
    return [Cell("resizing", (name,), _run_cell, (config, name))
            for name in config.schemes]

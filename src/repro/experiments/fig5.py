"""Figure 5: sizing precision of FS vs PF (Section IV-D).

Setup from the paper: the same 2MB random-candidates cache, equally
partitioned (S1/S2 = 1), with insertion-rate splits I1/I2 of 9/1 and 5/5.
Partition 1's deviation from its target is sampled at every eviction.

Expected shapes (paper values):

* PF sizes near-exactly: MAD < 1 line.
* FS deviates temporally but is statistically centered on the target
  (mean deviation ~ 0); the deviation grows with ``I1 * (1 - I1)`` — worst
  at I1 = 0.5 (paper MAD 67.4 lines vs 59.8 at I1 = 0.9, on a 16K-line
  partition: < 0.5% of 1MB).

MAD scales with cache size, so scaled-down runs check the *relations*:
MAD(PF) < 1, MAD(FS at 0.5) > MAD(FS at 0.9), mean ~ 0, and MAD a small
fraction of the partition.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from ..analysis.sizing import (
    deviation_cdf,
    mean_absolute_deviation,
    mean_deviation,
)
from ..api import build_cache
from ..cache.arrays import RandomCandidatesArray
from ..core.scaling import scaling_factors_two_partitions
from ..core.schemes.futility_scaling import FutilityScalingScheme
from ..core.schemes.partitioning_first import PartitioningFirstScheme
from ..runner import Cell, run_cells
from ..trace.mixing import run_insertion_rate_controlled
from ..trace.spec import get_profile
from .common import ADDRESS_SPACING, DEFAULT_SCALE, format_table
from .registry import register_experiment

__all__ = ["Fig5Config", "Fig5Measurement", "Fig5Result", "cells_fig5",
           "reduce_fig5", "run_fig5", "format_fig5"]


@dataclass(frozen=True)
class Fig5Config:
    num_lines: int                      # paper: 2MB = 32768 lines
    num_insertions: int
    candidates: int = 16
    insertion_splits: Tuple[Tuple[float, float], ...] = ((0.9, 0.1),
                                                         (0.5, 0.5))
    benchmark: str = "mcf"
    ranking: str = "lru"
    workload_scale: float = 1.0
    trace_length: int = 200_000
    warmup_insertions: int = 0
    prefill: bool = True
    seed: int = 0

    @classmethod
    def paper(cls) -> "Fig5Config":
        return cls(num_lines=32_768, num_insertions=400_000,
                   trace_length=400_000, warmup_insertions=60_000)

    @classmethod
    def scaled(cls) -> "Fig5Config":
        return cls(num_lines=4_096, num_insertions=80_000,
                   trace_length=60_000, warmup_insertions=8_000,
                   workload_scale=DEFAULT_SCALE)

    @classmethod
    def smoke(cls) -> "Fig5Config":
        return cls(num_lines=512, num_insertions=8_000, trace_length=8_000,
                   insertion_splits=((0.5, 0.5),), workload_scale=1.0 / 64.0)


@dataclass
class Fig5Measurement:
    scheme: str
    insertion_split: Tuple[float, float]
    mad: float
    mean: float
    cdf: Tuple[np.ndarray, np.ndarray]   # |deviation| CDF of partition 1


@dataclass
class Fig5Result:
    config: Fig5Config
    measurements: List[Fig5Measurement]

    def mad_of(self, scheme: str, i1: float) -> float:
        for m in self.measurements:
            if m.scheme == scheme and abs(m.insertion_split[0] - i1) < 1e-9:
                return m.mad
        raise KeyError((scheme, i1))


def _run_one(config: Fig5Config, scheme_name: str,
             split: Tuple[float, float]) -> Fig5Measurement:
    sizes = (0.5, 0.5)
    if scheme_name == "fs":
        alphas = scaling_factors_two_partitions(sizes, split,
                                                config.candidates)
        scheme = FutilityScalingScheme(alphas=alphas)
    else:
        scheme = PartitioningFirstScheme()
    array = RandomCandidatesArray(config.num_lines, config.candidates,
                                  seed=config.seed)
    half = config.num_lines // 2
    cache = build_cache(array=array, ranking=config.ranking, scheme=scheme,
                        num_partitions=2,
                        targets=[half, config.num_lines - half],
                        deviation_partitions=[0])
    profile = get_profile(config.benchmark)
    traces = [profile.trace(config.trace_length, seed=config.seed + tid,
                            addr_base=(tid + 1) * ADDRESS_SPACING,
                            scale=config.workload_scale)
              for tid in range(2)]
    run_insertion_rate_controlled(
        cache, traces, list(split), config.num_insertions,
        warmup_insertions=config.warmup_insertions,
        prefill=config.prefill, seed=config.seed)
    samples = cache.stats.deviation_samples(0)
    return Fig5Measurement(
        scheme=scheme_name, insertion_split=split,
        mad=mean_absolute_deviation(samples), mean=mean_deviation(samples),
        cdf=deviation_cdf(samples))


def reduce_fig5(config: Fig5Config,
                results: List[Fig5Measurement]) -> Fig5Result:
    return Fig5Result(config=config, measurements=list(results))


def run_fig5(config: Fig5Config = Fig5Config.scaled()) -> Fig5Result:
    return reduce_fig5(config, run_cells(cells_fig5(config)))


def format_fig5(result: Fig5Result) -> str:
    partition_lines = result.config.num_lines // 2
    rows: List[List[object]] = []
    for m in result.measurements:
        rows.append([
            m.scheme.upper(),
            f"I1={m.insertion_split[0]:.1f}",
            f"{m.mad:.2f}",
            f"{m.mean:+.2f}",
            f"{m.mad / partition_lines * 100:.3f}%",
        ])
    return format_table(
        ["scheme", "insertion rate", "MAD (lines)", "mean dev",
         "MAD / partition"],
        rows,
        title=(f"Figure 5: size deviation of partition 1 "
               f"(equal split, {partition_lines}-line partitions)"))


@register_experiment(name="fig5", config_cls=Fig5Config, reduce=reduce_fig5,
                     format=format_fig5,
                     description="Fig. 5: FS vs PF sizing precision")
def cells_fig5(config: Fig5Config) -> List[Cell]:
    """One cell per (insertion split, scheme) run."""
    return [Cell("fig5", (scheme_name,) + split, _run_one,
                 (config, scheme_name, split))
            for split in config.insertion_splits
            for scheme_name in ("fs", "pf")]

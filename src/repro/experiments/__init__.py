"""Per-figure experiment drivers.

Each ``figN`` module reproduces one figure of the paper's evaluation; see
DESIGN.md section 4 for the experiment index.  Every config dataclass has
``paper()`` / ``scaled()`` / ``smoke()`` constructors (see
:mod:`repro.experiments.common`).

Every experiment is described by an
:class:`~repro.experiments.registry.ExperimentSpec` — config class, sweep
decomposition (``cells``), ordered recombination (``reduce``) and
paper-style renderer (``format``) — registered in
:mod:`repro.experiments.registry` and runnable in parallel with on-disk
memoization through :mod:`repro.runner`.
"""

from .common import (
    ADDRESS_SPACING,
    DEFAULT_SCALE,
    build_array,
    build_cache,
    duplicated_traces,
    format_table,
    mixed_traces,
)
from .fig2 import Fig2Config, Fig2Result, format_fig2, run_fig2
from .fig3 import Fig3Config, Fig3Result, format_fig3, run_fig3
from .fig4 import Fig4Config, Fig4Result, format_fig4, run_fig4
from .fig5 import Fig5Config, Fig5Result, format_fig5, run_fig5
from .fig6 import Fig6Config, Fig6Result, format_fig6, run_fig6
from .fig7 import Fig7Config, Fig7Result, format_fig7, run_fig7
from .fig8 import Fig8Config, Fig8Result, format_fig8, run_fig8
from .registry import (
    ExperimentSpec,
    experiment_names,
    get_experiment,
    iter_experiments,
    register_experiment,
)
from .resizing import (
    ResizingConfig,
    ResizingResult,
    format_resizing,
    run_resizing,
)
from .scenarios import (
    ScenariosConfig,
    ScenariosResult,
    build_script,
    format_scenarios,
    run_scenarios,
)
from .tableii import TableIIConfig, render_table_ii

__all__ = [
    "DEFAULT_SCALE", "ADDRESS_SPACING",
    "build_array", "build_cache", "duplicated_traces", "mixed_traces",
    "format_table",
    "ExperimentSpec", "register_experiment", "get_experiment",
    "experiment_names", "iter_experiments",
    "Fig2Config", "Fig2Result", "run_fig2", "format_fig2",
    "Fig3Config", "Fig3Result", "run_fig3", "format_fig3",
    "Fig4Config", "Fig4Result", "run_fig4", "format_fig4",
    "Fig5Config", "Fig5Result", "run_fig5", "format_fig5",
    "Fig6Config", "Fig6Result", "run_fig6", "format_fig6",
    "Fig7Config", "Fig7Result", "run_fig7", "format_fig7",
    "Fig8Config", "Fig8Result", "run_fig8", "format_fig8",
    "TableIIConfig", "render_table_ii",
    "ResizingConfig", "ResizingResult", "run_resizing", "format_resizing",
    "ScenariosConfig", "ScenariosResult", "run_scenarios",
    "format_scenarios", "build_script",
]

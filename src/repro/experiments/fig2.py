"""Figure 2: partitioning-induced associativity loss under PF (Section III).

The paper's motivating experiment: a 16-way set-associative cache is
equally partitioned among N in {1, 2, 4, 8, 16, 32} copies of a benchmark
(512KB per partition, so the cache grows with N), managed by the
Partitioning-First scheme with OPT futility ranking.  Measured on the
first partition:

* **Fig. 2a** — associativity CDF for mcf: AEF decays from ~0.95 at N=1
  toward the 0.5 worst case (diagonal CDF) as N approaches R.
* **Fig. 2b** — misses (normalized to N=1) rise with N; mcf worst (~+37%
  at N=32), lbm flat.
* **Fig. 2c** — IPC (normalized to N=1) falls correspondingly (~-24% for
  mcf), lbm flat.

One timed multiprogrammed run per (benchmark, N) yields all three
measurements: the cache statistics give the associativity CDF, the engine
gives misses and IPC of thread 0.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..analysis.associativity import aef, associativity_cdf
from ..analysis.text_plots import ascii_chart
from ..api import build_cache
from ..cache.arrays import SetAssociativeArray
from ..core.schemes.partitioning_first import PartitioningFirstScheme
from ..runner import Cell, run_cells
from ..sim.config import TABLE_II
from ..sim.engine import MultiprogramSimulator
from .common import DEFAULT_SCALE, duplicated_traces, format_table
from .registry import register_experiment

__all__ = ["Fig2Config", "Fig2Point", "Fig2Result", "cells_fig2",
           "reduce_fig2", "run_fig2", "format_fig2"]

PAPER_BENCHMARKS = ("mcf", "omnetpp", "gromacs", "h264ref",
                    "astar", "cactusadm", "libquantum", "lbm")


@dataclass(frozen=True)
class Fig2Config:
    partition_lines: int          # lines per partition (paper: 512KB = 8192)
    trace_length: int             # L2 accesses per thread
    partition_counts: Tuple[int, ...] = (1, 2, 4, 8, 16, 32)
    benchmarks: Tuple[str, ...] = PAPER_BENCHMARKS
    cdf_benchmark: str = "mcf"    # the Fig. 2a benchmark
    ways: int = 16
    ranking: str = "opt"
    workload_scale: float = 1.0
    seed: int = 0

    @classmethod
    def paper(cls) -> "Fig2Config":
        return cls(partition_lines=8192, trace_length=400_000)

    @classmethod
    def scaled(cls) -> "Fig2Config":
        return cls(partition_lines=1024, trace_length=25_000,
                   workload_scale=DEFAULT_SCALE)

    @classmethod
    def smoke(cls) -> "Fig2Config":
        return cls(partition_lines=128, trace_length=4_000,
                   partition_counts=(1, 4, 16), benchmarks=("mcf", "lbm"),
                   workload_scale=1.0 / 64.0)


@dataclass
class Fig2Point:
    """Measurements for one (benchmark, N) cell, first partition only."""

    benchmark: str
    num_partitions: int
    misses: int
    ipc: float
    aef: float
    #: (x, cdf) associativity curve, populated for the cdf benchmark.
    cdf: Optional[Tuple[np.ndarray, np.ndarray]] = None


@dataclass
class Fig2Result:
    config: Fig2Config
    #: points[benchmark][N]
    points: Dict[str, Dict[int, Fig2Point]]

    def normalized_misses(self, benchmark: str) -> Dict[int, float]:
        """Fig. 2b: misses normalized to the N=1 run."""
        series = self.points[benchmark]
        base = series[min(series)].misses
        return {n: p.misses / base for n, p in series.items()}

    def normalized_ipc(self, benchmark: str) -> Dict[int, float]:
        """Fig. 2c: IPC normalized to the N=1 run."""
        series = self.points[benchmark]
        base = series[min(series)].ipc
        return {n: p.ipc / base for n, p in series.items()}


def _run_cell(config: Fig2Config, benchmark: str, n: int,
              want_cdf: bool) -> Fig2Point:
    traces = duplicated_traces(benchmark, n, config.trace_length,
                               scale=config.workload_scale, seed=config.seed)
    array = SetAssociativeArray(config.partition_lines * n, config.ways)
    cache = build_cache(array=array, ranking=config.ranking,
                        scheme=PartitioningFirstScheme(), num_partitions=n)
    limit = max(1, int(0.9 * min(t.instructions for t in traces)))
    sim = MultiprogramSimulator(cache, traces, TABLE_II,
                                instruction_limit=limit)
    result = sim.run()
    samples = cache.stats.eviction_futility_samples(0)
    cdf = associativity_cdf(samples) if (want_cdf and len(samples)) else None
    return Fig2Point(
        benchmark=benchmark, num_partitions=n,
        misses=result.threads[0].misses, ipc=result.threads[0].ipc,
        aef=aef(samples), cdf=cdf)


def reduce_fig2(config: Fig2Config, results: List[Fig2Point]) -> Fig2Result:
    """Reassemble the (benchmark x N) grid from ordered cell results."""
    it = iter(results)
    points: Dict[str, Dict[int, Fig2Point]] = {}
    for benchmark in config.benchmarks:
        points[benchmark] = {n: next(it) for n in config.partition_counts}
    return Fig2Result(config=config, points=points)


def run_fig2(config: Fig2Config = Fig2Config.scaled()) -> Fig2Result:
    """Run the full (benchmark x N) grid sequentially."""
    return reduce_fig2(config, run_cells(cells_fig2(config)))


def format_fig2(result: Fig2Result) -> str:
    """Three paper-style tables: AEF (2a), misses (2b) and IPC (2c)."""
    config = result.config
    ns = list(config.partition_counts)
    blocks: List[str] = []

    cdf_series = result.points.get(config.cdf_benchmark)
    if cdf_series:
        rows = [[f"N={n}", f"{p.aef:.3f}"] for n, p in cdf_series.items()]
        blocks.append(format_table(
            ["partitions", "AEF"], rows,
            title=f"Figure 2a: PF associativity of partition 1 "
                  f"({config.cdf_benchmark}, {config.ranking.upper()} ranking)"))
        curves = {f"N={n}": p.cdf[1].tolist()
                  for n, p in cdf_series.items() if p.cdf is not None}
        if curves:
            blocks.append("Associativity CDFs (x: eviction futility 0..1):\n"
                          + ascii_chart(curves, x_label="futility",
                                        y_label="CDF"))

    for title, getter in (
            ("Figure 2b: misses of partition 1 (normalized to N=1)",
             result.normalized_misses),
            ("Figure 2c: IPC of partition 1 (normalized to N=1)",
             result.normalized_ipc)):
        rows = []
        for benchmark in config.benchmarks:
            series = getter(benchmark)
            rows.append([benchmark] + [f"{series[n]:.3f}" for n in ns])
        blocks.append(format_table(
            ["benchmark"] + [f"N={n}" for n in ns], rows, title=title))
    return "\n\n".join(blocks)


@register_experiment(name="fig2", config_cls=Fig2Config, reduce=reduce_fig2,
                     format=format_fig2,
                     description="Fig. 2: PF associativity loss vs N")
def cells_fig2(config: Fig2Config) -> List[Cell]:
    """One cell per (benchmark, N) grid point."""
    cells = []
    for benchmark in config.benchmarks:
        want_cdf = benchmark == config.cdf_benchmark
        for n in config.partition_counts:
            cells.append(Cell("fig2", (benchmark, n), _run_cell,
                              (config, benchmark, n, want_cdf)))
    return cells

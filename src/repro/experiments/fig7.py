"""Figure 7: QoS evaluation on a 32-thread CMP (Section VIII-A).

The paper's headline experiment: 32 concurrent threads share the L2 under a
QoS allocation policy.  ``N_subject`` threads run the associativity-
sensitive benchmark *gromacs* with a guaranteed 256KB (4096 lines) each;
the remaining ``32 - N_subject`` threads run the memory-intensive polluter
*lbm* and split the leftover capacity equally.  ``N_subject`` sweeps 1..31,
and five enforcement schemes are compared under both the practical
coarse-timestamp LRU ranking and the ideal OPT ranking:

* **Fig. 7a — occupancy**: FullAssoc/PF/FS hold subjects at their targets;
  Vantage runs slightly below (it manages only 90% of the cache; forced
  evictions with probability (1-u)^R = 18.5% weaken isolation; it is not
  run at N=31, which needs 97% of capacity); PriSM collapses (its
  victim-selection abnormality exceeds 70% at N=32, R=16).
* **Fig. 7b — associativity**: FullAssoc AEF = 1; FS stays high (~0.85);
  Vantage ~0.80; PF collapses toward 0.5.
* **Fig. 7c — performance**: FS beats Vantage by up to ~6% and PriSM by up
  to ~13.7% on subject-thread performance, approaching FullAssoc.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..alloc.policies import QoSPolicy
from ..analysis.associativity import aef
from ..api import build_cache
from ..cache.arrays import FullyAssociativeArray, SetAssociativeArray
from ..core.futility import (
    CoarseTimestampLRURanking,
    LRURanking,
    OPTRanking,
)
from ..core.schemes.base import PartitioningScheme
from ..core.schemes.full_assoc import FullAssocScheme
from ..core.schemes.futility_scaling import FeedbackFutilityScalingScheme
from ..core.schemes.partitioning_first import PartitioningFirstScheme
from ..core.schemes.prism import PriSMScheme
from ..core.schemes.vantage import VantageScheme
from ..errors import ConfigurationError
from ..runner import Cell, run_cells
from ..sim.config import TABLE_II
from ..sim.engine import MultiprogramSimulator
from .common import (DEFAULT_SCALE, format_table, mixed_traces,
                     prefill_to_targets)
from .registry import register_experiment

__all__ = ["Fig7Config", "Fig7Cell", "Fig7Result", "cells_fig7",
           "reduce_fig7", "run_fig7", "format_fig7", "PAPER_SCHEMES"]

PAPER_SCHEMES = ("full-assoc", "pf", "vantage", "prism", "fs-feedback")


@dataclass(frozen=True)
class Fig7Config:
    total_lines: int                 # paper: 8MB = 131072
    subject_lines: int               # paper: 256KB = 4096
    trace_length: int
    instruction_limit: int
    num_threads: int = 32
    subject_counts: Tuple[int, ...] = (1, 4, 7, 10, 13, 16, 19, 22, 25, 28, 31)
    schemes: Tuple[str, ...] = PAPER_SCHEMES
    rankings: Tuple[str, ...] = ("lru", "opt")
    subject_benchmark: str = "gromacs"
    background_benchmark: str = "lbm"
    ways: int = 16
    workload_scale: float = 1.0
    vantage_unmanaged: float = 0.1
    #: Warm every partition to its target before measuring (the paper
    #: measures long steady-state runs; without this the cold-start
    #: convergence transient dominates scaled-down measurements).
    warmup: bool = True
    seed: int = 0

    @classmethod
    def paper(cls) -> "Fig7Config":
        return cls(total_lines=131_072, subject_lines=4_096,
                   trace_length=200_000, instruction_limit=3_000_000)

    @classmethod
    def scaled(cls) -> "Fig7Config":
        # 1/4 scale rather than the usual 1/8: the protection FS gives an
        # idle subject partition comes from aged, scaled-up background
        # lines shadowing it in every candidate set, and that shield thins
        # out at very small partition sizes (at 1/8 scale FS's subject IPC
        # drops ~20% below PF's; at 1/4 scale the paper's ordering is
        # restored).  See EXPERIMENTS.md for the sensitivity measurement.
        return cls(total_lines=32_768, subject_lines=1_024,
                   trace_length=50_000, instruction_limit=300_000,
                   subject_counts=(1, 13, 25, 31), rankings=("lru",),
                   workload_scale=0.25)

    @classmethod
    def smoke(cls) -> "Fig7Config":
        return cls(total_lines=1_024, subject_lines=64,
                   trace_length=4_000, instruction_limit=20_000,
                   num_threads=8, subject_counts=(2,),
                   schemes=("pf", "fs-feedback"), rankings=("lru",),
                   workload_scale=1.0 / 64.0)


@dataclass
class Fig7Cell:
    """One (scheme, ranking, N_subject) run, subject-thread aggregates."""

    scheme: str
    ranking: str
    num_subjects: int
    #: mean subject occupancy as a fraction of the subject target
    occupancy_ratio: float
    subject_aef: float
    subject_ipc: float
    background_ipc: float
    subject_misses: int
    #: scheme-specific diagnostics (PriSM abnormality, Vantage forced rate)
    diagnostics: Dict[str, float] = field(default_factory=dict)


@dataclass
class Fig7Result:
    config: Fig7Config
    #: cells[(scheme, ranking)][n_subjects]; Vantage cells may be missing
    #: for subject counts it cannot manage.
    cells: Dict[Tuple[str, str], Dict[int, Fig7Cell]]

    def subject_ipc_ratio(self, scheme_a: str, scheme_b: str,
                          ranking: str) -> Dict[int, float]:
        """Per-N ratio of subject IPC between two schemes (Fig. 7c)."""
        a = self.cells[(scheme_a, ranking)]
        b = self.cells[(scheme_b, ranking)]
        return {n: a[n].subject_ipc / b[n].subject_ipc
                for n in a if n in b and b[n].subject_ipc > 0}


def _build_scheme(name: str, config: Fig7Config) -> PartitioningScheme:
    if name == "full-assoc":
        return FullAssocScheme()
    if name == "pf":
        return PartitioningFirstScheme()
    if name == "vantage":
        return VantageScheme(unmanaged_fraction=config.vantage_unmanaged)
    if name == "prism":
        return PriSMScheme(seed=config.seed)
    if name == "fs-feedback":
        return FeedbackFutilityScalingScheme()
    raise ConfigurationError(f"unknown fig7 scheme {name!r}")


def _build_ranking(scheme_name: str, ranking: str):
    if ranking == "opt":
        return OPTRanking()
    if ranking == "lru":
        # Practical schemes use the hardware coarse-timestamp LRU; the
        # FullAssoc ideal needs an exact ranking.
        return LRURanking() if scheme_name == "full-assoc" \
            else CoarseTimestampLRURanking()
    raise ConfigurationError(f"unknown fig7 ranking {ranking!r}")


def vantage_can_run(config: Fig7Config, num_subjects: int) -> bool:
    """Vantage manages only (1-u) of the cache; the paper skips mixes whose
    guarantees exceed that (N=31 needs ~97% > 90%)."""
    reserved = num_subjects * config.subject_lines
    return reserved <= (1.0 - config.vantage_unmanaged) * config.total_lines


def _run_cell(config: Fig7Config, scheme_name: str, ranking: str,
              num_subjects: int) -> Fig7Cell:
    num_background = config.num_threads - num_subjects
    policy = QoSPolicy(num_subjects, num_background, config.subject_lines)
    targets = policy.allocate(config.total_lines)
    benchmarks = ([config.subject_benchmark] * num_subjects
                  + [config.background_benchmark] * num_background)
    traces = mixed_traces(benchmarks, config.trace_length,
                          scale=config.workload_scale, seed=config.seed)
    scheme = _build_scheme(scheme_name, config)
    if scheme_name == "full-assoc":
        array = FullyAssociativeArray(config.total_lines)
    else:
        array = SetAssociativeArray(config.total_lines, config.ways)
    cache = build_cache(array=array,
                        ranking=_build_ranking(scheme_name, ranking),
                        scheme=scheme, num_partitions=config.num_threads,
                        targets=targets)
    if config.warmup:
        prefill_to_targets(cache, traces)
    sim = MultiprogramSimulator(cache, traces, TABLE_II,
                                instruction_limit=config.instruction_limit)
    result = sim.run()

    subjects = range(num_subjects)
    occupancy = [cache.stats.mean_occupancy(p) for p in subjects]
    occupancy_ratio = (sum(occupancy) / len(occupancy)
                       / config.subject_lines)
    subject_samples = []
    for p in subjects:
        subject_samples.extend(cache.stats.eviction_futility_samples(p))
    subject_ipcs = [result.threads[p].ipc for p in subjects]
    background_ipcs = [result.threads[p].ipc
                       for p in range(num_subjects, config.num_threads)]
    diagnostics: Dict[str, float] = {}
    if isinstance(scheme, PriSMScheme):
        diagnostics["abnormality_rate"] = scheme.abnormality_rate()
    if isinstance(scheme, VantageScheme):
        evictions = sum(cache.stats.evictions) or 1
        diagnostics["forced_eviction_rate"] = (scheme.forced_evictions
                                               / evictions)
    return Fig7Cell(
        scheme=scheme_name, ranking=ranking, num_subjects=num_subjects,
        occupancy_ratio=occupancy_ratio,
        subject_aef=aef(subject_samples),
        subject_ipc=sum(subject_ipcs) / len(subject_ipcs),
        background_ipc=(sum(background_ipcs) / len(background_ipcs)
                        if background_ipcs else float("nan")),
        subject_misses=sum(result.threads[p].misses for p in subjects),
        diagnostics=diagnostics)


def _grid(config: Fig7Config):
    """The (ranking, scheme, N) points actually run (Vantage skips mixes
    whose guarantees exceed its managed fraction)."""
    for ranking in config.rankings:
        for scheme_name in config.schemes:
            for n in config.subject_counts:
                if scheme_name == "vantage" and not vantage_can_run(config, n):
                    continue
                yield ranking, scheme_name, n


def reduce_fig7(config: Fig7Config, results: List[Fig7Cell]) -> Fig7Result:
    cells: Dict[Tuple[str, str], Dict[int, Fig7Cell]] = {
        (scheme_name, ranking): {}
        for ranking in config.rankings for scheme_name in config.schemes}
    for (ranking, scheme_name, n), cell in zip(_grid(config), results):
        cells[(scheme_name, ranking)][n] = cell
    return Fig7Result(config=config, cells=cells)


def run_fig7(config: Fig7Config = Fig7Config.scaled()) -> Fig7Result:
    return reduce_fig7(config, run_cells(cells_fig7(config)))


def format_fig7(result: Fig7Result) -> str:
    config = result.config
    blocks: List[str] = []
    for title, attr, fmt in (
            ("Figure 7a: subject occupancy / target", "occupancy_ratio", ".3f"),
            ("Figure 7b: subject AEF", "subject_aef", ".3f"),
            ("Figure 7c: subject IPC", "subject_ipc", ".4f")):
        for ranking in config.rankings:
            rows = []
            for scheme_name in config.schemes:
                series = result.cells[(scheme_name, ranking)]
                row: List[object] = [scheme_name]
                for n in config.subject_counts:
                    cell = series.get(n)
                    row.append("-" if cell is None
                               else format(getattr(cell, attr), fmt))
                rows.append(row)
            headers = ["scheme"] + [f"N={n}" for n in config.subject_counts]
            blocks.append(format_table(
                headers, rows, title=f"{title} [{ranking.upper()} ranking]"))
    # Headline comparison (the paper's abstract claim).
    for ranking in config.rankings:
        lines = []
        for rival in ("vantage", "prism"):
            if ("fs-feedback", ranking) in result.cells \
                    and (rival, ranking) in result.cells:
                ratios = result.subject_ipc_ratio("fs-feedback", rival,
                                                  ranking)
                if ratios:
                    best = max(ratios.values())
                    lines.append(
                        f"FS vs {rival} [{ranking}]: subject-IPC ratio up to "
                        f"{(best - 1) * 100:+.1f}%")
        if lines:
            blocks.append("\n".join(lines))
    return "\n\n".join(blocks)


@register_experiment(name="fig7", config_cls=Fig7Config, reduce=reduce_fig7,
                     format=format_fig7,
                     description="Fig. 7: QoS on a 32-thread CMP")
def cells_fig7(config: Fig7Config) -> List[Cell]:
    """One cell per (ranking, scheme, N_subject) run."""
    return [Cell("fig7", (scheme_name, ranking, n), _run_cell,
                 (config, scheme_name, ranking, n))
            for ranking, scheme_name, n in _grid(config)]

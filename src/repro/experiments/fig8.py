"""Figure 8: feedback-based FS sensitivity to its two knobs (Section VIII-B).

The practical FS design has two configuration parameters (Section V-A):
the interval length ``l`` (how many insertions-or-evictions between
scaling-factor adjustments; paper default 16) and the changing ratio
``Delta alpha`` (the multiplicative step; paper default 2, i.e. a bit
shift).  The paper reports FS is robust around (l=16, 2x) — this driver
sweeps both knobs on a two-partition pressure scenario (an mcf subject
holding 75% of the cache against an lbm polluter) and reports sizing error
and associativity for each setting.

Expected shape: very short intervals or large ratios over-react (size
oscillation, alpha flapping, lower AEF); very long intervals under-react
(slow convergence, larger deviations); the paper's default sits in the
flat sweet spot.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..analysis.associativity import aef
from ..analysis.sizing import mean_absolute_deviation
from ..api import build_cache
from ..core.schemes.futility_scaling import FeedbackFutilityScalingScheme
from ..runner import Cell, run_cells
from ..sim.config import TABLE_II
from ..sim.engine import MultiprogramSimulator
from .common import DEFAULT_SCALE, format_table, mixed_traces
from .registry import register_experiment

__all__ = ["Fig8Config", "Fig8Cell", "Fig8Result", "cells_fig8",
           "reduce_fig8", "run_fig8", "format_fig8"]


@dataclass(frozen=True)
class Fig8Config:
    total_lines: int
    trace_length: int
    instruction_limit: int
    interval_lengths: Tuple[int, ...] = (1, 4, 16, 64, 256)
    changing_ratios: Tuple[float, ...] = (1.25, 1.5, 2.0, 4.0)
    default_interval: int = 16
    default_ratio: float = 2.0
    subject_benchmark: str = "mcf"
    background_benchmark: str = "lbm"
    subject_fraction: float = 0.75
    ways: int = 16
    workload_scale: float = 1.0
    seed: int = 0

    @classmethod
    def paper(cls) -> "Fig8Config":
        return cls(total_lines=131_072, trace_length=300_000,
                   instruction_limit=2_000_000)

    @classmethod
    def scaled(cls) -> "Fig8Config":
        return cls(total_lines=8_192, trace_length=40_000,
                   instruction_limit=350_000, workload_scale=DEFAULT_SCALE)

    @classmethod
    def smoke(cls) -> "Fig8Config":
        return cls(total_lines=512, trace_length=5_000,
                   instruction_limit=30_000,
                   interval_lengths=(4, 16), changing_ratios=(2.0,),
                   workload_scale=1.0 / 64.0)


@dataclass
class Fig8Cell:
    interval_length: int
    changing_ratio: float
    #: MAD of the subject partition's size deviation, in lines.
    mad: float
    #: MAD as a fraction of the subject target.
    mad_fraction: float
    subject_aef: float
    subject_ipc: float


@dataclass
class Fig8Result:
    config: Fig8Config
    #: keyed by (interval_length, changing_ratio)
    cells: Dict[Tuple[int, float], Fig8Cell]


def _run_cell(config: Fig8Config, interval: int, ratio: float) -> Fig8Cell:
    subject_target = int(config.subject_fraction * config.total_lines)
    targets = [subject_target, config.total_lines - subject_target]
    traces = mixed_traces(
        [config.subject_benchmark, config.background_benchmark],
        config.trace_length, scale=config.workload_scale, seed=config.seed)
    scheme = FeedbackFutilityScalingScheme(interval_length=interval,
                                           changing_ratio=ratio)
    cache = build_cache(array="set-assoc", num_lines=config.total_lines,
                        ways=config.ways, ranking="coarse-ts-lru",
                        scheme=scheme, num_partitions=2, targets=targets,
                        deviation_partitions=[0])
    sim = MultiprogramSimulator(cache, traces, TABLE_II,
                                instruction_limit=config.instruction_limit)
    result = sim.run()
    mad = mean_absolute_deviation(cache.stats.deviation_samples(0))
    return Fig8Cell(
        interval_length=interval, changing_ratio=ratio, mad=mad,
        mad_fraction=mad / subject_target,
        subject_aef=aef(cache.stats.eviction_futility_samples(0)),
        subject_ipc=result.threads[0].ipc)


def _sweep_keys(config: Fig8Config) -> List[Tuple[int, float]]:
    """Two one-dimensional sweeps through the paper's default point,
    deduplicated in run order."""
    keys: List[Tuple[int, float]] = []
    for interval in config.interval_lengths:
        key = (interval, config.default_ratio)
        if key not in keys:
            keys.append(key)
    for ratio in config.changing_ratios:
        key = (config.default_interval, ratio)
        if key not in keys:
            keys.append(key)
    return keys


def reduce_fig8(config: Fig8Config, results: List[Fig8Cell]) -> Fig8Result:
    return Fig8Result(config=config,
                      cells=dict(zip(_sweep_keys(config), results)))


def run_fig8(config: Fig8Config = Fig8Config.scaled()) -> Fig8Result:
    """Two one-dimensional sweeps through the paper's default point."""
    return reduce_fig8(config, run_cells(cells_fig8(config)))


def format_fig8(result: Fig8Result) -> str:
    config = result.config
    blocks: List[str] = []
    sweeps = (
        (f"Figure 8a: interval length sweep (ratio={config.default_ratio:g})",
         [(l, config.default_ratio) for l in config.interval_lengths],
         "l"),
        (f"Figure 8b: changing ratio sweep (l={config.default_interval})",
         [(config.default_interval, r) for r in config.changing_ratios],
         "ratio"),
    )
    for title, keys, knob in sweeps:
        rows = []
        for key in keys:
            cell = result.cells[key]
            value = key[0] if knob == "l" else key[1]
            rows.append([f"{knob}={value:g}", f"{cell.mad:.1f}",
                         f"{cell.mad_fraction * 100:.2f}%",
                         f"{cell.subject_aef:.3f}", f"{cell.subject_ipc:.4f}"])
        blocks.append(format_table(
            [knob, "MAD (lines)", "MAD/target", "subject AEF", "subject IPC"],
            rows, title=title))
    return "\n\n".join(blocks)


@register_experiment(name="fig8", config_cls=Fig8Config, reduce=reduce_fig8,
                     format=format_fig8,
                     description="Fig. 8: feedback-FS knob sensitivity")
def cells_fig8(config: Fig8Config) -> List[Cell]:
    """One cell per (interval length, changing ratio) setting."""
    return [Cell("fig8", key, _run_cell, (config,) + key)
            for key in _sweep_keys(config)]

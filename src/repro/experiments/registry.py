"""First-class experiment registry: the :class:`ExperimentSpec` API.

Every reproducible artifact (each figure, Table II, future extensions)
is described by one :class:`ExperimentSpec` — its config class, its
sweep decomposition (``cells``), its ordered recombination (``reduce``)
and its paper-style renderer (``format``) — and registered by name.
The CLI (:mod:`repro.experiments.__main__`), the benchmark harness and
the parallel runner (:mod:`repro.runner`) all iterate this registry
instead of hard-coding per-figure triples.

Registering an experiment::

    @register_experiment(name="fig9", config_cls=Fig9Config,
                         reduce=reduce_fig9, format=format_fig9,
                         description="Figure 9: ...")
    def cells_fig9(config):
        return [Cell("fig9", (x,), _run_cell, (config, x)) for x in ...]

The decorated function is the spec's ``cells`` hook and is returned
unchanged.  ``spec.run(config, run_config=...)`` executes the full
sweep through :func:`repro.runner.run_cells`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Type

from ..errors import ConfigurationError, SweepError
from ..runner import Cell, FailedCell, RunConfig, run_cells
from ..runner.config import coerce_run_config

__all__ = [
    "ExperimentSpec",
    "register_experiment",
    "register",
    "unregister",
    "get_experiment",
    "experiment_names",
    "iter_experiments",
]

#: Signature of a spec's sweep-decomposition hook.
CellsFn = Callable[[Any], List[Cell]]

_REGISTRY: Dict[str, "ExperimentSpec"] = {}


@dataclass(frozen=True)
class ExperimentSpec:
    """Everything the harness needs to run and render one experiment.

    Attributes
    ----------
    name:
        Registry key (``"fig2"`` ... ``"fig8"``, ``"tableII"``).
    config_cls:
        Frozen config dataclass exposing ``paper()`` / ``scaled()`` /
        ``smoke()`` constructors.
    cells:
        ``cells(config) -> List[Cell]`` — the sweep decomposition.
    reduce:
        ``reduce(config, results) -> result`` — recombines cell results
        (in cell order) into the experiment's result object.
    format:
        ``format(result) -> str`` — the paper-style text rendering.
    description:
        One-line summary shown by the CLI.
    """

    name: str
    config_cls: Type[Any]
    cells: CellsFn = field(compare=False)
    reduce: Callable[[Any, List[Any]], Any] = field(compare=False)
    format: Callable[[Any], str] = field(compare=False)
    description: str = ""

    def config(self, scale: str = "scaled") -> Any:
        """Instantiate the config at ``smoke``/``scaled``/``paper``."""
        try:
            ctor = getattr(self.config_cls, scale)
        except AttributeError:
            raise ConfigurationError(
                f"{self.config_cls.__name__} has no {scale!r} constructor")
        return ctor()

    def run(self, config: Any = None, *,
            run_config: Optional[RunConfig] = None,
            **legacy: Any) -> Any:
        """Run the full sweep and reduce it to the result object.

        ``config`` is the *experiment* config (what to compute);
        ``run_config`` is the :class:`~repro.runner.RunConfig` saying
        *how* to execute it — parallelism, store, retries, timeouts,
        queue-driven workers, telemetry.  With the defaults
        (``jobs=1``, no store, no retries) this is exactly the legacy
        sequential ``run_figN(config)`` behavior.  The historical
        keyword style (``spec.run(cfg, jobs=4)``) still works through
        a deprecation shim emitting a single
        :class:`DeprecationWarning`; the removed ``cache=`` alias of
        ``store`` is an error.

        Under ``keep_going`` a sweep that finishes with permanently
        failed cells raises :class:`~repro.errors.SweepError` instead
        of reducing — the error carries the
        :class:`~repro.runner.FailedCell` sentinels and the full
        partial result list, so callers that tolerate holes can still
        reduce over ``err.results`` themselves.
        """
        run_config = coerce_run_config(run_config, legacy,
                                       where="ExperimentSpec.run")
        if config is None:
            config = self.config("scaled")
        results = run_cells(self.cells(config), run_config)
        if run_config.keep_going:
            failures = [r for r in results if isinstance(r, FailedCell)]
            if failures:
                labels = ", ".join(f.label for f in failures)
                raise SweepError(
                    f"{len(failures)} of {len(results)} cells of "
                    f"{self.name} permanently failed ({labels}); every "
                    f"other cell completed and was cached",
                    failures=failures, results=results)
        return self.reduce(config, results)


def register(spec: ExperimentSpec, *, replace: bool = False) -> ExperimentSpec:
    """Add ``spec`` to the registry (``replace=True`` to overwrite)."""
    if not replace and spec.name in _REGISTRY:
        raise ConfigurationError(
            f"experiment {spec.name!r} is already registered")
    _REGISTRY[spec.name] = spec
    return spec


def unregister(name: str) -> None:
    """Remove an experiment (primarily for tests and plugins)."""
    _REGISTRY.pop(name, None)


def register_experiment(*, name: str, config_cls: Type[Any],
                        reduce: Callable[[Any, List[Any]], Any],
                        format: Callable[[Any], str],
                        description: str = "",
                        replace: bool = False) -> Callable[[CellsFn], CellsFn]:
    """Decorator registering the decorated ``cells`` function as a spec."""
    def decorator(cells_fn: CellsFn) -> CellsFn:
        register(ExperimentSpec(
            name=name, config_cls=config_cls, cells=cells_fn,
            reduce=reduce, format=format, description=description),
            replace=replace)
        return cells_fn
    return decorator


def get_experiment(name: str) -> ExperimentSpec:
    """Look up a registered experiment by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown experiment {name!r}; registered: "
            f"{sorted(_REGISTRY)}") from None


def experiment_names() -> List[str]:
    """Sorted names of all registered experiments."""
    return sorted(_REGISTRY)


def iter_experiments() -> Iterator[ExperimentSpec]:
    """Iterate specs in sorted-name order."""
    for name in experiment_names():
        yield _REGISTRY[name]

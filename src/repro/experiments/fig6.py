"""Figure 6: associativity sensitivity of applications (Section VI).

For six benchmarks and cache sizes from 128KB to 8MB, the paper reports the
speedup of a fully-associative cache over a direct-mapped cache of the same
size, under OPT ranking (Fig. 6a) and LRU ranking (Fig. 6b).

Expected shapes:

* **OPT**: mcf gains >= 25% at every size; gromacs gains > 35% at 128KB and
  ~0 above 1MB (its working set fits); lbm gains nothing (streaming).
* **LRU**: sensitivity is compressed everywhere (mcf <= ~10%); cactusADM can
  *lose* performance from higher associativity (-6% at 4MB) because its
  scan loop makes LRU rank soon-reused lines as most futile.

Each (benchmark, size, ranking, organization) cell is one timed
single-thread simulation; speedup = IPC(fully-assoc) / IPC(direct-mapped).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..api import build_cache
from ..core.schemes.full_assoc import FullAssocScheme
from ..core.schemes.unpartitioned import UnpartitionedScheme
from ..runner import Cell, run_cells
from ..sim.config import TABLE_II
from ..sim.engine import simulate_single_thread
from ..trace.spec import get_profile, lines_for_bytes
from .common import DEFAULT_SCALE, format_table
from .registry import register_experiment

__all__ = ["Fig6Config", "Fig6Result", "cells_fig6", "reduce_fig6",
           "run_fig6", "format_fig6"]

PAPER_BENCHMARKS = ("mcf", "omnetpp", "gromacs", "astar", "cactusadm", "lbm")
PAPER_SIZES_KB = (128, 256, 512, 1024, 2048, 4096, 8192)


@dataclass(frozen=True)
class Fig6Config:
    cache_sizes_lines: Tuple[int, ...]
    trace_length: int
    benchmarks: Tuple[str, ...] = PAPER_BENCHMARKS
    rankings: Tuple[str, ...] = ("opt", "lru")
    workload_scale: float = 1.0
    seed: int = 0

    @classmethod
    def paper(cls) -> "Fig6Config":
        # Traces must be long enough that the largest cache cannot hold a
        # benchmark's whole footprint, or the speedup degenerates to 1.
        return cls(cache_sizes_lines=tuple(lines_for_bytes(kb * 1024)
                                           for kb in PAPER_SIZES_KB),
                   trace_length=2_000_000)

    @classmethod
    def scaled(cls) -> "Fig6Config":
        # 1/8 of the paper's sizes: 16KB .. 512KB (lines 256 .. 8192).
        return cls(cache_sizes_lines=(256, 1024, 4096, 8192),
                   trace_length=100_000, workload_scale=DEFAULT_SCALE)

    @classmethod
    def smoke(cls) -> "Fig6Config":
        return cls(cache_sizes_lines=(128, 512), trace_length=8_000,
                   benchmarks=("mcf", "lbm"), rankings=("lru",),
                   workload_scale=1.0 / 64.0)


@dataclass
class Fig6Result:
    config: Fig6Config
    #: ipcs[ranking][benchmark][size][organization] with organization in
    #: {"fa", "dm"}.
    ipcs: Dict[str, Dict[str, Dict[int, Dict[str, float]]]]

    def speedup(self, ranking: str, benchmark: str, size: int) -> float:
        cell = self.ipcs[ranking][benchmark][size]
        return cell["fa"] / cell["dm"]


def _run_cell(config: Fig6Config, benchmark: str, size: int, ranking: str,
              organization: str) -> float:
    trace = get_profile(benchmark).trace(
        config.trace_length, seed=config.seed, scale=config.workload_scale)
    if organization == "fa":
        cache = build_cache(array="full-assoc", num_lines=size,
                            ranking=ranking, scheme=FullAssocScheme(),
                            num_partitions=1)
    else:
        cache = build_cache(array="direct-mapped", num_lines=size,
                            ranking=ranking, scheme=UnpartitionedScheme(),
                            num_partitions=1, track_eviction_futility=False)
    return simulate_single_thread(cache, trace, TABLE_II).ipc


def reduce_fig6(config: Fig6Config, results: List[float]) -> Fig6Result:
    it = iter(results)
    ipcs: Dict[str, Dict[str, Dict[int, Dict[str, float]]]] = {}
    for ranking in config.rankings:
        ipcs[ranking] = {}
        for benchmark in config.benchmarks:
            ipcs[ranking][benchmark] = {}
            for size in config.cache_sizes_lines:
                ipcs[ranking][benchmark][size] = {
                    org: next(it) for org in ("fa", "dm")}
    return Fig6Result(config=config, ipcs=ipcs)


def run_fig6(config: Fig6Config = Fig6Config.scaled()) -> Fig6Result:
    return reduce_fig6(config, run_cells(cells_fig6(config)))


def format_fig6(result: Fig6Result) -> str:
    config = result.config
    blocks: List[str] = []
    for ranking in config.rankings:
        rows = []
        for benchmark in config.benchmarks:
            row: List[object] = [benchmark]
            for size in config.cache_sizes_lines:
                row.append(f"{result.speedup(ranking, benchmark, size):.3f}")
            rows.append(row)
        headers = ["benchmark"] + [f"{s * 64 // 1024}KB"
                                   for s in config.cache_sizes_lines]
        label = "6a (OPT)" if ranking == "opt" else "6b (LRU)"
        blocks.append(format_table(
            headers, rows,
            title=f"Figure {label}: fully-associative vs direct-mapped "
                  f"speedup"))
    return "\n\n".join(blocks)


@register_experiment(name="fig6", config_cls=Fig6Config, reduce=reduce_fig6,
                     format=format_fig6,
                     description="Fig. 6: associativity sensitivity")
def cells_fig6(config: Fig6Config) -> List[Cell]:
    """One cell per (ranking, benchmark, size, organization) simulation."""
    return [Cell("fig6", (ranking, benchmark, size, org), _run_cell,
                 (config, benchmark, size, ranking, org))
            for ranking in config.rankings
            for benchmark in config.benchmarks
            for size in config.cache_sizes_lines
            for org in ("fa", "dm")]

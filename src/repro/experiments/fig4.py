"""Figure 4: associativity of FS vs PF under controlled conditions
(Section IV-C).

Setup from the paper: two mcf threads on a 2MB *random-candidates* cache
(the array that satisfies the Uniformity Assumption exactly) with R = 16,
equal insertion rates (I1/I2 = 1), and size splits S1/S2 of 9/1 and 6/4.
FS uses the Equation (1) scaling factors; PF is Algorithm 1.

Expected shapes (paper values for reference):

* PF: the small partition's associativity collapses with its size — AEF of
  partition 2 drops from 0.86 (S2 = 0.4) to 0.63 (S2 = 0.1).
* FS: the *unscaled* partition keeps its full associativity (analytic AEF
  = R/(R+1) = 0.941) regardless of the split; the scaled partition
  degrades only with its scaling factor (AEF 0.94 -> 0.87 as S2 goes
  0.4 -> 0.1), never with the number of partitions.

The driver also reports the analytic AEF predictions from
:mod:`repro.core.scaling` next to the measurements.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..analysis.associativity import aef, associativity_cdf
from ..analysis.text_plots import ascii_chart
from ..api import build_cache
from ..cache.arrays import RandomCandidatesArray
from ..core.scaling import analytic_aef, scaling_factors_two_partitions
from ..core.schemes.futility_scaling import FutilityScalingScheme
from ..core.schemes.partitioning_first import PartitioningFirstScheme
from ..runner import Cell, run_cells
from ..trace.mixing import run_insertion_rate_controlled
from ..trace.spec import get_profile
from .common import ADDRESS_SPACING, DEFAULT_SCALE, format_table
from .registry import register_experiment

__all__ = ["Fig4Config", "Fig4Measurement", "Fig4Result", "cells_fig4",
           "reduce_fig4", "run_fig4", "format_fig4"]


@dataclass(frozen=True)
class Fig4Config:
    num_lines: int                      # paper: 2MB = 32768 lines
    num_insertions: int
    candidates: int = 16
    size_splits: Tuple[Tuple[float, float], ...] = ((0.9, 0.1), (0.6, 0.4))
    insertion_rates: Tuple[float, float] = (0.5, 0.5)
    benchmark: str = "mcf"
    ranking: str = "lru"
    workload_scale: float = 1.0
    trace_length: int = 200_000
    warmup_insertions: int = 0
    prefill: bool = True
    seed: int = 0

    @classmethod
    def paper(cls) -> "Fig4Config":
        return cls(num_lines=32_768, num_insertions=400_000,
                   trace_length=400_000, warmup_insertions=40_000)

    @classmethod
    def scaled(cls) -> "Fig4Config":
        return cls(num_lines=4_096, num_insertions=60_000,
                   trace_length=60_000, warmup_insertions=6_000,
                   workload_scale=DEFAULT_SCALE)

    @classmethod
    def smoke(cls) -> "Fig4Config":
        return cls(num_lines=512, num_insertions=6_000, trace_length=8_000,
                   size_splits=((0.9, 0.1),), workload_scale=1.0 / 64.0)


@dataclass
class Fig4Measurement:
    """One (scheme, split) run."""

    scheme: str
    split: Tuple[float, float]
    alphas: Optional[Tuple[float, float]]         # FS only
    aef: Tuple[float, float]                      # per partition
    analytic_aef: Optional[Tuple[float, float]]   # FS only
    cdfs: Tuple[Tuple[np.ndarray, np.ndarray], ...]


@dataclass
class Fig4Result:
    config: Fig4Config
    measurements: List[Fig4Measurement]


def _make_traces(config: Fig4Config):
    profile = get_profile(config.benchmark)
    return [profile.trace(config.trace_length, seed=config.seed + tid,
                          addr_base=(tid + 1) * ADDRESS_SPACING,
                          scale=config.workload_scale)
            for tid in range(2)]


def _run_one(config: Fig4Config, scheme_name: str,
             split: Tuple[float, float]) -> Fig4Measurement:
    rates = config.insertion_rates
    alphas = None
    analytic = None
    if scheme_name == "fs":
        alphas = scaling_factors_two_partitions(split, rates,
                                                config.candidates)
        scheme = FutilityScalingScheme(alphas=alphas)
        analytic = tuple(
            analytic_aef(list(alphas), list(split), config.candidates, p)
            for p in range(2))
    else:
        scheme = PartitioningFirstScheme()
    array = RandomCandidatesArray(config.num_lines, config.candidates,
                                  seed=config.seed)
    targets = [int(round(split[0] * config.num_lines))]
    targets.append(config.num_lines - targets[0])
    cache = build_cache(array=array, ranking=config.ranking, scheme=scheme,
                        num_partitions=2, targets=targets)
    run_insertion_rate_controlled(
        cache, _make_traces(config), list(rates), config.num_insertions,
        warmup_insertions=config.warmup_insertions,
        prefill=config.prefill, seed=config.seed)
    samples = [cache.stats.eviction_futility_samples(p) for p in range(2)]
    return Fig4Measurement(
        scheme=scheme_name, split=split, alphas=alphas,
        aef=tuple(aef(s) for s in samples), analytic_aef=analytic,
        cdfs=tuple(associativity_cdf(s) for s in samples))


def reduce_fig4(config: Fig4Config,
                results: List[Fig4Measurement]) -> Fig4Result:
    return Fig4Result(config=config, measurements=list(results))


def run_fig4(config: Fig4Config = Fig4Config.scaled()) -> Fig4Result:
    return reduce_fig4(config, run_cells(cells_fig4(config)))


def format_fig4(result: Fig4Result) -> str:
    rows: List[List[object]] = []
    for m in result.measurements:
        for p in range(2):
            rows.append([
                m.scheme.upper(),
                f"S{p + 1}={m.split[p]:.1f}",
                f"{m.alphas[p]:.3f}" if m.alphas else "-",
                f"{m.aef[p]:.3f}",
                f"{m.analytic_aef[p]:.3f}" if m.analytic_aef else "-",
            ])
    table = format_table(
        ["scheme", "partition", "alpha", "AEF (measured)", "AEF (analytic)"],
        rows,
        title=(f"Figure 4: FS vs PF associativity "
               f"(random-candidates cache, R={result.config.candidates}, "
               f"I1/I2=1)"))
    # The paper's Fig. 4 panel: CDFs of the small partition per scheme for
    # the most skewed split.
    split = result.config.size_splits[0]
    small = 1 if split[1] < split[0] else 0
    curves = {}
    for m in result.measurements:
        if m.split == split:
            curves[f"{m.scheme.upper()} S{small + 1}={split[small]:.1f}"] = \
                m.cdfs[small][1].tolist()
    if curves:
        table += ("\n\nAssociativity CDFs of the small partition "
                  "(x: eviction futility 0..1):\n"
                  + ascii_chart(curves, x_label="futility", y_label="CDF"))
    return table


@register_experiment(name="fig4", config_cls=Fig4Config, reduce=reduce_fig4,
                     format=format_fig4,
                     description="Fig. 4: FS vs PF associativity")
def cells_fig4(config: Fig4Config) -> List[Cell]:
    """One cell per (size split, scheme) run."""
    return [Cell("fig4", (scheme_name,) + split, _run_one,
                 (config, scheme_name, split))
            for split in config.size_splits
            for scheme_name in ("fs", "pf")]

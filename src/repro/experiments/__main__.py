"""Command-line experiment runner.

Regenerate any of the paper's figures from the shell::

    python -m repro.experiments fig3
    python -m repro.experiments fig5 --scale smoke
    python -m repro.experiments all --scale scaled --jobs 4
    python -m repro.experiments tableII

``--scale`` selects the config constructor: ``smoke`` (seconds),
``scaled`` (default, minutes) or ``paper`` (the publication's exact
parameters; hours in pure Python).

Sweep cells fan out across a process pool (``--jobs N``, default
``os.cpu_count()``) and every cell's result is memoized in a pluggable
content-addressed experiment store — ``--store local:PATH`` (directory
of pickles, the default at ``--cache-dir`` / ``$REPRO_CACHE_DIR`` /
``~/.cache/repro-experiments``) or ``--store sqlite:PATH`` (one
WAL-mode database file, safe for concurrent workers) — so interrupted
or repeated runs resume instantly.  ``--no-cache`` disables the store,
``--force`` recomputes and overwrites existing entries.
``--queue-workers N`` executes the sweep through the store's work
queue with ``N`` independent ``python -m repro.runner.worker``
processes instead of the in-process pool; workers heartbeat their
claim leases (``--queue-renew-interval``) so slow cells are never
stolen from a live worker, and transient store errors retry with
bounded backoff (``--store-retries``).  Figure tables go to stdout
and are byte-identical for any ``--jobs``, ``--queue-workers``, or
store backend; per-cell progress and timing stream to stderr.

Fault tolerance: ``--retries N`` re-executes failing cells with capped
deterministic backoff (retried cells are byte-identical to first-try
runs), ``--cell-timeout SEC`` kills and retries hung cells, and
``--keep-going`` completes the sweep despite permanently failed cells,
recording them in a JSON failure manifest in the store's
``failures/`` sidecar directory and exiting 1.  Rerunning
the same command re-executes only the failed cells — everything else
is served from the cache.

Telemetry: ``--telemetry[=PATH]`` records a full observability trace of
each run — metrics, per-cell spans, per-partition time series sampled
every ``--telemetry-interval`` accesses, and (with
``--telemetry-profile``) per-cell cProfile captures — into
``PATH/<experiment>/`` (default: the store's ``telemetry/`` sidecar
directory).
Inspect with ``python -m repro.obs report DIR``.  Telemetry never
touches stdout, figure outputs, or cache keys.
"""

from __future__ import annotations

import argparse
import sys
import time
from contextlib import nullcontext
from pathlib import Path

from ..errors import ConfigurationError, SweepError
from ..runner import (
    Progress,
    RunConfig,
    default_cache_dir,
    default_jobs,
    write_manifest,
)
from ..store import open_store
from .registry import experiment_names, get_experiment
from .tableii import render_table_ii  # noqa: F401  (backward-compat export)

__all__ = ["main", "render_table_ii"]


def main(argv=None) -> int:
    names = experiment_names()
    figures = sorted(n for n in names if n != "tableII")
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate figures from 'Futility Scaling: "
                    "High-Associativity Cache Partitioning' (MICRO 2014).")
    parser.add_argument("figure", choices=figures + ["tableII", "all"],
                        help="which figure to regenerate")
    parser.add_argument("--scale", default="scaled",
                        choices=("smoke", "scaled", "paper"),
                        help="experiment scale (default: scaled)")
    parser.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="worker processes for sweep cells "
                             "(default: os.cpu_count())")
    store_group = parser.add_mutually_exclusive_group()
    store_group.add_argument("--cache-dir", default=None, metavar="DIR",
                             help="result store directory, opened with the "
                                  "local backend (default: $REPRO_CACHE_DIR "
                                  "or ~/.cache/repro-experiments)")
    store_group.add_argument("--store", default=None, metavar="URL",
                             help="experiment store URL: local:PATH or "
                                  "sqlite:PATH (see repro.store)")
    store_group.add_argument("--no-cache", action="store_true",
                             help="disable the result store entirely")
    parser.add_argument("--force", action="store_true",
                        help="recompute cells even when cached")
    parser.add_argument("--retries", type=int, default=0, metavar="N",
                        help="extra attempts per failing cell, with capped "
                             "deterministic backoff (default: 0)")
    parser.add_argument("--cell-timeout", type=float, default=None,
                        metavar="SEC",
                        help="per-cell wall-clock limit; a hung cell's "
                             "worker is killed, the pool respawned, and "
                             "the cell retried or failed")
    parser.add_argument("--queue-workers", type=int, default=None,
                        metavar="N",
                        help="execute the sweep through the store's work "
                             "queue with N independent worker processes "
                             "(python -m repro.runner.worker) instead of "
                             "the in-process pool; requires a store")
    parser.add_argument("--queue-lease", type=float, default=60.0,
                        metavar="SEC",
                        help="seconds a queue worker may hold a claimed "
                             "cell before another worker may steal it "
                             "(crash recovery; default: 60)")
    parser.add_argument("--queue-renew-interval", type=float, default=None,
                        metavar="SEC",
                        help="lease-renewal heartbeat period while a queue "
                             "worker runs a cell (default: lease/3; 0 "
                             "disables renewal so slow cells are stolen)")
    parser.add_argument("--store-retries", type=int, default=5, metavar="N",
                        help="bounded retries for transient store errors "
                             "(locked database, EAGAIN) in workers and "
                             "coordinator (default: 5)")
    parser.add_argument("--keep-going", action="store_true",
                        help="complete the sweep despite failing cells, "
                             "write a JSON failure manifest under the "
                             "cache dir, and exit 1")
    parser.add_argument("--telemetry", nargs="?", const=True, default=None,
                        metavar="PATH",
                        help="record metrics, per-cell spans and "
                             "per-partition time series under "
                             "PATH/<experiment> (default: "
                             "<cache-dir>/telemetry/<experiment>)")
    parser.add_argument("--telemetry-interval", type=int, default=1024,
                        metavar="N",
                        help="time-series sampling window in cache "
                             "accesses (default: 1024)")
    parser.add_argument("--telemetry-profile", action="store_true",
                        help="additionally capture a cProfile of every "
                             "executed cell under <telemetry>/profile/")
    parser.add_argument("--trace", action="store_true",
                        help="record a distributed trace of each sweep "
                             "(coordinator + every worker process) under "
                             "<telemetry>/traces/; requires --telemetry. "
                             "Inspect with python -m repro.obs trace DIR")
    args = parser.parse_args(argv)

    if args.trace and not args.telemetry:
        parser.error("--trace requires --telemetry (trace artifacts "
                     "live in the telemetry run directory)")

    if args.figure == "all":
        # Table II leads, then the figures in order — the registry
        # iteration that used to be a special case.
        selected = (["tableII"] if "tableII" in names else []) + figures
    else:
        selected = [args.figure]
    jobs = args.jobs if args.jobs and args.jobs > 0 else default_jobs()
    store = None
    if not args.no_cache:
        store = open_store(args.store if args.store else
                           (args.cache_dir if args.cache_dir
                            else default_cache_dir()))
    progress = Progress(sys.stderr)

    exit_code = 0
    for name in selected:
        spec = get_experiment(name)
        session = _make_session(args, store, name)
        telemetry = None
        if session is not None:
            session.activate()
            telemetry = session.telemetry
        start = time.time()
        try:
            run_config = RunConfig(
                jobs=jobs, store=store, force=args.force,
                retries=args.retries, cell_timeout=args.cell_timeout,
                keep_going=args.keep_going, progress=progress,
                telemetry=telemetry, trace=args.trace,
                queue_workers=args.queue_workers,
                queue_name=name, queue_lease=args.queue_lease,
                queue_renew_interval=args.queue_renew_interval,
                store_retries=args.store_retries)
            try:
                with session.phase("sweep") if session else nullcontext():
                    result = spec.run(spec.config(args.scale),
                                      run_config=run_config)
                with session.phase("render") if session else nullcontext():
                    rendered = spec.format(result)
            finally:
                # Even a failed sweep leaves its spans and series behind
                # — that record is most valuable exactly then.
                if session is not None:
                    session.finish()
                    progress.note(f"[{name}: telemetry in {session.dir}]")
        except ConfigurationError as exc:
            # Routed through Progress: error lines share the flushed
            # stream with cell/retry lines, so they cannot interleave.
            progress.note(f"error: {name}: {exc}")
            return 2
        except SweepError as exc:
            # The sweep *completed*: every non-failing cell is in the
            # cache.  Record the failures and move on to the next
            # experiment; stdout stays untouched (no partial tables).
            for failure in exc.failures:
                progress.note(f"error: {name}: {failure.label} failed "
                              f"after {failure.attempts} attempt(s): "
                              f"{failure.error_type}: {failure.message}")
            manifest = _write_failure_manifest(store, name, exc.failures,
                                               progress)
            where = f"; manifest: {manifest}" if manifest else ""
            progress.note(
                f"[{name} @ {args.scale}: {len(exc.failures)} failed "
                f"cell(s){where}; rerun the same command to retry only "
                f"the failed cells]")
            exit_code = 1
            continue
        elapsed = time.time() - start
        if args.keep_going and store is not None:
            # An empty manifest records that the sweep fully recovered.
            _write_failure_manifest(store, name, [], progress)
        print(rendered)
        print()
        progress.note(f"[{name} @ {args.scale}: {elapsed:.1f}s]")
    return exit_code


def _make_session(args, store, name):
    """Build the experiment's TelemetrySession (None when --telemetry
    is absent).  ``--telemetry`` alone defaults to the store's
    ``telemetry/`` sidecar dir; each experiment gets its own subdir."""
    if not args.telemetry:
        return None
    from ..obs import TelemetrySession

    if isinstance(args.telemetry, str):
        root = Path(args.telemetry)
    elif store is not None:
        root = store.aux_dir("telemetry")
    else:
        root = Path("telemetry")
    return TelemetrySession(root / name, experiment=name,
                            interval=args.telemetry_interval,
                            profile=args.telemetry_profile,
                            trace=args.trace)


def _write_failure_manifest(store, name, failures, progress):
    """Write ``failures/<name>.json`` beside the store; None without one."""
    if store is None:
        progress.note(f"[{name}: no store; failure manifest not written]")
        return None
    return write_manifest(store.aux_dir("failures") / f"{name}.json",
                          name, failures)


if __name__ == "__main__":
    sys.exit(main())

"""Command-line experiment runner.

Regenerate any of the paper's figures from the shell::

    python -m repro.experiments fig3
    python -m repro.experiments fig5 --scale smoke
    python -m repro.experiments all --scale scaled --jobs 4
    python -m repro.experiments tableII

``--scale`` selects the config constructor: ``smoke`` (seconds),
``scaled`` (default, minutes) or ``paper`` (the publication's exact
parameters; hours in pure Python).

Sweep cells fan out across a process pool (``--jobs N``, default
``os.cpu_count()``) and every cell's result is memoized in a
content-addressed on-disk cache (``--cache-dir``, default
``$REPRO_CACHE_DIR`` or ``~/.cache/repro-experiments``), so interrupted
or repeated runs resume instantly.  ``--no-cache`` disables the cache,
``--force`` recomputes and overwrites existing entries.  Figure tables
go to stdout and are byte-identical for any ``--jobs``; per-cell
progress and timing stream to stderr.
"""

from __future__ import annotations

import argparse
import sys
import time
import warnings
from collections.abc import Mapping

from ..errors import ConfigurationError
from ..runner import Progress, ResultCache, default_cache_dir, default_jobs
from .registry import experiment_names, get_experiment
from .tableii import render_table_ii  # noqa: F401  (backward-compat export)

__all__ = ["FIGURES", "main", "render_table_ii"]


class _DeprecatedFigures(Mapping):
    """Deprecated ``FIGURES`` alias over the experiment registry.

    Preserves the historical ``{name: (ConfigCls, run, format)}`` triple
    view of the ``fig*`` experiments for one release; use
    :mod:`repro.experiments.registry` instead.
    """

    @staticmethod
    def _warn() -> None:
        warnings.warn(
            "repro.experiments.__main__.FIGURES is deprecated; use "
            "repro.experiments.registry (get_experiment/iter_experiments)",
            DeprecationWarning, stacklevel=3)

    @staticmethod
    def _names():
        return [n for n in experiment_names() if n.startswith("fig")]

    def __getitem__(self, name):
        self._warn()
        if name not in self._names():
            raise KeyError(name)
        spec = get_experiment(name)
        return (spec.config_cls, spec.run, spec.format)

    def __iter__(self):
        self._warn()
        return iter(self._names())

    def __len__(self):
        return len(self._names())


FIGURES = _DeprecatedFigures()


def main(argv=None) -> int:
    names = experiment_names()
    figures = sorted(n for n in names if n != "tableII")
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate figures from 'Futility Scaling: "
                    "High-Associativity Cache Partitioning' (MICRO 2014).")
    parser.add_argument("figure", choices=figures + ["tableII", "all"],
                        help="which figure to regenerate")
    parser.add_argument("--scale", default="scaled",
                        choices=("smoke", "scaled", "paper"),
                        help="experiment scale (default: scaled)")
    parser.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="worker processes for sweep cells "
                             "(default: os.cpu_count())")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="content-addressed result cache location "
                             "(default: $REPRO_CACHE_DIR or "
                             "~/.cache/repro-experiments)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the result cache entirely")
    parser.add_argument("--force", action="store_true",
                        help="recompute cells even when cached")
    args = parser.parse_args(argv)

    if args.figure == "all":
        # Table II leads, then the figures in order — the registry
        # iteration that used to be a special case.
        selected = (["tableII"] if "tableII" in names else []) + figures
    else:
        selected = [args.figure]
    jobs = args.jobs if args.jobs and args.jobs > 0 else default_jobs()
    cache = None
    if not args.no_cache:
        cache = ResultCache(args.cache_dir if args.cache_dir
                            else default_cache_dir())
    progress = Progress(sys.stderr)

    for name in selected:
        spec = get_experiment(name)
        start = time.time()
        try:
            result = spec.run(spec.config(args.scale), jobs=jobs,
                              cache=cache, force=args.force,
                              progress=progress)
        except ConfigurationError as exc:
            print(f"error: {name}: {exc}", file=sys.stderr)
            return 2
        elapsed = time.time() - start
        print(spec.format(result))
        print()
        print(f"[{name} @ {args.scale}: {elapsed:.1f}s]", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())

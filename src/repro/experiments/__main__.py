"""Command-line experiment runner.

Regenerate any of the paper's figures from the shell::

    python -m repro.experiments fig3
    python -m repro.experiments fig5 --scale smoke
    python -m repro.experiments all --scale scaled
    python -m repro.experiments tableII

``--scale`` selects the config constructor: ``smoke`` (seconds),
``scaled`` (default, minutes) or ``paper`` (the publication's exact
parameters; hours in pure Python).
"""

from __future__ import annotations

import argparse
import sys
import time

from ..sim.config import TABLE_II
from . import (
    Fig2Config, Fig3Config, Fig4Config, Fig5Config, Fig6Config, Fig7Config,
    Fig8Config,
    format_fig2, format_fig3, format_fig4, format_fig5, format_fig6,
    format_fig7, format_fig8,
    run_fig2, run_fig3, run_fig4, run_fig5, run_fig6, run_fig7, run_fig8,
)

FIGURES = {
    "fig2": (Fig2Config, run_fig2, format_fig2),
    "fig3": (Fig3Config, run_fig3, format_fig3),
    "fig4": (Fig4Config, run_fig4, format_fig4),
    "fig5": (Fig5Config, run_fig5, format_fig5),
    "fig6": (Fig6Config, run_fig6, format_fig6),
    "fig7": (Fig7Config, run_fig7, format_fig7),
    "fig8": (Fig8Config, run_fig8, format_fig8),
}


def render_table_ii() -> str:
    rows = TABLE_II.describe()
    width = max(len(k) for k in rows)
    return "Table II: System Configuration\n" + "\n".join(
        f"  {k.ljust(width)}  {v}" for k, v in rows.items())


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate figures from 'Futility Scaling: "
                    "High-Associativity Cache Partitioning' (MICRO 2014).")
    parser.add_argument("figure",
                        choices=sorted(FIGURES) + ["tableII", "all"],
                        help="which figure to regenerate")
    parser.add_argument("--scale", default="scaled",
                        choices=("smoke", "scaled", "paper"),
                        help="experiment scale (default: scaled)")
    args = parser.parse_args(argv)

    names = sorted(FIGURES) if args.figure == "all" else [args.figure]
    if args.figure in ("tableII", "all"):
        print(render_table_ii())
        print()
        if args.figure == "tableII":
            return 0
    for name in names:
        config_cls, run, fmt = FIGURES[name]
        config = getattr(config_cls, args.scale)()
        start = time.time()
        result = run(config)
        elapsed = time.time() - start
        print(fmt(result))
        print(f"[{name} @ {args.scale}: {elapsed:.1f}s]\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())

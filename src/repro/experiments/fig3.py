"""Figure 3: analytical scaling factors (Section IV-B).

The paper plots Equation (1)'s scaling factor ``alpha_2`` for the
oversubscribed partition against its size fraction ``S_2`` (0.2 .. 0.4) for
insertion rates ``I_2`` in {0.6, 0.7, 0.8, 0.9} with R = 16 candidates:
``alpha_2`` grows as ``I_2`` rises and ``S_2`` shrinks, and no valid factor
exists past the feasibility bound ``I_1 < S_1**R``.

This experiment is purely analytical (no simulation); it additionally
cross-checks every plotted point against the N-partition numerical solver
and reports the ``I = 0.01`` holdable-fraction example from the text
(~75% at R = 16).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..core.scaling import (
    alpha_for_two_partitions,
    max_holdable_size_fraction,
    solve_scaling_factors,
)
from ..errors import InfeasiblePartitioningError
from ..runner import Cell, run_cells
from .common import format_table
from .registry import register_experiment

__all__ = ["Fig3Config", "Fig3Result", "cells_fig3", "reduce_fig3",
           "run_fig3", "format_fig3"]


@dataclass(frozen=True)
class Fig3Config:
    """Sweep parameters (defaults are the paper's exact axes)."""

    candidates: int = 16
    insertion_rates: Tuple[float, ...] = (0.6, 0.7, 0.8, 0.9)
    size_fractions: Tuple[float, ...] = (0.20, 0.25, 0.30, 0.35, 0.40)
    #: Cross-validate each point against the numerical N-partition solver.
    cross_check: bool = True

    @classmethod
    def paper(cls) -> "Fig3Config":
        return cls()

    @classmethod
    def scaled(cls) -> "Fig3Config":
        return cls()  # analytical: nothing to scale

    @classmethod
    def smoke(cls) -> "Fig3Config":
        return cls(insertion_rates=(0.6, 0.9), size_fractions=(0.2, 0.4),
                   cross_check=True)


@dataclass
class Fig3Result:
    config: Fig3Config
    #: ``alphas[i2][s2]`` — scaling factor or None when infeasible.
    alphas: Dict[float, Dict[float, Optional[float]]]
    #: Max |closed form - solver| across all feasible points.
    max_solver_error: float
    #: The paper's worked example: holdable fraction at I = 0.01.
    holdable_at_1pct: float


def _run_row(config: Fig3Config,
             i2: float) -> Tuple[Dict[float, Optional[float]], float]:
    """One sweep row: alpha_2 over all S_2 at a fixed insertion rate."""
    row: Dict[float, Optional[float]] = {}
    max_error = 0.0
    for s2 in config.size_fractions:
        try:
            alpha = alpha_for_two_partitions(s2, i2, config.candidates)
        except InfeasiblePartitioningError:
            row[s2] = None
            continue
        row[s2] = alpha
        if config.cross_check:
            solved = solve_scaling_factors(
                [1.0 - s2, s2], [1.0 - i2, i2], config.candidates)
            max_error = max(max_error, abs(solved[1] - alpha))
    return row, max_error


def reduce_fig3(config: Fig3Config, results: List[Tuple]) -> Fig3Result:
    alphas: Dict[float, Dict[float, Optional[float]]] = {}
    max_error = 0.0
    for i2, (row, row_error) in zip(config.insertion_rates, results):
        alphas[i2] = row
        max_error = max(max_error, row_error)
    return Fig3Result(
        config=config, alphas=alphas, max_solver_error=max_error,
        holdable_at_1pct=max_holdable_size_fraction(0.01, config.candidates))


def run_fig3(config: Fig3Config = Fig3Config()) -> Fig3Result:
    """Evaluate Equation (1) over the configured sweep."""
    return reduce_fig3(config, run_cells(cells_fig3(config)))


def format_fig3(result: Fig3Result) -> str:
    """Paper-style table: one row per I_2, one column per S_2."""
    config = result.config
    headers = ["I_2 \\ S_2"] + [f"{s2:.2f}" for s2 in config.size_fractions]
    rows: List[List[object]] = []
    for i2 in config.insertion_rates:
        row: List[object] = [f"{i2:.1f}"]
        for s2 in config.size_fractions:
            alpha = result.alphas[i2][s2]
            row.append("infeasible" if alpha is None else f"{alpha:.3f}")
        rows.append(row)
    table = format_table(headers, rows,
                         title=f"Figure 3: scaling factor alpha_2 "
                               f"(R={config.candidates})")
    extras = [
        f"max |closed-form - solver| = {result.max_solver_error:.2e}",
        f"holdable size fraction at I=0.01: "
        f"{result.holdable_at_1pct * 100:.1f}% (paper: ~75%)",
    ]
    return table + "\n" + "\n".join(extras)


@register_experiment(name="fig3", config_cls=Fig3Config, reduce=reduce_fig3,
                     format=format_fig3,
                     description="Fig. 3: Equation (1) scaling factors")
def cells_fig3(config: Fig3Config) -> List[Cell]:
    """One cell per insertion-rate row of the analytical sweep."""
    return [Cell("fig3", (i2,), _run_row, (config, i2))
            for i2 in config.insertion_rates]

"""Internal utilities: order-statistic containers, validation and RNG helpers.

The order-statistic containers back the *exact* futility rankings
(Section III-A of the paper): a line's futility is its uselessness rank
within its partition, normalized to ``(0, 1]``.  Rank queries therefore need
an ordered multiset with ``rank``/``max``/``min`` in better-than-linear time.

Two implementations are provided:

* :class:`SortedKeyList` — a ``bisect``-based sorted list.  Inserts and
  removals are ``O(n)`` memmoves (cheap in CPython for tens of thousands of
  entries) and rank queries are ``O(log n)``.  This is the default and is
  fast for the partition sizes the paper's experiments use.
* :class:`FenwickRankTracker` — a binary-indexed tree over a bounded integer
  key universe, ``O(log U)`` for everything.  Used when keys are small
  bounded integers (e.g. coarse 8-bit timestamps).
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right, insort
from typing import Iterable, Iterator, List, Optional, Sequence

from .errors import ConfigurationError

__all__ = [
    "SortedKeyList",
    "FenwickRankTracker",
    "check_positive",
    "check_fraction",
    "check_probabilities",
]


def check_positive(value: float, name: str) -> None:
    """Raise :class:`ConfigurationError` unless ``value > 0``."""
    if not value > 0:
        raise ConfigurationError(f"{name} must be positive, got {value!r}")


def check_fraction(value: float, name: str, *, inclusive_low: bool = True,
                   inclusive_high: bool = True) -> None:
    """Raise :class:`ConfigurationError` unless ``value`` lies in [0, 1]."""
    low_ok = value >= 0 if inclusive_low else value > 0
    high_ok = value <= 1 if inclusive_high else value < 1
    if not (low_ok and high_ok):
        raise ConfigurationError(f"{name} must be in the unit interval, got {value!r}")


def check_probabilities(values: Sequence[float], name: str,
                        *, tolerance: float = 1e-9) -> None:
    """Validate that ``values`` is a probability vector summing to one."""
    for i, v in enumerate(values):
        if v < -tolerance:
            raise ConfigurationError(f"{name}[{i}] must be non-negative, got {v!r}")
    total = float(sum(values))
    if abs(total - 1.0) > max(tolerance, 1e-9 * len(values)):
        raise ConfigurationError(f"{name} must sum to 1, got {total!r}")


class SortedKeyList:
    """A sorted multiset of comparable keys with rank queries.

    Keys may be any mutually comparable values (ints, floats, tuples).  The
    container is optimized for the access pattern of futility rankings:
    interleaved single-element adds/removes with occasional rank queries.
    """

    __slots__ = ("_keys",)

    def __init__(self, keys: Optional[Iterable] = None) -> None:
        self._keys: List = sorted(keys) if keys is not None else []

    def __len__(self) -> int:
        return len(self._keys)

    def __iter__(self) -> Iterator:
        return iter(self._keys)

    def __contains__(self, key) -> bool:
        i = bisect_left(self._keys, key)
        return i < len(self._keys) and self._keys[i] == key

    def add(self, key) -> None:
        """Insert ``key`` (duplicates allowed)."""
        insort(self._keys, key)

    def remove(self, key) -> None:
        """Remove one occurrence of ``key``.

        Raises ``KeyError`` if the key is absent (which would indicate a
        ranking bookkeeping bug, so it must not pass silently).
        """
        i = bisect_left(self._keys, key)
        if i >= len(self._keys) or self._keys[i] != key:
            raise KeyError(key)
        del self._keys[i]

    def rank(self, key) -> int:
        """Number of keys strictly smaller than ``key`` (0-based rank)."""
        return bisect_left(self._keys, key)

    def rank_right(self, key) -> int:
        """Number of keys smaller than or equal to ``key``."""
        return bisect_right(self._keys, key)

    def min(self):
        """Smallest key; raises ``IndexError`` when empty."""
        return self._keys[0]

    def max(self):
        """Largest key; raises ``IndexError`` when empty."""
        return self._keys[-1]

    def kth(self, k: int):
        """The key at sorted position ``k`` (supports negative indices)."""
        return self._keys[k]


class FenwickRankTracker:
    """Rank tracking over a bounded integer key universe ``[0, universe)``.

    Supports multiset semantics: multiple items may share a key.  All
    operations are ``O(log universe)``.
    """

    __slots__ = ("_universe", "_tree", "_count")

    def __init__(self, universe: int) -> None:
        check_positive(universe, "universe")
        self._universe = int(universe)
        self._tree = [0] * (self._universe + 1)
        self._count = 0

    @property
    def universe(self) -> int:
        """Size of the key universe ``[0, universe)``."""
        return self._universe

    def __len__(self) -> int:
        return self._count

    def _update(self, key: int, delta: int) -> None:
        i = key + 1
        while i <= self._universe:
            self._tree[i] += delta
            i += i & (-i)

    def _prefix(self, key: int) -> int:
        """Count of items with key <= ``key``."""
        i = key + 1
        total = 0
        while i > 0:
            total += self._tree[i]
            i -= i & (-i)
        return total

    def add(self, key: int) -> None:
        """Insert one item with ``key`` (duplicates allowed)."""
        if not 0 <= key < self._universe:
            raise KeyError(key)
        self._update(key, 1)
        self._count += 1

    def remove(self, key: int) -> None:
        """Remove one item with ``key``; raises ``KeyError`` if absent."""
        if not 0 <= key < self._universe:
            raise KeyError(key)
        if self.count_at(key) <= 0:
            raise KeyError(key)
        self._update(key, -1)
        self._count -= 1

    def count_at(self, key: int) -> int:
        """Number of items with exactly this key."""
        return self._prefix(key) - (self._prefix(key - 1) if key > 0 else 0)

    def rank(self, key: int) -> int:
        """Number of items with key strictly smaller than ``key``."""
        return self._prefix(key - 1) if key > 0 else 0

    def rank_right(self, key: int) -> int:
        """Number of items with key smaller than or equal to ``key``."""
        return self._prefix(key)

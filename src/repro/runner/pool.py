"""Parallel, cached execution of experiment cells with an ordered reduce.

:func:`run_cells` is the single entry point.  It resolves store hits in
the parent, executes the remaining cells — inline (``jobs == 1``),
across a process pool (``jobs > 1``), or through the store's work queue
drained by independent worker processes (``queue_workers=N``; see
:mod:`repro.runner.worker`) — persists every freshly computed result to
the experiment store *as it completes* (so an interrupted sweep resumes
from where it died), and returns results in cell order — the reduce
step therefore sees the exact sequence a sequential run would have
produced, making parallel and distributed output byte-identical to
sequential output.

Execution is configured by a :class:`~repro.runner.RunConfig`
(``run_cells(cells, RunConfig(jobs=4, store="sqlite:results.db"))``);
the historical keyword style still works behind a deprecation shim
(:func:`repro.runner.config.coerce_run_config`).

Determinism: before executing a cell, the runner reseeds the global
``random`` and ``numpy.random`` generators from the cell's
content-addressed key.  This happens identically inline, in pool
workers, in queue workers, and on *every retry attempt*
(:mod:`repro.runner.resilience`), so a cell that (incorrectly) reaches
for global randomness still cannot diverge between ``--jobs 1``,
``--jobs N``, ``--queue-workers N``, or a retried run.

Fault tolerance (``retries`` / ``cell_timeout`` / ``keep_going``) is
provided by :mod:`repro.runner.resilience`; deterministic fault
injection for testing it by :mod:`repro.runner.faults`.
"""

from __future__ import annotations

import os
import random
import time
from typing import TYPE_CHECKING, Any, List, Optional, Sequence, Tuple

from ..errors import ConfigurationError, ReproError, WorkerError
from ..store import ExperimentStore
from .cache import cell_key
from .cells import Cell
from .config import RunConfig, coerce_run_config
from .faults import active_plan, corrupt_cache_entries, inject
from .progress import Progress
from .resilience import FailedCell, RetryPolicy, run_pool

if TYPE_CHECKING:
    from ..obs.spans import RunTelemetry

__all__ = ["run_cells", "default_jobs"]

_PENDING = object()


def default_jobs() -> int:
    """Default worker count: ``os.cpu_count()``."""
    return os.cpu_count() or 1


def _seed_from_key(key: str) -> None:
    """Deterministically reseed global RNGs for one cell attempt.

    Cells are expected to derive their own seeded ``random.Random`` from
    their config; this is belt-and-braces so global-state randomness can
    never differ between sequential, parallel, or retried execution.
    """
    seed = int(key[:16], 16)
    random.seed(seed)
    try:
        import numpy as np

        np.random.seed(seed & 0xFFFFFFFF)
    except ImportError:  # numpy is a hard dep, but stay defensive
        pass


def _execute(payload: Sequence[Any]) -> Tuple[int, float, Any]:
    """Worker body: run one cell attempt, returning (index, elapsed, result).

    ``payload`` is ``(index, key, cell, attempt)`` with an optional
    fifth element: the distributed-trace context a queue item carries
    (``{"trace": ..., "parent": ...}``; see :mod:`repro.obs.trace`).
    Pool submissions stay 4-tuples — with tracing on, pool and inline
    attempts join the trace through the inherited environment instead.

    Reseeds the global RNGs from the cell key before *every* attempt, so
    a retried cell is byte-identical to a first-try run; then gives the
    fault-injection harness its chance to misbehave (a no-op unless a
    plan is active in the environment).
    """
    index, key, cell, attempt = payload[:4]
    if os.environ.get("REPRO_TRACE"):
        # Tracing is on (workers learn via the inherited environment):
        # wrap the attempt in an `execute` span so retries, faults and
        # errors are causally attributed.  Zero code runs without the
        # variable — the determinism contract's zero-overhead clause.
        from ..obs.trace import execute_span

        ctx = payload[4] if len(payload) > 4 else None
        with execute_span(cell.label, key, attempt, ctx):
            return _run_attempt(index, key, cell, attempt)
    return _run_attempt(index, key, cell, attempt)


def _run_attempt(index: int, key: str, cell: Cell,
                 attempt: int) -> Tuple[int, float, Any]:
    _seed_from_key(key)
    inject(cell.label, attempt)
    if os.environ.get("REPRO_TELEMETRY"):
        # Telemetry is on (workers learn via the inherited environment):
        # name the cell so series files land at deterministic paths, and
        # optionally capture a cProfile of the attempt.
        from ..obs.runtime import maybe_profile, set_cell

        set_cell(cell.label)
        start = time.perf_counter()
        with maybe_profile(cell.label):
            result = cell.run()
        return index, time.perf_counter() - start, result
    start = time.perf_counter()
    result = cell.run()
    return index, time.perf_counter() - start, result


def _run_inline(cells: Sequence[Cell], keys: Sequence[str],
                pending: Sequence[int], policy: RetryPolicy,
                results: List[Any], store: Optional[ExperimentStore],
                progress: Optional[Progress],
                telemetry: Optional["RunTelemetry"] = None) -> None:
    """Sequential execution with retries; raises raw on permanent failure
    (unless ``keep_going``), preserving the historical inline semantics."""
    for i in pending:
        failed_attempts = 0
        total_elapsed = 0.0
        while True:
            attempt = failed_attempts + 1
            if telemetry is not None:
                telemetry.started(i, attempt)
            start = time.monotonic()
            try:
                _, elapsed, value = _execute((i, keys[i], cells[i], attempt))
            except Exception as exc:
                total_elapsed += time.monotonic() - start
                failed_attempts += 1
                if failed_attempts <= policy.retries:
                    backoff = policy.delay(failed_attempts)
                    if telemetry is not None:
                        telemetry.retried(i, attempt, exc)
                    if progress is not None:
                        progress.retry(cells[i], attempt, exc, backoff)
                    time.sleep(backoff)
                    continue
                if telemetry is not None:
                    telemetry.failed(i, exc, attempt, total_elapsed)
                if not policy.keep_going:
                    raise
                results[i] = FailedCell(
                    index=i, label=cells[i].label, key=keys[i],
                    error_type=type(exc).__name__, message=str(exc),
                    attempts=attempt, elapsed=round(total_elapsed, 3),
                    exc=exc)
                if progress is not None:
                    progress.cell(cells[i], failed=True)
                break
            results[i] = value
            if telemetry is not None:
                telemetry.completed(i, elapsed)
            if store is not None:
                store.put(keys[i], value)
            if progress is not None:
                progress.cell(cells[i], elapsed=elapsed)
            break


def run_cells(cells: Sequence[Cell], config: Optional[RunConfig] = None,
              **legacy: Any) -> List[Any]:
    """Execute ``cells`` per ``config`` and return results in cell order.

    ``config`` is a :class:`~repro.runner.RunConfig` — parallelism
    (``jobs`` / ``queue_workers``), the experiment store, the
    resilience policy (``retries`` / ``cell_timeout`` / ``keep_going``)
    and the progress/telemetry sinks in one value; see its docstring
    for every field.  The legacy keyword style
    (``run_cells(cells, jobs=4, store=...)``) still works and emits a
    single :class:`DeprecationWarning` per call; the removed ``cache=``
    alias of ``store`` is an error.

    Execution modes (all byte-identical in output):

    - inline — ``jobs=1`` and no ``cell_timeout``;
    - process pool — ``jobs>1`` or a ``cell_timeout`` (a hung cell's
      worker must be killable), self-healing per
      :mod:`repro.runner.resilience`;
    - work queue — ``queue_workers=N`` publishes pending cells to the
      store's claim/ack queue and drains it with ``N`` independent
      ``python -m repro.runner.worker`` processes
      (:func:`repro.runner.worker.run_queued`).

    Store hits short-circuit execution; fresh results persist as each
    cell completes, so interrupted sweeps resume from the store.  Under
    ``keep_going`` permanently failed cells yield
    :class:`~repro.runner.FailedCell` sentinels instead of aborting;
    otherwise a single failing :class:`~repro.errors.ReproError`
    propagates unwrapped and any other permanent failure raises
    :class:`~repro.errors.WorkerError` listing *every* failed cell.
    """
    cfg = coerce_run_config(config, legacy, where="repro.runner.run_cells")
    jobs = cfg.jobs or default_jobs()
    if jobs < 1:
        jobs = default_jobs()
    policy = cfg.policy()
    store = cfg.open_store()
    progress = cfg.progress
    telemetry = cfg.telemetry
    if cfg.trace and (telemetry is None or telemetry.trace_dir is None):
        raise ConfigurationError(
            "trace=True but the telemetry collector has no trace "
            "directory; construct it via TelemetrySession(..., trace=True)")
    cells = list(cells)
    keys = [cell_key(cell) for cell in cells]
    results: List[Any] = [_PENDING] * len(cells)
    if telemetry is not None:
        telemetry.begin(cells, keys)
    if progress is not None:
        progress.begin(len(cells))

    plan = active_plan()
    if plan is not None and store is not None and not cfg.force:
        corrupt_cache_entries(plan, cells, keys, store)

    pending: List[int] = []
    for i, cell in enumerate(cells):
        if store is not None and not cfg.force:
            hit, value = store.get(keys[i])
            if hit:
                results[i] = value
                if telemetry is not None:
                    telemetry.cache_hit(i)
                if progress is not None:
                    progress.cell(cell, cached=True)
                continue
        pending.append(i)

    if pending:
        if cfg.queue_workers is not None:
            from .worker import run_queued

            assert store is not None  # RunConfig.__post_init__ enforces
            pool_results, _ = run_queued(
                cells, keys, pending, store=store, policy=policy,
                workers=cfg.queue_workers, queue_name=cfg.queue_name,
                lease=cfg.queue_lease, progress=progress,
                telemetry=telemetry,
                renew_interval=cfg.queue_renew_interval,
                store_retries=cfg.store_retries)
            for i, value in pool_results.items():
                results[i] = value
        elif (policy.cell_timeout is None
                and (jobs == 1 or len(pending) == 1)):
            _run_inline(cells, keys, pending, policy, results, store,
                        progress, telemetry)
        else:
            pool_results, _ = run_pool(
                cells, keys, pending, jobs=jobs, policy=policy,
                execute=_execute, store=store, progress=progress,
                telemetry=telemetry)
            for i, value in pool_results.items():
                results[i] = value

    if telemetry is not None and store is not None:
        telemetry.store_stats(store.stats())

    failures = [r for r in results if isinstance(r, FailedCell)]
    if failures and not policy.keep_going:
        # (The inline path raised already; this is the pool/queue path.)
        if len(failures) == 1 and isinstance(failures[0].exc, ReproError):
            raise failures[0].exc
        detail = "; ".join(f"{f.label}: {f.error_type}: {f.message}"
                           for f in failures)
        raise WorkerError(
            f"{len(failures)} cell(s) failed: {detail}") from failures[0].exc

    missing = [i for i, r in enumerate(results) if r is _PENDING]
    if missing:  # defensive: should be unreachable
        raise WorkerError(
            f"{len(missing)} cell(s) produced no result "
            f"(first: {cells[missing[0]].label})")
    return results

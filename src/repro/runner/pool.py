"""Parallel, cached execution of experiment cells with an ordered reduce.

:func:`run_cells` is the single entry point.  It resolves cache hits in
the parent, fans the remaining cells out across a process pool
(``jobs > 1``) or runs them inline (``jobs == 1``), persists every
freshly computed result to the cache *as it completes* (so an
interrupted sweep resumes from where it died), and returns results in
cell order — the reduce step therefore sees the exact sequence a
sequential run would have produced, making parallel output
byte-identical to sequential output.

Determinism: before executing a cell, the runner reseeds the global
``random`` and ``numpy.random`` generators from the cell's
content-addressed key.  This happens identically inline and in workers,
so a cell that (incorrectly) reaches for global randomness still cannot
diverge between ``--jobs 1`` and ``--jobs N``.
"""

from __future__ import annotations

import os
import random
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from typing import Any, List, Optional, Sequence, Tuple

from ..errors import ReproError, WorkerError
from .cache import ResultCache, cell_key
from .cells import Cell
from .progress import Progress

__all__ = ["run_cells", "default_jobs"]

_PENDING = object()


def default_jobs() -> int:
    """Default worker count: ``os.cpu_count()``."""
    return os.cpu_count() or 1


def _seed_from_key(key: str) -> None:
    """Deterministically reseed global RNGs for one cell.

    Cells are expected to derive their own seeded ``random.Random`` from
    their config; this is belt-and-braces so global-state randomness can
    never differ between sequential and parallel execution.
    """
    seed = int(key[:16], 16)
    random.seed(seed)
    try:
        import numpy as np

        np.random.seed(seed & 0xFFFFFFFF)
    except ImportError:  # numpy is a hard dep, but stay defensive
        pass


def _execute(payload: Tuple[int, str, Cell]) -> Tuple[int, float, Any]:
    """Worker body: run one cell, returning (index, elapsed, result)."""
    index, key, cell = payload
    _seed_from_key(key)
    start = time.perf_counter()
    result = cell.run()
    return index, time.perf_counter() - start, result


def run_cells(cells: Sequence[Cell], *, jobs: Optional[int] = 1,
              cache: Optional[ResultCache] = None, force: bool = False,
              progress: Optional[Progress] = None) -> List[Any]:
    """Execute ``cells`` and return their results in cell order.

    Parameters
    ----------
    jobs:
        Worker processes.  ``1`` (default) runs inline; ``None`` or
        ``0`` means :func:`default_jobs`.
    cache:
        Optional :class:`ResultCache`.  Hits short-circuit execution;
        fresh results are persisted as soon as each cell completes.
    force:
        Ignore (and overwrite) existing cache entries.
    progress:
        Optional :class:`~repro.runner.progress.Progress` receiving one
        line per completed cell on stderr.
    """
    jobs = jobs or default_jobs()
    if jobs < 1:
        jobs = default_jobs()
    cells = list(cells)
    keys = [cell_key(cell) for cell in cells]
    results: List[Any] = [_PENDING] * len(cells)
    if progress is not None:
        progress.begin(len(cells))

    pending: List[int] = []
    for i, cell in enumerate(cells):
        if cache is not None and not force:
            hit, value = cache.get(keys[i])
            if hit:
                results[i] = value
                if progress is not None:
                    progress.cell(cell, cached=True)
                continue
        pending.append(i)

    if pending and (jobs == 1 or len(pending) == 1):
        for i in pending:
            _, elapsed, value = _execute((i, keys[i], cells[i]))
            results[i] = value
            if cache is not None:
                cache.put(keys[i], value)
            if progress is not None:
                progress.cell(cells[i], elapsed=elapsed)
    elif pending:
        errors: List[Tuple[int, BaseException]] = []
        with ProcessPoolExecutor(max_workers=min(jobs, len(pending))) as ex:
            futures = {ex.submit(_execute, (i, keys[i], cells[i])): i
                       for i in pending}
            for future in as_completed(futures):
                i = futures[future]
                try:
                    _, elapsed, value = future.result()
                except BaseException as exc:  # noqa: BLE001 — reported below
                    errors.append((i, exc))
                    continue
                results[i] = value
                # Persist immediately: an interrupt later in the sweep
                # must not lose cells that already finished.
                if cache is not None:
                    cache.put(keys[i], value)
                if progress is not None:
                    progress.cell(cells[i], elapsed=elapsed)
        if errors:
            errors.sort(key=lambda pair: pair[0])
            index, exc = errors[0]
            if isinstance(exc, ReproError):
                raise exc
            raise WorkerError(
                f"cell {cells[index].label} failed in worker: "
                f"{type(exc).__name__}: {exc}") from exc

    missing = [i for i, r in enumerate(results) if r is _PENDING]
    if missing:  # defensive: should be unreachable
        raise WorkerError(
            f"{len(missing)} cell(s) produced no result "
            f"(first: {cells[missing[0]].label})")
    return results

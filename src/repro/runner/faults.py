"""Deterministic fault injection for exercising the resilience layer.

None of the runner's fault tolerance (retries, timeouts, pool recovery,
cache quarantine — :mod:`repro.runner.resilience`) is testable without
controlled failures, so this module injects them *deterministically*: a
:class:`FaultPlan` names exact cells (by label) and exact attempt
numbers, which means a plan plus a retry budget either always recovers
or always fails — there is no timing or scheduling dependence, and a
chaos run's final stdout stays byte-identical to a fault-free run.

The plan travels through the :data:`REPRO_FAULTS <FAULTS_ENV>`
environment variable (inline JSON, or ``@/path/to/plan.json``), which
worker processes inherit, so faults trigger identically whether a cell
runs inline (``jobs=1``) or inside a pool worker.

Fault kinds:

``raise``
    Raise :class:`InjectedFaultError` in the executing process before
    the cell body runs (a transient cell exception).
``hang``
    Sleep ``seconds`` before the cell body runs (pair with the runner's
    ``cell_timeout`` to exercise hung-cell recovery).
``kill``
    ``SIGKILL`` the executing process (a dead worker; with ``jobs > 1``
    this breaks the pool and exercises respawn-and-requeue — with
    ``jobs == 1`` it kills the parent, exactly as a real crash would).
``corrupt``
    Parent-side, before cache hits are resolved: overwrite the cell's
    *existing* result-cache entry with garbage bytes, exercising the
    cache's checksum/quarantine path.  Ignores ``attempts``.

Plan JSON::

    {"faults": [
        {"cell": "fig3[0.6]", "kind": "raise", "attempts": [1]},
        {"cell": "fig3[0.7]", "kind": "kill"},
        {"cell": "fig3[0.8]", "kind": "corrupt"}
    ]}
"""

from __future__ import annotations

import json
import os
import signal
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..errors import ConfigurationError
from ..store import ExperimentStore
from .cells import Cell

__all__ = [
    "FAULTS_ENV",
    "FAULT_KINDS",
    "Fault",
    "FaultPlan",
    "InjectedFaultError",
    "active_plan",
    "corrupt_cache_entries",
    "inject",
]

#: Environment variable carrying the active plan (inline JSON or ``@path``).
FAULTS_ENV = "REPRO_FAULTS"

#: Recognized fault kinds.
FAULT_KINDS = ("raise", "hang", "kill", "corrupt")

#: What a ``corrupt`` fault writes over a cache entry (fails the
#: checksum check by construction: no valid header).
_CORRUPT_BYTES = b"\x00injected corruption (repro.runner.faults)\x00"

_PLAN_FIELDS = frozenset({"cell", "kind", "attempts", "message", "seconds"})


class InjectedFaultError(RuntimeError):
    """Raised by a ``raise`` fault.

    Deliberately *not* a :class:`~repro.errors.ReproError`: injected
    exceptions exercise the foreign-exception wrapping path, the one a
    genuine infrastructure failure would take.
    """


@dataclass(frozen=True)
class Fault:
    """One injected failure, pinned to a cell label and attempt numbers.

    Parameters
    ----------
    cell:
        Exact cell label to hit (``Cell.label``, e.g. ``"fig3[0.6]"``).
    kind:
        One of :data:`FAULT_KINDS`.
    attempts:
        1-based attempt numbers on which the fault fires (``corrupt``
        ignores this — it applies once, parent-side, per sweep).
    message:
        Text carried by an injected ``raise`` exception.
    seconds:
        Sleep duration for ``hang`` faults.
    """

    cell: str
    kind: str
    attempts: Tuple[int, ...] = (1,)
    message: str = "injected fault"
    seconds: float = 30.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ConfigurationError(
                f"unknown fault kind {self.kind!r}; expected one of "
                f"{list(FAULT_KINDS)}")
        if not self.attempts or any(a < 1 for a in self.attempts):
            raise ConfigurationError(
                f"fault attempts must be 1-based attempt numbers, got "
                f"{self.attempts!r}")
        if self.seconds < 0:
            raise ConfigurationError(
                f"fault seconds must be non-negative, got {self.seconds!r}")

    def triggers(self, label: str, attempt: int) -> bool:
        """Does this fault fire for ``label`` on ``attempt``?"""
        return self.cell == label and attempt in self.attempts


@dataclass(frozen=True)
class FaultPlan:
    """An ordered collection of :class:`Fault`\\ s."""

    faults: Tuple[Fault, ...] = ()

    def __bool__(self) -> bool:
        return bool(self.faults)

    def for_cell(self, label: str,
                 kind: Optional[str] = None) -> List[Fault]:
        """Faults aimed at ``label`` (optionally restricted to ``kind``)."""
        return [f for f in self.faults
                if f.cell == label and (kind is None or f.kind == kind)]

    def to_json(self) -> str:
        """Serialize to the ``REPRO_FAULTS`` JSON format."""
        entries: List[Dict[str, Any]] = [
            {"cell": f.cell, "kind": f.kind, "attempts": list(f.attempts),
             "message": f.message, "seconds": f.seconds}
            for f in self.faults]
        return json.dumps({"faults": entries}, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        """Parse a plan document, failing loudly on malformed input."""
        try:
            doc = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(
                f"fault plan is not valid JSON: {exc}") from exc
        if not isinstance(doc, dict) or not isinstance(
                doc.get("faults", []), list):
            raise ConfigurationError(
                "fault plan must be an object with a 'faults' list")
        faults: List[Fault] = []
        for entry in doc.get("faults", []):
            if not isinstance(entry, dict):
                raise ConfigurationError(
                    f"each fault must be an object, got {entry!r}")
            unknown = sorted(set(entry) - _PLAN_FIELDS)
            if unknown:
                raise ConfigurationError(
                    f"unknown fault fields {unknown}; expected a subset of "
                    f"{sorted(_PLAN_FIELDS)}")
            try:
                cell = str(entry["cell"])
                kind = str(entry["kind"])
            except KeyError as missing:
                raise ConfigurationError(
                    f"fault entry is missing required field "
                    f"{missing}") from missing
            faults.append(Fault(
                cell=cell, kind=kind,
                attempts=tuple(int(a) for a in entry.get("attempts", (1,))),
                message=str(entry.get("message", "injected fault")),
                seconds=float(entry.get("seconds", 30.0))))
        return cls(faults=tuple(faults))


def active_plan() -> Optional[FaultPlan]:
    """The plan named by ``$REPRO_FAULTS``, or ``None`` when unset.

    A value of ``@/path/to/plan.json`` loads the plan from a file;
    anything else is parsed as inline JSON.  Re-read on every call so
    long-lived workers never hold a stale plan.
    """
    raw = os.environ.get(FAULTS_ENV)
    if not raw:
        return None
    if raw.startswith("@"):
        path = Path(raw[1:])
        try:
            raw = path.read_text(encoding="utf-8")
        except OSError as exc:
            raise ConfigurationError(
                f"cannot read fault plan file {path}: {exc}") from exc
    return FaultPlan.from_json(raw)


def inject(label: str, attempt: int) -> None:
    """Fire any execution-side faults aimed at ``label``/``attempt``.

    Called by the runner in the executing process (worker or inline)
    immediately before the cell body runs.  No-op without an active
    plan.
    """
    plan = active_plan()
    if plan is None:
        return
    for fault in plan.faults:
        if fault.kind == "corrupt" or not fault.triggers(label, attempt):
            continue
        if os.environ.get("REPRO_TRACE"):
            # Which fault fired where is a deterministic fact of the
            # plan, so the trace event survives canonical projection.
            from ..obs.trace import add_event

            add_event("fault", det=True, kind=fault.kind, cell=label,
                      attempt=attempt)
        if fault.kind == "raise":
            raise InjectedFaultError(
                f"{fault.message} (cell {label}, attempt {attempt})")
        if fault.kind == "hang":
            time.sleep(fault.seconds)
        elif fault.kind == "kill":
            os.kill(os.getpid(), getattr(signal, "SIGKILL", signal.SIGTERM))


def corrupt_cache_entries(plan: FaultPlan, cells: Sequence[Cell],
                          keys: Sequence[str],
                          store: ExperimentStore) -> int:
    """Apply the plan's ``corrupt`` faults to existing store entries.

    Parent-side, before store hits are resolved: each targeted cell's
    existing entry is overwritten with garbage (via
    :meth:`~repro.store.ExperimentStore.write_raw`, so it works on any
    backend) and the subsequent
    :meth:`~repro.store.ExperimentStore.get` exercises checksum
    detection and quarantine.  Returns the number of entries corrupted.
    """
    corrupted = 0
    for cell, key in zip(cells, keys):
        if plan.for_cell(cell.label, kind="corrupt"):
            if key in store:
                store.write_raw(key, _CORRUPT_BYTES)
                corrupted += 1
    return corrupted

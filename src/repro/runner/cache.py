"""Content-addressed on-disk memoization of experiment cells.

Every cell's result is stored under a key that is the SHA-256 of a
canonical JSON encoding of the cell's full identity (experiment name,
executing function, complete argument tuple including the config
dataclass) plus a code-version salt.  Identical configs therefore hit
the same entry across runs *and across processes*, while any change to
the config, the sweep coordinates, the library version or the cache
format produces a fresh key.  Interrupted sweeps resume instantly: only
the missing cells execute on a rerun.

Layout on disk (two-level fan-out to keep directories small)::

    <cache-dir>/<key[:2]>/<key>.pkl

Entries are pickled results written atomically (temp file + rename), so
a killed run never leaves a truncated entry behind.  Each entry carries
a header with a SHA-256 checksum of its payload; an entry that fails
validation (bad header, checksum mismatch, unpicklable payload) is
**quarantined** to ``<entry>.pkl.corrupt`` with a
:class:`CacheCorruptionWarning` and treated as a miss — corruption is
surfaced and preserved for inspection, never silently recomputed over.
A missing entry is the one silent case: that is just a clean miss.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pickle
import tempfile
import warnings
from pathlib import Path
from typing import Any, Optional, Tuple, Union

from ..errors import ConfigurationError
from .cells import Cell

__all__ = [
    "CACHE_MAGIC",
    "CacheCorruptionWarning",
    "ResultCache",
    "canonical_encode",
    "cell_key",
    "code_version_salt",
    "default_cache_dir",
]

#: Bump to invalidate every existing cache entry after a format change.
#: v2: checksummed entry header (CACHE_MAGIC + SHA-256 + payload).
CACHE_FORMAT_VERSION = 2

#: Leading bytes of every v2 cache entry, followed by the 64-hex-char
#: SHA-256 of the pickled payload, a newline, then the payload itself.
CACHE_MAGIC = b"repro/result-cache/v2\n"


class CacheCorruptionWarning(RuntimeWarning):
    """A result-cache entry failed validation and was quarantined."""

#: Environment variable overriding the default cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Environment variable appended to the salt (tests use it to force
#: invalidation without touching the library version).
CACHE_SALT_ENV = "REPRO_CACHE_SALT"


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` or ``~/.cache/repro-experiments``."""
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return Path(env).expanduser()
    return Path.home() / ".cache" / "repro-experiments"


def code_version_salt() -> str:
    """Version salt mixed into every cache key.

    Combines the library version with the cache format version so
    upgrading either invalidates stale entries wholesale.
    """
    from .. import __version__  # lazy: avoids a cycle at package init

    salt = f"repro-{__version__}/cache-{CACHE_FORMAT_VERSION}"
    extra = os.environ.get(CACHE_SALT_ENV)
    return f"{salt}/{extra}" if extra else salt


def canonical_encode(obj: Any) -> Any:
    """Reduce ``obj`` to a JSON-stable structure.

    Supports the vocabulary experiment configs are built from: ``None``,
    ``bool``, ``int``, ``float``, ``str``, tuples/lists, string-keyed
    dicts and (nested) dataclasses.  Anything else raises
    :class:`~repro.errors.ConfigurationError` — failing loudly beats
    silently computing a wrong key.
    """
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if isinstance(obj, (list, tuple)):
        return [canonical_encode(v) for v in obj]
    if isinstance(obj, dict):
        for k in obj:
            if not isinstance(k, str):
                raise ConfigurationError(
                    f"cache keys require string dict keys, got {k!r}")
        return {k: canonical_encode(obj[k]) for k in sorted(obj)}
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        cls = type(obj)
        return {
            "__dataclass__": f"{cls.__module__}:{cls.__qualname__}",
            "fields": {f.name: canonical_encode(getattr(obj, f.name))
                       for f in dataclasses.fields(obj)},
        }
    raise ConfigurationError(
        f"cannot canonically encode {type(obj).__name__!r} value {obj!r} "
        f"for a cell cache key")


def cell_key(cell: Cell, salt: Optional[str] = None) -> str:
    """SHA-256 hex key for a cell: canonical JSON of its fingerprint."""
    payload = {
        "salt": salt if salt is not None else code_version_salt(),
        "cell": canonical_encode(cell.fingerprint()),
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class ResultCache:
    """Pickle store addressed by :func:`cell_key` hashes."""

    def __init__(self, root: Union[str, "os.PathLike[str]"]) -> None:
        self.root = Path(root)

    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.pkl"

    def get(self, key: str) -> Tuple[bool, Any]:
        """``(hit, value)``; a missing entry is a clean miss.

        A *present but invalid* entry — bad header, SHA-256 mismatch,
        payload that will not unpickle — is quarantined to
        ``<entry>.pkl.corrupt`` with a :class:`CacheCorruptionWarning`
        and reported as a miss, so the cell recomputes while the
        corrupt bytes stay on disk for inspection.
        """
        path = self.path_for(key)
        try:
            blob = path.read_bytes()
        except FileNotFoundError:
            return False, None
        except OSError as exc:
            warnings.warn(
                f"result-cache entry {key[:12]}... is unreadable "
                f"({type(exc).__name__}: {exc}); treating as a miss",
                CacheCorruptionWarning, stacklevel=2)
            return False, None
        head = len(CACHE_MAGIC)
        reason = None
        if not blob.startswith(CACHE_MAGIC) or blob[head + 64:head + 65] != \
                b"\n":
            reason = "missing or malformed entry header"
        else:
            digest = blob[head:head + 64]
            payload = blob[head + 65:]
            if hashlib.sha256(payload).hexdigest().encode("ascii") != digest:
                reason = "SHA-256 checksum mismatch"
            else:
                try:
                    return True, pickle.loads(payload)
                except Exception as exc:
                    reason = (f"checksummed payload failed to unpickle "
                              f"({type(exc).__name__}: {exc})")
        quarantined = self.quarantine(key)
        where = (f"quarantined to {quarantined}" if quarantined is not None
                 else "quarantine failed; entry left in place")
        warnings.warn(
            f"result-cache entry {key[:12]}... is corrupt ({reason}); "
            f"{where}; the cell will be recomputed",
            CacheCorruptionWarning, stacklevel=2)
        return False, None

    def quarantine(self, key: str) -> Optional[Path]:
        """Move ``key``'s entry aside to ``*.pkl.corrupt``; None on failure."""
        path = self.path_for(key)
        target = path.with_name(path.name + ".corrupt")
        try:
            os.replace(path, target)
        except OSError:
            return None
        return target

    def put(self, key: str, value: Any) -> None:
        """Atomically persist ``value`` (checksummed) under ``key``."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        digest = hashlib.sha256(payload).hexdigest().encode("ascii")
        fd, tmp = tempfile.mkstemp(dir=path.parent,
                                   prefix=f".{key[:8]}-", suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(CACHE_MAGIC)
                fh.write(digest)
                fh.write(b"\n")
                fh.write(payload)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def __contains__(self, key: str) -> bool:
        return self.path_for(key).exists()

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*/*.pkl"))

    def purge(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        for entry in self.root.glob("*/*.pkl"):
            try:
                entry.unlink()
                removed += 1
            except OSError:
                pass
        return removed

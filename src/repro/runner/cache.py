"""Cell cache keys, plus the deprecated ``ResultCache`` alias.

The content-addressed *keying* of experiment cells lives here: a cell's
key is the SHA-256 of a canonical JSON encoding of its full identity
(experiment name, executing function, complete argument tuple including
the config dataclass) plus a code-version salt
(:func:`cell_key` / :func:`canonical_encode` / :func:`code_version_salt`).
Identical configs therefore hit the same entry across runs *and across
processes*, while any change to the config, the sweep coordinates, the
library version or the entry format produces a fresh key.

The *storage* behind those keys moved to the pluggable
:mod:`repro.store` package: :class:`~repro.store.LocalFileStore` is the
historical directory-of-pickles layout, :class:`~repro.store.SQLiteStore`
a single-file alternative safe for concurrent workers, and
:func:`~repro.store.open_store` resolves ``local:PATH`` /
``sqlite:PATH`` URLs.  :class:`ResultCache` remains as a thin
deprecated alias for :class:`~repro.store.LocalFileStore` so existing
imports and pickles keep working.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import warnings
from pathlib import Path
from typing import Any, Optional, Union

from ..errors import ConfigurationError
from ..store import STORE_FORMAT_VERSION, STORE_MAGIC, CacheCorruptionWarning
from ..store.local import LocalFileStore
from .cells import Cell

__all__ = [
    "CACHE_MAGIC",
    "CacheCorruptionWarning",
    "ResultCache",
    "canonical_encode",
    "cell_key",
    "code_version_salt",
    "default_cache_dir",
]

#: Deprecated aliases of the :mod:`repro.store` entry-format constants
#: (the format itself is unchanged — stores read old caches verbatim).
CACHE_FORMAT_VERSION = STORE_FORMAT_VERSION
CACHE_MAGIC = STORE_MAGIC

#: Environment variable overriding the default cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Environment variable appended to the salt (tests use it to force
#: invalidation without touching the library version).
CACHE_SALT_ENV = "REPRO_CACHE_SALT"


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` or ``~/.cache/repro-experiments``."""
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return Path(env).expanduser()
    return Path.home() / ".cache" / "repro-experiments"


def code_version_salt() -> str:
    """Version salt mixed into every cache key.

    Combines the library version with the entry-format version so
    upgrading either invalidates stale entries wholesale.
    """
    from .. import __version__  # lazy: avoids a cycle at package init

    salt = f"repro-{__version__}/cache-{CACHE_FORMAT_VERSION}"
    extra = os.environ.get(CACHE_SALT_ENV)
    return f"{salt}/{extra}" if extra else salt


def canonical_encode(obj: Any) -> Any:
    """Reduce ``obj`` to a JSON-stable structure.

    Supports the vocabulary experiment configs are built from: ``None``,
    ``bool``, ``int``, ``float``, ``str``, tuples/lists, string-keyed
    dicts and (nested) dataclasses.  Anything else raises
    :class:`~repro.errors.ConfigurationError` — failing loudly beats
    silently computing a wrong key.
    """
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if isinstance(obj, (list, tuple)):
        return [canonical_encode(v) for v in obj]
    if isinstance(obj, dict):
        for k in obj:
            if not isinstance(k, str):
                raise ConfigurationError(
                    f"cache keys require string dict keys, got {k!r}")
        return {k: canonical_encode(obj[k]) for k in sorted(obj)}
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        cls = type(obj)
        return {
            "__dataclass__": f"{cls.__module__}:{cls.__qualname__}",
            "fields": {f.name: canonical_encode(getattr(obj, f.name))
                       for f in dataclasses.fields(obj)},
        }
    raise ConfigurationError(
        f"cannot canonically encode {type(obj).__name__!r} value {obj!r} "
        f"for a cell cache key")


def cell_key(cell: Cell, salt: Optional[str] = None) -> str:
    """SHA-256 hex key for a cell: canonical JSON of its fingerprint."""
    payload = {
        "salt": salt if salt is not None else code_version_salt(),
        "cell": canonical_encode(cell.fingerprint()),
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class ResultCache(LocalFileStore):
    """Deprecated alias for :class:`repro.store.LocalFileStore`.

    Same directory layout, same checksummed entries, same quarantine
    behavior — only the name is historical.  New code should use
    :class:`~repro.store.LocalFileStore` directly or resolve a
    ``local:PATH`` URL via :func:`repro.store.open_store`.
    """

    def __init__(self, root: Union[str, "os.PathLike[str]"]) -> None:
        warnings.warn(
            "ResultCache is deprecated; use repro.store.LocalFileStore "
            "(or open_store('local:...'))",
            DeprecationWarning, stacklevel=2)
        super().__init__(root)

"""Typed run configuration: every runner knob in one dataclass.

:class:`RunConfig` replaces the kwargs sprawl that had accreted on
:func:`repro.runner.run_cells`, :meth:`ExperimentSpec.run
<repro.experiments.registry.ExperimentSpec.run>` and
:func:`repro.api.run_experiment` — parallelism, the experiment store,
the resilience policy, progress/telemetry sinks and queue-driven
execution all travel together as one validated, immutable value::

    from repro.runner import RunConfig, run_cells

    cfg = RunConfig(jobs=4, store="sqlite:results.db",
                    retries=2, keep_going=True)
    results = run_cells(cells, cfg)

The legacy keyword style (``run_cells(cells, jobs=4)``) still works
through :func:`coerce_run_config`, which emits a single
:class:`DeprecationWarning` per call; the removed ``cache=`` alias of
the ``store`` field is now an error.  New code should construct a
:class:`RunConfig`.
"""

from __future__ import annotations

import dataclasses
import warnings
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, Optional

from ..errors import ConfigurationError
from ..store import ExperimentStore, StoreSpec, resolve_store
from .progress import Progress
from .resilience import RetryPolicy

if TYPE_CHECKING:
    from ..obs.spans import RunTelemetry

__all__ = ["RunConfig", "coerce_run_config"]


@dataclass(frozen=True)
class RunConfig:
    """How a sweep executes (not *what* it computes — that is the
    experiment config; cache keys never see any of these fields).

    Parameters
    ----------
    jobs:
        Worker processes for the in-process pool.  ``1`` (default) runs
        inline; ``None`` or ``0`` means one per CPU.
    store:
        Experiment store holding memoized cell results: a store URL
        (``local:PATH``, ``sqlite:PATH``), a bare directory path
        (opened as ``local``), an :class:`~repro.store.ExperimentStore`
        instance, or ``None`` (no memoization).
    force:
        Ignore (and overwrite) existing store entries.
    retries:
        Extra attempts per failing cell, with capped deterministic
        backoff (``backoff_base`` / ``backoff_cap``).
    cell_timeout:
        Per-cell wall-clock limit in seconds (``None`` = unlimited).
    keep_going:
        Complete the sweep despite permanently failed cells, standing
        :class:`~repro.runner.FailedCell` sentinels in for results.
    progress:
        Optional :class:`~repro.runner.Progress` stderr reporter.
    telemetry:
        Optional :class:`~repro.obs.spans.RunTelemetry` span collector.
    trace:
        Record a distributed trace of the sweep (``traces/*.jsonl``
        under the telemetry directory; see :mod:`repro.obs.trace`).
        Requires a ``telemetry`` collector wired to a
        :class:`~repro.obs.session.TelemetrySession` constructed with
        ``trace=True`` — the session owns the trace directory.  Off by
        default; when off, no trace code runs and no artifacts appear.
    queue_workers:
        When set, route pending cells through the store's work queue
        and execute them in that many *independent worker processes*
        (``python -m repro.runner.worker``) instead of the in-process
        pool.  Requires a ``store``.  Output stays byte-identical to
        any other execution mode.
    queue_name:
        Which named queue of the store to publish into (one queue per
        concurrent sweep; the default suits single-sweep runs).
    queue_lease:
        Seconds a queue worker may hold a claimed cell before another
        worker may steal it (crash recovery; see
        :mod:`repro.store.queue`).
    queue_renew_interval:
        Seconds between lease-renewal heartbeats while a queue worker
        executes a cell.  ``None`` (default) derives ``queue_lease / 3``;
        ``0`` disables renewal entirely — a cell slower than the lease
        *will* be stolen, which is the pre-heartbeat behavior and only
        useful for exercising the steal path.
    store_retries:
        Bounded retries for *transient* store/queue errors (SQLite
        ``database is locked``, ``EAGAIN``-family ``OSError``) in queue
        workers and the coordinator (see :mod:`repro.store.retry`).
        Permanent store errors are never retried.
    """

    jobs: Optional[int] = 1
    store: Optional[StoreSpec] = None
    force: bool = False
    retries: int = 0
    cell_timeout: Optional[float] = None
    keep_going: bool = False
    backoff_base: float = 0.05
    backoff_cap: float = 2.0
    progress: Optional[Progress] = None  # reprolint: cli-exempt
    telemetry: Optional["RunTelemetry"] = None
    trace: bool = False
    queue_workers: Optional[int] = None
    queue_name: str = "sweep"  # reprolint: cli-exempt
    queue_lease: float = 60.0
    queue_renew_interval: Optional[float] = None
    store_retries: int = 5

    def __post_init__(self) -> None:
        # RetryPolicy construction validates the resilience fields.
        self.policy()
        if self.queue_workers is not None and self.queue_workers < 1:
            raise ConfigurationError(
                f"queue_workers must be >= 1, got {self.queue_workers}")
        if self.queue_lease <= 0:
            raise ConfigurationError(
                f"queue_lease must be positive, got {self.queue_lease}")
        if (self.queue_renew_interval is not None
                and self.queue_renew_interval < 0):
            raise ConfigurationError(
                f"queue_renew_interval must be >= 0 (0 disables renewal) "
                f"or None for auto, got {self.queue_renew_interval}")
        if self.store_retries < 0:
            raise ConfigurationError(
                f"store_retries must be >= 0, got {self.store_retries}")
        if self.queue_workers is not None and self.store is None:
            raise ConfigurationError(
                "queue-driven execution (queue_workers=...) requires a "
                "store — workers hand results back through it")
        if self.trace and self.telemetry is None:
            raise ConfigurationError(
                "trace=True requires a telemetry collector "
                "(TelemetrySession(..., trace=True).telemetry) — the "
                "trace artifacts live in the telemetry run directory")

    def policy(self) -> RetryPolicy:
        """The :class:`~repro.runner.RetryPolicy` these fields define."""
        return RetryPolicy(
            retries=self.retries, backoff_base=self.backoff_base,
            backoff_cap=self.backoff_cap, cell_timeout=self.cell_timeout,
            keep_going=self.keep_going)

    def open_store(self) -> Optional[ExperimentStore]:
        """Resolve the ``store`` field to a live store (or ``None``)."""
        return resolve_store(self.store)

    def replace(self, **changes: Any) -> "RunConfig":
        """A copy with ``changes`` applied (``dataclasses.replace``)."""
        return dataclasses.replace(self, **changes)


#: Removed legacy keyword names and their modern replacements; passing
#: one is an error naming the field to use instead.
_REMOVED_ALIASES: Dict[str, str] = {"cache": "store"}

_LEGACY_FIELDS = frozenset(f.name for f in dataclasses.fields(RunConfig))


def coerce_run_config(config: Optional[RunConfig],
                      legacy: Dict[str, Any], *, where: str,
                      stacklevel: int = 3) -> RunConfig:
    """Fold legacy keyword arguments into a :class:`RunConfig`.

    The shim behind every runner entry point: ``config`` (the new
    style) passes through untouched; a non-empty ``legacy`` dict (the
    old ``jobs=...`` style) emits **one** :class:`DeprecationWarning`
    and is mapped onto a fresh :class:`RunConfig`.  Mixing both styles,
    passing a keyword that was never a runner knob, or using the
    removed ``cache=`` alias is an error.
    """
    if config is not None:
        if legacy:
            raise ConfigurationError(
                f"{where}: pass either a RunConfig or legacy keyword "
                f"arguments, not both (got {sorted(legacy)})")
        return config
    if not legacy:
        return RunConfig()
    removed = sorted(set(legacy) & set(_REMOVED_ALIASES))
    if removed:
        replacements = ", ".join(
            f"{name}= was renamed to {_REMOVED_ALIASES[name]}="
            for name in removed)
        raise TypeError(
            f"{where}(): {replacements}; pass a RunConfig")
    unknown = sorted(set(legacy) - _LEGACY_FIELDS)
    if unknown:
        raise TypeError(
            f"{where}() got unexpected keyword argument(s) {unknown}")
    warnings.warn(
        f"{where}: keyword arguments {sorted(legacy)} are deprecated; "
        f"pass a RunConfig",
        DeprecationWarning, stacklevel=stacklevel)
    return RunConfig(**legacy)

"""Per-cell progress/timing lines on stderr.

Figure tables go to stdout and must be byte-identical regardless of
``--jobs`` or cache state; everything run-dependent (timings, cache
hits, completion counters) therefore streams here instead.
"""

from __future__ import annotations

import sys
from typing import Optional, TextIO

from .cells import Cell

__all__ = ["Progress"]


class Progress:
    """Emit one ``[experiment done/total] label: status`` line per cell."""

    def __init__(self, stream: Optional[TextIO] = None,
                 enabled: bool = True) -> None:
        self.stream = stream if stream is not None else sys.stderr
        self.enabled = enabled
        self._done = 0
        self._total = 0

    def begin(self, total: int) -> None:
        """Reset counters for a sweep of ``total`` cells."""
        self._done = 0
        self._total = total

    def cell(self, cell: Cell, *, elapsed: Optional[float] = None,
             cached: bool = False) -> None:
        """Record one completed cell (freshly run or served from cache)."""
        self._done += 1
        status = "cached" if cached else f"{elapsed:.2f}s"
        self.emit(f"[{cell.experiment} {self._done}/{self._total}] "
                  f"{cell.label}: {status}")

    def emit(self, message: str) -> None:
        if self.enabled:
            print(message, file=self.stream, flush=True)

"""Per-cell progress/timing lines on stderr.

Figure tables go to stdout and must be byte-identical regardless of
``--jobs`` or cache state; everything run-dependent (timings, cache
hits, completion counters) therefore streams here instead.
"""

from __future__ import annotations

import sys
from typing import Optional, TextIO

from .cells import Cell

__all__ = ["Progress"]


class Progress:
    """Emit one ``[experiment done/total] label: status`` line per cell."""

    def __init__(self, stream: Optional[TextIO] = None,
                 enabled: bool = True) -> None:
        self.stream = stream if stream is not None else sys.stderr
        self.enabled = enabled
        self._done = 0
        self._total = 0

    def begin(self, total: int) -> None:
        """Reset counters for a sweep of ``total`` cells."""
        self._done = 0
        self._total = total

    def cell(self, cell: Cell, *, elapsed: Optional[float] = None,
             cached: bool = False, failed: bool = False) -> None:
        """Record one concluded cell: fresh run, cache hit, or permanent
        failure (``failed=True``, counted as done so the ``done/total``
        counter still reaches ``total`` in a keep-going sweep)."""
        self._done += 1
        if failed:
            status = "FAILED"
        elif cached:
            status = "cached"
        else:
            status = f"{elapsed:.2f}s"
        self.emit(f"[{cell.experiment} {self._done}/{self._total}] "
                  f"{cell.label}: {status}")

    def retry(self, cell: Cell, attempt: int, error: BaseException,
              backoff: float) -> None:
        """Record a failed attempt that will be retried (not counted as
        done — the cell is still in flight)."""
        self.emit(f"[{cell.experiment}] {cell.label}: attempt {attempt} "
                  f"failed ({type(error).__name__}: {error}); "
                  f"retrying in {backoff:.2f}s")

    def note(self, message: str) -> None:
        """Emit a free-form line (sweep-level notices, error summaries)
        through the same stream as cell/retry lines, so they cannot
        interleave with them."""
        self.emit(message)

    def emit(self, message: str) -> None:
        if not self.enabled:
            return
        # One write + flush per line: FAILED/retry lines and normal cell
        # lines land atomically on the shared stream, so a pool callback
        # firing between a print()'s message and its newline can no
        # longer interleave output under --jobs > 1.
        self.stream.write(message + "\n")
        self.stream.flush()

"""Fault-tolerant cell execution: retries, timeouts, pool recovery.

The engine behind :func:`repro.runner.run_cells`'s resilience options.
Partial failure is treated as the normal case for paper-sized sweeps —
one crashing cell, a hung simulation or a dead worker must not discard
hours of completed in-flight work:

* **Retries** — a failed attempt is re-executed up to ``retries`` more
  times with capped deterministic exponential backoff (no jitter: the
  delay sequence is a pure function of the attempt number).  The runner
  reseeds the global RNGs from the cell key before *every* attempt, so
  a retried cell's result is byte-identical to a first-try run.
* **Timeouts** — with ``cell_timeout`` set, a cell still running past
  its wall-clock deadline is charged a failed attempt, its (hung)
  worker pool is torn down, and every innocent in-flight cell is
  requeued at no cost.
* **Pool recovery** — a dead worker (``BrokenProcessPool``) kills every
  in-flight future; the engine respawns the pool and requeues only the
  lost cells.  Each loss is charged against a separate loss budget so a
  cell that *keeps* killing its worker eventually fails instead of
  looping forever.
* **Keep-going** — permanently failed cells become
  :class:`FailedCell` sentinels in the result list instead of aborting
  the sweep; every other cell completes and persists to the cache, and
  the failures serialize to a JSON manifest (:func:`write_manifest`).

Wall-clock note: this module deliberately uses ``time.monotonic`` /
``time.sleep`` for deadlines and backoff.  Interval timing never feeds
results or cache keys, so reprolint's DET002 does not (and must not)
flag it; see CONTRIBUTING.md.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from concurrent.futures import wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from ..errors import CellTimeoutError, ConfigurationError, WorkerError
from ..store import ExperimentStore
from .cells import Cell
from .progress import Progress

if TYPE_CHECKING:
    from ..obs.spans import RunTelemetry

__all__ = [
    "MANIFEST_VERSION",
    "FailedCell",
    "RetryPolicy",
    "load_manifest",
    "run_pool",
    "write_manifest",
]

#: Bump when the failure-manifest JSON layout changes.
MANIFEST_VERSION = 1

#: Payload type of one executed cell: ``(index, elapsed, result)``.
CellOutcome = Tuple[int, float, Any]

#: Worker entry point: ``(index, key, cell, attempt) -> CellOutcome``.
ExecuteFn = Callable[[Tuple[int, str, Cell, int]], CellOutcome]


@dataclass(frozen=True)
class RetryPolicy:
    """How :func:`repro.runner.run_cells` treats failing cells.

    Parameters
    ----------
    retries:
        Extra attempts per cell after its first failure (0 = fail fast,
        the historical behavior).
    backoff_base / backoff_cap:
        Deterministic capped exponential backoff: the delay before
        retry ``n`` is ``min(backoff_cap, backoff_base * 2**(n-1))``
        seconds.  No jitter — determinism is the whole point.
    cell_timeout:
        Per-cell wall-clock limit in seconds (``None`` = unlimited).
        Enforced by the pool path; a single in-process cell cannot be
        killed, so timeouts route execution through a worker pool even
        at ``jobs=1``.
    keep_going:
        Complete the sweep despite permanently failed cells, standing
        in :class:`FailedCell` sentinels for their results.
    """

    retries: int = 0
    backoff_base: float = 0.05
    backoff_cap: float = 2.0
    cell_timeout: Optional[float] = None
    keep_going: bool = False

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise ConfigurationError(
                f"retries must be >= 0, got {self.retries}")
        if self.cell_timeout is not None and self.cell_timeout <= 0:
            raise ConfigurationError(
                f"cell_timeout must be positive, got {self.cell_timeout}")
        if self.backoff_base < 0 or self.backoff_cap < 0:
            raise ConfigurationError("backoff delays must be non-negative")

    def delay(self, failures: int) -> float:
        """Backoff before the next attempt after ``failures`` failures."""
        return min(self.backoff_cap,
                   self.backoff_base * (2 ** (failures - 1)))

    @property
    def loss_budget(self) -> int:
        """How many pool breakages one cell may be implicated in."""
        return max(self.retries, 1)


@dataclass(frozen=True)
class FailedCell:
    """Sentinel standing in for a permanently failed cell's result.

    Appears in :func:`repro.runner.run_cells` output under
    ``keep_going`` and in :class:`~repro.errors.SweepError.failures`;
    serializes into the JSON failure manifest via :meth:`to_json`.
    """

    index: int
    label: str
    key: str
    error_type: str
    message: str
    attempts: int
    elapsed: float
    #: The final exception (in-memory only; not serialized).
    exc: Optional[BaseException] = field(
        default=None, compare=False, repr=False)

    def to_json(self) -> Dict[str, Any]:
        """Manifest entry: everything but the live exception object."""
        return {
            "cell": self.label,
            "key": self.key,
            "index": self.index,
            "error_type": self.error_type,
            "message": self.message,
            "attempts": self.attempts,
            "elapsed": self.elapsed,
        }


def write_manifest(path: Union[str, "Path"], experiment: str,
                   failures: Sequence[FailedCell]) -> Path:
    """Persist a failure manifest (atomically) and return its path.

    An *empty* manifest is meaningful: it records that a ``keep_going``
    sweep completed with zero permanent failures.  Rerunning the same
    command re-executes only the failed cells — every successful cell
    is already in the result cache.
    """
    path = Path(path)
    payload = {
        "manifest_version": MANIFEST_VERSION,
        "experiment": experiment,
        "failures": [f.to_json()
                     for f in sorted(failures, key=lambda f: f.index)],
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=".manifest-",
                               suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return path


def load_manifest(path: Union[str, "Path"]) -> Dict[str, Any]:
    """Read a manifest written by :func:`write_manifest`."""
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    if not isinstance(doc, dict) or "failures" not in doc:
        raise ConfigurationError(
            f"{path} is not a failure manifest (no 'failures' key)")
    return doc


@dataclass
class _CellRun:
    """Mutable per-cell scheduling state inside :func:`run_pool`."""

    index: int
    submissions: int = 0  # attempts handed to a worker so far
    failures: int = 0     # attempts that raised or timed out
    losses: int = 0       # times lost to a pool breakage
    elapsed: float = 0.0  # cumulative wall-clock across attempts
    ready_at: float = 0.0  # monotonic time when (re)submission is allowed


@dataclass(frozen=True)
class _Flight:
    """One submitted attempt: which cell, when, and its deadline."""

    index: int
    submitted_at: float
    deadline: Optional[float]


def _kill_workers(ex: ProcessPoolExecutor) -> None:
    """SIGKILL every worker process of ``ex`` (hung pools only)."""
    for proc in list((getattr(ex, "_processes", None) or {}).values()):
        try:
            proc.kill()
        except (OSError, AttributeError):
            pass


def _respawn(ex: ProcessPoolExecutor, workers: int) -> ProcessPoolExecutor:
    """Tear down a broken/hung pool and return a fresh one."""
    _kill_workers(ex)
    ex.shutdown(wait=True, cancel_futures=True)
    return ProcessPoolExecutor(max_workers=workers)


def run_pool(cells: Sequence[Cell], keys: Sequence[str],
             pending: Sequence[int], *, jobs: int, policy: RetryPolicy,
             execute: ExecuteFn, store: Optional[ExperimentStore] = None,
             progress: Optional[Progress] = None,
             telemetry: Optional["RunTelemetry"] = None,
             ) -> Tuple[Dict[int, Any], Dict[int, FailedCell]]:
    """Execute ``pending`` cell indices across a self-healing pool.

    Returns ``(results, failures)``: ``results`` maps every pending
    index to its value (or its :class:`FailedCell`), ``failures`` the
    subset that permanently failed.  Raising (or not) on failures is
    the caller's policy decision.  ``telemetry`` (when given) receives
    the full scheduling lifecycle of every cell — submissions, retries,
    pool losses, completion — as structured spans.

    Cells are dispatched at most ``workers`` at a time so a submitted
    cell starts (approximately) immediately — that is what makes the
    per-cell deadline meaningful and lets a breakage implicate only the
    genuinely in-flight cells.
    """
    results: Dict[int, Any] = {}
    failures: Dict[int, FailedCell] = {}
    states = {i: _CellRun(i) for i in pending}
    queue: List[int] = list(pending)
    workers = max(1, min(jobs, len(pending)))
    inflight: Dict["Future[CellOutcome]", _Flight] = {}
    ex = ProcessPoolExecutor(max_workers=workers)

    def conclude_failure(i: int, exc: BaseException) -> None:
        st = states[i]
        failed = FailedCell(
            index=i, label=cells[i].label, key=keys[i],
            error_type=type(exc).__name__, message=str(exc),
            attempts=st.submissions, elapsed=round(st.elapsed, 3), exc=exc)
        failures[i] = failed
        results[i] = failed
        if telemetry is not None:
            telemetry.failed(i, exc, st.submissions, st.elapsed)
        if progress is not None:
            progress.cell(cells[i], failed=True)

    def conclude_success(i: int, cell_elapsed: float, value: Any) -> None:
        states[i].elapsed += cell_elapsed
        results[i] = value
        if telemetry is not None:
            telemetry.completed(i, cell_elapsed)
        # Persist immediately: an interrupt later in the sweep must not
        # lose cells that already finished.
        if store is not None:
            store.put(keys[i], value)
        if progress is not None:
            progress.cell(cells[i], elapsed=cell_elapsed)

    def cell_failed(i: int, exc: BaseException) -> None:
        """One attempt raised (or timed out): retry or fail permanently."""
        st = states[i]
        st.failures += 1
        if st.failures > policy.retries:
            conclude_failure(i, exc)
            return
        backoff = policy.delay(st.failures)
        st.ready_at = time.monotonic() + backoff
        queue.append(i)
        if telemetry is not None:
            telemetry.retried(i, st.submissions, exc)
        if progress is not None:
            progress.retry(cells[i], st.submissions, exc, backoff)

    def cell_lost(i: int) -> None:
        """The pool broke while this cell was in flight."""
        st = states[i]
        st.losses += 1
        if telemetry is not None:
            telemetry.lost(i)
        if st.losses > policy.loss_budget:
            conclude_failure(i, WorkerError(
                f"worker pool broke {st.losses} times while cell "
                f"{cells[i].label} was in flight (worker killed or died?)"))
            return
        st.ready_at = 0.0
        queue.append(i)

    def settle(fut: "Future[CellOutcome]", flight: _Flight) -> bool:
        """Resolve one finished future; True when pool breakage was seen."""
        i = flight.index
        try:
            _, cell_elapsed, value = fut.result(timeout=60)
        except (BrokenProcessPool, FutureTimeoutError):
            cell_lost(i)
            return True
        except Exception as exc:  # the cell itself raised in the worker
            states[i].elapsed += max(
                0.0, time.monotonic() - flight.submitted_at)
            cell_failed(i, exc)
            return False
        conclude_success(i, cell_elapsed, value)
        return False

    clean_exit = False
    try:
        while queue or inflight:
            now = time.monotonic()
            queue.sort(key=lambda i: (states[i].ready_at, i))
            while (queue and len(inflight) < workers
                   and states[queue[0]].ready_at <= now):
                i = queue.pop(0)
                st = states[i]
                st.submissions += 1
                if telemetry is not None:
                    telemetry.started(i, st.submissions)
                fut = ex.submit(
                    execute, (i, keys[i], cells[i], st.submissions))
                deadline = (now + policy.cell_timeout
                            if policy.cell_timeout is not None else None)
                inflight[fut] = _Flight(i, now, deadline)

            if not inflight:
                # Everything runnable is backing off; sleep to the
                # earliest retry and loop.
                time.sleep(max(
                    0.0, states[queue[0]].ready_at - time.monotonic()))
                continue

            # Wake for the nearest deadline or backoff expiry; a plain
            # capacity wait blocks until the first completion.
            marks = [fl.deadline for fl in inflight.values()
                     if fl.deadline is not None]
            marks += [states[i].ready_at for i in queue
                      if states[i].ready_at > now]
            wait_for = (max(0.0, min(marks) - now) + 0.01) if marks else None
            done, _ = wait(list(inflight), timeout=wait_for,
                           return_when=FIRST_COMPLETED)

            broken = False
            for fut in done:
                broken = settle(fut, inflight.pop(fut)) or broken
            if broken:
                # The pool is unusable: every other in-flight future
                # fails with BrokenProcessPool almost immediately (or
                # already completed) — drain them, then respawn and let
                # the queue resubmit only the lost cells.
                for fut in list(inflight):
                    settle(fut, inflight.pop(fut))
                ex = _respawn(ex, workers)
                continue

            if policy.cell_timeout is None:
                continue
            now = time.monotonic()
            overdue = {fut for fut, fl in inflight.items()
                       if fl.deadline is not None and fl.deadline <= now
                       and not fut.done()}
            if not overdue:
                continue
            # Hung worker(s): settle whatever finished meanwhile, charge
            # the overdue cells a failed attempt, requeue the innocent
            # in-flight cells for free, and rebuild the pool.
            for fut in list(inflight):
                fl = inflight.pop(fut)
                i = fl.index
                if fut.done():
                    settle(fut, fl)
                elif fut in overdue:
                    states[i].elapsed += now - fl.submitted_at
                    cell_failed(i, CellTimeoutError(
                        f"cell {cells[i].label} exceeded its cell-timeout "
                        f"of {policy.cell_timeout:g}s on attempt "
                        f"{states[i].submissions}"))
                else:
                    states[i].ready_at = 0.0
                    queue.append(i)
            ex = _respawn(ex, workers)
        clean_exit = True
    finally:
        if not clean_exit:
            # Interrupted mid-sweep (possibly with hung workers): make
            # sure no worker outlives us.
            _kill_workers(ex)
        ex.shutdown(wait=True, cancel_futures=True)
    return results, failures

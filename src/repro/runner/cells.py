"""The unit of schedulable experiment work: the :class:`Cell`.

A figure's sweep (schemes x arrays x partition counts x seeds) is
embarrassingly parallel: every point is an independent simulation whose
inputs are fully described by its config.  Each experiment decomposes
into a list of cells; the runner (:mod:`repro.runner.pool`) executes them
— sequentially or across a process pool — and hands the ordered results
to the experiment's ``reduce`` function.

Cells must be deterministic and picklable:

* ``fn`` must be a module-level function (pickled by reference, so worker
  processes can import it);
* ``args`` must be built from config dataclasses and plain values — they
  are both pickled to workers and canonically encoded into the cell's
  content-addressed cache key (:func:`repro.runner.cache.cell_key`);
* any randomness inside ``fn`` must derive from seeds in ``args``.  The
  runner additionally reseeds the global ``random``/``numpy`` generators
  per cell from the cell key, identically in sequential and parallel
  execution, so output is byte-identical for any ``--jobs``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Tuple

__all__ = ["Cell"]


@dataclass(frozen=True)
class Cell:
    """One independent point of an experiment's sweep.

    Parameters
    ----------
    experiment:
        Registry name of the owning experiment (``"fig2"``, ...).
    key:
        The cell's coordinates within the sweep, e.g. ``("mcf", 4)``.
        Used for progress labels and deterministic per-cell seeding.
    fn:
        Module-level callable executing the cell.
    args:
        Positional arguments for ``fn`` (typically the experiment config
        plus the sweep coordinates).
    """

    experiment: str
    key: Tuple[Any, ...]
    fn: Callable[..., Any] = field(compare=False)
    args: Tuple[Any, ...] = ()

    @property
    def label(self) -> str:
        """Human-readable progress label, e.g. ``fig2[mcf, 4]``."""
        coords = ", ".join(str(k) for k in self.key)
        return f"{self.experiment}[{coords}]"

    def fingerprint(self) -> Dict[str, Any]:
        """Identity material hashed into the cache key.

        Covers the owning experiment, the executing function (by import
        path, so moving/renaming code invalidates old entries) and the
        full argument tuple.  Encoding of ``args`` happens in
        :func:`repro.runner.cache.cell_key`.
        """
        return {
            "experiment": self.experiment,
            "key": self.key,
            "fn": f"{self.fn.__module__}:{self.fn.__qualname__}",
            "args": self.args,
        }

    def run(self) -> Any:
        """Execute the cell in the current process."""
        return self.fn(*self.args)

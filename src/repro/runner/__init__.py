"""Experiment-execution engine: parallel cells with content-addressed memoization.

The runner decomposes an experiment into independent :class:`Cell`\\ s,
executes them inline, across a ``multiprocessing`` worker pool, or
through a store-backed work queue drained by independent worker
processes (:func:`run_cells` with a :class:`RunConfig`), memoizes each
cell's result in a pluggable :class:`~repro.store.ExperimentStore`
keyed by a SHA-256 of its full configuration (checksummed and
self-quarantining; see :mod:`repro.store`), and streams per-cell
progress to stderr (:class:`Progress`).  Reduction is ordered, so
parallel and distributed runs produce byte-identical output to
sequential runs; see :mod:`repro.experiments.registry` for how
experiments plug in.

Execution is fault tolerant (:mod:`repro.runner.resilience`): failing
cells retry with capped deterministic backoff, hung cells are killed by
per-cell timeouts, dead workers respawn the pool and requeue only the
lost cells, and ``keep_going`` sweeps complete with
:class:`FailedCell` sentinels plus a JSON failure manifest instead of
aborting.  A deterministic fault-injection harness
(:mod:`repro.runner.faults`) makes all of it testable.
"""

from .cache import (
    CacheCorruptionWarning,
    ResultCache,
    canonical_encode,
    cell_key,
    code_version_salt,
    default_cache_dir,
)
from .cells import Cell
from .config import RunConfig
from .faults import FAULTS_ENV, Fault, FaultPlan, InjectedFaultError
from .pool import default_jobs, run_cells
from .progress import Progress
from .resilience import (
    FailedCell,
    RetryPolicy,
    load_manifest,
    write_manifest,
)

__all__ = [
    "Cell",
    "CacheCorruptionWarning",
    "FAULTS_ENV",
    "FailedCell",
    "Fault",
    "FaultPlan",
    "InjectedFaultError",
    "Progress",
    "ResultCache",
    "RetryPolicy",
    "RunConfig",
    "canonical_encode",
    "cell_key",
    "code_version_salt",
    "default_cache_dir",
    "default_jobs",
    "load_manifest",
    "run_cells",
    "write_manifest",
]

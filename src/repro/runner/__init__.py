"""Experiment-execution engine: parallel cells with content-addressed memoization.

The runner decomposes an experiment into independent :class:`Cell`\\ s,
executes them inline or across a ``multiprocessing`` worker pool
(:func:`run_cells`), memoizes each cell's result on disk keyed by a
SHA-256 of its full configuration (:class:`ResultCache`), and streams
per-cell progress to stderr (:class:`Progress`).  Reduction is ordered,
so parallel runs produce byte-identical output to sequential runs; see
:mod:`repro.experiments.registry` for how experiments plug in.
"""

from .cache import (
    ResultCache,
    canonical_encode,
    cell_key,
    code_version_salt,
    default_cache_dir,
)
from .cells import Cell
from .pool import default_jobs, run_cells
from .progress import Progress

__all__ = [
    "Cell",
    "Progress",
    "ResultCache",
    "canonical_encode",
    "cell_key",
    "code_version_salt",
    "default_cache_dir",
    "default_jobs",
    "run_cells",
]

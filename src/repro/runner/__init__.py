"""Experiment-execution engine: parallel cells with content-addressed memoization.

The runner decomposes an experiment into independent :class:`Cell`\\ s,
executes them inline or across a ``multiprocessing`` worker pool
(:func:`run_cells`), memoizes each cell's result on disk keyed by a
SHA-256 of its full configuration (:class:`ResultCache`, checksummed
and self-quarantining), and streams per-cell progress to stderr
(:class:`Progress`).  Reduction is ordered, so parallel runs produce
byte-identical output to sequential runs; see
:mod:`repro.experiments.registry` for how experiments plug in.

Execution is fault tolerant (:mod:`repro.runner.resilience`): failing
cells retry with capped deterministic backoff, hung cells are killed by
per-cell timeouts, dead workers respawn the pool and requeue only the
lost cells, and ``keep_going`` sweeps complete with
:class:`FailedCell` sentinels plus a JSON failure manifest instead of
aborting.  A deterministic fault-injection harness
(:mod:`repro.runner.faults`) makes all of it testable.
"""

from .cache import (
    CacheCorruptionWarning,
    ResultCache,
    canonical_encode,
    cell_key,
    code_version_salt,
    default_cache_dir,
)
from .cells import Cell
from .faults import FAULTS_ENV, Fault, FaultPlan, InjectedFaultError
from .pool import default_jobs, run_cells
from .progress import Progress
from .resilience import (
    FailedCell,
    RetryPolicy,
    load_manifest,
    write_manifest,
)

__all__ = [
    "Cell",
    "CacheCorruptionWarning",
    "FAULTS_ENV",
    "FailedCell",
    "Fault",
    "FaultPlan",
    "InjectedFaultError",
    "Progress",
    "ResultCache",
    "RetryPolicy",
    "canonical_encode",
    "cell_key",
    "code_version_salt",
    "default_cache_dir",
    "default_jobs",
    "load_manifest",
    "run_cells",
    "write_manifest",
]

"""Queue-driven sweep execution: independent worker processes.

Two halves of one protocol (see :mod:`repro.store.queue`):

* :func:`work_loop` — the worker side.  ``python -m repro.runner.worker
  --store sqlite:results.db`` opens the store, claims queue items one
  at a time, executes each cell through the same
  :func:`repro.runner.pool._execute` body as the in-process pool (same
  per-attempt RNG reseed, same fault injection, same telemetry
  environment), persists the result to the store and acks.  Any number
  of workers may run concurrently — on this machine or any machine
  that can reach the store.
* :func:`run_queued` — the coordinator side, called by
  :func:`repro.runner.run_cells` when ``queue_workers=N`` is set.  It
  publishes the pending cells as queue items (one per cell index, so
  resume is stable), spawns ``N`` worker subprocesses, collects
  results from the store as items complete, and maps queue failures
  onto the usual :class:`~repro.runner.FailedCell` sentinels — retry
  policies, failure manifests and ``keep_going`` semantics are
  identical to pool execution, and so is the output, byte for byte.

Crash recovery: a worker that dies mid-cell simply stops renewing its
lease; another worker steals the item when the lease expires (charged
against the item's loss budget), and the coordinator respawns
replacement workers up to a budget.  Cells are deterministic, so a
double execution during a steal race is invisible in the results.
"""

from __future__ import annotations

import argparse
import os
import pickle
import subprocess
import sys
import time
from pathlib import Path
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Sequence, Tuple

from ..errors import WorkerError
from ..store import ExperimentStore, open_store
from ..store.queue import QueueItem
from .cells import Cell
from .pool import _execute
from .progress import Progress
from .resilience import FailedCell, RetryPolicy

if TYPE_CHECKING:
    from ..obs.spans import RunTelemetry

__all__ = ["work_loop", "run_queued", "main"]


def work_loop(store_url: str, queue_name: str = "sweep", *,
              lease: float = 60.0, poll: float = 0.2,
              max_items: Optional[int] = None,
              worker_id: Optional[str] = None,
              backoff_base: float = 0.05,
              backoff_cap: float = 2.0) -> int:
    """Claim and execute queue items until the queue drains.

    Returns the number of items processed (successful or not).  The
    loop exits when every published item is ``done`` or ``failed``, or
    after ``max_items`` claims (a test/ops hook: a worker stopped at
    ``--max-items K`` leaves a partially drained queue that the next
    worker — or a full rerun — picks up seamlessly).
    """
    store = open_store(store_url)
    queue = store.make_queue(queue_name)
    wid = worker_id or f"worker-{os.getpid()}"
    processed = 0
    try:
        while max_items is None or processed < max_items:
            item = queue.claim(wid, lease)
            if item is None:
                if queue.unfinished() == 0:
                    break
                # Everything runnable is claimed by someone else (or
                # backing off); poll until a lease frees or expires.
                time.sleep(poll)
                continue
            index, key, cell = pickle.loads(item.payload)
            processed += 1
            try:
                _, elapsed, value = _execute(
                    (index, key, cell, item.attempts + 1))
            except Exception as exc:
                if queue.nack(item.item_id, type(exc).__name__, str(exc)):
                    # Same deterministic capped backoff as the pool.
                    time.sleep(min(backoff_cap,
                                   backoff_base * 2 ** item.attempts))
                continue
            store.put(key, value)
            queue.ack(item.item_id, elapsed)
    finally:
        store.close()
    return processed


def _spawn_worker(store: ExperimentStore, queue_name: str, lease: float,
                  policy: RetryPolicy, ordinal: int) -> "subprocess.Popen[bytes]":
    """Start one ``python -m repro.runner.worker`` subprocess.

    The environment is inherited wholesale, so fault plans
    (``REPRO_FAULTS``), telemetry (``REPRO_TELEMETRY``) and cache salts
    reach workers exactly as they reach pool workers; the package's own
    source tree is prepended to ``PYTHONPATH`` so workers resolve the
    same ``repro`` the coordinator runs.
    """
    env = dict(os.environ)
    src_root = str(Path(__file__).resolve().parents[2])
    env["PYTHONPATH"] = os.pathsep.join(
        [src_root] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else []))
    cmd = [sys.executable, "-m", "repro.runner.worker",
           "--store", store.url, "--queue", queue_name,
           "--lease", repr(lease),
           "--backoff-base", repr(policy.backoff_base),
           "--backoff-cap", repr(policy.backoff_cap),
           "--worker-id", f"worker-{ordinal}-{os.getpid()}"]
    return subprocess.Popen(cmd, env=env)


def run_queued(cells: Sequence[Cell], keys: Sequence[str],
               pending: Sequence[int], *, store: ExperimentStore,
               policy: RetryPolicy, workers: int,
               queue_name: str = "sweep", lease: float = 60.0,
               poll: float = 0.1, progress: Optional[Progress] = None,
               telemetry: Optional["RunTelemetry"] = None,
               ) -> Tuple[Dict[int, Any], Dict[int, FailedCell]]:
    """Coordinator: drive ``pending`` cell indices through the queue.

    Returns ``(results, failures)`` with the same contract as
    :func:`repro.runner.resilience.run_pool` — every pending index maps
    to its value or its :class:`FailedCell`; raising on failures is the
    caller's policy decision.
    """
    queue = store.make_queue(queue_name)
    queue.publish([
        QueueItem(item_id=i, key=keys[i], label=cells[i].label,
                  payload=pickle.dumps((i, keys[i], cells[i]),
                                       protocol=pickle.HIGHEST_PROTOCOL),
                  max_attempts=policy.retries + 1)
        for i in pending])
    # A rerun after failures retries exactly the failed cells, matching
    # the failure-manifest contract of pool execution.
    queue.requeue_failed()
    # The store, not the queue, is the durability source of truth:
    # every index in ``pending`` is already known missing from the
    # store, so an item still marked ``done`` from an earlier run
    # (results purged, or quarantined as corrupt) is stale and must be
    # re-executed rather than trusted.
    states = queue.snapshot()
    queue.reset_items([i for i in pending
                       if i in states and states[i].status == "done"])

    results: Dict[int, Any] = {}
    failures: Dict[int, FailedCell] = {}
    nworkers = max(1, min(workers, len(pending)))
    respawn_budget = nworkers * (policy.loss_budget + 1)
    procs: List["subprocess.Popen[bytes]"] = [
        _spawn_worker(store, queue_name, lease, policy, n)
        for n in range(nworkers)]

    def collect() -> bool:
        """Fold finished queue items into results; True when all are in."""
        states = queue.snapshot()
        for i in pending:
            if i in results:
                continue
            state = states.get(i)
            if state is None:
                continue
            if state.status == "done":
                hit, value = store.get(keys[i])
                if not hit:
                    # Acked but unreadable (store corrupted between ack
                    # and collect): surface it as a failure.
                    _fail(i, "WorkerError",
                          f"queue marked {cells[i].label} done but its "
                          f"result is missing from {store.url}",
                          state.attempts or 1, state.elapsed)
                    continue
                results[i] = value
                if telemetry is not None:
                    telemetry.completed(i, state.elapsed)
                if progress is not None:
                    progress.cell(cells[i], elapsed=state.elapsed)
            elif state.status == "failed":
                _fail(i, state.error_type or "WorkerError", state.message,
                      max(state.attempts, 1), state.elapsed)
        return len(results) == len(pending)

    def _fail(i: int, error_type: str, message: str, attempts: int,
              elapsed: float) -> None:
        exc = WorkerError(f"{error_type}: {message}")
        failed = FailedCell(
            index=i, label=cells[i].label, key=keys[i],
            error_type=error_type, message=message, attempts=attempts,
            elapsed=round(elapsed, 3), exc=exc)
        failures[i] = failed
        results[i] = failed
        if telemetry is not None:
            telemetry.failed(i, exc, attempts, elapsed)
        if progress is not None:
            progress.cell(cells[i], failed=True)

    try:
        while not collect():
            # Reap dead workers; respawn while budget remains (a worker
            # killed by a cell exercises the lease-steal path, but with
            # one worker someone must still be alive to steal).
            procs = [p for p in procs if p.poll() is None]
            missing = nworkers - len(procs)
            while missing > 0 and respawn_budget > 0:
                procs.append(_spawn_worker(
                    store, queue_name, lease, policy, respawn_budget))
                respawn_budget -= 1
                missing -= 1
            if not procs:
                # No workers and no budget: fail whatever is unfinished
                # rather than waiting forever.
                states = queue.snapshot()
                for i in pending:
                    if i not in results:
                        state = states.get(i)
                        _fail(i, "WorkerError",
                              "queue workers exhausted their respawn "
                              "budget before the cell finished",
                              (state.attempts if state else 0) or 1,
                              state.elapsed if state else 0.0)
                break
            time.sleep(poll)
    finally:
        deadline = time.monotonic() + 10.0
        for proc in procs:
            # Workers exit on their own once the queue drains; give
            # them a moment, then insist.
            try:
                proc.wait(timeout=max(0.1, deadline - time.monotonic()))
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait()
    return results, failures


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI: drain a store's work queue in this process."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.runner.worker",
        description="Claim and execute experiment sweep cells from a "
                    "store's work queue (see repro.store.queue).")
    parser.add_argument("--store", required=True, metavar="URL",
                        help="experiment store URL (local:PATH or "
                             "sqlite:PATH) holding the queue and results")
    parser.add_argument("--queue", default="sweep", metavar="NAME",
                        help="queue name within the store "
                             "(default: sweep)")
    parser.add_argument("--lease", type=float, default=60.0, metavar="SEC",
                        help="claim lease; a worker silent past this is "
                             "presumed dead and its item is stolen "
                             "(default: 60)")
    parser.add_argument("--poll", type=float, default=0.2, metavar="SEC",
                        help="idle poll interval while other workers "
                             "hold the remaining items (default: 0.2)")
    parser.add_argument("--max-items", type=int, default=None, metavar="N",
                        help="exit after processing N items (default: "
                             "run until the queue drains)")
    parser.add_argument("--worker-id", default=None, metavar="ID",
                        help="claim identity (default: worker-<pid>)")
    parser.add_argument("--backoff-base", type=float, default=0.05)
    parser.add_argument("--backoff-cap", type=float, default=2.0)
    args = parser.parse_args(argv)
    processed = work_loop(
        args.store, args.queue, lease=args.lease, poll=args.poll,
        max_items=args.max_items, worker_id=args.worker_id,
        backoff_base=args.backoff_base, backoff_cap=args.backoff_cap)
    wid = args.worker_id or f"worker-{os.getpid()}"
    print(f"[{wid}] processed {processed} queue item(s)", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Queue-driven sweep execution: independent worker processes.

Two halves of one protocol (see :mod:`repro.store.queue`):

* :func:`work_loop` — the worker side.  ``python -m repro.runner.worker
  --store sqlite:results.db`` opens the store, claims queue items one
  at a time, executes each cell through the same
  :func:`repro.runner.pool._execute` body as the in-process pool (same
  per-attempt RNG reseed, same fault injection, same telemetry
  environment), persists the result to the store and acks.  Any number
  of workers may run concurrently — on this machine or any machine
  that can reach the store.
* :func:`run_queued` — the coordinator side, called by
  :func:`repro.runner.run_cells` when ``queue_workers=N`` is set.  It
  publishes the pending cells as queue items (one per cell index, so
  resume is stable), spawns ``N`` worker subprocesses, collects
  results from the store as items complete, and maps queue failures
  onto the usual :class:`~repro.runner.FailedCell` sentinels — retry
  policies, failure manifests and ``keep_going`` semantics are
  identical to pool execution, and so is the output, byte for byte.

Crash recovery is the lease-renewal protocol of
:mod:`repro.store.queue`: while a claimed cell executes, a background
*heartbeat thread* renews the worker's lease every ``renew_interval``
seconds (default ``lease / 3``), so a **live** worker running a long
cell is never stolen from, no matter how slow the cell.  A worker that
**dies** mid-cell (crashed, killed, wedged) stops heartbeating; its
lease expires and another worker steals the item — charged against the
item's loss budget — while the coordinator respawns replacement workers
up to a budget.  Delivery is therefore at-least-once: a stall longer
than the heartbeat can still race a stealer, and both may execute the
same cell.  That is safe by construction — cells are deterministic
(per-attempt RNG reseed from the cell key) and store puts are
idempotent, so a double execution is invisible in the results.

Store resilience: every store/queue operation a worker makes goes
through :mod:`repro.store.retry` — transient errors (SQLite lock
contention, ``EAGAIN``-family ``OSError``) retry with bounded
deterministic backoff; a *permanent* store error (malformed database,
``ENOSPC``) aborts the worker with :data:`EXIT_STORE_PERMANENT`, which
the coordinator treats as "do not respawn" — a broken store will not
heal by throwing fresh processes at it.
"""

from __future__ import annotations

import argparse
import os
import pickle
import sqlite3
import subprocess
import sys
import threading
import time
from pathlib import Path
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Sequence, Tuple

from ..errors import WorkerError
from ..store import ExperimentStore, open_store
from ..store.faults import maybe_faulty_store
from ..store.queue import LOST_ERROR_TYPE, QueueItem, WorkQueue
from ..store.retry import (RetryingStore, RetryObserver, StoreRetryPolicy,
                           is_transient_store_error)
from .cells import Cell
from .pool import _execute
from .progress import Progress
from .resilience import FailedCell, RetryPolicy

if TYPE_CHECKING:
    from ..obs.spans import RunTelemetry

__all__ = ["EXIT_STORE_PERMANENT", "work_loop", "run_queued", "main"]

#: Worker exit code for a permanent store failure (malformed database,
#: ``ENOSPC``, missing table) — distinct from a cell-induced crash so
#: the coordinator knows respawning cannot help.
EXIT_STORE_PERMANENT = 3


def _wrap_store(store: ExperimentStore, store_retries: int,
                on_retry: Optional[RetryObserver] = None) -> ExperimentStore:
    """The standard resilience stack around a freshly opened store.

    Fault injection (when ``$REPRO_STORE_FAULTS`` is set) goes innermost
    so the retry layer sees — and absorbs — the injected transients,
    exactly as it would absorb real ones.  ``on_retry`` observes each
    absorbed transient (tracing hangs ``store_retry`` events off it).
    """
    return RetryingStore(maybe_faulty_store(store),
                         StoreRetryPolicy(retries=store_retries),
                         on_retry)


def _trace_event(name: str, det: bool = False, **fields: Any) -> None:
    """Forward a point event to the active trace span, if tracing is on.

    The ``$REPRO_TRACE`` guard keeps the tracing-off path at one dict
    lookup and zero imports — the zero-overhead contract of
    :mod:`repro.obs.trace`.
    """
    if os.environ.get("REPRO_TRACE"):
        from ..obs.trace import add_event

        add_event(name, det=det, **fields)


class _Heartbeat:
    """Background lease-renewal loop for one claimed queue item.

    Beats every ``interval`` seconds until stopped.  A renewal that
    *fails* transiently (the retry stack re-raises past its budget) is
    skipped — the next beat tries again, and the lease survives one
    missed beat because ``interval < lease``.  A renewal that is
    *refused* (the item was stolen; this worker no longer holds it)
    sets :attr:`lost` and stops beating — finishing the cell stays
    safe, delivery is at-least-once.
    """

    def __init__(self, queue: WorkQueue, item_id: int, worker: str,
                 lease: float, interval: float) -> None:
        self.queue = queue
        self.item_id = item_id
        self.worker = worker
        self.lease = lease
        self.interval = interval
        self.lost = threading.Event()
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._run, daemon=True,
            name=f"heartbeat-{worker}-{item_id}")

    def start(self) -> None:
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        self._thread.join()

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            try:
                renewed = self.queue.renew(self.item_id, self.worker,
                                           self.lease)
            except Exception:
                # Renewal could not reach the store even after retries;
                # keep beating — the item may survive, and the cell's
                # outcome is protected by at-least-once delivery anyway.
                continue
            if not renewed:
                # Someone stole the lease: a schedule fact, not a
                # computation fact, hence det=False.
                _trace_event("lease_lost", worker=self.worker)
                self.lost.set()
                return
            _trace_event("lease_renew", worker=self.worker)


def work_loop(store_url: str, queue_name: str = "sweep", *,
              lease: float = 60.0, poll: float = 0.2,
              max_items: Optional[int] = None,
              worker_id: Optional[str] = None,
              backoff_base: float = 0.05,
              backoff_cap: float = 2.0,
              renew_interval: Optional[float] = None,
              store_retries: int = 5) -> int:
    """Claim and execute queue items until the queue drains.

    Returns the number of items processed (successful or not).  The
    loop exits when every published item is ``done`` or ``failed``, or
    after ``max_items`` claims (a test/ops hook: a worker stopped at
    ``--max-items K`` leaves a partially drained queue that the next
    worker — or a full rerun — picks up seamlessly).

    While a cell runs, a :class:`_Heartbeat` thread renews the lease
    every ``renew_interval`` seconds (``None`` = ``lease / 3``; ``0``
    disables renewal, restoring steal-on-slow behavior).  Transient
    store errors retry per ``store_retries``; a permanent one
    propagates out for :func:`main` to turn into
    :data:`EXIT_STORE_PERMANENT`.
    """
    interval = lease / 3.0 if renew_interval is None else renew_interval
    wid = worker_id or f"worker-{os.getpid()}"
    tracing = bool(os.environ.get("REPRO_TRACE"))
    on_retry: Optional[RetryObserver] = None
    if tracing:
        from ..obs.trace import (add_event, ambient_tracer, set_worker,
                                 span_id, wall_now)

        set_worker(wid)  # names this process's traces/<wid>.jsonl file

        def _store_retry(operation: str, exc: BaseException,
                         failures: int) -> None:
            add_event("store_retry", op=operation,
                      error=type(exc).__name__, n=failures)

        on_retry = _store_retry
    store = _wrap_store(open_store(store_url), store_retries, on_retry)
    queue = store.make_queue(queue_name)
    processed = 0
    try:
        while max_items is None or processed < max_items:
            claim_t0 = wall_now() if tracing else None
            item = queue.claim(wid, lease)
            if item is None:
                if queue.unfinished() == 0:
                    break
                # Everything runnable is claimed by someone else (or
                # backing off); poll until a lease frees or expires.
                time.sleep(poll)
                continue
            loaded = pickle.loads(item.payload)
            index, key, cell = loaded[:3]
            # Coordinators with tracing on publish a 4th element: the
            # trace context ({"trace", "parent"}); plain 3-tuples from
            # untraced (or older) coordinators still work everywhere.
            ctx = loaded[3] if len(loaded) > 3 else None
            attempt = item.attempts + 1
            processed += 1
            tracer = (ambient_tracer(ctx.get("trace"))
                      if tracing and ctx else None)
            exec_ctx: Optional[Dict[str, Any]] = None
            if tracer is not None:
                # The claim span covers queue.claim itself (claim_t0 ..
                # now); a re-claim of a stolen item carries the same
                # attempt number, so its span ID — and the stitched
                # tree — deduplicate instead of forking.
                claim = tracer.span("claim", cell.label, key=key,
                                    attempt=attempt,
                                    parent=ctx.get("parent"),
                                    start=claim_t0)
                if item.stolen:
                    claim.event("steal", worker=wid)
                claim.end()
                # Derived from the pure ID function (== claim.span), so
                # the context provably carries no wall-clock taint.
                exec_ctx = {"trace": tracer.trace_id,
                            "parent": span_id(tracer.trace_id, "claim",
                                              key, attempt)}
            beat: Optional[_Heartbeat] = None
            if interval > 0:
                beat = _Heartbeat(queue, item.item_id, wid, lease, interval)
                beat.start()
            try:
                _, elapsed, value = _execute(
                    (index, key, cell, attempt, exec_ctx))
            except Exception as exc:
                if beat is not None:
                    beat.stop()
                if tracer is not None and exec_ctx is not None:
                    with tracer.span("nack", cell.label, key=key,
                                     attempt=attempt,
                                     parent=exec_ctx["parent"]) as nspan:
                        nspan.status = "error"
                        nspan.event("error", det=True,
                                    error=type(exc).__name__)
                        retry = queue.nack(item.item_id,
                                           type(exc).__name__, str(exc))
                        nspan.event(
                            "retry_scheduled" if retry
                            else "attempts_exhausted", det=True)
                else:
                    retry = queue.nack(item.item_id, type(exc).__name__,
                                       str(exc))
                if retry:
                    # Same deterministic capped backoff as the pool.
                    time.sleep(min(backoff_cap,
                                   backoff_base * 2 ** item.attempts))
                continue
            finally:
                if beat is not None:
                    beat.stop()
            # Persist and ack even when the lease was stolen mid-cell:
            # the put is idempotent (deterministic cells, same bytes)
            # and an ack of an already-reassigned item merely marks it
            # done — exactly the at-least-once contract.
            if tracer is not None and exec_ctx is not None:
                with tracer.span("ack", cell.label, key=key,
                                 attempt=attempt,
                                 parent=exec_ctx["parent"]):
                    store.put(key, value)
                    queue.ack(item.item_id, elapsed)
            else:
                store.put(key, value)
                queue.ack(item.item_id, elapsed)
    finally:
        store.close()
        if tracing:
            from ..obs.trace import close_ambient_writers

            close_ambient_writers()
    return processed


def _spawn_worker(store: ExperimentStore, queue_name: str, lease: float,
                  policy: RetryPolicy, ordinal: int,
                  renew_interval: Optional[float] = None,
                  store_retries: int = 5) -> "subprocess.Popen[bytes]":
    """Start one ``python -m repro.runner.worker`` subprocess.

    The environment is inherited wholesale, so fault plans
    (``REPRO_FAULTS``, ``REPRO_STORE_FAULTS``), telemetry
    (``REPRO_TELEMETRY``) and cache salts reach workers exactly as they
    reach pool workers; the package's own source tree is prepended to
    ``PYTHONPATH`` so workers resolve the same ``repro`` the
    coordinator runs.  ``store.url`` is always the *raw* backend URL
    (proxies delegate it), so each worker builds its own
    fault-injection/retry stack from the inherited environment.
    """
    env = dict(os.environ)
    src_root = str(Path(__file__).resolve().parents[2])
    env["PYTHONPATH"] = os.pathsep.join(
        [src_root] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else []))
    cmd = [sys.executable, "-m", "repro.runner.worker",
           "--store", store.url, "--queue", queue_name,
           "--lease", repr(lease),
           "--backoff-base", repr(policy.backoff_base),
           "--backoff-cap", repr(policy.backoff_cap),
           "--store-retries", str(store_retries),
           "--worker-id", f"worker-{ordinal}-{os.getpid()}"]
    if renew_interval is not None:
        # Omitted = each worker derives lease / 3 itself.
        cmd += ["--renew-interval", repr(renew_interval)]
    return subprocess.Popen(cmd, env=env)


def run_queued(cells: Sequence[Cell], keys: Sequence[str],
               pending: Sequence[int], *, store: ExperimentStore,
               policy: RetryPolicy, workers: int,
               queue_name: str = "sweep", lease: float = 60.0,
               poll: float = 0.1, progress: Optional[Progress] = None,
               telemetry: Optional["RunTelemetry"] = None,
               renew_interval: Optional[float] = None,
               store_retries: int = 5,
               ) -> Tuple[Dict[int, Any], Dict[int, FailedCell]]:
    """Coordinator: drive ``pending`` cell indices through the queue.

    Returns ``(results, failures)`` with the same contract as
    :func:`repro.runner.resilience.run_pool` — every pending index maps
    to its value or its :class:`FailedCell`; raising on failures is the
    caller's policy decision.
    """
    # The coordinator's own store traffic (publish, snapshots, result
    # collection) gets the same fault-injection + retry stack the
    # workers build for themselves; ``store.url`` still resolves to the
    # raw backend through the proxies.
    store = _wrap_store(store, store_retries)
    queue = store.make_queue(queue_name)

    def _payload(i: int) -> bytes:
        # With tracing on, items carry their trace context so a worker
        # on any machine can parent its spans without the coordinator.
        # Untraced payloads keep the historical 3-tuple shape.
        ctx = telemetry.trace_context(i) if telemetry is not None else None
        body: Tuple[Any, ...] = ((i, keys[i], cells[i], ctx) if ctx
                                 else (i, keys[i], cells[i]))
        return pickle.dumps(body, protocol=pickle.HIGHEST_PROTOCOL)

    queue.publish([
        QueueItem(item_id=i, key=keys[i], label=cells[i].label,
                  payload=_payload(i), max_attempts=policy.retries + 1)
        for i in pending])
    # A rerun after failures retries exactly the failed cells, matching
    # the failure-manifest contract of pool execution.
    queue.requeue_failed()
    # The store, not the queue, is the durability source of truth:
    # every index in ``pending`` is already known missing from the
    # store, so an item still marked ``done`` from an earlier run
    # (results purged, or quarantined as corrupt) is stale and must be
    # re-executed rather than trusted.
    states = queue.snapshot()
    queue.reset_items([i for i in pending
                       if i in states and states[i].status == "done"])

    results: Dict[int, Any] = {}
    failures: Dict[int, FailedCell] = {}
    nworkers = max(1, min(workers, len(pending)))
    respawn_budget = nworkers * (policy.loss_budget + 1)
    permanent_exits = 0
    procs: List["subprocess.Popen[bytes]"] = [
        _spawn_worker(store, queue_name, lease, policy, n,
                      renew_interval, store_retries)
        for n in range(nworkers)]

    def collect() -> bool:
        """Fold finished queue items into results; True when all are in."""
        states = queue.snapshot()
        for i in pending:
            if i in results:
                continue
            state = states.get(i)
            if state is None:
                continue
            if state.status == "done":
                hit, value = store.get(keys[i])
                if not hit:
                    # Acked but unreadable (store corrupted between ack
                    # and collect): surface it as a failure.
                    _fail(i, "WorkerError",
                          f"queue marked {cells[i].label} done but its "
                          f"result is missing from {store.url}",
                          state.attempts or 1, state.elapsed)
                    continue
                results[i] = value
                if telemetry is not None:
                    telemetry.completed(i, state.elapsed)
                if progress is not None:
                    progress.cell(cells[i], elapsed=state.elapsed)
            elif state.status == "failed":
                _fail(i, state.error_type or "WorkerError", state.message,
                      max(state.attempts, 1), state.elapsed)
        return len(results) == len(pending)

    def _fail(i: int, error_type: str, message: str, attempts: int,
              elapsed: float) -> None:
        exc = WorkerError(f"{error_type}: {message}")
        failed = FailedCell(
            index=i, label=cells[i].label, key=keys[i],
            error_type=error_type, message=message, attempts=attempts,
            elapsed=round(elapsed, 3), exc=exc)
        failures[i] = failed
        results[i] = failed
        if telemetry is not None:
            telemetry.failed(i, exc, attempts, elapsed)
            if error_type in (LOST_ERROR_TYPE, "WorkerError"):
                # The worker died (or the fleet aborted) without
                # nacking, so no worker-side terminal span exists; the
                # coordinator writes a ``lost`` leaf instead.  Worker-
                # nacked failures already have their nack terminal.
                telemetry.trace_lost(i, error_type, attempts)
        if progress is not None:
            progress.cell(cells[i], failed=True)

    try:
        while not collect():
            # Reap dead workers; respawn while budget remains (a worker
            # killed by a cell exercises the lease-steal path, but with
            # one worker someone must still be alive to steal).  A
            # worker reporting EXIT_STORE_PERMANENT shrinks the fleet
            # instead: a broken store will not heal with a fresh
            # process, so burning respawn budget on it only loops.
            alive: List["subprocess.Popen[bytes]"] = []
            for p in procs:
                code = p.poll()
                if code is None:
                    alive.append(p)
                elif code == EXIT_STORE_PERMANENT:
                    permanent_exits += 1
                    nworkers = max(nworkers - 1, 0)
            procs = alive
            missing = nworkers - len(procs)
            while missing > 0 and respawn_budget > 0:
                procs.append(_spawn_worker(
                    store, queue_name, lease, policy, respawn_budget,
                    renew_interval, store_retries))
                respawn_budget -= 1
                missing -= 1
            if not procs:
                # No workers and no budget: fail whatever is unfinished
                # rather than waiting forever.
                reason = (
                    f"queue workers aborted on permanent store errors "
                    f"({permanent_exits} worker(s); see worker stderr)"
                    if permanent_exits and nworkers == 0 else
                    "queue workers exhausted their respawn budget "
                    "before the cell finished")
                states = queue.snapshot()
                for i in pending:
                    if i not in results:
                        state = states.get(i)
                        _fail(i, "WorkerError", reason,
                              (state.attempts if state else 0) or 1,
                              state.elapsed if state else 0.0)
                break
            time.sleep(poll)
        if telemetry is not None:
            final = queue.snapshot()
            telemetry.queue_stats(
                queue_name,
                renewals=sum(s.renewals for s in final.values()),
                steals=sum(s.losses for s in final.values()))
    finally:
        deadline = time.monotonic() + 10.0
        for proc in procs:
            # Workers exit on their own once the queue drains; give
            # them a moment, then insist.
            try:
                proc.wait(timeout=max(0.1, deadline - time.monotonic()))
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait()
    return results, failures


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI: drain a store's work queue in this process."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.runner.worker",
        description="Claim and execute experiment sweep cells from a "
                    "store's work queue (see repro.store.queue).")
    parser.add_argument("--store", required=True, metavar="URL",
                        help="experiment store URL (local:PATH or "
                             "sqlite:PATH) holding the queue and results")
    parser.add_argument("--queue", default="sweep", metavar="NAME",
                        help="queue name within the store "
                             "(default: sweep)")
    parser.add_argument("--lease", type=float, default=60.0, metavar="SEC",
                        help="claim lease; a worker silent past this is "
                             "presumed dead and its item is stolen "
                             "(default: 60)")
    parser.add_argument("--poll", type=float, default=0.2, metavar="SEC",
                        help="idle poll interval while other workers "
                             "hold the remaining items (default: 0.2)")
    parser.add_argument("--max-items", type=int, default=None, metavar="N",
                        help="exit after processing N items (default: "
                             "run until the queue drains)")
    parser.add_argument("--worker-id", default=None, metavar="ID",
                        help="claim identity (default: worker-<pid>)")
    parser.add_argument("--renew-interval", type=float, default=None,
                        metavar="SEC",
                        help="lease-renewal heartbeat period while a cell "
                             "runs (default: lease/3; 0 disables renewal "
                             "and restores steal-on-slow behavior)")
    parser.add_argument("--store-retries", type=int, default=5, metavar="N",
                        help="bounded retries for transient store errors "
                             "(locked database, EAGAIN); permanent errors "
                             f"exit {EXIT_STORE_PERMANENT} immediately "
                             "(default: 5)")
    parser.add_argument("--backoff-base", type=float, default=0.05)
    parser.add_argument("--backoff-cap", type=float, default=2.0)
    args = parser.parse_args(argv)
    wid = args.worker_id or f"worker-{os.getpid()}"
    try:
        processed = work_loop(
            args.store, args.queue, lease=args.lease, poll=args.poll,
            max_items=args.max_items, worker_id=args.worker_id,
            backoff_base=args.backoff_base, backoff_cap=args.backoff_cap,
            renew_interval=args.renew_interval,
            store_retries=args.store_retries)
    except (sqlite3.Error, OSError) as exc:
        # A store-layer error escaping work_loop already survived the
        # transient-retry budget (or was permanent outright): either
        # way this worker cannot make progress against this store.
        flavor = ("transient, retry budget exhausted"
                  if is_transient_store_error(exc) else "permanent")
        print(f"[{wid}] store failure ({flavor}): "
              f"{type(exc).__name__}: {exc}", file=sys.stderr)
        return EXIT_STORE_PERMANENT
    print(f"[{wid}] processed {processed} queue item(s)", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Live fleet dashboard: ``python -m repro.obs top``.

Tails the observable surfaces of a running (or finished) distributed
sweep — the store's work-queue tables and the telemetry run directory's
``traces/*.jsonl`` and ``series/*.jsonl`` — and renders a refreshing
plain-text dashboard: queue counts, per-worker state with lease
time-to-expiry, steal/renewal/retry rates, throughput, and
per-partition occupancy against target.

Everything here is *read-only observation of schedule facts*: nothing
it computes feeds results, artifacts, or cache keys, which is why this
module (like the store status CLI) may look at the wall clock directly.

Alerting makes it a CI gate: ``--rule "steals > 0" --rule
"loss_budget_remaining < 2"`` declares invariants over the sampled
metrics; any rule that fires makes the process exit ``1``
(``--once`` samples a single time, for scripted checks).  Unknown
metric names are a configuration error (exit ``2``) listing what is
available — a typo must not become a silently green check.
"""

from __future__ import annotations

import re
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, TextIO, Tuple, Union

from ..errors import ConfigurationError
from .schema import load_jsonl

__all__ = ["AlertRule", "sample_fleet", "render_dashboard", "top"]

#: Every metric an alert rule may reference, with its origin.  ``None``
#: values (surface absent: no store, no traces, ...) make rules on that
#: metric evaluate as "not fired" rather than erroring mid-run.
KNOWN_METRICS = {
    "pending": "queue items not yet claimed",
    "claimed": "queue items currently claimed",
    "done": "queue items acked",
    "failed": "queue items permanently failed",
    "unfinished": "pending + claimed",
    "workers": "distinct workers currently holding claims",
    "steals": "total lease-expiry steals (sum of item losses)",
    "renewals": "total heartbeat lease renewals",
    "retries": "failed attempts so far (sum of attempts beyond first)",
    "lease_tte_min": "seconds until the soonest claimed lease expires",
    "loss_budget_remaining": "min remaining loss budget over live items",
    "claims": "claim spans in the trace tail",
    "executes": "execute spans in the trace tail",
    "acks": "ack spans in the trace tail",
    "nacks": "nack spans in the trace tail",
    "cells_per_sec": "acks / trace wall window",
    "occupancy_gap_max": "max |occupancy - target| over partitions",
}

_RULE_RE = re.compile(
    r"^\s*([a-z_][a-z0-9_]*)\s*(<=|>=|==|!=|<|>)\s*(-?\d+(?:\.\d+)?)\s*$")

_OPS = {
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
}


@dataclass(frozen=True)
class AlertRule:
    """One declarative alert: ``<metric> <op> <number>`` fires when true."""

    metric: str
    op: str
    threshold: float
    text: str

    @classmethod
    def parse(cls, text: str) -> "AlertRule":
        match = _RULE_RE.match(text)
        if match is None:
            raise ConfigurationError(
                f"cannot parse alert rule {text!r}; expected "
                f"'<metric> <op> <number>', e.g. 'steals > 0'")
        metric, op, threshold = match.groups()
        if metric not in KNOWN_METRICS:
            known = ", ".join(sorted(KNOWN_METRICS))
            raise ConfigurationError(
                f"unknown metric {metric!r} in alert rule {text!r}; "
                f"known metrics: {known}")
        return cls(metric=metric, op=op, threshold=float(threshold),
                   text=text.strip())

    def fired(self, metrics: Dict[str, Optional[float]]) -> Optional[str]:
        """The alert message when this rule fires, else ``None``."""
        value = metrics.get(self.metric)
        if value is None:
            return None
        if _OPS[self.op](float(value), self.threshold):
            return f"ALERT {self.text}  (value: {float(value):g})"
        return None


def _wall() -> float:
    """Display-only wall clock (lease countdowns, refresh stamps)."""
    return time.time()


# -- sampling -----------------------------------------------------------------

def _sample_queue(store_url: str, queue_name: Optional[str],
                  ) -> Tuple[Dict[str, Optional[float]], List[str]]:
    from ..store import open_store

    store = open_store(store_url)
    try:
        names = store.queues()
        if queue_name is None:
            if not names:
                return {}, [f"== no work queues in {store.url} =="]
            if len(names) > 1:
                raise ConfigurationError(
                    f"store {store.url} holds several queues "
                    f"({', '.join(sorted(names))}); pick one with --queue")
            queue_name = names[0]
        elif queue_name not in names:
            raise ConfigurationError(
                f"no queue named {queue_name!r} in {store.url} "
                f"(found: {', '.join(sorted(names)) or 'none'})")
        queue = store.make_queue(queue_name)
        states = queue.snapshot()
        now = _wall()
        counts = {status: 0 for status in
                  ("pending", "claimed", "done", "failed")}
        ttes: List[float] = []
        budgets: List[float] = []
        per_worker: Dict[str, List[str]] = {}
        retries = 0
        for item_id in sorted(states):
            state = states[item_id]
            counts[state.status] = counts.get(state.status, 0) + 1
            retries += max(0, state.attempts - (0 if state.status in
                                                ("pending", "claimed")
                                                else 1))
            if state.status in ("pending", "claimed"):
                item = queue.peek(item_id)
                if item is not None:
                    budgets.append(item.loss_budget - state.losses)
            if state.status == "claimed" and state.worker:
                tte = state.lease_expires - now
                ttes.append(tte)
                item = queue.peek(item_id)
                label = item.label if item is not None else f"#{item_id}"
                per_worker.setdefault(state.worker, []).append(
                    f"{label} (lease {tte:+.1f}s, "
                    f"{state.renewals} renewals)")
        metrics: Dict[str, Optional[float]] = {
            "pending": float(counts["pending"]),
            "claimed": float(counts["claimed"]),
            "done": float(counts["done"]),
            "failed": float(counts["failed"]),
            "unfinished": float(counts["pending"] + counts["claimed"]),
            "workers": float(len(per_worker)),
            "steals": float(sum(s.losses for s in states.values())),
            "renewals": float(sum(s.renewals for s in states.values())),
            "retries": float(retries),
            "lease_tte_min": min(ttes) if ttes else None,
            "loss_budget_remaining": min(budgets) if budgets else None,
        }
        lines = [f"== queue {queue_name} @ {store.url} ==",
                 (f"pending={counts['pending']}  "
                  f"claimed={counts['claimed']}  done={counts['done']}  "
                  f"failed={counts['failed']}  "
                  f"steals={metrics['steals']:g}  "
                  f"renewals={metrics['renewals']:g}")]
        for worker in sorted(per_worker):
            for note in per_worker[worker]:
                lines.append(f"  {worker}: {note}")
        if not per_worker:
            lines.append("  (no live claims)")
        return metrics, lines
    finally:
        store.close()


def _sample_traces(run_dir: Path,
                   ) -> Tuple[Dict[str, Optional[float]], List[str]]:
    traces = run_dir / "traces"
    files = sorted(traces.glob("*.jsonl")) if traces.is_dir() else []
    if not files:
        return {}, []
    counts = {"claim": 0, "execute": 0, "ack": 0, "nack": 0}
    stamps: List[float] = []
    events = {"steal": 0, "lease_renew": 0, "store_retry": 0, "fault": 0}
    for path in files:
        for row in load_jsonl(path):
            kind = row.get("kind")
            if kind in counts:
                counts[kind] += 1
            wall = row.get("wall") or {}
            for stamp in (wall.get("start"), wall.get("end")):
                if isinstance(stamp, (int, float)):
                    stamps.append(float(stamp))
            for event in row.get("events", []):
                name = event.get("name")
                if name in events:
                    events[name] += 1
    window = (max(stamps) - min(stamps)) if len(stamps) > 1 else 0.0
    metrics: Dict[str, Optional[float]] = {
        "claims": float(counts["claim"]),
        "executes": float(counts["execute"]),
        "acks": float(counts["ack"]),
        "nacks": float(counts["nack"]),
        "cells_per_sec": (counts["ack"] / window) if window > 0 else None,
    }
    rate = (f"{metrics['cells_per_sec']:.2f}"
            if metrics["cells_per_sec"] is not None else "-")
    lines = [
        f"== trace tail ({len(files)} file(s)) ==",
        (f"claims={counts['claim']}  executes={counts['execute']}  "
         f"acks={counts['ack']}  nacks={counts['nack']}  "
         f"cells/sec={rate}"),
        (f"events: steals={events['steal']}  "
         f"renewals={events['lease_renew']}  "
         f"store-retries={events['store_retry']}  "
         f"faults={events['fault']}"),
    ]
    return metrics, lines


def _sample_series(run_dir: Path,
                   ) -> Tuple[Dict[str, Optional[float]], List[str]]:
    series = run_dir / "series"
    files = sorted(series.glob("*.jsonl")) if series.is_dir() else []
    if not files:
        return {}, []
    gaps: List[float] = []
    lines = [f"== partitions ({len(files)} series file(s)) =="]
    for path in files[-4:]:
        rows = load_jsonl(path)
        last: Dict[int, Dict[str, Any]] = {}
        for row in rows:
            if "part" in row:
                last[int(row["part"])] = row
        for part in sorted(last):
            row = last[part]
            occupancy = float(row.get("occupancy", 0))
            target = float(row.get("target", 0))
            gaps.append(abs(occupancy - target))
            lines.append(f"  {path.name} part {part}: "
                         f"occupancy={occupancy:g} target={target:g}")
    metrics: Dict[str, Optional[float]] = {
        "occupancy_gap_max": max(gaps) if gaps else None,
    }
    return metrics, lines


def sample_fleet(*, store_url: Optional[str] = None,
                 queue_name: Optional[str] = None,
                 run_dir: Optional[Union[str, Path]] = None,
                 ) -> Tuple[Dict[str, Optional[float]], List[str]]:
    """One dashboard sample: ``(metrics, rendered lines)``.

    Every metric in :data:`KNOWN_METRICS` is present in the dict;
    surfaces that are absent (no store URL, no ``traces/`` dir yet)
    contribute ``None`` values, which alert rules skip.
    """
    metrics: Dict[str, Optional[float]] = dict.fromkeys(KNOWN_METRICS)
    lines: List[str] = []
    if store_url:
        queue_metrics, queue_lines = _sample_queue(store_url, queue_name)
        metrics.update(queue_metrics)
        lines.extend(queue_lines)
    if run_dir is not None:
        root = Path(run_dir)
        for sampler in (_sample_traces, _sample_series):
            part_metrics, part_lines = sampler(root)
            metrics.update(part_metrics)
            if part_lines:
                if lines:
                    lines.append("")
                lines.extend(part_lines)
    if not lines:
        lines = ["(nothing to sample: pass --store and/or a run dir)"]
    return metrics, lines


def render_dashboard(lines: Sequence[str], alerts: Sequence[str],
                     *, clear: bool = False) -> str:
    """The dashboard text for one refresh (ANSI clear when looping)."""
    out = "\x1b[2J\x1b[H" if clear else ""
    body = list(lines)
    if alerts:
        body.append("")
        body.extend(alerts)
    return out + "\n".join(body) + "\n"


def top(*, store_url: Optional[str] = None,
        queue_name: Optional[str] = None,
        run_dir: Optional[Union[str, Path]] = None,
        rules: Sequence[AlertRule] = (), once: bool = False,
        interval: float = 1.0, max_samples: Optional[int] = None,
        stream: Optional[TextIO] = None) -> int:
    """Run the dashboard; ``0`` clean, ``1`` if any alert ever fired.

    Loops every ``interval`` seconds until the queue drains
    (``unfinished == 0``), ``max_samples`` is reached, or — with
    ``--once`` — after a single sample (the CI mode: sample, evaluate
    rules, exit).
    """
    if interval <= 0:
        raise ConfigurationError(
            f"refresh interval must be positive, got {interval}")
    import sys

    out = stream if stream is not None else sys.stdout
    ever_fired = False
    samples = 0
    while True:
        metrics, lines = sample_fleet(
            store_url=store_url, queue_name=queue_name, run_dir=run_dir)
        alerts = [msg for msg in (rule.fired(metrics) for rule in rules)
                  if msg is not None]
        ever_fired = ever_fired or bool(alerts)
        samples += 1
        out.write(render_dashboard(
            lines, alerts, clear=not once and samples > 1))
        out.flush()
        if once or (max_samples is not None and samples >= max_samples):
            break
        unfinished = metrics.get("unfinished")
        if store_url and unfinished is not None and unfinished <= 0:
            break
        time.sleep(interval)
    return 1 if ever_fired else 0

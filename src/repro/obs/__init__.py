"""``repro.obs`` — zero-cost-when-off telemetry for the reproduction.

The paper's core claims are *dynamic*: feedback FS holds per-partition
occupancy near target while the scaling factors alpha_i converge
(Figs. 3/5), and associativity stays high as partition counts grow.
End-of-run aggregates cannot show any of that, so this package records
what happened *during* a run, at three layers:

``metrics``
    :class:`MetricsRegistry` — labeled counters, gauges and histograms
    with deterministic JSONL export.
``timeseries``
    :class:`TimeSeriesRecorder` — a
    :class:`~repro.cache.events.CacheObserver` sampling per-partition
    occupancy, target, scaling factor alpha_i, windowed miss rate and
    eviction demand every ``interval`` accesses.  The window is driven
    off the deterministic access counter — never wall-clock — so two
    identical runs produce byte-identical series.  The cache's compiled
    access kernel inlines the recorder when subscribed and emits *no*
    observability code when it is not.
``spans``
    :class:`RunTelemetry` — one structured span per executed
    :class:`~repro.runner.Cell` (queued / started / retries / faults /
    cache-hit / duration), with every wall-clock field segregated under
    a ``"wall"`` sub-object so the deterministic part of a span stream
    is byte-comparable across runs.
``session``
    :class:`TelemetrySession` — owns the on-disk telemetry directory
    (``metrics.jsonl``, ``spans.jsonl``, ``series/*.jsonl``,
    ``manifest.json``), activates series recording for worker
    processes, and stamps ``repro.__version__`` into the run manifest.

Surfacing: the experiments CLI grows ``--telemetry[=PATH]``
(:mod:`repro.experiments.__main__`), the :func:`repro.api.run_experiment`
facade a ``telemetry=`` argument, and ``python -m repro.obs report DIR``
renders a text dashboard (sparkline occupancy / alpha_i convergence,
top-N slowest cells, fault/retry summary);  ``python -m repro.obs
validate DIR`` checks every artifact against the JSONL schemas
(:mod:`repro.obs.schema`).

Nothing in this package is imported by the hot path at module level;
when telemetry is off the compiled access kernels contain no obs code
and the runner performs no telemetry calls.
"""

from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .report import render_report, report_data
from .runtime import (
    TELEMETRY_ENV,
    TELEMETRY_INTERVAL_ENV,
    TELEMETRY_PROFILE_ENV,
    maybe_profile,
    record_series,
    series_config,
    set_cell,
    write_lifecycle,
)
from .schema import validate_run_dir
from .session import TelemetrySession
from .spans import CellSpan, RunTelemetry
from .stitch import (canonical, completeness, critical_path, load_trace_rows,
                     render_critical_path, render_tree, stitch)
from .timeseries import TimeSeriesRecorder
from .top import AlertRule, sample_fleet, top
from .trace import (TRACE_ENV, Span, Tracer, TraceWriter, ambient_tracer,
                    execute_span, span_id, trace_id_for)

__all__ = [
    "AlertRule",
    "CellSpan",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "RunTelemetry",
    "Span",
    "TELEMETRY_ENV",
    "TELEMETRY_INTERVAL_ENV",
    "TELEMETRY_PROFILE_ENV",
    "TRACE_ENV",
    "TelemetrySession",
    "TimeSeriesRecorder",
    "TraceWriter",
    "Tracer",
    "ambient_tracer",
    "canonical",
    "completeness",
    "critical_path",
    "execute_span",
    "load_trace_rows",
    "maybe_profile",
    "record_series",
    "render_critical_path",
    "render_report",
    "render_tree",
    "report_data",
    "sample_fleet",
    "series_config",
    "set_cell",
    "span_id",
    "stitch",
    "top",
    "trace_id_for",
    "validate_run_dir",
    "write_lifecycle",
]

"""Process-wide telemetry runtime: how worker processes find out.

Experiment cells execute inside ``ProcessPoolExecutor`` workers and build
their caches internally, so the runner cannot hand a recorder object
across the process boundary.  Activation therefore travels through the
environment: :class:`~repro.obs.session.TelemetrySession` sets
``REPRO_TELEMETRY`` (the telemetry directory) before the pool is created,
workers inherit it, and the simulation drivers
(:meth:`repro.sim.engine.MultiprogramSimulator.run`, the mixing drivers
in :mod:`repro.trace.mixing`) wrap their access loop in
:func:`record_series`.  With the variable unset, :func:`record_series`
is an early-out no-op: no recorder is created, no observer is
subscribed, and the compiled access kernel is exactly the
telemetry-free one.

The runner tells each worker which cell it is executing via
:func:`set_cell`, so series files land at deterministic paths
(``series/<cell-label>-<n>.jsonl``, ``n`` counting the simulations the
cell ran, in execution order).  A retried cell calls :func:`set_cell`
again and rewrites the same paths — under a deterministic fault plan the
surviving bytes are identical.

Environment variables:

``REPRO_TELEMETRY``
    Telemetry directory for the current run; presence enables series
    recording.
``REPRO_TELEMETRY_INTERVAL``
    Sampling window in accesses (default ``1024``).
``REPRO_TELEMETRY_PROFILE``
    When ``"1"``, each cell execution is additionally captured under
    ``cProfile`` into ``profile/<cell-label>.prof``.
"""

from __future__ import annotations

import cProfile
import json
import os
import re
from contextlib import contextmanager
from pathlib import Path
from typing import TYPE_CHECKING, Iterator, Optional, Tuple

from ..errors import ConfigurationError

if TYPE_CHECKING:
    from .timeseries import TimeSeriesRecorder

__all__ = [
    "TELEMETRY_ENV",
    "TELEMETRY_INTERVAL_ENV",
    "TELEMETRY_PROFILE_ENV",
    "maybe_profile",
    "record_series",
    "series_config",
    "set_cell",
    "write_lifecycle",
]

TELEMETRY_ENV = "REPRO_TELEMETRY"
TELEMETRY_INTERVAL_ENV = "REPRO_TELEMETRY_INTERVAL"
TELEMETRY_PROFILE_ENV = "REPRO_TELEMETRY_PROFILE"

DEFAULT_INTERVAL = 1024

#: Label of the cell this process is currently executing ("" outside
#: cell execution, e.g. telemetry-enabled API calls without the runner).
_cell_label = ""
#: Per-process sequence number of the next series file for the current
#: cell (several simulations per cell -> several series files).
_cell_seq = 0
#: Per-process sequence number of the next lifecycle file, same scheme.
_lifecycle_seq = 0


def series_config() -> Optional[Tuple[Path, int]]:
    """``(telemetry_dir, interval)`` when recording is on, else ``None``."""
    root = os.environ.get(TELEMETRY_ENV)
    if not root:
        return None
    raw = os.environ.get(TELEMETRY_INTERVAL_ENV, "")
    try:
        interval = int(raw) if raw else DEFAULT_INTERVAL
    except ValueError:
        raise ConfigurationError(
            f"{TELEMETRY_INTERVAL_ENV} must be an integer, got {raw!r}")
    if interval < 1:
        raise ConfigurationError(
            f"{TELEMETRY_INTERVAL_ENV} must be >= 1, got {interval}")
    return Path(root), interval


def set_cell(label: str) -> None:
    """Name the cell this process is about to execute (runner-called).

    Resets the series sequence counter so a retried cell rewrites the
    same file paths instead of appending new ones.
    """
    global _cell_label, _cell_seq, _lifecycle_seq
    _cell_label = label
    _cell_seq = 0
    _lifecycle_seq = 0


def _slug(label: str) -> str:
    """Filesystem-safe form of a cell label."""
    return re.sub(r"[^A-Za-z0-9._-]+", "_", label) or "series"


@contextmanager
def record_series(cache) -> Iterator[Optional["TimeSeriesRecorder"]]:
    """Record a per-partition time series of ``cache`` while the body runs.

    No-op (yields ``None``) unless ``REPRO_TELEMETRY`` is set.  When
    active, subscribes a :class:`~repro.obs.timeseries.TimeSeriesRecorder`
    *before* the body captures ``cache.access`` — subscription rebuilds
    the compiled kernel with the recorder inlined — and on exit
    unsubscribes it (restoring the telemetry-free kernel) and writes
    ``series/<cell>-<n>.jsonl`` under the telemetry directory.
    """
    config = series_config()
    if config is None:
        yield None
        return
    global _cell_seq
    from .timeseries import TimeSeriesRecorder
    root, interval = config
    recorder = TimeSeriesRecorder(interval).attach(cache)
    try:
        with cache.events.subscribed(recorder):
            yield recorder
    finally:
        seq = _cell_seq
        _cell_seq = seq + 1
        name = f"{_slug(_cell_label)}-{seq:03d}.jsonl"
        recorder.write_jsonl(root / "series" / name)


def write_lifecycle(cache) -> Optional[Path]:
    """Write ``cache``'s partition lifecycle log as a telemetry artifact.

    Emits ``lifecycle/<cell-label>-<n>.jsonl`` (one JSON object per
    control-plane event: create / retire / retarget, with the target
    snapshot and, when the driver stamped it, the global access index)
    under the telemetry directory.  No-op returning ``None`` unless
    ``REPRO_TELEMETRY`` is set and the log has at least one lifecycle
    event beyond plain retargets — steady-state runs that only ever
    call ``set_targets`` produce no lifecycle files, keeping their
    telemetry directories identical to pre-control-plane runs.
    """
    config = series_config()
    if config is None:
        return None
    log = getattr(cache, "lifecycle_log", None)
    if not log or all(row["event"] == "retarget" for row in log):
        return None
    global _lifecycle_seq
    root, _ = config
    seq = _lifecycle_seq
    _lifecycle_seq = seq + 1
    out = root / "lifecycle" / f"{_slug(_cell_label)}-{seq:03d}.jsonl"
    out.parent.mkdir(parents=True, exist_ok=True)
    from .schema import header_line
    with open(out, "w", encoding="utf-8") as fh:
        fh.write(header_line("lifecycle") + "\n")
        for row in log:
            fh.write(json.dumps(row, sort_keys=True))
            fh.write("\n")
    return out


@contextmanager
def maybe_profile(label: str) -> Iterator[None]:
    """cProfile the body into ``profile/<label>.prof`` when enabled.

    Profiling is opt-in twice over: ``REPRO_TELEMETRY`` must point at a
    directory *and* ``REPRO_TELEMETRY_PROFILE`` must be ``"1"``.
    Profile files are wall-clock artifacts by nature and are never part
    of the byte-reproducibility contract.
    """
    config = series_config()
    if config is None or os.environ.get(TELEMETRY_PROFILE_ENV) != "1":
        yield
        return
    root, _ = config
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        yield
    finally:
        profiler.disable()
        out = root / "profile" / f"{_slug(label)}.prof"
        out.parent.mkdir(parents=True, exist_ok=True)
        profiler.dump_stats(str(out))

"""Deterministic distributed tracing for sweep fleets.

One sweep = one trace.  The coordinator opens a root ``sweep`` span and
one ``cell`` span per cell; whichever process executes an attempt —
queue worker, pool worker, or the coordinator itself inline — appends
``claim`` / ``execute`` / ``ack`` / ``nack`` child spans to its own
``traces/<worker>.jsonl`` file.  The stitcher
(:mod:`repro.obs.stitch`) rebuilds the tree from any mix of those
files, so a fleet spread over machines still yields one causal story
per cell.

Identity is the whole trick.  Trace and span IDs are pure functions of
the sweep fingerprint, cell key, span kind and attempt number —
**never** the clock, the PID, or ``uuid4()``:

* any process can compute any span's ID without coordination (a worker
  derives its parent ``cell`` span ID from the trace ID + cell key);
* at-least-once delivery is free to double-execute a cell — both
  executions produce the *same* span ID with the same deterministic
  content, and the stitcher collapses them;
* the deterministic projection of a trace (drop ``"wall"``, drop
  timing-dependent events) is byte-identical across ``--jobs`` and
  worker counts, which the chaos tests assert literally.

Wall-clock timestamps are the *point* of a trace, so they exist — but
only under each row's ``"wall"`` sub-object, mirroring the span/manifest
convention, and they are read through the single sanctioned
:func:`wall_now` below.  Events carry a ``"det"`` flag: ``det=True``
events (fault injections, error types) are facts of the computation and
survive into the canonical projection; ``det=False`` events (lease
renewals, steals, store-retry backoffs) describe the *schedule* and are
stripped.

Nothing here runs unless ``$REPRO_TRACE`` is set: the runner guards
every hook on that variable, so tracing disabled is zero code executed
and zero artifacts written.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import threading
import time
from pathlib import Path
from types import TracebackType
from typing import IO, Any, Dict, Iterator, List, Optional, Sequence, Type

from contextlib import contextmanager

from ..errors import ConfigurationError

__all__ = [
    "SPAN_KINDS",
    "TRACE_ENV",
    "TRACE_ID_ENV",
    "Span",
    "TraceWriter",
    "Tracer",
    "add_event",
    "ambient_tracer",
    "close_ambient_writers",
    "execute_span",
    "set_worker",
    "span_id",
    "trace_id_for",
    "wall_now",
    "worker_name",
]

#: Directory for ``traces/*.jsonl`` files; set by an active
#: :class:`~repro.obs.session.TelemetrySession` with tracing enabled.
#: Unset = tracing off everywhere (the runner's zero-overhead guard).
TRACE_ENV = "REPRO_TRACE"

#: The active sweep's trace ID, exported by
#: :meth:`RunTelemetry.begin <repro.obs.spans.RunTelemetry.begin>` so
#: pool/inline workers (which receive no queue payload) can join the
#: trace from the inherited environment.
TRACE_ID_ENV = "REPRO_TRACE_ID"

#: Every span kind, in causal order.  ``sweep`` and ``cell`` are
#: coordinator-side; ``claim``/``execute``/``ack``/``nack`` are emitted
#: by the process that ran the attempt; ``lost`` is the coordinator's
#: terminal for a cell whose worker died without nacking.
SPAN_KINDS = ("sweep", "cell", "claim", "execute", "ack", "nack", "lost")


def wall_now() -> float:
    """The one sanctioned wall-clock read for trace timestamps.

    Trace rows are *about* wall time, but every reading funnels through
    here and lands exclusively under a row's ``"wall"`` sub-object —
    the same contract as cell spans and the run manifest.
    """
    return time.time()  # reprolint: disable=DET002,DET004


def trace_id_for(keys: Sequence[str]) -> str:
    """Deterministic trace ID for one sweep: a fingerprint of its cells.

    Hashes the ordered ``(index, key)`` pairs — the same identity
    :func:`repro.store.queue.sweep_fingerprint` gives a published
    queue — so the same sweep traced twice yields the same trace ID,
    and no clock or RNG can leak in by construction.
    """
    blob = json.dumps([[i, key] for i, key in enumerate(keys)],
                      separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:32]


def span_id(trace_id: str, kind: str, key: str = "", attempt: int = 0) -> str:
    """Deterministic span ID: pure function of (trace, kind, key, attempt).

    Because the ID carries no process identity, a stolen item
    re-executed by another worker produces the *same* ``claim`` /
    ``execute`` span IDs — the stitcher's dedup then collapses the
    duplicates instead of showing a forked tree.
    """
    if kind not in SPAN_KINDS:
        raise ConfigurationError(
            f"unknown span kind {kind!r}; expected one of {list(SPAN_KINDS)}")
    blob = f"{trace_id}/{kind}/{key}/{attempt}"
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


# -- per-process worker identity ------------------------------------------

_worker_lock = threading.Lock()
_worker_name = ""


def set_worker(name: str) -> None:
    """Name this process's trace file (e.g. the queue worker ID)."""
    global _worker_name
    with _worker_lock:
        _worker_name = name


def worker_name() -> str:
    """This process's identity in trace rows (default ``pid-<pid>``)."""
    with _worker_lock:
        return _worker_name or f"pid-{os.getpid()}"


def _slug(name: str) -> str:
    return re.sub(r"[^A-Za-z0-9._-]+", "_", name)


# -- writing ----------------------------------------------------------------


class TraceWriter:
    """Append-mode JSONL writer for one ``traces/*.jsonl`` file.

    Opens lazily on first write, stamps the ``schema_version`` header
    row into fresh files, and flushes every line so ``repro.obs top``
    can tail a live fleet.  Append mode (not truncate) lets a worker
    process reopen its file across work items without losing rows.
    """

    def __init__(self, path: Path) -> None:
        self.path = Path(path)
        self._fh: Optional[IO[str]] = None
        self._lock = threading.Lock()

    def write(self, row: Dict[str, Any]) -> None:
        line = json.dumps(row, sort_keys=True, separators=(",", ":"))
        with self._lock:
            if self._fh is None:
                self.path.parent.mkdir(parents=True, exist_ok=True)
                fresh = (not self.path.exists()
                         or self.path.stat().st_size == 0)
                self._fh = open(self.path, "a", encoding="utf-8")
                if fresh:
                    from .schema import header_line
                    self._fh.write(header_line("trace") + "\n")
            self._fh.write(line + "\n")
            self._fh.flush()

    def close(self) -> None:
        with self._lock:
            if self._fh is not None:
                self._fh.close()
                self._fh = None


class Span:
    """One span under construction; write happens on :meth:`end`.

    Context-manager use pushes the span onto the process-local active
    stack so :func:`add_event` calls from anywhere in the process — the
    fault injector, the store retry observer, the lease-renewal
    heartbeat thread — attach to the innermost running span.
    """

    def __init__(self, tracer: "Tracer", kind: str, name: str, *,
                 key: str = "", attempt: int = 0,
                 parent: Optional[str] = None,
                 start: Optional[float] = None) -> None:
        self.tracer = tracer
        self.kind = kind
        self.name = name
        self.key = key
        self.attempt = attempt
        self.parent = parent
        self.span = span_id(tracer.trace_id, kind, key, attempt)
        self.status = ""
        self.start = wall_now() if start is None else start
        self._events: List[Dict[str, Any]] = []
        self._done = False

    def event(self, name: str, det: bool = False, **fields: Any) -> None:
        """Attach a point event; ``det=True`` marks a deterministic fact."""
        row: Dict[str, Any] = {"name": name, "det": bool(det)}
        row.update(fields)
        with _stack_lock:
            self._events.append(row)

    def to_row(self, end: Optional[float]) -> Dict[str, Any]:
        with _stack_lock:
            events = list(self._events)
        return {
            "trace": self.tracer.trace_id,
            "span": self.span,
            "parent": self.parent,
            "kind": self.kind,
            "name": self.name,
            "key": self.key,
            "attempt": self.attempt,
            "status": self.status or "ok",
            "events": events,
            "wall": {
                "start": self.start,
                "end": end,
                "worker": self.tracer.worker,
            },
        }

    def end(self, status: Optional[str] = None) -> None:
        """Stamp the end timestamp and write the row (idempotent)."""
        if self._done:
            return
        self._done = True
        if status is not None:
            self.status = status
        self.tracer.writer.write(self.to_row(wall_now()))

    def __enter__(self) -> "Span":
        with _stack_lock:
            _stack.append(self)
        return self

    def __exit__(self, exc_type: Optional[Type[BaseException]],
                 exc: Optional[BaseException],
                 tb: Optional[TracebackType]) -> None:
        with _stack_lock:
            if _stack and _stack[-1] is self:
                _stack.pop()
        if exc is not None:
            self.event("error", det=True, error=type(exc).__name__)
            self.end("error")
        else:
            self.end()


class Tracer:
    """Span factory bound to one trace ID and one output file."""

    def __init__(self, trace_id: str, writer: TraceWriter,
                 worker: str = "") -> None:
        self.trace_id = trace_id
        self.writer = writer
        self.worker = worker or worker_name()

    def span(self, kind: str, name: str, *, key: str = "", attempt: int = 0,
             parent: Optional[str] = None,
             start: Optional[float] = None) -> Span:
        return Span(self, kind, name, key=key, attempt=attempt,
                    parent=parent, start=start)


# -- ambient per-process state ----------------------------------------------

_stack_lock = threading.Lock()
_stack: List[Span] = []
_writers: Dict[str, TraceWriter] = {}


def add_event(name: str, det: bool = False, **fields: Any) -> None:
    """Attach an event to the innermost active span; no-op otherwise.

    This is the hook the fault injector, the store retry observer and
    the heartbeat thread call — none of them need (or get) a span
    handle, and all of them must cost nothing when tracing is off
    (callers guard on ``$REPRO_TRACE`` before importing this module).
    """
    with _stack_lock:
        span = _stack[-1] if _stack else None
    if span is not None:
        span.event(name, det=det, **fields)


def trace_dir() -> Optional[Path]:
    """The ``traces/`` directory from the environment, or ``None``."""
    raw = os.environ.get(TRACE_ENV)
    return Path(raw) if raw else None


def ambient_tracer(trace_id: Optional[str] = None) -> Optional[Tracer]:
    """A tracer for this process, or ``None`` when tracing is off.

    The trace ID comes from the caller (queue payloads carry it across
    machines) or from ``$REPRO_TRACE_ID`` (pool/inline workers inherit
    it); the output file is ``$REPRO_TRACE/<worker>.jsonl``.  Writers
    are cached per path so one worker process appends to one file.
    """
    directory = trace_dir()
    if directory is None:
        return None
    tid = trace_id or os.environ.get(TRACE_ID_ENV, "")
    if not tid:
        return None
    path = directory / f"{_slug(worker_name())}.jsonl"
    key = str(path)
    with _stack_lock:
        writer = _writers.get(key)
        if writer is None:
            writer = _writers[key] = TraceWriter(path)
    return Tracer(tid, writer)


def close_ambient_writers() -> None:
    """Close and drop every cached ambient writer.

    Rows are flushed line by line, so this is never needed for
    correctness — it exists for orderly worker shutdown and for tests
    that must not leak file handles across cases.
    """
    with _stack_lock:
        writers = list(_writers.values())
        _writers.clear()
    for writer in writers:
        writer.close()


@contextmanager
def execute_span(label: str, key: str, attempt: int,
                 ctx: Optional[Dict[str, Any]] = None) -> Iterator[
                     Optional[Span]]:
    """Ambient ``execute`` span around one cell attempt (any mode).

    ``ctx`` is the trace context a queue item carries
    (``{"trace": ..., "parent": ...}``); without one the trace ID comes
    from the environment and the parent defaults to the cell span's
    derived ID — so pool and inline attempts join the same tree as
    queue attempts without any payload plumbing.
    """
    ctx = ctx or {}
    tracer = ambient_tracer(ctx.get("trace"))
    if tracer is None:
        yield None
        return
    parent = ctx.get("parent") or span_id(tracer.trace_id, "cell", key)
    span = tracer.span("execute", label, key=key, attempt=attempt,
                       parent=parent)
    with span:
        yield span

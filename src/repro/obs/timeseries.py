"""Per-partition time series sampled on a deterministic access window.

:class:`TimeSeriesRecorder` is a
:class:`~repro.cache.events.CacheObserver` that snapshots, every
``interval`` cache accesses, one row per partition:

``access``
    The absolute access index of the sample (``samples * interval``).
``part`` / ``occupancy`` / ``target``
    Partition id, its current valid-line count and its target size.
``alpha``
    The partition's scaling factor: feedback FS reports
    ``changing_ratio ** level`` (the Section V-B register state),
    analytical FS its solved/configured alpha, every other scheme
    ``null``.
``miss_rate``
    Misses over accesses *within the window* (``null`` when the
    partition issued no accesses in the window).
``insertions`` / ``evictions``
    Fills into / evictions out of the partition within the window —
    together the partition's eviction demand and supply, whose
    imbalance is what Algorithm 2's feedback corrects.

The window is driven off the recorder's own event counter — never
wall-clock — so two identical runs produce byte-identical series files,
and the rows are valid evidence for the paper's dynamic claims (target
tracking, alpha_i convergence).

Cost model: subscribing the recorder triggers the cache's kernel
recompilation (:meth:`~repro.cache.cache.PartitionedCache._build_access`),
which recognizes the exact :class:`TimeSeriesRecorder` type and inlines
its window counters as straight array arithmetic; an unsubscribed
recorder contributes *nothing* to the generated kernel.  Subclasses are
dispatched through the event-handler tuples instead and must produce
identical rows (the test suite holds the two paths byte-equal).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Union

from ..cache.events import CacheObserver
from ..errors import ConfigurationError

__all__ = ["TimeSeriesRecorder"]


class TimeSeriesRecorder(CacheObserver):
    """Sample per-partition cache state every ``interval`` accesses."""

    def __init__(self, interval: int = 1024) -> None:
        if interval < 1:
            raise ConfigurationError(
                f"sampling interval must be >= 1, got {interval}")
        self.interval = int(interval)
        self._cache = None
        self._rows: List[Dict[str, object]] = []
        self._samples = 0
        self._since = 0
        self._win_acc: List[int] = []
        self._win_miss: List[int] = []
        self._win_ins: List[int] = []
        self._win_evi: List[int] = []

    # -- wiring ---------------------------------------------------------------
    def attach(self, cache) -> "TimeSeriesRecorder":
        """Bind to the cache whose state the samples read; returns self.

        Must be called before subscribing to ``cache.events`` (the
        compiled kernel only inlines a recorder attached to its own
        cache).
        """
        self._cache = cache
        n = cache.num_partitions
        self._win_acc = [0] * n
        self._win_miss = [0] * n
        self._win_ins = [0] * n
        self._win_evi = [0] * n
        return self

    def reset(self) -> None:
        """Drop all rows and window state (e.g. after cache warm-up)."""
        self._rows = []
        self._samples = 0
        self._since = 0
        for buf in (self._win_acc, self._win_miss, self._win_ins,
                    self._win_evi):
            for i in range(len(buf)):
                buf[i] = 0

    # -- event handlers (the compiled kernel inlines these bodies) ------------
    def _tick(self) -> None:
        n = self._since + 1
        if n >= self.interval:
            self._since = 0
            self._sample()
        else:
            self._since = n

    def on_cache_hit(self, idx: int, part: int,
                     next_use: Optional[int]) -> None:
        self._win_acc[part] += 1
        self._tick()

    def on_cache_miss(self, addr: int, part: int) -> None:
        # Fired before victim selection: a sample landing on a miss sees
        # pre-eviction occupancies, exactly like the inlined kernel code.
        self._win_acc[part] += 1
        self._win_miss[part] += 1
        self._tick()

    def on_cache_evict(self, idx: int, part: int,
                       futility: Optional[float], dirty: int) -> None:
        self._win_evi[part] += 1

    def on_cache_insert(self, idx: int, part: int, next_use: Optional[int],
                        evicted: bool) -> None:
        self._win_ins[part] += 1

    def on_cache_lifecycle(self, kind: str, part: int) -> None:
        # Partition growth (tenant arrival): extend the window buffers in
        # place — the compiled kernel binds them by identity, so appending
        # keeps the inlined counters valid without another recompile.
        cache = self._cache
        if cache is None:
            return
        for buf in (self._win_acc, self._win_miss, self._win_ins,
                    self._win_evi):
            while len(buf) < cache.num_partitions:
                buf.append(0)

    # -- sampling -------------------------------------------------------------
    def _alphas(self) -> Optional[List[float]]:
        """Current per-partition scaling factors, or None for schemes
        that have no such notion (PF, Vantage, PriSM, ...)."""
        scheme = self._cache.scheme
        factors = getattr(scheme, "scaling_factors", None)
        if callable(factors):  # feedback FS: ratio ** level registers
            return [float(a) for a in factors()]
        try:
            alphas = scheme.alphas  # analytical FS: solved property
        except (AttributeError, ConfigurationError):
            return None
        if callable(alphas):
            return None
        return [float(a) for a in alphas]

    def _sample(self) -> None:
        cache = self._cache
        if cache is None:
            raise ConfigurationError(
                "TimeSeriesRecorder must be attach()ed to a cache before "
                "it observes events")
        self._samples += 1
        access = self._samples * self.interval
        alphas = self._alphas()
        sizes = cache.actual_sizes
        targets = cache.targets
        acc, miss = self._win_acc, self._win_miss
        ins, evi = self._win_ins, self._win_evi
        for p in range(cache.num_partitions):
            self._rows.append({
                "access": access,
                "part": p,
                "occupancy": sizes[p],
                "target": targets[p],
                "alpha": None if alphas is None else alphas[p],
                "miss_rate": (miss[p] / acc[p]) if acc[p] else None,
                "insertions": ins[p],
                "evictions": evi[p],
            })
            acc[p] = 0
            miss[p] = 0
            ins[p] = 0
            evi[p] = 0

    # -- export ---------------------------------------------------------------
    def rows(self) -> List[Dict[str, object]]:
        """All sample rows recorded so far (oldest first)."""
        return list(self._rows)

    def series(self, field: str, part: int) -> List[object]:
        """One column of one partition's samples, in access order."""
        return [row[field] for row in self._rows if row["part"] == part]

    def write_jsonl(self, path: Union[str, Path]) -> Path:
        """Write one JSON object per sample row; byte-stable across runs."""
        from .schema import header_line
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(header_line("series") + "\n")
            for row in self._rows:
                fh.write(json.dumps(row, sort_keys=True,
                                    separators=(",", ":")) + "\n")
        return path

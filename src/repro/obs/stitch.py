"""Trace assembly: stitch ``traces/*.jsonl`` files into one span tree.

A traced sweep scatters its spans across processes — the coordinator
writes ``coordinator.jsonl`` (root ``sweep`` span, one ``cell`` span
per cell, ``lost`` terminals), every worker writes its own file
(``claim`` / ``execute`` / ``ack`` / ``nack`` spans).  Because span IDs
are pure functions of (trace, kind, key, attempt) — see
:mod:`repro.obs.trace` — this module can rebuild the tree from *any*
mix of those files, from one run directory or several, without any
process having coordinated with another:

* :func:`load_trace_rows` collects rows from run dirs / traces dirs /
  files (schema headers skipped, malformed rows reported);
* :func:`stitch` merges duplicate span IDs (an at-least-once double
  execution or a steal re-claim collapses to one node) and hangs
  children under parents;
* :func:`completeness` checks the causal invariants — one rooted
  sweep, resolvable parents, and for every claimed cell a full
  attempt ladder ending in exactly one terminal (``ack`` / ``nack`` /
  ``lost``);
* :func:`canonical` is the deterministic projection (no ``"wall"``, no
  ``det=False`` events) that is byte-identical across ``--jobs`` and
  worker counts — the chaos tests compare it literally;
* :func:`critical_path` attributes the sweep's cell-seconds to
  queue-wait vs execute vs retry vs store I/O.

``lost`` terminals are the one schedule-dependent *row* (they exist
only when a worker died past the loss budget), so canonical equality is
asserted for deterministic fault plans (``raise``), not kill-based
ones.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from ..errors import ConfigurationError
from .schema import load_jsonl, validate_trace_row
from .trace import SPAN_KINDS

__all__ = [
    "canonical",
    "completeness",
    "critical_path",
    "load_trace_rows",
    "render_critical_path",
    "render_tree",
    "stitch",
]

_KIND_ORDER = {kind: i for i, kind in enumerate(SPAN_KINDS)}

#: Merge preference for duplicate span statuses: a definite outcome
#: beats a pending one, an error beats an ok (one of the duplicate
#: executions saw the failure; the trace should show it).
_STATUS_RANK = {"pending": 0, "cached": 1, "ok": 2, "failed": 3, "error": 4}


def _trace_sources(source: Union[str, Path]) -> List[Path]:
    """The ``*.jsonl`` files one source stands for.

    A source may be a telemetry run directory (its ``traces/`` subdir
    is used), a traces directory itself, or a single file — so a fleet
    split across machines stitches from whatever subset was gathered.
    """
    path = Path(source)
    if path.is_dir():
        traces = path / "traces"
        root = traces if traces.is_dir() else path
        return sorted(root.glob("*.jsonl"))
    if path.is_file():
        return [path]
    raise ConfigurationError(f"trace source {path} does not exist")


def load_trace_rows(sources: Sequence[Union[str, Path]],
                    ) -> List[Dict[str, Any]]:
    """Every trace row from ``sources``, schema-validated.

    Raises :class:`~repro.errors.ConfigurationError` on the first
    malformed row — a trace that fails its own schema is not worth
    stitching.
    """
    rows: List[Dict[str, Any]] = []
    files: List[Path] = []
    for source in sources:
        files.extend(_trace_sources(source))
    if not files:
        raise ConfigurationError(
            f"no trace files found under {[str(s) for s in sources]}; "
            f"was the sweep run with --trace?")
    for path in files:
        for n, row in enumerate(load_jsonl(path), start=1):
            problems = validate_trace_row(row)
            if problems:
                raise ConfigurationError(
                    f"{path}:{n}: malformed trace row: {problems[0]}")
            rows.append(row)
    return rows


def _merge(a: Dict[str, Any], b: Dict[str, Any]) -> Dict[str, Any]:
    """Fold duplicate rows for one span ID into one node.

    Duplicates are legitimate — at-least-once delivery double-executes,
    a stolen item is re-claimed at the same attempt — and deterministic
    IDs make them collapse here instead of forking the tree.  Events
    concatenate (exact duplicates dropped), the status with the most
    definite outcome wins, and the wall window is the union.
    """
    out = dict(a)
    seen = {json.dumps(e, sort_keys=True) for e in a.get("events", [])}
    merged_events = list(a.get("events", []))
    for event in b.get("events", []):
        blob = json.dumps(event, sort_keys=True)
        if blob not in seen:
            seen.add(blob)
            merged_events.append(event)
    out["events"] = merged_events
    if _STATUS_RANK.get(b.get("status", ""), -1) > \
            _STATUS_RANK.get(a.get("status", ""), -1):
        out["status"] = b["status"]
    wall_a = a.get("wall") or {}
    wall_b = b.get("wall") or {}
    starts = [w["start"] for w in (wall_a, wall_b)
              if isinstance(w.get("start"), (int, float))]
    ends = [w["end"] for w in (wall_a, wall_b)
            if isinstance(w.get("end"), (int, float))]
    workers = sorted({w.get("worker", "") for w in (wall_a, wall_b)
                      if w.get("worker")})
    out["wall"] = {
        "start": min(starts) if starts else None,
        "end": max(ends) if ends else None,
        "worker": "+".join(workers),
    }
    return out


def _child_sort_key(row: Dict[str, Any]) -> Tuple[Any, ...]:
    return (row.get("key", ""), _KIND_ORDER.get(row.get("kind", ""), 99),
            row.get("attempt", 0), row.get("span", ""))


def stitch(rows: Iterable[Dict[str, Any]],
           trace_id: Optional[str] = None) -> Dict[str, Any]:
    """Assemble rows into one span tree for one trace.

    Returns ``{"trace", "root", "spans", "children"}``: ``spans`` maps
    span ID to its merged row, ``children`` maps span ID to its
    children's IDs in deterministic order, ``root`` is the sweep span's
    ID (or ``None`` — :func:`completeness` reports it).  With rows from
    several traces present, ``trace_id`` selects one; omitting it is an
    error naming the candidates.
    """
    rows = list(rows)
    trace_ids = sorted({row["trace"] for row in rows})
    if trace_id is None:
        if len(trace_ids) > 1:
            raise ConfigurationError(
                f"rows from {len(trace_ids)} traces "
                f"({', '.join(trace_ids)}); pass trace_id to select one")
        trace_id = trace_ids[0] if trace_ids else ""
    spans: Dict[str, Dict[str, Any]] = {}
    for row in rows:
        if row["trace"] != trace_id:
            continue
        sid = row["span"]
        spans[sid] = _merge(spans[sid], row) if sid in spans else dict(row)
    children: Dict[str, List[str]] = {}
    for sid, row in spans.items():
        parent = row.get("parent")
        if parent is not None:
            children.setdefault(parent, []).append(sid)
    for sid in children:
        children[sid].sort(key=lambda c: _child_sort_key(spans[c]))
    roots = [sid for sid, row in spans.items()
             if row.get("parent") is None and row.get("kind") == "sweep"]
    return {
        "trace": trace_id,
        "root": roots[0] if len(roots) == 1 else None,
        "spans": spans,
        "children": children,
    }


def _cell_terminals(tree: Dict[str, Any],
                    cell_id: str) -> List[Dict[str, Any]]:
    """Terminal leaves (``ack``/``nack``/``lost``) in the cell's subtree."""
    spans = tree["spans"]
    out = []
    stack = list(tree["children"].get(cell_id, ()))
    while stack:
        sid = stack.pop()
        row = spans[sid]
        if row["kind"] in ("ack", "nack", "lost"):
            out.append(row)
        stack.extend(tree["children"].get(sid, ()))
    return out


def completeness(tree: Dict[str, Any]) -> List[str]:
    """Causal-invariant violations of a stitched tree ([] = complete).

    Checks, in the worker-queue execution mode (cells with ``claim``
    children):

    * exactly one rooted ``sweep`` span;
    * every non-root span's parent resolves to a known span;
    * claims ladder from attempt 1 with no gaps; every non-final
      claimed attempt has its ``nack``; the final attempt has exactly
      one terminal — ``ack`` (cell ok), ``nack`` or ``lost`` (cell
      failed) — and never more than one ``ack``;
    * every claim has its ``execute`` (the attempt actually ran).

    Pool/inline cells (``execute`` children, no claims) only require an
    execute for a non-cached cell — acks and nacks are queue-protocol
    spans and do not exist in that mode.
    """
    problems: List[str] = []
    spans = tree["spans"]
    roots = [s for s in spans.values()
             if s.get("parent") is None and s["kind"] == "sweep"]
    if len(roots) != 1:
        problems.append(
            f"expected exactly one root sweep span, found {len(roots)}")
    for sid in sorted(spans):
        parent = spans[sid].get("parent")
        if parent is not None and parent not in spans:
            problems.append(
                f"span {sid} ({spans[sid]['kind']} {spans[sid]['name']}) "
                f"has unresolved parent {parent}")
    for sid in sorted(spans):
        cell = spans[sid]
        if cell["kind"] != "cell":
            continue
        label = f"cell {cell['name']} ({cell['key'][:12]})"
        kids = [spans[c] for c in tree["children"].get(sid, ())]
        claims = sorted((k for k in kids if k["kind"] == "claim"),
                        key=lambda r: r["attempt"])
        if cell["status"] == "cached":
            if kids:
                problems.append(f"{label}: cached cell has child spans")
            continue
        if not claims:
            # Pool/inline mode: the execute hangs off the cell directly.
            executes = [k for k in kids if k["kind"] == "execute"]
            if not executes and cell["status"] in ("ok", "failed"):
                problems.append(f"{label}: no execute span recorded")
            continue
        attempts = [c["attempt"] for c in claims]
        if attempts != list(range(1, len(attempts) + 1)):
            problems.append(
                f"{label}: claim attempts {attempts} are not 1..K")
        terminals = _cell_terminals(tree, sid)
        acks = [t for t in terminals if t["kind"] == "ack"]
        if len(acks) > 1:
            problems.append(f"{label}: {len(acks)} ack spans (max 1)")
        final = attempts[-1] if attempts else 0
        for claim in claims:
            ckids = [spans[c]
                     for c in tree["children"].get(claim["span"], ())]
            if not any(k["kind"] == "execute" for k in ckids):
                problems.append(
                    f"{label}: claim attempt {claim['attempt']} has no "
                    f"execute span")
            nacks = [k for k in ckids if k["kind"] == "nack"]
            if claim["attempt"] < final and not nacks:
                problems.append(
                    f"{label}: attempt {claim['attempt']} was retried "
                    f"but has no nack span")
        final_terms = [t for t in terminals
                       if t["kind"] == "lost" or t["attempt"] == final]
        if not final_terms:
            problems.append(
                f"{label}: no terminal span (ack/nack/lost) for final "
                f"attempt {final}")
        elif len(final_terms) > 1:
            kinds = sorted(t["kind"] for t in final_terms)
            problems.append(
                f"{label}: {len(final_terms)} terminal spans for final "
                f"attempt {final} ({', '.join(kinds)})")
        elif cell["status"] == "ok" and final_terms[0]["kind"] != "ack":
            problems.append(
                f"{label}: cell is ok but its terminal is "
                f"{final_terms[0]['kind']}")
    return problems


def canonical(tree: Dict[str, Any]) -> str:
    """The deterministic projection: byte-identical across schedules.

    Drops every ``"wall"`` sub-object and every ``det=False`` event
    (renewals, steals, store-retry backoffs — schedule facts), orders
    rows by (key, causal kind order, attempt, span), and emits compact
    JSON lines.  What survives is a pure function of config + seed +
    fault plan, so two runs of the same sweep — any ``--jobs``, any
    worker count — compare equal with ``==``.
    """
    projected = []
    for row in tree["spans"].values():
        projected.append({
            "trace": row["trace"],
            "span": row["span"],
            "parent": row.get("parent"),
            "kind": row["kind"],
            "name": row["name"],
            "key": row.get("key", ""),
            "attempt": row.get("attempt", 0),
            "status": row.get("status", ""),
            "events": [e for e in row.get("events", []) if e.get("det")],
        })
    projected.sort(key=_child_sort_key)
    return "\n".join(
        json.dumps(row, sort_keys=True, separators=(",", ":"))
        for row in projected) + "\n"


# -- critical path ------------------------------------------------------------

def _duration(row: Dict[str, Any]) -> float:
    wall = row.get("wall") or {}
    start, end = wall.get("start"), wall.get("end")
    if isinstance(start, (int, float)) and isinstance(end, (int, float)):
        return max(0.0, float(end) - float(start))
    return 0.0


def critical_path(tree: Dict[str, Any]) -> Dict[str, Any]:
    """Attribute each cell's wall window to where the time went.

    Buckets (cell-seconds — concurrent cells overlap, so they sum to
    more than the sweep's wall time):

    * ``execute`` — the final attempt's execute span;
    * ``retry`` — earlier attempts (their execute + nack spans) and
      nacks of the final attempt;
    * ``store`` — claim and ack spans (queue/store I/O);
    * ``queue_wait`` — the rest of the cell's window: published but
      unclaimed, or backing off between attempts.

    The ``critical_cell`` is the longest cell window — the sweep cannot
    finish before it does, so its breakdown is where optimization
    effort pays first.
    """
    spans = tree["spans"]
    totals = {"queue_wait": 0.0, "execute": 0.0, "retry": 0.0, "store": 0.0}
    cells: List[Dict[str, Any]] = []
    for sid in sorted(spans):
        cell = spans[sid]
        if cell["kind"] != "cell" or cell["status"] == "cached":
            continue
        subtree: List[Dict[str, Any]] = []
        stack = list(tree["children"].get(sid, ()))
        while stack:
            child = stack.pop()
            subtree.append(spans[child])
            stack.extend(tree["children"].get(child, ()))
        executes = [r for r in subtree if r["kind"] == "execute"]
        final = max((r["attempt"] for r in executes), default=0)
        breakdown = {"queue_wait": 0.0, "execute": 0.0,
                     "retry": 0.0, "store": 0.0}
        for row in subtree:
            if row["kind"] == "execute":
                bucket = "execute" if row["attempt"] == final else "retry"
            elif row["kind"] == "nack":
                bucket = "retry"
            elif row["kind"] in ("claim", "ack"):
                bucket = "store"
            else:
                continue
            breakdown[bucket] += _duration(row)
        window = _duration(cell)
        accounted = sum(breakdown.values())
        breakdown["queue_wait"] = max(0.0, window - accounted)
        for bucket, seconds in breakdown.items():
            totals[bucket] += seconds
        cells.append({
            "cell": cell["name"], "key": cell["key"],
            "status": cell["status"], "attempts": cell["attempt"],
            "window_s": window, "breakdown": breakdown,
        })
    cells.sort(key=lambda c: (-c["window_s"], c["key"]))
    root = spans.get(tree["root"]) if tree["root"] else None
    return {
        "trace": tree["trace"],
        "sweep_wall_s": _duration(root) if root else None,
        "cells": len(cells),
        "totals": totals,
        "critical_cell": cells[0] if cells else None,
        "slowest": cells[:5],
    }


# -- rendering ----------------------------------------------------------------

def _fmt_s(value: Optional[float]) -> str:
    return "-" if value is None else f"{value:.3f}s"


def render_critical_path(report: Dict[str, Any]) -> str:
    """Plain-text rendering of a :func:`critical_path` report."""
    lines = [
        "== critical path ==",
        f"trace      : {report['trace']}",
        f"sweep wall : {_fmt_s(report['sweep_wall_s'])}",
        f"cells      : {report['cells']} executed",
    ]
    totals = report["totals"]
    grand = sum(totals.values())
    lines.append("cell-seconds by bucket "
                 "(concurrent cells overlap; not wall time):")
    for bucket in ("execute", "retry", "store", "queue_wait"):
        share = totals[bucket] / grand * 100.0 if grand else 0.0
        lines.append(f"  {bucket:<10s} {totals[bucket]:10.3f}s  "
                     f"{share:5.1f}%")
    crit = report.get("critical_cell")
    if crit is not None:
        b = crit["breakdown"]
        lines.append(
            f"critical cell: {crit['cell']} "
            f"({_fmt_s(crit['window_s'])} window, "
            f"{crit['attempts']} attempt(s)) — "
            f"execute={_fmt_s(b['execute'])} retry={_fmt_s(b['retry'])} "
            f"store={_fmt_s(b['store'])} "
            f"queue_wait={_fmt_s(b['queue_wait'])}")
    return "\n".join(lines) + "\n"


def render_tree(tree: Dict[str, Any], *, max_cells: int = 0) -> str:
    """Indented text rendering of the stitched span tree."""
    spans = tree["spans"]
    lines: List[str] = [f"trace {tree['trace']}"]

    def walk(sid: str, depth: int) -> None:
        row = spans[sid]
        wall = row.get("wall") or {}
        worker = wall.get("worker", "")
        dur = _duration(row)
        marks = "".join(
            f" [{e['name']}]" for e in row.get("events", []))
        attempt = row.get("attempt") or 0
        head = f"{'  ' * depth}{row['kind']} {row['name']}"
        if attempt:
            head += f" #{attempt}"
        tail = f" ({row.get('status')}, {dur:.3f}s"
        if worker:
            tail += f", {worker}"
        lines.append(head + tail + ")" + marks)
        for child in tree["children"].get(sid, ()):
            walk(child, depth + 1)

    if tree["root"]:
        root_kids = tree["children"].get(tree["root"], [])
        shown = root_kids if not max_cells else root_kids[:max_cells]
        row = spans[tree["root"]]
        lines.append(f"sweep {row['name']} ({row['status']}, "
                     f"{_duration(row):.3f}s)")
        for child in shown:
            walk(child, 1)
        if max_cells and len(root_kids) > max_cells:
            lines.append(f"  (+{len(root_kids) - max_cells} more cells)")
    else:
        for sid in sorted(spans):
            if spans[sid].get("parent") is None:
                walk(sid, 0)
    return "\n".join(lines) + "\n"

"""One telemetry-enabled run: directory layout, activation, manifest.

:class:`TelemetrySession` owns the on-disk telemetry directory for one
experiment run::

    <dir>/
        manifest.json     run manifest (version, config, counts, wall)
        metrics.jsonl     every metric series (deterministic)
        spans.jsonl       one span per cell (wall fields under "wall")
        series/*.jsonl    per-partition time series, one file per
                          simulation a cell ran (deterministic)
        lifecycle/*.jsonl partition control-plane events (create /
                          retire / retarget), written only by cells
                          whose caches saw lifecycle activity
        traces/*.jsonl    distributed-trace spans (``trace=True``):
                          coordinator.jsonl plus one file per worker
                          process; see repro.obs.trace
        profile/*.prof    optional cProfile captures (wall-clock)

Used as a context manager around the runner call::

    with TelemetrySession(path, experiment="fig3") as session:
        run_experiment("fig3", ..., telemetry=session.telemetry)

``__enter__`` exports the :mod:`repro.obs.runtime` environment variables
(and creates the directory) so worker processes spawned afterwards
record series; ``__exit__`` restores the environment and writes the
artifacts.  The manifest separates the deterministic facts of the run
(version, configuration, cell counts) from everything wall-clock, which
lives under the single ``"wall"`` key — mirroring the span convention —
so reproducibility checks can compare manifests minus ``"wall"``.
"""

from __future__ import annotations

import json
import os
import time
from contextlib import contextmanager
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Tuple, Union

from ..errors import ConfigurationError
from .metrics import MetricsRegistry
from .runtime import (
    DEFAULT_INTERVAL,
    TELEMETRY_ENV,
    TELEMETRY_INTERVAL_ENV,
    TELEMETRY_PROFILE_ENV,
)
from .spans import RunTelemetry
from .trace import TRACE_ENV

__all__ = ["TelemetrySession"]


def _package_version() -> str:
    from .. import __version__  # deferred: repro/__init__ may be mid-import
    return __version__


class TelemetrySession:
    """Telemetry directory + activation for one experiment run."""

    def __init__(self, path: Union[str, Path], *, experiment: str = "",
                 interval: int = DEFAULT_INTERVAL,
                 profile: bool = False, trace: bool = False) -> None:
        if interval < 1:
            raise ConfigurationError(
                f"sampling interval must be >= 1, got {interval}")
        self.dir = Path(path)
        self.experiment = experiment
        self.interval = int(interval)
        self.profile = bool(profile)
        self.trace = bool(trace)
        self.metrics = MetricsRegistry()
        #: Hand this to ``run_cells(..., telemetry=...)`` to collect spans.
        self.telemetry = RunTelemetry(self.metrics, experiment)
        if self.trace:
            # Points RunTelemetry.begin at traces/; activation exports
            # $REPRO_TRACE so worker processes write their own files.
            self.telemetry.trace_dir = self.dir / "traces"
        self._phases: List[Tuple[str, float]] = []
        self._saved_env: Dict[str, Optional[str]] = {}
        self._t0: Optional[float] = None
        self._started_iso = ""
        self._active = False

    # -- activation -----------------------------------------------------------
    def activate(self) -> "TelemetrySession":
        """Create the directory and export the worker environment."""
        if self._active:
            raise ConfigurationError("telemetry session is already active")
        self.dir.mkdir(parents=True, exist_ok=True)
        (self.dir / "series").mkdir(exist_ok=True)
        env = {
            TELEMETRY_ENV: str(self.dir),
            TELEMETRY_INTERVAL_ENV: str(self.interval),
            TELEMETRY_PROFILE_ENV: "1" if self.profile else "0",
        }
        if self.trace:
            traces = self.dir / "traces"
            traces.mkdir(exist_ok=True)
            # Trace files are append-mode (workers reopen across
            # items), so a fresh run must start from an empty dir.
            for stale in sorted(traces.glob("*.jsonl")):
                stale.unlink()
            env[TRACE_ENV] = str(traces)
        self._saved_env = {key: os.environ.get(key) for key in env}
        os.environ.update(env)
        self._t0 = time.monotonic()
        # Wall-clock by design: lands only under the manifest's "wall" key.
        self._started_iso = datetime.now(timezone.utc).isoformat()  # reprolint: disable=DET002
        self._active = True
        return self

    def __enter__(self) -> "TelemetrySession":
        return self.activate()

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        self.finish()

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Time one named phase of the run (build / execute / render ...).

        Timings are wall-clock and appear only under the manifest's
        ``"wall"`` key, in phase order.
        """
        start = time.monotonic()
        try:
            yield
        finally:
            self._phases.append((name, time.monotonic() - start))

    # -- artifacts ------------------------------------------------------------
    def _series_files(self) -> List[str]:
        series_dir = self.dir / "series"
        if not series_dir.is_dir():
            return []
        return sorted(p.name for p in series_dir.glob("*.jsonl"))

    def _lifecycle_files(self) -> List[str]:
        lifecycle_dir = self.dir / "lifecycle"
        if not lifecycle_dir.is_dir():
            return []
        return sorted(p.name for p in lifecycle_dir.glob("*.jsonl"))

    def _trace_files(self) -> List[str]:
        traces_dir = self.dir / "traces"
        if not traces_dir.is_dir():
            return []
        return sorted(p.name for p in traces_dir.glob("*.jsonl"))

    def manifest(self) -> Dict[str, Any]:
        """The run manifest; wall-clock facts live under ``"wall"``.

        The ``artifacts.lifecycle`` key appears only when a cell wrote
        partition-lifecycle events, so runs without control-plane
        activity produce manifests identical to pre-lifecycle ones.
        """
        artifacts: Dict[str, Any] = {
            "metrics": "metrics.jsonl",
            "spans": "spans.jsonl",
            "series": self._series_files(),
        }
        lifecycle = self._lifecycle_files()
        if lifecycle:
            artifacts["lifecycle"] = lifecycle
        traces = self._trace_files()
        if traces:
            artifacts["traces"] = traces
        return {
            "version": _package_version(),
            "experiment": self.experiment,
            "interval": self.interval,
            "profile": self.profile,
            "cells": self.telemetry.counts(),
            "artifacts": artifacts,
            "wall": {
                "started_utc": self._started_iso,
                "total_s": (time.monotonic() - self._t0
                            if self._t0 is not None else None),
                "phases": [
                    {"name": name, "seconds": seconds}
                    for name, seconds in self._phases],
            },
        }

    def finish(self) -> Path:
        """Restore the environment and write metrics/spans/manifest."""
        if self._active:
            for key, value in self._saved_env.items():
                if value is None:
                    os.environ.pop(key, None)
                else:
                    os.environ[key] = value
            self._saved_env = {}
            self._active = False
        self.metrics.export_jsonl(self.dir / "metrics.jsonl")
        self.telemetry.write_jsonl(self.dir / "spans.jsonl")
        if self.trace:
            self.telemetry.write_trace()
        manifest_path = self.dir / "manifest.json"
        with open(manifest_path, "w", encoding="utf-8") as fh:
            json.dump(self.manifest(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        return manifest_path

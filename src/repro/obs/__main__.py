"""CLI for telemetry artifacts: ``python -m repro.obs <command> DIR``.

``report``
    Render the text dashboard for a run directory (written by
    ``--telemetry`` runs of the experiments CLI) to stdout or ``--out``.
``validate``
    Check every artifact in a run directory against the JSONL schemas;
    exits non-zero listing each problem (the CI smoke job's gate).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .report import render_report
from .schema import validate_run_dir


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Inspect telemetry run directories.")
    sub = parser.add_subparsers(dest="command", required=True)

    report = sub.add_parser(
        "report", help="render the text dashboard for a run directory")
    report.add_argument("dir", help="telemetry run directory")
    report.add_argument("--top", type=int, default=10, metavar="N",
                        help="slowest cells to list (default 10)")
    report.add_argument("--width", type=int, default=60,
                        help="sparkline width in characters (default 60)")
    report.add_argument("--max-series", type=int, default=4, metavar="N",
                        help="series files to plot (default 4)")
    report.add_argument("--out", default=None, metavar="FILE",
                        help="write the dashboard to FILE instead of stdout")

    validate = sub.add_parser(
        "validate", help="validate a run directory against the schemas")
    validate.add_argument("dir", help="telemetry run directory")

    args = parser.parse_args(argv)
    if args.command == "report":
        text = render_report(args.dir, top_n=args.top, width=args.width,
                             max_series=args.max_series)
        if args.out:
            with open(args.out, "w", encoding="utf-8") as fh:
                fh.write(text)
        else:
            sys.stdout.write(text)
        return 0
    problems = validate_run_dir(args.dir)
    if problems:
        for problem in problems:
            print(problem, file=sys.stderr)
        print(f"{len(problems)} schema problem(s) in {args.dir}",
              file=sys.stderr)
        return 1
    print(f"telemetry artifacts in {args.dir} are valid")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""CLI for telemetry artifacts: ``python -m repro.obs <command> DIR``.

``report``
    Render the text dashboard for a run directory (written by
    ``--telemetry`` runs of the experiments CLI) to stdout or ``--out``;
    ``--json`` emits the same facts as one machine-readable object.
``validate``
    Check every artifact in a run directory against the JSONL schemas;
    exits non-zero listing each problem (the CI smoke job's gate).
``trace``
    Stitch ``traces/*.jsonl`` from one or more sources (run dirs,
    traces dirs, files) into the sweep's span tree; print the tree and
    the critical-path report, or ``--check`` causal completeness, or
    emit the ``--canonical`` schedule-independent projection.
``top``
    Live fleet dashboard over a store's work queue and/or a run
    directory's trace and series tails, with declarative ``--rule``
    alerts; exits 1 when any rule fires (``--once`` for CI).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from ..errors import ConfigurationError
from .report import render_report, report_data
from .schema import validate_run_dir
from .stitch import (canonical, completeness, critical_path, load_trace_rows,
                     render_critical_path, render_tree, stitch)
from .top import AlertRule, top


def _cmd_report(args: argparse.Namespace) -> int:
    if args.json:
        text = json.dumps(report_data(args.dir, top_n=args.top),
                          indent=2, sort_keys=True) + "\n"
    else:
        text = render_report(args.dir, top_n=args.top, width=args.width,
                             max_series=args.max_series)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(text)
    else:
        sys.stdout.write(text)
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    problems = validate_run_dir(args.dir)
    if problems:
        for problem in problems:
            print(problem, file=sys.stderr)
        print(f"{len(problems)} schema problem(s) in {args.dir}",
              file=sys.stderr)
        return 1
    print(f"telemetry artifacts in {args.dir} are valid")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    rows = load_trace_rows(args.sources)
    tree = stitch(rows, trace_id=args.trace_id)
    problems = completeness(tree)
    if args.check:
        if problems:
            for problem in problems:
                print(problem, file=sys.stderr)
            print(f"{len(problems)} completeness problem(s) in trace "
                  f"{tree['trace']}", file=sys.stderr)
            return 1
        print(f"trace {tree['trace']} is complete "
              f"({len(tree['spans'])} spans)")
        return 0
    if args.canonical:
        sys.stdout.write(canonical(tree))
        return 0
    sys.stdout.write(render_tree(tree, max_cells=args.max_cells))
    sys.stdout.write("\n")
    sys.stdout.write(render_critical_path(critical_path(tree)))
    if problems:
        print(f"\nWARNING: {len(problems)} completeness problem(s); "
              "run with --check for the list", file=sys.stderr)
        return 1
    return 0


def _cmd_top(args: argparse.Namespace) -> int:
    rules = [AlertRule.parse(text) for text in args.rule]
    return top(store_url=args.store, queue_name=args.queue,
               run_dir=args.dir, rules=rules, once=args.once,
               interval=args.interval, max_samples=args.max_samples)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Inspect telemetry run directories.")
    sub = parser.add_subparsers(dest="command", required=True)

    report = sub.add_parser(
        "report", help="render the text dashboard for a run directory")
    report.add_argument("dir", help="telemetry run directory")
    report.add_argument("--top", type=int, default=10, metavar="N",
                        help="slowest cells to list (default 10)")
    report.add_argument("--width", type=int, default=60,
                        help="sparkline width in characters (default 60)")
    report.add_argument("--max-series", type=int, default=4, metavar="N",
                        help="series files to plot (default 4)")
    report.add_argument("--json", action="store_true",
                        help="emit the report facts as JSON instead of text")
    report.add_argument("--out", default=None, metavar="FILE",
                        help="write the dashboard to FILE instead of stdout")

    validate = sub.add_parser(
        "validate", help="validate a run directory against the schemas")
    validate.add_argument("dir", help="telemetry run directory")

    trace = sub.add_parser(
        "trace", help="stitch trace files into the sweep's span tree")
    trace.add_argument("sources", nargs="+",
                       help="run dirs, traces dirs, or trace .jsonl files")
    trace.add_argument("--trace-id", default=None,
                       help="select one trace when sources hold several")
    trace.add_argument("--check", action="store_true",
                       help="only check causal completeness (CI gate)")
    trace.add_argument("--canonical", action="store_true",
                       help="emit the schedule-independent projection")
    trace.add_argument("--max-cells", type=int, default=0, metavar="N",
                       help="cap rendered cell subtrees (0 = all)")

    live = sub.add_parser(
        "top", help="live fleet dashboard over queue + telemetry tails")
    live.add_argument("dir", nargs="?", default=None,
                      help="telemetry run directory to tail (optional)")
    live.add_argument("--store", default=None, metavar="URL",
                      help="experiment store URL whose queue to sample")
    live.add_argument("--queue", default=None, metavar="NAME",
                      help="work-queue name (default: the store's only "
                           "queue; required when it holds several)")
    live.add_argument("--rule", action="append", default=[],
                      metavar="EXPR",
                      help="alert rule '<metric> <op> <number>'; "
                           "repeatable; any firing rule exits 1")
    live.add_argument("--once", action="store_true",
                      help="sample once and exit (CI mode)")
    live.add_argument("--interval", type=float, default=1.0,
                      help="refresh interval in seconds (default 1.0)")
    live.add_argument("--max-samples", type=int, default=None, metavar="N",
                      help="stop after N refreshes (default: until drained)")

    args = parser.parse_args(argv)
    handlers = {"report": _cmd_report, "validate": _cmd_validate,
                "trace": _cmd_trace, "top": _cmd_top}
    try:
        return handlers[args.command](args)
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())

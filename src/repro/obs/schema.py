"""Hand-rolled validators for the telemetry artifact schemas.

No jsonschema dependency: each artifact kind (metrics / series / spans
rows, the run manifest) gets a small structural checker that returns a
list of human-readable problem strings — empty means valid.  The CI
telemetry smoke job runs ``python -m repro.obs validate DIR`` over a
real run, so these checkers *are* the schema documentation's executable
form (the prose lives in EXPERIMENTS.md).

Checks are exact: unexpected keys are errors, not ignored — the schemas
are this repo's own output format, so any drift between writer and
checker is a bug worth failing on.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Callable, Dict, List, Tuple, Union

__all__ = [
    "SCHEMA_VERSIONS",
    "header_line",
    "header_row",
    "is_header_row",
    "load_jsonl",
    "validate_lifecycle_row",
    "validate_manifest",
    "validate_metrics_row",
    "validate_run_dir",
    "validate_series_row",
    "validate_span_row",
    "validate_trace_row",
]

#: Current schema version of every JSONL artifact kind.  The first row
#: of each file is a header — ``{"artifact": kind, "schema_version": N}``
#: — so readers can reject files written by an incompatible future
#: build with a clear error instead of a KeyError three fields in.
SCHEMA_VERSIONS = {
    "metrics": 1,
    "spans": 1,
    "series": 1,
    "lifecycle": 1,
    "trace": 1,
}


def header_row(kind: str) -> Dict[str, Any]:
    """The header row every ``kind`` JSONL artifact starts with."""
    return {"artifact": kind, "schema_version": SCHEMA_VERSIONS[kind]}


def header_line(kind: str) -> str:
    """:func:`header_row` serialized exactly as the writers emit it."""
    return json.dumps(header_row(kind), sort_keys=True,
                      separators=(",", ":"))


def is_header_row(row: Any) -> bool:
    """True for a schema header row (of any artifact kind/version)."""
    return isinstance(row, dict) and "schema_version" in row


def load_jsonl(path: Union[str, Path]) -> List[Any]:
    """Read a JSONL artifact's data rows, skipping the schema header.

    The lenient reader the dashboards use: no validation beyond JSON
    parsing (run ``validate_run_dir`` for that), tolerant of files
    predating the header row.
    """
    rows = []
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            row = json.loads(line)
            if not is_header_row(row):
                rows.append(row)
    return rows

#: JSON numbers (bool is an int subclass in Python; exclude explicitly).
def _is_num(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _is_int(value: Any) -> bool:
    return isinstance(value, int) and not isinstance(value, bool)


def _check_keys(row: Dict[str, Any], required: Tuple[str, ...],
                where: str) -> List[str]:
    problems = []
    for key in required:
        if key not in row:
            problems.append(f"{where}: missing key {key!r}")
    for key in row:
        if key not in required:
            problems.append(f"{where}: unexpected key {key!r}")
    return problems


def validate_metrics_row(row: Any, where: str = "metrics") -> List[str]:
    """Problems with one ``metrics.jsonl`` row (empty list = valid)."""
    if not isinstance(row, dict):
        return [f"{where}: row must be an object, got {type(row).__name__}"]
    kind = row.get("type")
    if kind not in ("counter", "gauge", "histogram"):
        return [f"{where}: 'type' must be counter/gauge/histogram, "
                f"got {kind!r}"]
    base = ("type", "name", "labels")
    per_kind = {
        "counter": base + ("value",),
        "gauge": base + ("value",),
        "histogram": base + ("buckets", "counts", "count", "sum"),
    }
    problems = _check_keys(row, per_kind[kind], where)
    if not isinstance(row.get("name"), str) or not row.get("name"):
        problems.append(f"{where}: 'name' must be a non-empty string")
    labels = row.get("labels")
    if not isinstance(labels, dict) or not all(
            isinstance(k, str) and isinstance(v, str)
            for k, v in labels.items()):
        problems.append(f"{where}: 'labels' must map strings to strings")
    if kind == "counter":
        if not _is_int(row.get("value")) or row.get("value", 0) < 0:
            problems.append(f"{where}: counter 'value' must be an int >= 0")
    elif kind == "gauge":
        if not _is_num(row.get("value")):
            problems.append(f"{where}: gauge 'value' must be a number")
    else:
        buckets = row.get("buckets")
        counts = row.get("counts")
        if (not isinstance(buckets, list) or not buckets
                or not all(_is_num(b) for b in buckets)):
            problems.append(
                f"{where}: 'buckets' must be a non-empty number list")
        elif any(a >= b for a, b in zip(buckets, buckets[1:])):
            problems.append(f"{where}: 'buckets' must be strictly increasing")
        if (not isinstance(counts, list)
                or not all(_is_int(c) and c >= 0 for c in counts)):
            problems.append(f"{where}: 'counts' must be a list of ints >= 0")
        elif isinstance(buckets, list) and len(counts) != len(buckets) + 1:
            problems.append(
                f"{where}: 'counts' must have len(buckets)+1 entries "
                f"(+Inf overflow)")
        if not _is_int(row.get("count")) or row.get("count", 0) < 0:
            problems.append(f"{where}: 'count' must be an int >= 0")
        elif isinstance(counts, list) and all(
                _is_int(c) for c in counts) and sum(counts) != row["count"]:
            problems.append(f"{where}: 'count' must equal sum of 'counts'")
        if not _is_num(row.get("sum")):
            problems.append(f"{where}: 'sum' must be a number")
    return problems


_SERIES_KEYS = ("access", "part", "occupancy", "target", "alpha",
                "miss_rate", "insertions", "evictions")


def validate_series_row(row: Any, where: str = "series") -> List[str]:
    """Problems with one ``series/*.jsonl`` row (empty list = valid)."""
    if not isinstance(row, dict):
        return [f"{where}: row must be an object, got {type(row).__name__}"]
    problems = _check_keys(row, _SERIES_KEYS, where)
    for key in ("access", "part", "occupancy", "target",
                "insertions", "evictions"):
        value = row.get(key)
        if not _is_int(value) or value < 0:
            problems.append(f"{where}: {key!r} must be an int >= 0")
    if _is_int(row.get("access")) and row["access"] < 1:
        problems.append(f"{where}: 'access' must be >= 1")
    alpha = row.get("alpha")
    if alpha is not None and not _is_num(alpha):
        problems.append(f"{where}: 'alpha' must be a number or null")
    rate = row.get("miss_rate")
    if rate is not None and not (_is_num(rate) and 0.0 <= rate <= 1.0):
        problems.append(f"{where}: 'miss_rate' must be null or in [0, 1]")
    return problems


_LIFECYCLE_KEYS = ("seq", "event", "part", "targets")
_LIFECYCLE_EVENTS = ("create", "retire", "retarget")


def validate_lifecycle_row(row: Any, where: str = "lifecycle") -> List[str]:
    """Problems with one ``lifecycle/*.jsonl`` row (empty list = valid).

    Rows mirror :attr:`PartitionedCache.lifecycle_log`: a sequence
    number, the event kind, the partition acted on (``-1`` for whole-
    cache retargets) and a snapshot of the full target vector.  Drivers
    that know the global access index stamp it as an optional
    ``"access"`` key.
    """
    if not isinstance(row, dict):
        return [f"{where}: row must be an object, got {type(row).__name__}"]
    problems = []
    for key in _LIFECYCLE_KEYS:
        if key not in row:
            problems.append(f"{where}: missing key {key!r}")
    for key in row:
        if key not in _LIFECYCLE_KEYS and key != "access":
            problems.append(f"{where}: unexpected key {key!r}")
    if not _is_int(row.get("seq")) or row.get("seq", 0) < 0:
        problems.append(f"{where}: 'seq' must be an int >= 0")
    if row.get("event") not in _LIFECYCLE_EVENTS:
        problems.append(
            f"{where}: 'event' must be one of {list(_LIFECYCLE_EVENTS)}")
    if not _is_int(row.get("part")) or row.get("part", 0) < -1:
        problems.append(f"{where}: 'part' must be an int >= -1")
    targets = row.get("targets")
    if (not isinstance(targets, list) or not targets
            or not all(_is_int(t) and t >= 0 for t in targets)):
        problems.append(
            f"{where}: 'targets' must be a non-empty list of ints >= 0")
    if "access" in row and (not _is_int(row["access"]) or row["access"] < 0):
        problems.append(f"{where}: 'access' must be an int >= 0")
    return problems


_SPAN_KEYS = ("index", "cell", "experiment", "key", "status", "attempts",
              "retries", "losses", "cache_hit", "errors", "wall")
_WALL_KEYS = ("queued_s", "started_s", "finished_s", "duration_s")
_SPAN_STATUSES = ("ok", "cached", "failed", "pending")


def validate_span_row(row: Any, where: str = "spans") -> List[str]:
    """Problems with one ``spans.jsonl`` row (empty list = valid)."""
    if not isinstance(row, dict):
        return [f"{where}: row must be an object, got {type(row).__name__}"]
    problems = _check_keys(row, _SPAN_KEYS, where)
    if not _is_int(row.get("index")) or row.get("index", 0) < 0:
        problems.append(f"{where}: 'index' must be an int >= 0")
    for key in ("cell", "experiment", "key"):
        if not isinstance(row.get(key), str):
            problems.append(f"{where}: {key!r} must be a string")
    if row.get("status") not in _SPAN_STATUSES:
        problems.append(
            f"{where}: 'status' must be one of {list(_SPAN_STATUSES)}")
    for key in ("attempts", "retries", "losses"):
        value = row.get(key)
        if not _is_int(value) or value < 0:
            problems.append(f"{where}: {key!r} must be an int >= 0")
    if not isinstance(row.get("cache_hit"), bool):
        problems.append(f"{where}: 'cache_hit' must be a bool")
    errors = row.get("errors")
    if not isinstance(errors, list) or not all(
            isinstance(e, str) for e in errors):
        problems.append(f"{where}: 'errors' must be a list of strings")
    wall = row.get("wall")
    if not isinstance(wall, dict):
        problems.append(f"{where}: 'wall' must be an object")
    else:
        problems.extend(_check_keys(wall, _WALL_KEYS, f"{where}.wall"))
        for key in _WALL_KEYS:
            value = wall.get(key)
            if value is not None and not _is_num(value):
                problems.append(
                    f"{where}.wall: {key!r} must be a number or null")
    return problems


_TRACE_KEYS = ("trace", "span", "parent", "kind", "name", "key",
               "attempt", "status", "events", "wall")
_TRACE_KINDS = ("sweep", "cell", "claim", "execute", "ack", "nack", "lost")
_TRACE_STATUSES = ("ok", "error", "cached", "failed", "pending")
_TRACE_WALL_KEYS = ("start", "end", "worker")


def validate_trace_row(row: Any, where: str = "trace") -> List[str]:
    """Problems with one ``traces/*.jsonl`` row (empty list = valid)."""
    if not isinstance(row, dict):
        return [f"{where}: row must be an object, got {type(row).__name__}"]
    problems = _check_keys(row, _TRACE_KEYS, where)
    for key in ("trace", "span"):
        value = row.get(key)
        if not isinstance(value, str) or not value:
            problems.append(f"{where}: {key!r} must be a non-empty string")
    parent = row.get("parent")
    if parent is not None and not (isinstance(parent, str) and parent):
        problems.append(
            f"{where}: 'parent' must be a non-empty string or null")
    if row.get("kind") not in _TRACE_KINDS:
        problems.append(
            f"{where}: 'kind' must be one of {list(_TRACE_KINDS)}")
    for key in ("name", "key"):
        if not isinstance(row.get(key), str):
            problems.append(f"{where}: {key!r} must be a string")
    if not _is_int(row.get("attempt")) or row.get("attempt", 0) < 0:
        problems.append(f"{where}: 'attempt' must be an int >= 0")
    if row.get("status") not in _TRACE_STATUSES:
        problems.append(
            f"{where}: 'status' must be one of {list(_TRACE_STATUSES)}")
    events = row.get("events")
    if not isinstance(events, list):
        problems.append(f"{where}: 'events' must be a list")
    else:
        for n, event in enumerate(events):
            ewhere = f"{where}.events[{n}]"
            if not isinstance(event, dict):
                problems.append(f"{ewhere}: must be an object")
                continue
            if not isinstance(event.get("name"), str) or not event["name"]:
                problems.append(
                    f"{ewhere}: 'name' must be a non-empty string")
            if not isinstance(event.get("det"), bool):
                problems.append(f"{ewhere}: 'det' must be a bool")
            for key in sorted(event):
                if key in ("name", "det"):
                    continue
                value = event[key]
                if not isinstance(value, (str, bool)) and not _is_num(value):
                    problems.append(
                        f"{ewhere}: {key!r} must be a scalar")
    wall = row.get("wall")
    if not isinstance(wall, dict):
        problems.append(f"{where}: 'wall' must be an object")
    else:
        problems.extend(
            _check_keys(wall, _TRACE_WALL_KEYS, f"{where}.wall"))
        for key in ("start", "end"):
            value = wall.get(key)
            if value is not None and not _is_num(value):
                problems.append(
                    f"{where}.wall: {key!r} must be a number or null")
        if not isinstance(wall.get("worker"), str):
            problems.append(f"{where}.wall: 'worker' must be a string")
    return problems


_MANIFEST_KEYS = ("version", "experiment", "interval", "profile", "cells",
                  "artifacts", "wall")
_CELL_COUNT_KEYS = ("total", "completed", "cached", "failed", "retries",
                    "losses")


def validate_manifest(doc: Any, where: str = "manifest") -> List[str]:
    """Problems with a ``manifest.json`` document (empty list = valid)."""
    if not isinstance(doc, dict):
        return [f"{where}: must be an object, got {type(doc).__name__}"]
    problems = _check_keys(doc, _MANIFEST_KEYS, where)
    if not isinstance(doc.get("version"), str) or not doc.get("version"):
        problems.append(f"{where}: 'version' must be a non-empty string")
    if not isinstance(doc.get("experiment"), str):
        problems.append(f"{where}: 'experiment' must be a string")
    if not _is_int(doc.get("interval")) or doc.get("interval", 0) < 1:
        problems.append(f"{where}: 'interval' must be an int >= 1")
    if not isinstance(doc.get("profile"), bool):
        problems.append(f"{where}: 'profile' must be a bool")
    cells = doc.get("cells")
    if not isinstance(cells, dict):
        problems.append(f"{where}: 'cells' must be an object")
    else:
        problems.extend(_check_keys(cells, _CELL_COUNT_KEYS, f"{where}.cells"))
        for key, value in cells.items():
            if key in _CELL_COUNT_KEYS and (not _is_int(value) or value < 0):
                problems.append(
                    f"{where}.cells: {key!r} must be an int >= 0")
    artifacts = doc.get("artifacts")
    if not isinstance(artifacts, dict):
        problems.append(f"{where}: 'artifacts' must be an object")
    else:
        # "lifecycle" and "traces" are optional: lifecycle appears only
        # for runs whose cells saw partition control-plane activity,
        # traces only for runs recorded with tracing enabled.
        for key in ("metrics", "spans", "series"):
            if key not in artifacts:
                problems.append(f"{where}.artifacts: missing key {key!r}")
        for key in artifacts:
            if key not in ("metrics", "spans", "series", "lifecycle",
                           "traces"):
                problems.append(
                    f"{where}.artifacts: unexpected key {key!r}")
        for key in ("metrics", "spans"):
            if not isinstance(artifacts.get(key), str):
                problems.append(
                    f"{where}.artifacts: {key!r} must be a string")
        for key in ("series", "lifecycle", "traces"):
            listed = artifacts.get(key, [])
            if not isinstance(listed, list) or not all(
                    isinstance(s, str) for s in listed):
                problems.append(
                    f"{where}.artifacts: {key!r} must be a list of strings")
    if not isinstance(doc.get("wall"), dict):
        problems.append(f"{where}: 'wall' must be an object")
    return problems


def _validate_header(row: Any, kind: str, where: str) -> List[str]:
    """Problems with one artifact's schema header row."""
    if not is_header_row(row):
        return [f"{where}: missing schema header row; expected "
                f"{header_line(kind)} as the first line"]
    problems = []
    artifact = row.get("artifact")
    if artifact != kind:
        problems.append(
            f"{where}: header names artifact {artifact!r}, "
            f"expected {kind!r}")
    version = row.get("schema_version")
    supported = SCHEMA_VERSIONS[kind]
    if not _is_int(version):
        problems.append(
            f"{where}: 'schema_version' must be an int, got {version!r}")
    elif version != supported:
        problems.append(
            f"{where}: unsupported {kind} schema_version {version}; "
            f"this build reads version {supported} — re-record the run "
            f"or validate with a matching repro build")
    for key in sorted(row):
        if key not in ("artifact", "schema_version"):
            problems.append(f"{where}: unexpected header key {key!r}")
    return problems


def _validate_jsonl(path: Path, checker: Callable[[Any, str], List[str]],
                    kind: str) -> List[str]:
    problems: List[str] = []
    saw_header = False
    with open(path, encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            where = f"{path.name}:{lineno}"
            try:
                row = json.loads(line)
            except json.JSONDecodeError as exc:
                problems.append(f"{where}: invalid JSON ({exc.msg})")
                continue
            if not saw_header:
                saw_header = True
                problems.extend(_validate_header(row, kind, where))
                if is_header_row(row):
                    continue
                # Fall through: a headerless first row is still checked
                # as data so one problem doesn't mask another.
            problems.extend(checker(row, where))
    if not saw_header:
        problems.append(
            f"{path.name}: empty artifact; expected at least the "
            f"schema header row {header_line(kind)}")
    return problems


def validate_run_dir(path: Union[str, Path]) -> List[str]:
    """Validate every telemetry artifact of one run directory.

    Checks ``manifest.json``, ``metrics.jsonl``, ``spans.jsonl``, every
    ``series/*.jsonl`` and (when present) every ``lifecycle/*.jsonl``
    and ``traces/*.jsonl`` — including each file's ``schema_version``
    header — plus manifest/directory agreement on the series, lifecycle
    and traces file lists.  Returns all problems found (empty = valid).
    """
    root = Path(path)
    problems: List[str] = []
    manifest_path = root / "manifest.json"
    if not manifest_path.is_file():
        problems.append("manifest.json: missing")
    else:
        try:
            doc = json.loads(manifest_path.read_text(encoding="utf-8"))
        except json.JSONDecodeError as exc:
            problems.append(f"manifest.json: invalid JSON ({exc.msg})")
        else:
            problems.extend(validate_manifest(doc, "manifest.json"))
            artifacts = doc.get("artifacts", {})
            if not isinstance(artifacts, dict):
                artifacts = {}
            for key in ("series", "lifecycle", "traces"):
                listed = artifacts.get(key, [])
                if isinstance(listed, list):
                    actual = sorted(
                        p.name for p in (root / key).glob("*.jsonl")
                    ) if (root / key).is_dir() else []
                    if sorted(listed) != actual:
                        problems.append(
                            f"manifest.json: artifacts.{key} "
                            f"{sorted(listed)} does not match {key}/ "
                            f"contents {actual}")
    for name, checker, kind in (
            ("metrics.jsonl", validate_metrics_row, "metrics"),
            ("spans.jsonl", validate_span_row, "spans")):
        file_path = root / name
        if not file_path.is_file():
            problems.append(f"{name}: missing")
        else:
            problems.extend(_validate_jsonl(file_path, checker, kind))
    series_dir = root / "series"
    if series_dir.is_dir():
        for file_path in sorted(series_dir.glob("*.jsonl")):
            problems.extend(
                _validate_jsonl(file_path, validate_series_row, "series"))
    lifecycle_dir = root / "lifecycle"
    if lifecycle_dir.is_dir():
        for file_path in sorted(lifecycle_dir.glob("*.jsonl")):
            problems.extend(_validate_jsonl(
                file_path, validate_lifecycle_row, "lifecycle"))
    traces_dir = root / "traces"
    if traces_dir.is_dir():
        for file_path in sorted(traces_dir.glob("*.jsonl")):
            problems.extend(
                _validate_jsonl(file_path, validate_trace_row, "trace"))
    return problems

"""Structured runner spans: one record per executed experiment cell.

:class:`RunTelemetry` is the object the runner notifies
(:func:`repro.runner.run_cells` / :func:`repro.runner.resilience.run_pool`
accept it as their optional ``telemetry`` argument).  It materializes a
:class:`CellSpan` per cell covering the full scheduling lifecycle —
queued, started, retried attempts with their error types, pool losses,
cache hits, permanent failure or success — and mirrors the deterministic
facts into a :class:`~repro.obs.metrics.MetricsRegistry`.

Determinism contract: every wall-clock-derived field of a span lives
under its ``"wall"`` sub-object and nowhere else.  Stripping ``"wall"``
from each row leaves content that is byte-identical across repeated
identical runs (attempt counts and error types included, provided
failures themselves are deterministic, e.g. under a
:mod:`repro.runner.faults` plan).  Rows are emitted in cell order, not
completion order, for the same reason.  Content-addressed cache keys
and figure outputs never see any of this.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import (TYPE_CHECKING, Any, Dict, List, Optional, Sequence,
                    Tuple, Union)

from ..errors import ConfigurationError
from .metrics import MetricsRegistry
from .trace import TRACE_ID_ENV, TraceWriter, span_id, trace_id_for, wall_now

if TYPE_CHECKING:  # avoid a runtime repro.runner <-> repro.obs cycle
    from ..runner.cells import Cell
    from ..store import StoreStats

__all__ = ["CellSpan", "RunTelemetry"]

#: Bucket bounds for the attempts histogram (1 = first-try success).
_ATTEMPT_BUCKETS = (1.0, 2.0, 3.0, 5.0, 8.0)


class CellSpan:
    """Mutable lifecycle record of one cell within one run."""

    __slots__ = ("index", "cell", "experiment", "key", "status", "attempts",
                 "retries", "losses", "cache_hit", "errors",
                 "queued_s", "started_s", "finished_s", "duration_s")

    def __init__(self, index: int, label: str, experiment: str,
                 key: str) -> None:
        self.index = index
        self.cell = label
        self.experiment = experiment
        self.key = key
        self.status = "pending"
        self.attempts = 0
        self.retries = 0
        self.losses = 0
        self.cache_hit = False
        #: Error type names of failed attempts, in attempt order.
        self.errors: List[str] = []
        self.queued_s: Optional[float] = None
        self.started_s: Optional[float] = None
        self.finished_s: Optional[float] = None
        self.duration_s: Optional[float] = None

    def to_json(self) -> Dict[str, Any]:
        """Span row with every wall-clock field under ``"wall"``."""
        return {
            "index": self.index,
            "cell": self.cell,
            "experiment": self.experiment,
            "key": self.key,
            "status": self.status,
            "attempts": self.attempts,
            "retries": self.retries,
            "losses": self.losses,
            "cache_hit": self.cache_hit,
            "errors": list(self.errors),
            "wall": {
                "queued_s": self.queued_s,
                "started_s": self.started_s,
                "finished_s": self.finished_s,
                "duration_s": self.duration_s,
            },
        }


class RunTelemetry:
    """Collects cell spans and run metrics for one ``run_cells`` sweep.

    The runner drives the lifecycle hooks; everything is parent-process
    state (worker processes never see this object), so recording cannot
    perturb cell execution or results.
    """

    def __init__(self, metrics: Optional[MetricsRegistry] = None,
                 experiment: str = "") -> None:
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.experiment = experiment
        self.spans: List[CellSpan] = []
        self._by_index: Dict[int, CellSpan] = {}
        self._t0: Optional[float] = None
        #: Distributed-tracing state: a :class:`TelemetrySession` with
        #: ``trace=True`` points this at its ``traces/`` directory
        #: before the run; ``None`` keeps tracing fully off.
        self.trace_dir: Optional[Path] = None
        self.trace_id: str = ""
        self._trace_wall0: Optional[float] = None
        #: ``(index, error_type, attempts)`` of cells that died without
        #: a worker-side terminal span (lease exhausted, fleet aborted).
        self._trace_lost: List[Tuple[int, str, int]] = []

    # -- lifecycle hooks (called by repro.runner) ----------------------------
    def begin(self, cells: Sequence["Cell"], keys: Sequence[str]) -> None:
        """Open one span per cell; all cells are queued at sweep start.

        With tracing enabled this also opens the sweep's trace: the
        trace ID (a pure function of the cell keys) is computed here
        and exported as ``$REPRO_TRACE_ID`` so pool and inline workers
        — which see no queue payload — join the trace from the
        inherited environment.
        """
        self._t0 = time.monotonic()
        if self.trace_dir is not None:
            self.trace_id = trace_id_for(list(keys))
            self._trace_wall0 = wall_now()
            self._trace_lost = []
            os.environ[TRACE_ID_ENV] = self.trace_id
        self.spans = [
            CellSpan(i, cell.label, cell.experiment, keys[i])
            for i, cell in enumerate(cells)]
        self._by_index = {span.index: span for span in self.spans}
        for span in self.spans:
            span.queued_s = 0.0
        experiments = sorted({span.experiment for span in self.spans})
        gauge = self.metrics.gauge("runner.cells", ("experiment",))
        for name in experiments:
            gauge.set(sum(1 for s in self.spans if s.experiment == name),
                      experiment=name)

    def _span(self, index: int) -> CellSpan:
        try:
            return self._by_index[index]
        except KeyError:
            raise ConfigurationError(
                f"no span for cell index {index}; was begin() called?"
            ) from None

    def _elapsed(self) -> float:
        return time.monotonic() - self._t0 if self._t0 is not None else 0.0

    def cache_hit(self, index: int) -> None:
        """The cell's result was served from the content-addressed cache."""
        span = self._span(index)
        span.status = "cached"
        span.cache_hit = True
        span.finished_s = self._elapsed()
        self.metrics.counter("runner.cells.cached", ("experiment",)).inc(
            experiment=span.experiment)

    def started(self, index: int, attempt: int) -> None:
        """Attempt ``attempt`` (1-based) was handed to a worker/inline."""
        span = self._span(index)
        span.attempts = max(span.attempts, attempt)
        if span.started_s is None:
            span.started_s = self._elapsed()

    def retried(self, index: int, attempt: int,
                error: BaseException) -> None:
        """Attempt ``attempt`` failed and the cell will be retried."""
        span = self._span(index)
        span.retries += 1
        span.errors.append(type(error).__name__)
        self.metrics.counter(
            "runner.retries", ("experiment", "error")).inc(
                experiment=span.experiment, error=type(error).__name__)

    def lost(self, index: int) -> None:
        """The worker pool broke while the cell was in flight."""
        span = self._span(index)
        span.losses += 1
        self.metrics.counter("runner.pool.losses", ("experiment",)).inc(
            experiment=span.experiment)

    def completed(self, index: int, elapsed: float) -> None:
        """The cell produced a result (``elapsed`` = worker-side seconds)."""
        span = self._span(index)
        span.status = "ok"
        span.attempts = max(span.attempts, 1)
        span.finished_s = self._elapsed()
        span.duration_s = elapsed
        self.metrics.counter("runner.cells.completed", ("experiment",)).inc(
            experiment=span.experiment)
        self.metrics.histogram(
            "runner.cell.attempts", ("experiment",),
            buckets=_ATTEMPT_BUCKETS).observe(
                span.attempts, experiment=span.experiment)

    def failed(self, index: int, error: BaseException, attempts: int,
               elapsed: float) -> None:
        """The cell permanently failed after ``attempts`` attempts."""
        span = self._span(index)
        span.status = "failed"
        span.attempts = max(span.attempts, attempts)
        span.errors.append(type(error).__name__)
        span.finished_s = self._elapsed()
        span.duration_s = elapsed
        self.metrics.counter("runner.cells.failed", ("experiment",)).inc(
            experiment=span.experiment)
        self.metrics.histogram(
            "runner.cell.attempts", ("experiment",),
            buckets=_ATTEMPT_BUCKETS).observe(
                span.attempts, experiment=span.experiment)

    def store_stats(self, stats: "StoreStats") -> None:
        """Mirror the experiment store's end-of-sweep statistics.

        ``entries``/``quarantined`` describe the store's contents;
        ``hits``/``misses``/``puts``/``quarantines`` this run's
        traffic.  All are deterministic facts (no wall-clock), so they
        are safe outside a ``"wall"`` sub-object.
        """
        labels = ("backend",)
        self.metrics.gauge("store.entries", labels).set(
            stats.entries, backend=stats.backend)
        self.metrics.gauge("store.quarantined", labels).set(
            stats.quarantined, backend=stats.backend)
        self.metrics.gauge("store.hits", labels).set(
            stats.hits, backend=stats.backend)
        self.metrics.gauge("store.misses", labels).set(
            stats.misses, backend=stats.backend)
        self.metrics.gauge("store.puts", labels).set(
            stats.puts, backend=stats.backend)
        self.metrics.gauge("store.quarantines", labels).set(
            stats.quarantines, backend=stats.backend)

    def queue_stats(self, queue: str, *, renewals: int,
                    steals: int) -> None:
        """Mirror the work queue's end-of-sweep heartbeat counters.

        ``renewals`` counts lease-renewal heartbeats (live workers
        running cells longer than their lease); ``steals`` counts
        expired-lease steals (workers that died holding an item).
        Together they prove the distinction the heartbeat exists for: a
        healthy fleet shows ``steals == 0`` however slow its cells.
        Both are timing-dependent (like ``runner.retries``), so they
        describe the run without feeding results or cache keys.
        """
        labels = ("queue",)
        self.metrics.gauge("queue.renewals", labels).set(
            renewals, queue=queue)
        self.metrics.gauge("queue.steals", labels).set(
            steals, queue=queue)

    # -- distributed tracing -------------------------------------------------
    def trace_context(self, index: int) -> Optional[Dict[str, str]]:
        """Trace context to stamp into cell ``index``'s queue payload.

        ``{"trace": ..., "parent": ...}`` — the parent is the cell
        span's derived ID, so a worker on any machine can hang its
        ``claim``/``execute`` spans under the right node without
        talking to the coordinator.  ``None`` when tracing is off.
        """
        if not self.trace_id:
            return None
        span = self._span(index)
        return {"trace": self.trace_id,
                "parent": span_id(self.trace_id, "cell", span.key)}

    def trace_lost(self, index: int, error_type: str,
                   attempts: int) -> None:
        """Record a coordinator-side terminal for a worker-less failure.

        Only for cells whose workers died *without* nacking (lease
        stolen past the loss budget, fleet aborted): worker-side
        failures already wrote their own ``nack`` terminal span, and a
        second terminal would break the one-leaf-per-cell invariant.
        """
        if self.trace_id:
            self._trace_lost.append((index, error_type, attempts))

    def write_trace(self) -> Optional[Path]:
        """Write the coordinator's trace file (root sweep + cell spans).

        Timestamps are the sweep-relative monotonic offsets the cell
        spans already carry, rebased onto the wall-clock epoch captured
        at :meth:`begin` — so coordinator rows and worker rows (which
        stamp :func:`repro.obs.trace.wall_now` directly) share one
        timeline.  Returns ``None`` when tracing is off.
        """
        if self.trace_dir is None or not self.trace_id:
            return None
        os.environ.pop(TRACE_ID_ENV, None)
        tid = self.trace_id
        wall0 = self._trace_wall0

        def at(offset: Optional[float]) -> Optional[float]:
            if offset is None or wall0 is None:
                return None
            return wall0 + offset

        root_sid = span_id(tid, "sweep")
        rows: List[Dict[str, Any]] = [{
            "trace": tid, "span": root_sid, "parent": None,
            "kind": "sweep", "name": self.experiment or "sweep",
            "key": "", "attempt": 0, "status": "ok", "events": [],
            "wall": {"start": wall0, "end": wall_now(),
                     "worker": "coordinator"},
        }]
        for span in self.spans:
            rows.append({
                "trace": tid,
                "span": span_id(tid, "cell", span.key),
                "parent": root_sid, "kind": "cell", "name": span.cell,
                "key": span.key, "attempt": span.attempts,
                "status": span.status, "events": [],
                "wall": {"start": at(span.queued_s),
                         "end": at(span.finished_s),
                         "worker": "coordinator"},
            })
        for index, error_type, attempts in self._trace_lost:
            span = self._by_index[index]
            rows.append({
                "trace": tid,
                "span": span_id(tid, "lost", span.key, attempts),
                "parent": span_id(tid, "cell", span.key), "kind": "lost",
                "name": span.cell, "key": span.key, "attempt": attempts,
                "status": "error",
                # Which failures end in a coordinator-side loss is a
                # fact of the schedule (who died when), not of the
                # computation, hence det=False.
                "events": [{"name": "lost", "det": False,
                            "error_type": error_type}],
                "wall": {"start": None, "end": at(span.finished_s),
                         "worker": "coordinator"},
            })
        writer = TraceWriter(self.trace_dir / "coordinator.jsonl")
        for row in rows:
            writer.write(row)
        writer.close()
        return writer.path

    # -- export ---------------------------------------------------------------
    def rows(self) -> List[Dict[str, Any]]:
        """Span rows in cell order (deterministic modulo ``"wall"``)."""
        return [span.to_json() for span in self.spans]

    def counts(self) -> Dict[str, int]:
        """Summary counters for the run manifest."""
        statuses = [span.status for span in self.spans]
        return {
            "total": len(self.spans),
            "completed": statuses.count("ok"),
            "cached": statuses.count("cached"),
            "failed": statuses.count("failed"),
            "retries": sum(span.retries for span in self.spans),
            "losses": sum(span.losses for span in self.spans),
        }

    def write_jsonl(self, path: Union[str, Path]) -> Path:
        """Write one JSON object per span, in cell order."""
        from .schema import header_line
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(header_line("spans") + "\n")
            for row in self.rows():
                fh.write(json.dumps(row, sort_keys=True,
                                    separators=(",", ":")) + "\n")
        return path

"""Text dashboard over a telemetry run directory.

``python -m repro.obs report DIR`` renders, from the artifacts a
:class:`~repro.obs.session.TelemetrySession` wrote:

* a run header (experiment, package version, cell counts, wall time);
* the top-N slowest cells with attempt/retry/fault annotations;
* a fault & retry summary grouped by error type;
* per-partition sparklines of the recorded time series — occupancy
  against target, and the alpha_i convergence that Figs. 3/5 of the
  paper argue from — rendered via
  :func:`repro.analysis.text_plots.sparkline`.

Everything is plain text (the repo's figures are text too) so the
dashboard can ride along as a CI artifact.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from ..analysis.text_plots import sparkline
from .schema import load_jsonl

__all__ = ["render_report", "report_data"]


def _load_jsonl(path: Path) -> List[Dict[str, Any]]:
    """Data rows of one artifact file (schema header skipped)."""
    if not path.is_file():
        return []
    return load_jsonl(path)


def _fmt_seconds(value: Optional[float]) -> str:
    return "-" if value is None else f"{value:8.3f}s"


def _spark(values: List[float], width: int, *,
           low: Optional[float] = None,
           high: Optional[float] = None) -> str:
    """Sparkline resampled to at most ``width`` characters."""
    if not values:
        return "(no samples)"
    if len(values) > width:
        n = len(values)
        values = [values[round(i * (n - 1) / (width - 1))]
                  for i in range(width)]
    return sparkline(values, low=low, high=high)


def _header_section(manifest: Dict[str, Any]) -> List[str]:
    cells = manifest.get("cells", {})
    wall = manifest.get("wall", {})
    total_s = wall.get("total_s")
    lines = [
        "== run ==",
        f"experiment : {manifest.get('experiment') or '(unnamed)'}",
        f"version    : repro {manifest.get('version', '?')}",
        f"interval   : every {manifest.get('interval', '?')} accesses",
        (f"cells      : {cells.get('total', 0)} total, "
         f"{cells.get('completed', 0)} run, {cells.get('cached', 0)} cached, "
         f"{cells.get('failed', 0)} failed"),
        (f"wall       : {_fmt_seconds(total_s).strip()} total"
         if total_s is not None else "wall       : -"),
    ]
    phases = wall.get("phases") or []
    if phases:
        rendered = ", ".join(f"{p.get('name')}={p.get('seconds', 0):.3f}s"
                             for p in phases)
        lines.append(f"phases     : {rendered}")
    return lines


def _slowest_section(spans: List[Dict[str, Any]], top_n: int) -> List[str]:
    lines = [f"== slowest cells (top {top_n}) =="]
    timed = [s for s in spans
             if s.get("wall", {}).get("duration_s") is not None]
    timed.sort(key=lambda s: (-s["wall"]["duration_s"], s.get("index", 0)))
    if not timed:
        lines.append("(no executed cells)")
        return lines
    for span in timed[:top_n]:
        notes = []
        if span.get("retries"):
            notes.append(f"{span['retries']} retries")
        if span.get("losses"):
            notes.append(f"{span['losses']} pool losses")
        if span.get("status") == "failed":
            notes.append("FAILED")
        suffix = f"  ({', '.join(notes)})" if notes else ""
        lines.append(f"{_fmt_seconds(span['wall']['duration_s'])}  "
                     f"{span.get('cell', '?')}{suffix}")
    return lines


def _faults_section(spans: List[Dict[str, Any]]) -> List[str]:
    lines = ["== faults & retries =="]
    by_error: Dict[str, int] = {}
    for span in spans:
        for error in span.get("errors", []):
            by_error[error] = by_error.get(error, 0) + 1
    retries = sum(s.get("retries", 0) for s in spans)
    losses = sum(s.get("losses", 0) for s in spans)
    failed = [s for s in spans if s.get("status") == "failed"]
    if not by_error and not losses:
        lines.append("(clean run: no faults, no retries)")
        return lines
    lines.append(f"retries={retries}  pool-losses={losses}  "
                 f"failed-cells={len(failed)}")
    for error in sorted(by_error):
        lines.append(f"  {error}: {by_error[error]} failed attempt(s)")
    for span in failed:
        lines.append(f"  FAILED {span.get('cell', '?')} after "
                     f"{span.get('attempts', 0)} attempt(s)")
    return lines


def _series_section(path: Path, width: int) -> List[str]:
    rows = _load_jsonl(path)
    lines = [f"-- {path.name} --"]
    if not rows:
        lines.append("(no samples)")
        return lines
    parts = sorted({int(row["part"]) for row in rows})
    for part in parts:
        mine = [row for row in rows if row["part"] == part]
        occ = [float(row["occupancy"]) for row in mine]
        target = mine[-1]["target"]
        hi = max(max(occ), float(target)) or 1.0
        lines.append(f"part {part} occupancy (target {target}):")
        lines.append(f"  {_spark(occ, width, low=0.0, high=hi)}  "
                     f"last={mine[-1]['occupancy']}")
        alphas = [float(row["alpha"]) for row in mine
                  if row.get("alpha") is not None]
        if alphas:
            lines.append(f"  alpha_{part}: "
                         f"{_spark(alphas, width)}  "
                         f"first={alphas[0]:.4g} last={alphas[-1]:.4g}")
        rates = [row["miss_rate"] for row in mine
                 if row.get("miss_rate") is not None]
        if rates:
            mean = sum(rates) / len(rates)
            lines.append(f"  miss rate: "
                         f"{_spark([float(r) for r in rates], width, low=0.0, high=1.0)}"
                         f"  mean={mean:.4f}")
    return lines


def report_data(run_dir: Union[str, Path], *,
                top_n: int = 10) -> Dict[str, Any]:
    """The report's facts as one JSON-serializable dict (``--json``).

    Mirrors the text sections — manifest header, slowest cells, fault
    summary, series file inventory — without any rendering, so CI can
    assert on fields instead of scraping the dashboard text.
    """
    root = Path(run_dir)
    manifest: Dict[str, Any] = {}
    manifest_path = root / "manifest.json"
    if manifest_path.is_file():
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
    spans = _load_jsonl(root / "spans.jsonl")
    timed = [s for s in spans
             if s.get("wall", {}).get("duration_s") is not None]
    timed.sort(key=lambda s: (-s["wall"]["duration_s"], s.get("index", 0)))
    by_error: Dict[str, int] = {}
    for span in spans:
        for error in span.get("errors", []):
            by_error[error] = by_error.get(error, 0) + 1
    series_files = sorted(p.name for p in (root / "series").glob("*.jsonl")) \
        if (root / "series").is_dir() else []
    trace_files = sorted(p.name for p in (root / "traces").glob("*.jsonl")) \
        if (root / "traces").is_dir() else []
    return {
        "run_dir": str(root),
        "experiment": manifest.get("experiment", ""),
        "version": manifest.get("version", ""),
        "cells": manifest.get("cells", {}),
        "wall": manifest.get("wall", {}),
        "slowest": [
            {"cell": s.get("cell", "?"),
             "duration_s": s["wall"]["duration_s"],
             "retries": s.get("retries", 0),
             "losses": s.get("losses", 0),
             "status": s.get("status", "")}
            for s in timed[:top_n]],
        "faults": {
            "retries": sum(s.get("retries", 0) for s in spans),
            "losses": sum(s.get("losses", 0) for s in spans),
            "failed_cells": sum(1 for s in spans
                                if s.get("status") == "failed"),
            "by_error": {k: by_error[k] for k in sorted(by_error)},
        },
        "series": series_files,
        "traces": trace_files,
    }


def render_report(run_dir: Union[str, Path], *, top_n: int = 10,
                  width: int = 60, max_series: int = 4) -> str:
    """Render the text dashboard for one telemetry run directory.

    ``top_n`` caps the slowest-cells table, ``width`` the sparkline
    width, and ``max_series`` how many series files are plotted (the
    rest are listed by name).
    """
    root = Path(run_dir)
    manifest: Dict[str, Any] = {}
    manifest_path = root / "manifest.json"
    if manifest_path.is_file():
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
    spans = _load_jsonl(root / "spans.jsonl")

    sections = [_header_section(manifest)] if manifest else []
    if spans:
        sections.append(_slowest_section(spans, top_n))
        sections.append(_faults_section(spans))

    series_files = sorted((root / "series").glob("*.jsonl")) \
        if (root / "series").is_dir() else []
    if series_files:
        block = ["== per-partition series =="]
        for path in series_files[:max_series]:
            block.extend(_series_section(path, width))
        skipped = series_files[max_series:]
        if skipped:
            block.append(f"(+{len(skipped)} more series files: "
                         + ", ".join(p.name for p in skipped) + ")")
        sections.append(block)

    if not sections:
        return f"no telemetry artifacts found under {root}\n"
    return "\n".join("\n".join(section) for section in sections) + "\n"

"""Labeled counters, gauges and histograms with deterministic export.

:class:`MetricsRegistry` is the one holder of every metric a run
records.  Instruments follow the conventional trio:

* :class:`Counter` — monotonically increasing integer (cells completed,
  cache hits, retries);
* :class:`Gauge` — last-written value (cells in a sweep, configured
  worker count);
* :class:`Histogram` — fixed-bucket distribution with count and sum
  (cell attempts, occupancy error).

An instrument is declared once with a label *schema* (a tuple of label
names); every observation supplies concrete label values and lands in
one labeled series.  Export (:meth:`MetricsRegistry.export_jsonl`)
renders one JSON object per series, sorted by ``(name, labels)`` with
sorted keys and compact separators, so two identical runs produce
byte-identical ``metrics.jsonl`` files.  Keep wall-clock-derived values
*out* of metrics — durations belong in span ``"wall"`` fields
(:mod:`repro.obs.spans`); metrics are reserved for the deterministic
facts of a run.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

from ..errors import ConfigurationError

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]

#: Concrete label values of one series, in schema order.
LabelValues = Tuple[str, ...]


def _label_values(name: str, schema: Tuple[str, ...],
                  labels: Dict[str, object]) -> LabelValues:
    """Validate observation labels against the instrument's schema."""
    if set(labels) != set(schema):
        raise ConfigurationError(
            f"metric {name!r} takes labels {list(schema)}, got "
            f"{sorted(labels)}")
    return tuple(str(labels[key]) for key in schema)


class _Instrument:
    """Shared plumbing: name, label schema, per-label-values series."""

    kind = ""

    def __init__(self, name: str, label_names: Sequence[str] = ()) -> None:
        if not name:
            raise ConfigurationError("metric name must be non-empty")
        self.name = name
        self.label_names: Tuple[str, ...] = tuple(label_names)
        if len(set(self.label_names)) != len(self.label_names):
            raise ConfigurationError(
                f"metric {name!r} has duplicate label names")

    def _series_rows(self) -> Iterator[Dict[str, object]]:
        raise NotImplementedError

    def rows(self) -> List[Dict[str, object]]:
        """Export rows for every series, sorted by label values."""
        out = []
        for row in self._series_rows():
            row["type"] = self.kind
            row["name"] = self.name
            out.append(row)
        out.sort(key=lambda r: sorted(r["labels"].items()))  # type: ignore[arg-type]
        return out

    def _labels_dict(self, values: LabelValues) -> Dict[str, str]:
        return dict(zip(self.label_names, values))


class Counter(_Instrument):
    """A monotonically increasing integer per labeled series."""

    kind = "counter"

    def __init__(self, name: str, label_names: Sequence[str] = ()) -> None:
        super().__init__(name, label_names)
        self._values: Dict[LabelValues, int] = {}

    def inc(self, amount: int = 1, **labels: object) -> None:
        """Add ``amount`` (default 1, must be >= 0) to one series."""
        if amount < 0:
            raise ConfigurationError(
                f"counter {self.name!r} cannot decrease (inc by {amount})")
        key = _label_values(self.name, self.label_names, labels)
        self._values[key] = self._values.get(key, 0) + amount

    def value(self, **labels: object) -> int:
        """Current value of one series (0 when never incremented)."""
        key = _label_values(self.name, self.label_names, labels)
        return self._values.get(key, 0)

    def _series_rows(self) -> Iterator[Dict[str, object]]:
        for key, value in self._values.items():
            yield {"labels": self._labels_dict(key), "value": value}


class Gauge(_Instrument):
    """A last-written value per labeled series."""

    kind = "gauge"

    def __init__(self, name: str, label_names: Sequence[str] = ()) -> None:
        super().__init__(name, label_names)
        self._values: Dict[LabelValues, Union[int, float]] = {}

    def set(self, value: Union[int, float], **labels: object) -> None:
        """Overwrite one series with ``value``."""
        key = _label_values(self.name, self.label_names, labels)
        self._values[key] = value

    def value(self, **labels: object) -> Optional[Union[int, float]]:
        """Current value of one series (None when never set)."""
        key = _label_values(self.name, self.label_names, labels)
        return self._values.get(key)

    def _series_rows(self) -> Iterator[Dict[str, object]]:
        for key, value in self._values.items():
            yield {"labels": self._labels_dict(key), "value": value}


class Histogram(_Instrument):
    """Fixed upper-bound buckets plus count and sum, per labeled series.

    ``buckets`` are strictly increasing inclusive upper bounds; every
    observation additionally lands in an implicit ``+Inf`` overflow
    bucket, so ``counts`` has ``len(buckets) + 1`` entries.
    """

    DEFAULT_BUCKETS: Tuple[float, ...] = (1, 2, 5, 10, 20, 50, 100)

    kind = "histogram"

    def __init__(self, name: str, label_names: Sequence[str] = (),
                 buckets: Optional[Sequence[float]] = None) -> None:
        super().__init__(name, label_names)
        bounds = tuple(float(b) for b in
                       (buckets if buckets is not None
                        else self.DEFAULT_BUCKETS))
        if not bounds:
            raise ConfigurationError(
                f"histogram {name!r} needs at least one bucket bound")
        if any(b >= c for b, c in zip(bounds, bounds[1:])):
            raise ConfigurationError(
                f"histogram {name!r} buckets must be strictly increasing")
        self.buckets = bounds
        self._counts: Dict[LabelValues, List[int]] = {}
        self._sums: Dict[LabelValues, float] = {}
        self._totals: Dict[LabelValues, int] = {}

    def observe(self, value: Union[int, float], **labels: object) -> None:
        """Record one observation into the matching bucket."""
        key = _label_values(self.name, self.label_names, labels)
        counts = self._counts.setdefault(key, [0] * (len(self.buckets) + 1))
        slot = len(self.buckets)  # +Inf overflow by default
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                slot = i
                break
        counts[slot] += 1
        self._sums[key] = self._sums.get(key, 0.0) + value
        self._totals[key] = self._totals.get(key, 0) + 1

    def count(self, **labels: object) -> int:
        """Total observations of one series."""
        key = _label_values(self.name, self.label_names, labels)
        return self._totals.get(key, 0)

    def _series_rows(self) -> Iterator[Dict[str, object]]:
        for key, counts in self._counts.items():
            yield {
                "labels": self._labels_dict(key),
                "buckets": list(self.buckets),
                "counts": list(counts),
                "count": self._totals[key],
                "sum": self._sums[key],
            }


class MetricsRegistry:
    """Declare-once registry of every instrument a run records.

    Re-requesting an instrument with the same name returns the existing
    one (so call sites need no shared handles), but kind and label
    schema must match — a silent collision between two meanings of one
    name is a configuration error.
    """

    def __init__(self) -> None:
        self._instruments: Dict[str, _Instrument] = {}

    def _get(self, cls: type, name: str, label_names: Sequence[str],
             **kwargs: object) -> _Instrument:
        existing = self._instruments.get(name)
        if existing is not None:
            if (type(existing) is not cls
                    or existing.label_names != tuple(label_names)):
                raise ConfigurationError(
                    f"metric {name!r} is already registered as a "
                    f"{existing.kind} with labels {list(existing.label_names)}")
            return existing
        instrument = cls(name, label_names, **kwargs)
        self._instruments[name] = instrument
        return instrument

    def counter(self, name: str,
                label_names: Sequence[str] = ()) -> Counter:
        """Get or declare a :class:`Counter`."""
        instrument = self._get(Counter, name, label_names)
        assert isinstance(instrument, Counter)
        return instrument

    def gauge(self, name: str, label_names: Sequence[str] = ()) -> Gauge:
        """Get or declare a :class:`Gauge`."""
        instrument = self._get(Gauge, name, label_names)
        assert isinstance(instrument, Gauge)
        return instrument

    def histogram(self, name: str, label_names: Sequence[str] = (),
                  buckets: Optional[Sequence[float]] = None) -> Histogram:
        """Get or declare a :class:`Histogram`."""
        instrument = self._get(Histogram, name, label_names, buckets=buckets)
        assert isinstance(instrument, Histogram)
        return instrument

    def names(self) -> List[str]:
        """Sorted names of every registered instrument."""
        return sorted(self._instruments)

    def rows(self) -> List[Dict[str, object]]:
        """Every series of every instrument, sorted by (name, labels)."""
        out: List[Dict[str, object]] = []
        for name in self.names():
            out.extend(self._instruments[name].rows())
        return out

    def export_jsonl(self, path: Union[str, Path]) -> Path:
        """Write one JSON object per series; byte-stable across runs."""
        from .schema import header_line
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(header_line("metrics") + "\n")
            for row in self.rows():
                fh.write(json.dumps(row, sort_keys=True,
                                    separators=(",", ":")) + "\n")
        return path

"""Utility monitors: miss-rate-curve profiling for allocation policies.

:class:`UtilityMonitor` implements Mattson's stack algorithm over a
(optionally set-sampled) address stream: one pass yields the hit count at
*every* cache size simultaneously, from which
:meth:`~UtilityMonitor.miss_curve` produces the miss-vs-capacity curve the
UCP-style :class:`~repro.alloc.policies.UtilityBasedPolicy` consumes.

Sampling follows UMON's approach: only addresses whose hash falls in a
``1/sampling`` slice are monitored, and the resulting stack distances are
interpreted as distances in the full cache by multiplying back.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .._util import SortedKeyList
from ..errors import ConfigurationError
from ..trace.access import Trace

__all__ = ["UtilityMonitor", "profile_miss_curve"]


class UtilityMonitor:
    """Single-pass reuse-distance (stack-distance) profiler."""

    def __init__(self, *, sampling: int = 1, seed_mask: int = 0) -> None:
        if sampling < 1:
            raise ConfigurationError(f"sampling must be >= 1, got {sampling}")
        self.sampling = int(sampling)
        self.seed_mask = int(seed_mask)
        self._last_seq: Dict[int, int] = {}
        self._stack = SortedKeyList()
        self._seq = 0
        #: histogram[d] = accesses with stack distance d (in sampled units)
        self.histogram: Dict[int, int] = {}
        self.cold_misses = 0
        self.accesses = 0

    def _monitored(self, addr: int) -> bool:
        if self.sampling == 1:
            return True
        return (addr ^ self.seed_mask) % self.sampling == 0

    def access(self, addr: int) -> Optional[int]:
        """Record one access; returns its stack distance (None if cold or
        not monitored)."""
        self.accesses += 1
        if not self._monitored(addr):
            return None
        self._seq += 1
        seq = self._seq
        prev = self._last_seq.get(addr)
        self._last_seq[addr] = seq
        if prev is None:
            self._stack.add(seq)
            self.cold_misses += 1
            return None
        # Stack distance: number of distinct addresses touched since the
        # previous access = entries above ``prev`` in the recency order.
        distance = len(self._stack) - 1 - self._stack.rank(prev)
        self._stack.remove(prev)
        self._stack.add(seq)
        self.histogram[distance] = self.histogram.get(distance, 0) + 1
        return distance

    def reset(self) -> "UtilityMonitor":
        """Forget all profiled history (epoch/windowed re-apportioning:
        each epoch's curve reflects only that epoch's accesses); returns
        self for chaining."""
        self._last_seq = {}
        self._stack = SortedKeyList()
        self._seq = 0
        self.histogram = {}
        self.cold_misses = 0
        self.accesses = 0
        return self

    def consume(self, trace: Trace) -> "UtilityMonitor":
        """Profile an entire trace; returns self for chaining."""
        access = self.access
        for addr in trace.addresses:
            access(addr)
        return self

    def miss_curve(self, max_lines: int, granule: int = 1) -> List[float]:
        """``curve[g]`` = misses with ``g * granule`` lines of capacity.

        Capacity is interpreted in full-cache lines; with sampling, each
        sampled stack-distance unit stands for ``sampling`` lines.
        """
        if max_lines <= 0 or granule <= 0:
            raise ConfigurationError("max_lines and granule must be positive")
        num_points = max_lines // granule + 1
        reuses = sum(self.histogram.values())
        total_misses_at_zero = self.cold_misses + reuses
        curve = [0.0] * num_points
        # hits_at(lines): reuses with distance*sampling < lines
        cumulative = [0] * (num_points)
        for distance, count in self.histogram.items():
            effective = distance * self.sampling
            g = effective // granule + 1
            if g < num_points:
                cumulative[g] += count
        hits = 0
        for g in range(num_points):
            hits += cumulative[g]
            curve[g] = total_misses_at_zero - hits
        return curve


def profile_miss_curve(trace: Trace, max_lines: int, *, granule: int = 1,
                       sampling: int = 1) -> List[float]:
    """One-call convenience: profile ``trace`` and return its miss curve."""
    monitor = UtilityMonitor(sampling=sampling)
    monitor.consume(trace)
    return monitor.miss_curve(max_lines, granule)

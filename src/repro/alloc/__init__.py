"""Allocation policies and utility monitors (the software half of cache
capacity management, Section II-A)."""

from .monitors import UtilityMonitor, profile_miss_curve
from .policies import (
    AllocationPolicy,
    EqualSharePolicy,
    QoSPolicy,
    StaticPolicy,
    UtilityBasedPolicy,
)
from .reapportion import (
    FairnessReapportionPolicy,
    PhaseAwareReapportionPolicy,
    ReapportionController,
    ReapportionPolicy,
    UCPReapportionPolicy,
)

__all__ = [
    "AllocationPolicy",
    "StaticPolicy",
    "EqualSharePolicy",
    "QoSPolicy",
    "UtilityBasedPolicy",
    "UtilityMonitor",
    "profile_miss_curve",
    "ReapportionPolicy",
    "UCPReapportionPolicy",
    "PhaseAwareReapportionPolicy",
    "FairnessReapportionPolicy",
    "ReapportionController",
]

"""Online re-apportioning: periodic target recomputation from observed
miss curves.

The one-shot policies in :mod:`repro.alloc.policies` answer "how should a
*known* workload mix split the cache"; the :class:`ReapportionController`
here answers the live question — tenants arrive, depart and change phase,
so targets must track the workload.  It owns one
:class:`~repro.alloc.monitors.UtilityMonitor` per registered partition,
feeds every observed access into it, and every ``interval`` observed
accesses produces fresh per-partition miss curves for a pluggable
:class:`ReapportionPolicy`:

* :class:`UCPReapportionPolicy` — re-run the UCP lookahead
  (:class:`~repro.alloc.policies.UtilityBasedPolicy`) on each epoch's
  curves: maximize total hits, re-apportion every epoch.
* :class:`PhaseAwareReapportionPolicy` — Com-CAS-style: re-apportion only
  when some tenant's predicted miss ratio at its current allocation moved
  by more than ``threshold`` since the last decision (a phase change);
  otherwise keep the current targets and spare the enforcement scheme the
  resizing churn.
* :class:`FairnessReapportionPolicy` — LFOC-style: estimate each tenant's
  slowdown from its miss curve under a simple two-level latency model and
  greedily move capacity from the least- to the most-slowed tenant while
  the unfairness factor (max/min slowdown) improves.

Everything here is a pure function of the observed access stream — epochs
are counted in accesses, never wall clock — so a scenario replay is
byte-reproducible at any parallelism.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..errors import ConfigurationError
from .monitors import UtilityMonitor
from .policies import UtilityBasedPolicy

__all__ = [
    "ReapportionPolicy",
    "UCPReapportionPolicy",
    "PhaseAwareReapportionPolicy",
    "FairnessReapportionPolicy",
    "ReapportionController",
]


class ReapportionPolicy:
    """Decide new targets from one epoch's miss curves.

    ``curves`` maps partition id -> miss curve (``curve[g]`` = predicted
    misses at ``g * granule`` lines); ``current`` maps partition id ->
    current target in lines.  Return a full ``{part: lines}`` assignment
    summing to at most ``total_lines``, or ``None`` to keep the current
    targets.
    """

    name = "abstract"

    def decide(self, curves: Dict[int, List[float]],
               current: Dict[int, int], total_lines: int,
               granule: int) -> Optional[Dict[int, int]]:
        raise NotImplementedError


def _ucp_allocate(curves: Dict[int, List[float]], total_lines: int,
                  granule: int) -> Dict[int, int]:
    """UCP lookahead over the active partitions, one-granule floor each."""
    parts = sorted(curves)
    policy = UtilityBasedPolicy([curves[p] for p in parts], granule=granule,
                                minimum_granules=[1] * len(parts))
    targets = policy.allocate(total_lines)
    return {p: t for p, t in zip(parts, targets)}


class UCPReapportionPolicy(ReapportionPolicy):
    """Re-run the UCP lookahead on every epoch's curves."""

    name = "ucp"

    def decide(self, curves, current, total_lines, granule):
        if not curves:
            return None
        return _ucp_allocate(curves, total_lines, granule)


class PhaseAwareReapportionPolicy(ReapportionPolicy):
    """Com-CAS-style: recompute only on a detected phase change.

    A tenant's *signature* is its predicted miss ratio at the capacity it
    currently holds.  When every signature is within ``threshold`` of the
    value at the last accepted decision, the epoch is considered
    phase-stable and the current targets stand; otherwise the UCP
    lookahead runs on the fresh curves.  A tenant set change (arrival or
    departure) always triggers a recompute.
    """

    name = "phase-aware"

    def __init__(self, threshold: float = 0.05) -> None:
        if threshold <= 0:
            raise ConfigurationError(
                f"threshold must be positive, got {threshold}")
        self.threshold = float(threshold)
        self._signatures: Dict[int, float] = {}
        #: Epochs skipped as phase-stable (for reports/tests).
        self.stable_epochs = 0

    @staticmethod
    def _signature(curve: Sequence[float], lines: int, granule: int) -> float:
        total = curve[0]
        if total <= 0:
            return 0.0
        g = min(len(curve) - 1, max(0, lines // granule))
        return curve[g] / total

    def decide(self, curves, current, total_lines, granule):
        if not curves:
            return None
        signatures = {
            p: self._signature(curve, current.get(p, 0), granule)
            for p, curve in curves.items()}
        if set(signatures) == set(self._signatures):
            drift = max(abs(signatures[p] - self._signatures[p])
                        for p in signatures)
            if drift <= self.threshold:
                self.stable_epochs += 1
                return None
        self._signatures = signatures
        return _ucp_allocate(curves, total_lines, granule)


class FairnessReapportionPolicy(ReapportionPolicy):
    """LFOC-style fairness: balance estimated slowdowns.

    The slowdown of a tenant holding ``s`` lines is estimated under a
    two-level latency model as ``cpi(s) / cpi(full)`` where
    ``cpi(s) = hit_latency + miss_ratio(s) * miss_penalty`` — its cost
    sharing the cache over its cost owning all of it.  Starting from an
    equal split, capacity moves one granule at a time from the
    least-slowed to the most-slowed tenant for as long as that strictly
    shrinks the unfairness factor (max/min slowdown).
    """

    name = "fairness"

    def __init__(self, hit_latency: float = 1.0,
                 miss_penalty: float = 10.0) -> None:
        if hit_latency <= 0 or miss_penalty <= 0:
            raise ConfigurationError(
                "hit_latency and miss_penalty must be positive")
        self.hit_latency = float(hit_latency)
        self.miss_penalty = float(miss_penalty)

    def _slowdown(self, curve: Sequence[float], granules: int) -> float:
        total = curve[0]
        if total <= 0:
            return 1.0
        g = min(len(curve) - 1, max(0, granules))
        shared = self.hit_latency + (curve[g] / total) * self.miss_penalty
        alone = self.hit_latency + (curve[-1] / total) * self.miss_penalty
        return shared / alone

    def decide(self, curves, current, total_lines, granule):
        if not curves:
            return None
        parts = sorted(curves)
        n = len(parts)
        budget = max(n, total_lines // granule)
        have = {p: budget // n for p in parts}
        for p in parts[:budget - sum(have.values())]:
            have[p] += 1
        for p in parts:
            have[p] = max(1, have[p])

        def unfairness():
            slows = [self._slowdown(curves[p], have[p]) for p in parts]
            low = min(slows)
            return max(slows) / low if low > 0 else float("inf")

        best = unfairness()
        # Each move transfers one granule rich -> poor; n * budget bounds
        # the walk even on flat curves.
        for _ in range(n * budget):
            slows = {p: self._slowdown(curves[p], have[p]) for p in parts}
            donor = min(parts, key=lambda p: (slows[p], p))
            taker = max(parts, key=lambda p: (slows[p], -p))
            if donor == taker or have[donor] <= 1:
                break
            have[donor] -= 1
            have[taker] += 1
            moved = unfairness()
            if moved >= best:
                have[donor] += 1
                have[taker] -= 1
                break
            best = moved
        return {p: have[p] * granule for p in parts}


class ReapportionController:
    """Feed observed accesses in; get fresh targets out, every epoch.

    Parameters
    ----------
    total_lines:
        Capacity to apportion (the shared cache's line count).
    interval:
        Epoch length in *observed accesses* (never wall clock).
    granule:
        Allocation granularity in lines (default: ``total_lines // 64``,
        at least 1).
    policy:
        The :class:`ReapportionPolicy` (default UCP lookahead).
    sampling:
        UMON-style set sampling for the per-partition monitors.
    windowed:
        When ``True`` (default) monitors reset every epoch, so each
        decision sees only the latest epoch's behavior — the responsive
        setting for phase changes.  ``False`` accumulates history.
    """

    def __init__(self, total_lines: int, *, interval: int = 4096,
                 granule: Optional[int] = None,
                 policy: Optional[ReapportionPolicy] = None,
                 sampling: int = 1, windowed: bool = True) -> None:
        if total_lines <= 0:
            raise ConfigurationError(
                f"total_lines must be positive, got {total_lines}")
        if interval < 1:
            raise ConfigurationError(
                f"interval must be >= 1, got {interval}")
        self.total_lines = int(total_lines)
        self.interval = int(interval)
        self.granule = (int(granule) if granule is not None
                        else max(1, total_lines // 64))
        if self.granule <= 0:
            raise ConfigurationError(
                f"granule must be positive, got {self.granule}")
        self.policy = policy if policy is not None else UCPReapportionPolicy()
        self.sampling = int(sampling)
        self.windowed = bool(windowed)
        self._monitors: Dict[int, UtilityMonitor] = {}
        self._targets: Dict[int, int] = {}
        self._observed = 0
        #: Completed epochs and accepted (non-None) decisions.
        self.epochs = 0
        self.decisions = 0

    # -- tenant membership ---------------------------------------------------
    def register(self, part: int, *, target: int = 0) -> None:
        """Start monitoring partition ``part`` (tenant arrival)."""
        if part in self._monitors:
            raise ConfigurationError(f"partition {part} is already registered")
        self._monitors[part] = UtilityMonitor(sampling=self.sampling,
                                              seed_mask=part)
        self._targets[part] = int(target)

    def deregister(self, part: int) -> None:
        """Stop monitoring partition ``part`` (tenant departure)."""
        if part not in self._monitors:
            raise ConfigurationError(f"partition {part} is not registered")
        del self._monitors[part]
        del self._targets[part]

    def registered(self) -> List[int]:
        """Registered partition ids, ascending."""
        return sorted(self._monitors)

    # -- the observation loop ------------------------------------------------
    def observe(self, part: int, addr: int) -> Optional[Dict[int, int]]:
        """Record one access by ``part``; at epoch boundaries, return the
        policy's new ``{part: lines}`` targets (or ``None``)."""
        monitor = self._monitors.get(part)
        if monitor is not None:
            monitor.access(addr)
        self._observed += 1
        if self._observed % self.interval == 0:
            return self._epoch()
        return None

    def _epoch(self) -> Optional[Dict[int, int]]:
        self.epochs += 1
        curves = {
            p: monitor.miss_curve(self.total_lines, self.granule)
            for p, monitor in self._monitors.items()
            if monitor.accesses > 0}
        decision = self.policy.decide(curves, dict(self._targets),
                                      self.total_lines, self.granule)
        if self.windowed:
            for monitor in self._monitors.values():
                monitor.reset()
        if decision is None:
            return None
        for p, lines in decision.items():
            self._targets[p] = int(lines)
        self.decisions += 1
        return dict(decision)

"""Cache-capacity allocation policies (Section II-A).

An allocation policy translates QoS objectives into per-partition target
sizes; the enforcement schemes in :mod:`repro.core.schemes` then realize
those targets.  Implemented policies cover the three families the paper
cites:

* :class:`StaticPolicy` / :class:`EqualSharePolicy` — fixed assignments
  (Communist baseline).
* :class:`QoSPolicy` — the Elitist policy of the Fig. 7 experiments:
  *subject* threads each receive a guaranteed allocation (256KB in the
  paper) and *background* threads split the remainder equally.
* :class:`UtilityBasedPolicy` — Utilitarian: the UCP lookahead algorithm
  over miss-rate curves (from :mod:`repro.alloc.monitors`), maximizing
  total hits.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..errors import ConfigurationError

__all__ = ["AllocationPolicy", "StaticPolicy", "EqualSharePolicy",
           "QoSPolicy", "UtilityBasedPolicy"]


class AllocationPolicy:
    """Base class: produce per-partition line targets for a given capacity."""

    def allocate(self, total_lines: int) -> List[int]:
        raise NotImplementedError

    @staticmethod
    def _check_capacity(total_lines: int) -> None:
        if total_lines <= 0:
            raise ConfigurationError(
                f"total_lines must be positive, got {total_lines}")


class StaticPolicy(AllocationPolicy):
    """Fixed fractional shares."""

    def __init__(self, fractions: Sequence[float]) -> None:
        if not fractions:
            raise ConfigurationError("fractions must not be empty")
        total = float(sum(fractions))
        if total <= 0:
            raise ConfigurationError("fractions must sum to a positive value")
        for i, f in enumerate(fractions):
            if f < 0:
                raise ConfigurationError(f"fractions[{i}] must be >= 0")
        self.fractions = [f / total for f in fractions]

    def allocate(self, total_lines: int) -> List[int]:
        self._check_capacity(total_lines)
        targets = [int(f * total_lines) for f in self.fractions]
        # Largest-remainder rounding so targets sum exactly to capacity.
        remainders = sorted(
            range(len(targets)),
            key=lambda i: self.fractions[i] * total_lines - targets[i],
            reverse=True)
        shortfall = total_lines - sum(targets)
        for k in range(shortfall):
            targets[remainders[k % len(remainders)]] += 1
        return targets


class EqualSharePolicy(StaticPolicy):
    """Equal split among ``n`` partitions."""

    def __init__(self, n: int) -> None:
        if n <= 0:
            raise ConfigurationError(f"n must be positive, got {n}")
        super().__init__([1.0] * n)


class QoSPolicy(AllocationPolicy):
    """The paper's Fig. 7 allocation: guaranteed space for subject threads.

    ``subject_lines`` lines are reserved for each of ``num_subjects``
    partitions (the paper uses 256KB = 4096 lines); the remaining capacity
    is divided equally among ``num_background`` partitions.  Subjects come
    first in the returned target vector, matching the thread layout used by
    the Fig. 7 experiment driver.
    """

    def __init__(self, num_subjects: int, num_background: int,
                 subject_lines: int) -> None:
        if num_subjects < 0 or num_background < 0:
            raise ConfigurationError("thread counts must be non-negative")
        if num_subjects + num_background == 0:
            raise ConfigurationError("at least one thread is required")
        if num_subjects > 0 and subject_lines <= 0:
            raise ConfigurationError(
                f"subject_lines must be positive, got {subject_lines}")
        self.num_subjects = int(num_subjects)
        self.num_background = int(num_background)
        self.subject_lines = int(subject_lines)

    def allocate(self, total_lines: int) -> List[int]:
        self._check_capacity(total_lines)
        reserved = self.num_subjects * self.subject_lines
        if reserved > total_lines:
            raise ConfigurationError(
                f"{self.num_subjects} subjects x {self.subject_lines} lines "
                f"exceed capacity {total_lines}")
        remainder = total_lines - reserved
        targets = [self.subject_lines] * self.num_subjects
        if self.num_background:
            base, extra = divmod(remainder, self.num_background)
            targets += [base + (1 if i < extra else 0)
                        for i in range(self.num_background)]
        elif remainder:
            # No background threads: spread the leftover over subjects.
            base, extra = divmod(remainder, self.num_subjects)
            targets = [t + base + (1 if i < extra else 0)
                       for i, t in enumerate(targets)]
        return targets


class UtilityBasedPolicy(AllocationPolicy):
    """UCP-style lookahead allocation over miss-rate curves.

    ``miss_curves[i][s]`` is partition *i*'s miss count when granted ``s``
    granules of capacity (monotone non-increasing; see
    :meth:`repro.alloc.monitors.UtilityMonitor.miss_curve`).  Capacity is
    handed out ``granule`` lines at a time to the partition with the best
    marginal utility (misses saved per granule, evaluated with lookahead:
    the best average utility over any extension, which handles curves with
    plateaus followed by cliffs).
    """

    def __init__(self, miss_curves: Sequence[Sequence[float]],
                 granule: int = 1,
                 minimum_granules: Optional[Sequence[int]] = None) -> None:
        if not miss_curves:
            raise ConfigurationError("miss_curves must not be empty")
        lengths = {len(c) for c in miss_curves}
        if len(lengths) != 1 or min(lengths) < 2:
            raise ConfigurationError(
                "all miss curves must share a length of at least 2")
        if granule <= 0:
            raise ConfigurationError(f"granule must be positive, got {granule}")
        self.miss_curves = [list(map(float, c)) for c in miss_curves]
        self.granule = int(granule)
        n = len(miss_curves)
        self.minimum_granules = (list(minimum_granules)
                                 if minimum_granules is not None else [0] * n)
        if len(self.minimum_granules) != n:
            raise ConfigurationError(
                "minimum_granules length must match miss_curves")

    def _best_marginal(self, curve: Sequence[float], have: int,
                       budget: int) -> float:
        """Max average misses-saved-per-granule over any extension
        (the UCP lookahead 'max marginal utility')."""
        best = 0.0
        base = curve[have]
        top = min(len(curve) - 1, have + budget)
        for nxt in range(have + 1, top + 1):
            gain = (base - curve[nxt]) / (nxt - have)
            if gain > best:
                best = gain
        return best

    def allocate(self, total_lines: int) -> List[int]:
        self._check_capacity(total_lines)
        n = len(self.miss_curves)
        budget = total_lines // self.granule
        if budget < sum(self.minimum_granules):
            raise ConfigurationError(
                "capacity below the sum of minimum allocations")
        have = list(self.minimum_granules)
        remaining = budget - sum(have)
        max_granules = len(self.miss_curves[0]) - 1
        while remaining > 0:
            best_part = -1
            best_gain = -1.0
            for i in range(n):
                if have[i] >= max_granules:
                    continue
                gain = self._best_marginal(self.miss_curves[i], have[i],
                                           remaining)
                if gain > best_gain:
                    best_gain = gain
                    best_part = i
            if best_part < 0:
                break
            have[best_part] += 1
            remaining -= 1
        if remaining > 0:
            # All curves saturated; spread the leftover round-robin.
            for k in range(remaining):
                have[k % n] += 1
        targets = [h * self.granule for h in have]
        targets[0] += total_lines - sum(targets)
        return targets

"""Exception hierarchy for the futility-scaling reproduction library.

All library-raised errors derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigurationError(ReproError, ValueError):
    """A component was constructed or configured with invalid parameters."""


class InfeasiblePartitioningError(ReproError, ValueError):
    """The requested partitioning cannot be enforced by any
    replacement-based scheme.

    Section IV-B of the paper: with ``R`` replacement candidates, a partition
    with target fraction ``S`` and insertion rate ``I < S**R`` will shrink
    below its target no matter how futilities are scaled, because the
    minimum achievable eviction rate of the *other* partitions is bounded.
    """


class TraceError(ReproError, ValueError):
    """A trace or trace generator was used inconsistently."""


class SimulationError(ReproError, RuntimeError):
    """The simulation engine reached an inconsistent state."""


class WorkerError(ReproError, RuntimeError):
    """An experiment cell failed inside a runner worker process.

    Raised by :func:`repro.runner.run_cells` when a cell raises a
    non-library exception or its worker process dies; library errors
    (:class:`ReproError` subclasses) propagate unwrapped.
    """

"""Exception hierarchy for the futility-scaling reproduction library.

All library-raised errors derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause.
"""

from __future__ import annotations

from typing import Any, Sequence


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigurationError(ReproError, ValueError):
    """A component was constructed or configured with invalid parameters."""


class InfeasiblePartitioningError(ReproError, ValueError):
    """The requested partitioning cannot be enforced by any
    replacement-based scheme.

    Section IV-B of the paper: with ``R`` replacement candidates, a partition
    with target fraction ``S`` and insertion rate ``I < S**R`` will shrink
    below its target no matter how futilities are scaled, because the
    minimum achievable eviction rate of the *other* partitions is bounded.
    """


class TraceError(ReproError, ValueError):
    """A trace or trace generator was used inconsistently."""


class SimulationError(ReproError, RuntimeError):
    """The simulation engine reached an inconsistent state."""


class WorkerError(ReproError, RuntimeError):
    """An experiment cell failed inside a runner worker process.

    Raised by :func:`repro.runner.run_cells` when cells raise non-library
    exceptions or their worker processes die; a single failing library
    error (:class:`ReproError` subclass) propagates unwrapped, and when
    several cells fail the message lists *every* failed cell.
    """


class CellTimeoutError(ReproError, RuntimeError):
    """An experiment cell exceeded its per-cell wall-clock budget.

    Raised (or recorded in a :class:`~repro.runner.FailedCell`) by
    :func:`repro.runner.run_cells` when ``cell_timeout`` is set and a
    cell is still running past its deadline; the hung worker pool is
    torn down and respawned, and the cell is retried if it has retry
    budget left.
    """


class SweepError(ReproError, RuntimeError):
    """A ``keep_going`` sweep completed with permanently failed cells.

    Raised by :meth:`repro.experiments.registry.ExperimentSpec.run`
    after the sweep *finished* — every other cell's result was computed
    and persisted to the cache.  ``failures`` holds the
    :class:`~repro.runner.FailedCell` sentinels and ``results`` the full
    ordered result list (sentinels included), so callers that can
    tolerate holes may still reduce over the partial results.
    """

    def __init__(self, message: str, failures: Sequence[Any] = (),
                 results: Sequence[Any] = ()) -> None:
        super().__init__(message)
        self.failures = list(failures)
        self.results = list(results)

"""The paper's core contribution: futility rankings, the analytical
scaling framework, and the partitioning schemes."""

from . import scaling
from .futility import (
    CoarseTimestampLRURanking,
    FutilityRanking,
    LFURanking,
    LRURanking,
    OPTRanking,
    RandomRanking,
    make_ranking,
)
from .schemes import (
    CQVPScheme,
    FeedbackFutilityScalingScheme,
    FullAssocScheme,
    FutilityScalingScheme,
    PartitioningFirstScheme,
    PartitioningScheme,
    PriSMScheme,
    UnpartitionedScheme,
    VantageScheme,
    WayPartitionScheme,
    available_schemes,
    make_scheme,
)

__all__ = [
    "scaling",
    "FutilityRanking",
    "LRURanking",
    "LFURanking",
    "OPTRanking",
    "RandomRanking",
    "CoarseTimestampLRURanking",
    "make_ranking",
    "PartitioningScheme",
    "UnpartitionedScheme",
    "CQVPScheme",
    "PartitioningFirstScheme",
    "FutilityScalingScheme",
    "FeedbackFutilityScalingScheme",
    "VantageScheme",
    "PriSMScheme",
    "FullAssocScheme",
    "WayPartitionScheme",
    "make_scheme",
    "available_schemes",
]

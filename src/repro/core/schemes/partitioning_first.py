"""Partitioning-First (PF) scheme — Algorithm 1 of the paper.

Two steps per replacement:

1. **Partition Selection (PS)** — among the partitions present in the
   candidate list, pick the one whose actual size most exceeds its target
   (``max N_A - N_T``; undersized partitions can still be picked when every
   candidate partition is undersized, exactly as Algorithm 1's ``max_over``
   starts at minus infinity).
2. **Victim Identification (VI)** — evict the candidate from the chosen
   partition with the largest futility.

PF sizes precisely (MAD below one line, Fig. 5) but collapses associativity
as the number of partitions grows, because the VI step sees only the
candidates of one partition: with N >= R partitions the VI list degenerates
to a single line and the associativity CDF approaches the diagonal
(AEF -> 0.5, Fig. 2a).
"""

from __future__ import annotations

from typing import List

from . import kernels
from .base import PartitioningScheme, register_scheme

__all__ = ["PartitioningFirstScheme"]


@register_scheme
class PartitioningFirstScheme(PartitioningScheme):
    """Algorithm 1: strict sizing first, associativity second."""

    name = "pf"

    def choose_victim(self, candidates: List[int], incoming_part: int) -> int:
        cache = self.cache
        if cache._resident != cache.num_lines:
            invalid = kernels.first_invalid(cache, candidates)
            if invalid is not None:
                return invalid
        # PS + VI fused into one pass over the candidate indices.
        return kernels.choose_pf(cache, candidates)

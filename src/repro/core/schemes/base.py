"""Partitioning-scheme interface (the paper's "replacement policy" role).

A scheme receives the full replacement-candidate list on each miss and picks
the victim, balancing the two conflicting roles described in Section III-B:
maximizing the futility of the evicted line (associativity) and steering
per-partition sizes toward their targets (sizing).

Schemes interact with the owning :class:`~repro.cache.cache.PartitionedCache`
through a narrow read interface (owner array, actual/target sizes, futility
ranking) plus event hooks for insertions, evictions and block relocations.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Type

from ...errors import ConfigurationError
from . import kernels

__all__ = ["PartitioningScheme", "register_scheme", "make_scheme",
           "available_schemes"]


class PartitioningScheme:
    """Base class for replacement-based partitioning schemes."""

    #: Registry name.
    name = "abstract"
    #: Whether the cache should generate an array candidate list per miss.
    #: Schemes with ``False`` (FullAssoc) pick victims from their own
    #: structures and require an array exposing ``free_slot``.
    uses_candidates = True

    def __init__(self) -> None:
        self.cache = None

    # -- lifecycle ---------------------------------------------------------
    def bind(self, cache) -> None:
        """Attach to the owning cache.  Called exactly once."""
        if self.cache is not None:
            raise ConfigurationError(
                f"scheme {self.name!r} is already bound to a cache")
        self.cache = cache

    def set_targets(self, targets: Sequence[int]) -> None:
        """Notify the scheme of (new) per-partition line targets."""

    def add_partition(self) -> None:
        """Grow per-partition scheme state by one empty partition.

        Part of the cache's partition control plane (tenant arrival): the
        cache has already lengthened its own occupancy/target vectors and
        the ranking's state when this fires; stateless schemes (which read
        ``cache.actual_sizes`` / ``cache.targets`` live) need no action.
        A :meth:`set_targets` call with the lengthened vector follows.
        """

    # -- replacement -------------------------------------------------------
    def choose_victim(self, candidates: List[int], incoming_part: int) -> int:
        """Pick the victim line index among ``candidates``.

        ``candidates`` may contain invalid (empty) slots; schemes should
        prefer them (see :meth:`_first_invalid`) since filling an empty slot
        evicts nothing.
        """
        raise NotImplementedError

    # -- event hooks -------------------------------------------------------
    def on_insert(self, idx: int, part: int) -> None:
        """A line of ``part`` was installed at ``idx``."""

    def on_evict(self, idx: int, part: int) -> None:
        """The line at ``idx`` (owned by ``part``) was evicted."""

    def on_move(self, src: int, dst: int) -> None:
        """A resident block moved between slots (zcache relocation)."""

    # -- helpers for subclasses ---------------------------------------------
    def _first_invalid(self, candidates: List[int]) -> Optional[int]:
        """First empty slot among candidates, or ``None``.

        Delegates to :func:`repro.core.schemes.kernels.first_invalid`, which
        skips the scan entirely once the cache is full.
        """
        return kernels.first_invalid(self.cache, candidates)

    def _most_oversized_partition(self, candidates: List[int]) -> int:
        """The Partition-Selection step shared by PF-family schemes: the
        candidate partition whose actual size most exceeds its target."""
        cache = self.cache
        owner = cache.owner
        actual = cache.actual_sizes
        target = cache.targets
        best_part = -1
        best_over = None
        for c in candidates:
            p = owner[c]
            over = actual[p] - target[p]
            if best_over is None or over > best_over:
                best_over = over
                best_part = p
        return best_part

    def _max_futility_in_partition(self, candidates: List[int],
                                   part: int) -> int:
        """Victim-Identification step: the candidate from ``part`` with the
        largest raw futility."""
        cache = self.cache
        owner = cache.owner
        raw = cache.ranking.raw_futility
        best = -1
        best_f = None
        for c in candidates:
            if owner[c] != part:
                continue
            f = raw(c)
            if best_f is None or f > best_f:
                best_f = f
                best = c
        if best < 0:  # pragma: no cover - PS step guarantees membership
            raise ConfigurationError(
                f"no candidate from partition {part} in the candidate list")
        return best


_SCHEME_REGISTRY: Dict[str, Type[PartitioningScheme]] = {}


def register_scheme(cls: Type[PartitioningScheme]) -> Type[PartitioningScheme]:
    """Class decorator adding a scheme to the by-name registry."""
    if cls.name in _SCHEME_REGISTRY:
        raise ConfigurationError(f"duplicate scheme name {cls.name!r}")
    _SCHEME_REGISTRY[cls.name] = cls
    return cls


def make_scheme(kind: str, **kwargs) -> PartitioningScheme:
    """Construct a partitioning scheme by registry name."""
    try:
        cls = _SCHEME_REGISTRY[kind]
    except KeyError:
        raise ConfigurationError(
            f"unknown scheme {kind!r}; expected one of {sorted(_SCHEME_REGISTRY)}")
    return cls(**kwargs)


def available_schemes() -> List[str]:
    """Names of all registered schemes."""
    return sorted(_SCHEME_REGISTRY)

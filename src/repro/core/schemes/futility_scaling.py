"""Futility Scaling schemes (Sections IV and V of the paper).

Two variants:

* :class:`FutilityScalingScheme` — the *analytical* form (Section IV):
  fixed per-partition scaling factors (either supplied directly or solved
  from target sizes and expected insertion rates via
  :func:`repro.core.scaling.solve_scaling_factors`).  On every eviction the
  candidate with the largest ``alpha_i * futility`` is evicted, over the
  **full** candidate list — this is what preserves associativity.

* :class:`FeedbackFutilityScalingScheme` — the practical feedback-based
  design (Section V, Algorithm 2).  No exact futility, no closed form: the
  scaling factor of each partition is a power of the ``changing_ratio``
  (2 by default, so scaling is a bit shift of the 8-bit coarse-timestamp
  futility in hardware) and is nudged up/down every ``interval_length = 16``
  insertions-or-evictions based on the partition's size error and trend.

  The hardware register file (Section V-B) is modeled faithfully:
  per-partition 16-bit ActualSize/TargetSize, 4-bit Insertion/Eviction
  counters, and a 3-bit saturating ScalingShiftWidth (levels 0..7).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ...errors import ConfigurationError
from ..futility import CoarseTimestampLRURanking
from ..scaling import solve_scaling_factors
from . import kernels
from .base import PartitioningScheme, register_scheme

__all__ = ["FutilityScalingScheme", "FeedbackFutilityScalingScheme"]


@register_scheme
class FutilityScalingScheme(PartitioningScheme):
    """Analytical FS: evict the candidate with the largest scaled futility.

    Parameters
    ----------
    alphas:
        Fixed scaling factors, one per partition.  If omitted they are
        solved from the targets and ``insertion_rates`` when
        :meth:`set_targets` is called.
    insertion_rates:
        Expected per-partition insertion-rate fractions used to solve for
        the scaling factors when ``alphas`` is not given.
    """

    name = "fs"

    def __init__(self, alphas: Optional[Sequence[float]] = None,
                 insertion_rates: Optional[Sequence[float]] = None) -> None:
        super().__init__()
        if alphas is not None and insertion_rates is not None:
            raise ConfigurationError(
                "pass either alphas or insertion_rates, not both")
        self._alphas: Optional[List[float]] = (
            list(map(float, alphas)) if alphas is not None else None)
        self._insertion_rates = (list(map(float, insertion_rates))
                                 if insertion_rates is not None else None)
        if self._alphas is not None:
            for i, a in enumerate(self._alphas):
                if a <= 0:
                    raise ConfigurationError(
                        f"alphas[{i}] must be positive, got {a}")

    @property
    def alphas(self) -> List[float]:
        if self._alphas is None:
            raise ConfigurationError(
                "scaling factors are not set; call set_targets or pass alphas")
        return list(self._alphas)

    def set_alphas(self, alphas: Sequence[float]) -> None:
        """Replace the scaling factors (one per partition)."""
        alphas = list(map(float, alphas))
        if self.cache is not None and len(alphas) != self.cache.num_partitions:
            raise ConfigurationError(
                f"expected {self.cache.num_partitions} alphas, got {len(alphas)}")
        for i, a in enumerate(alphas):
            if a <= 0:
                raise ConfigurationError(f"alphas[{i}] must be positive, got {a}")
        self._alphas = alphas

    def set_targets(self, targets: Sequence[int]) -> None:
        if self._insertion_rates is not None:
            total = float(sum(targets))
            sizes = [t / total for t in targets]
            r = self.cache.array.candidate_count
            self._alphas = solve_scaling_factors(
                sizes, self._insertion_rates, r)
        elif self._alphas is None:
            # No information about insertion rates: start neutral.
            self._alphas = [1.0] * len(targets)
        elif len(self._alphas) != len(targets):
            raise ConfigurationError(
                f"{len(self._alphas)} alphas configured for "
                f"{len(targets)} partitions")

    def add_partition(self) -> None:
        if self._insertion_rates is not None:
            raise ConfigurationError(
                "analytical FS configured from insertion_rates cannot grow "
                "partitions online: the rate vector is per-partition and "
                "fixed at construction (pass alphas, or use fs-feedback)")
        if self._alphas is not None:
            # Neutral scaling until the caller supplies a better alpha;
            # matches the set_targets default for unconfigured partitions.
            self._alphas.append(1.0)

    def choose_victim(self, candidates: List[int], incoming_part: int) -> int:
        cache = self.cache
        if cache._resident != cache.num_lines:
            invalid = kernels.first_invalid(cache, candidates)
            if invalid is not None:
                return invalid
        # argmax of alpha_i * futility over the full candidate list — the
        # scaled-futility kernel groups by partition so exact rankings pay
        # one rank query per distinct candidate partition.
        return kernels.choose_scaled(cache, candidates, self._alphas)


@register_scheme
class FeedbackFutilityScalingScheme(PartitioningScheme):
    """Feedback-based FS (Algorithm 2) with the Section V-B register model.

    Parameters
    ----------
    interval_length:
        ``l`` — adjust a partition's scaling factor whenever its insertion
        *or* eviction counter reaches this value (paper default 16).
    changing_ratio:
        ``Delta alpha`` — multiplicative step of the scaling factor (paper
        default 2, making scaled futility a left-shift in hardware).
    max_level:
        Saturation of the scaling exponent (paper: 3-bit register, 0..7).
    """

    name = "fs-feedback"

    def __init__(self, interval_length: int = 16, changing_ratio: float = 2.0,
                 max_level: int = 7) -> None:
        super().__init__()
        if interval_length < 1:
            raise ConfigurationError(
                f"interval_length must be >= 1, got {interval_length}")
        if changing_ratio <= 1.0:
            raise ConfigurationError(
                f"changing_ratio must exceed 1, got {changing_ratio}")
        if max_level < 1:
            raise ConfigurationError(f"max_level must be >= 1, got {max_level}")
        self.interval_length = int(interval_length)
        self.changing_ratio = float(changing_ratio)
        self.max_level = int(max_level)
        self._levels: List[int] = []
        self._ins: List[int] = []
        self._evi: List[int] = []
        self._multipliers: List[float] = [
            self.changing_ratio ** k for k in range(self.max_level + 1)]
        # Per-partition effective alpha (multipliers[level]), kept in step
        # with _levels so the victim kernel can index it directly.
        self._weights: List[float] = []
        #: History of (partition, new_level) adjustments, for analysis.
        self.adjustments: List = []
        self.record_adjustments = False

    def bind(self, cache) -> None:
        super().bind(cache)
        n = cache.num_partitions
        self._levels = [0] * n
        self._ins = [0] * n
        self._evi = [0] * n
        self._weights = [self._multipliers[0]] * n
        # The hardware pairing (coarse 8-bit timestamps) gets an inlined
        # victim scan — the raw futility is a masked subtract, and going
        # through the method call per candidate dominates the hot path.
        self._coarse_ranking = (cache.ranking
                                if isinstance(cache.ranking,
                                              CoarseTimestampLRURanking)
                                else None)
        # Exact comparison on purpose: the shift fast path is only valid
        # when the ratio is *exactly* two (scaling degenerates to `<< level`).
        self._shift_scan = (
            self.changing_ratio == 2.0)  # reprolint: disable=COR001

    def add_partition(self) -> None:
        # A fresh tenant starts at the neutral scaling level, exactly as
        # every partition does at bind time (Algorithm 2 converges from 0).
        self._levels.append(0)
        self._ins.append(0)
        self._evi.append(0)
        self._weights.append(self._multipliers[0])

    def scaling_levels(self) -> List[int]:
        """Current ScalingShiftWidth (exponent) per partition."""
        return list(self._levels)

    def scaling_factors(self) -> List[float]:
        """Current effective alpha per partition (ratio ** level)."""
        return [self._multipliers[k] for k in self._levels]

    def choose_victim(self, candidates: List[int], incoming_part: int) -> int:
        cache = self.cache
        if cache._resident != cache.num_lines:
            invalid = kernels.first_invalid(cache, candidates)
            if invalid is not None:
                return invalid
        owner = cache.owner
        coarse = self._coarse_ranking
        if coarse is not None:
            line_ts = coarse._ts
            cur_ts = coarse._cur_ts
            if self._shift_scan:
                # changing_ratio == 2: scaling is a left shift of the 8-bit
                # distance (exactly the hardware's barrel shifter), and both
                # operands are exact small integers, so the argmax matches
                # the float-weighted scan bit for bit.
                levels = self._levels
                best = candidates[0]
                p = owner[best]
                best_f = ((cur_ts[p] - line_ts[best]) & 0xFF) << levels[p]
                for c in candidates[1:]:
                    p = owner[c]
                    f = ((cur_ts[p] - line_ts[c]) & 0xFF) << levels[p]
                    if f > best_f:
                        best_f = f
                        best = c
                return best
            weights = self._weights
            best = candidates[0]
            p = owner[best]
            best_f = ((cur_ts[p] - line_ts[best]) & 0xFF) * weights[p]
            for c in candidates[1:]:
                p = owner[c]
                f = ((cur_ts[p] - line_ts[c]) & 0xFF) * weights[p]
                if f > best_f:
                    best_f = f
                    best = c
            return best
        return kernels.choose_scaled(cache, candidates, self._weights,
                                     raw=True)

    def _interval_elapsed(self, part: int) -> None:
        """Algorithm 2 body: nudge the scaling factor and reset counters."""
        cache = self.cache
        actual = cache.actual_sizes[part]
        target = cache.targets[part]
        ins = self._ins[part]
        evi = self._evi[part]
        if actual > target and ins >= evi:
            if self._levels[part] < self.max_level:
                self._levels[part] += 1
                self._weights[part] = self._multipliers[self._levels[part]]
                if self.record_adjustments:
                    self.adjustments.append((part, self._levels[part]))
        elif actual < target and ins <= evi:
            if self._levels[part] > 0:
                self._levels[part] -= 1
                self._weights[part] = self._multipliers[self._levels[part]]
                if self.record_adjustments:
                    self.adjustments.append((part, self._levels[part]))
        self._ins[part] = 0
        self._evi[part] = 0

    def on_insert(self, idx: int, part: int) -> None:
        self._ins[part] += 1
        if self._ins[part] >= self.interval_length:
            self._interval_elapsed(part)

    def on_evict(self, idx: int, part: int) -> None:
        self._evi[part] += 1
        if self._evi[part] >= self.interval_length:
            self._interval_elapsed(part)

"""Partitioning schemes: FS plus every baseline from the paper's evaluation."""

from .base import (
    PartitioningScheme,
    available_schemes,
    make_scheme,
    register_scheme,
)
from .cqvp import CQVPScheme
from .full_assoc import FullAssocScheme
from .futility_scaling import FeedbackFutilityScalingScheme, FutilityScalingScheme
from .partitioning_first import PartitioningFirstScheme
from .prism import PriSMScheme
from .unpartitioned import UnpartitionedScheme
from .vantage import VantageScheme
from .way_partition import WayPartitionScheme

__all__ = [
    "PartitioningScheme",
    "register_scheme",
    "make_scheme",
    "available_schemes",
    "UnpartitionedScheme",
    "CQVPScheme",
    "PartitioningFirstScheme",
    "FutilityScalingScheme",
    "FeedbackFutilityScalingScheme",
    "VantageScheme",
    "PriSMScheme",
    "FullAssocScheme",
    "WayPartitionScheme",
]

"""Vantage cache partitioning (Sanchez & Kozyrakis, ISCA 2011) — the
strongest prior replacement-based scheme the paper compares against.

Vantage divides the cache into a *managed* region (fraction ``1 - u``) that
is partitioned, and an *unmanaged* region (fraction ``u``) that absorbs
evictions.  Lines are inserted into their partition's managed region; a
partition sheds capacity by *demoting* lines to the unmanaged region rather
than evicting them directly, and actual evictions take the least useful
unmanaged candidate.  Each partition's demotion rate is controlled by its
*aperture* ``A_i``: a candidate from partition ``i`` whose futility lies in
the top ``A_i`` fraction is demoted.  The aperture grows linearly from 0 (at
the scaled target size) to ``A_max`` (at ``slack`` beyond it), as in
Vantage's feedback-based practical design.

If none of the R candidates is unmanaged, the scheme is *forced* to evict a
managed line (probability ``(1-u)**R``, about 18.5% at u=0.1 and R=16 on
the paper's 16-way L2) — the cause of Vantage's weakened isolation and
slight associativity loss reported in Figs. 7a/7b.

Configuration matches the paper's evaluation: ``u = 0.1``,
``A_max = 0.5``, ``slack = 0.1``.  Targets passed to the cache refer to the
full cache; Vantage scales them by ``1 - u`` internally because it can only
manage that fraction.
"""

from __future__ import annotations

from typing import List, Sequence

from ...errors import ConfigurationError
from . import kernels
from .base import PartitioningScheme, register_scheme

__all__ = ["VantageScheme"]


@register_scheme
class VantageScheme(PartitioningScheme):
    """Vantage: managed/unmanaged regions with aperture-controlled demotion."""

    name = "vantage"

    def __init__(self, unmanaged_fraction: float = 0.1,
                 max_aperture: float = 0.5, slack: float = 0.1) -> None:
        super().__init__()
        if not 0 < unmanaged_fraction < 1:
            raise ConfigurationError(
                f"unmanaged_fraction must be in (0, 1), got {unmanaged_fraction}")
        if not 0 < max_aperture <= 1:
            raise ConfigurationError(
                f"max_aperture must be in (0, 1], got {max_aperture}")
        if slack <= 0:
            raise ConfigurationError(f"slack must be positive, got {slack}")
        self.unmanaged_fraction = float(unmanaged_fraction)
        self.max_aperture = float(max_aperture)
        self.slack = float(slack)
        self._managed: List[bool] = []
        self._managed_sizes: List[int] = []
        self._scaled_targets: List[float] = []
        #: Forced evictions from the managed region (isolation failures).
        self.forced_evictions = 0
        #: Total demotions performed.
        self.demotions = 0

    def bind(self, cache) -> None:
        super().bind(cache)
        self._managed = [False] * cache.num_lines
        self._managed_sizes = [0] * cache.num_partitions
        self._scaled_targets = [0.0] * cache.num_partitions

    def set_targets(self, targets: Sequence[int]) -> None:
        total = sum(targets)
        capacity = self.cache.num_lines
        if total > capacity:
            raise ConfigurationError(
                f"targets sum to {total} > cache capacity {capacity}")
        scale = 1.0 - self.unmanaged_fraction
        self._scaled_targets = [t * scale for t in targets]

    def add_partition(self) -> None:
        # _managed is per-line and needs no growth; a retired slot that is
        # later reused keeps a zero scaled target until set_targets follows.
        self._managed_sizes.append(0)
        self._scaled_targets.append(0.0)

    def managed_sizes(self) -> List[int]:
        """Current managed-region occupancy per partition."""
        return list(self._managed_sizes)

    def aperture(self, part: int) -> float:
        """Current demotion aperture of ``part`` (0 .. max_aperture)."""
        target = self._scaled_targets[part]
        if target <= 0:
            return self.max_aperture
        over = (self._managed_sizes[part] - target) / (self.slack * target)
        if over <= 0:
            return 0.0
        if over >= 1:
            return self.max_aperture
        return over * self.max_aperture

    def _demotion_threshold_key(self, part: int, ks, asc: bool):
        """Ranking key bounding the demotion region of ``part``, or ``None``.

        Reproduces the per-candidate aperture test bit for bit: futility is
        monotone in rank, so the boundary rank is binary-searched with the
        *exact* float expressions of the per-candidate comparison
        (``futility(c) >= 1.0 - aperture``), and a candidate is demoted iff
        its key is on the futile side of the returned key (inclusive).
        """
        a = self.aperture(part)
        if a <= 0.0:
            return None
        size = len(ks)
        thr = 1.0 - a
        if asc:
            # futility = (rank + 1) / size, increasing: find the smallest
            # rank inside the aperture.
            lo, hi = 0, size
            while lo < hi:
                mid = (lo + hi) // 2
                if (mid + 1) / size >= thr:
                    hi = mid
                else:
                    lo = mid + 1
            return ks[lo] if lo < size else None
        # futility = (size - rank) / size, decreasing: find the largest
        # rank inside the aperture (-1 when even rank 0 falls short).
        lo, hi = -1, size - 1
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if (size - mid) / size >= thr:
                lo = mid
            else:
                hi = mid - 1
        return ks[lo] if lo >= 0 else None

    def _choose_victim_keyed(self, candidates: List[int],
                             ranking) -> int:
        """Key-ordered fast path: no per-candidate rank queries.

        Demotion membership becomes a key comparison against a
        per-partition threshold; the eviction argmax groups candidates by
        partition on raw keys and ranks only per-partition winners, with
        positional tie-breaks reproducing the flat first-strict-max loops
        (see kernels.choose_scaled for the soundness argument).
        """
        cache = self.cache
        owner = cache.owner
        managed = self._managed
        key = ranking._key
        all_keys = ranking._keys
        asc = ranking._ascending_futility
        msizes = self._managed_sizes
        thr_key = self._demotion_threshold_key
        num_partitions = cache.num_partitions
        missing = object()
        # Partition-indexed scratch lists instead of dicts: candidate lists
        # are hot (one pass per miss) and partition counts are small.
        thresholds: List = [missing] * num_partitions
        slot_of = [-1] * num_partitions
        # Demotion and unmanaged-winner grouping fused into one pass: a
        # candidate's demotion depends only on its own key and its
        # partition's threshold (snapshotted on first managed encounter,
        # exactly like the two-pass form), so processing candidates
        # sequentially is equivalent to demote-all-then-group.
        parts: List[int] = []
        best_c: List[int] = []
        best_k: List = []
        best_pos: List[int] = []
        pos = 0
        for c in candidates:
            p = owner[c]
            k = key[c]
            if managed[c]:
                kt = thresholds[p]
                if kt is missing:
                    kt = thresholds[p] = thr_key(p, all_keys[p], asc)
                if kt is None or ((k < kt) if asc else (k > kt)):
                    pos += 1
                    continue
                managed[c] = False
                msizes[p] -= 1
                self.demotions += 1
            s = slot_of[p]
            if s < 0:
                slot_of[p] = len(parts)
                parts.append(p)
                best_c.append(c)
                best_k.append(k)
                best_pos.append(pos)
            elif (k > best_k[s]) if asc else (k < best_k[s]):
                best_k[s] = k
                best_c[s] = c
                best_pos[s] = pos
            pos += 1
        if not parts:
            # Forced eviction: every candidate is managed.
            self.forced_evictions += 1
            pos = 0
            for c in candidates:
                p = owner[c]
                k = key[c]
                s = slot_of[p]
                if s < 0:
                    slot_of[p] = len(parts)
                    parts.append(p)
                    best_c.append(c)
                    best_k.append(k)
                    best_pos.append(pos)
                elif (k > best_k[s]) if asc else (k < best_k[s]):
                    best_k[s] = k
                    best_c[s] = c
                    best_pos[s] = pos
                pos += 1
        best = best_c[0]
        if len(parts) > 1:
            fut = ranking.futility
            bf = fut(best)
            bp = best_pos[0]
            for s in range(1, len(parts)):
                f = fut(best_c[s])
                if f > bf or (f == bf and best_pos[s] < bp):
                    bf = f
                    best = best_c[s]
                    bp = best_pos[s]
        return best

    def choose_victim(self, candidates: List[int], incoming_part: int) -> int:
        cache = self.cache
        if cache._resident != cache.num_lines:
            invalid = kernels.first_invalid(cache, candidates)
            if invalid is not None:
                return invalid
        ranking = cache.ranking
        if ranking.key_ordered:
            return self._choose_victim_keyed(candidates, ranking)
        owner = cache.owner
        managed = self._managed
        # One batched rank query serves all three passes below: demotion
        # only toggles managed bits, never the ranking, so the futilities
        # cannot change while a candidate list is processed.
        futs = ranking.futilities(candidates)
        # Demotion pass: push over-aperture managed candidates to the
        # unmanaged region (this is how partitions shrink smoothly).
        # Apertures are snapshotted per partition on first encounter, so a
        # demotion does not re-open the aperture question mid-list.
        apertures = {}
        i = 0
        for c in candidates:
            f = futs[i]
            i += 1
            if not managed[c]:
                continue
            p = owner[c]
            a = apertures.get(p)
            if a is None:
                a = apertures[p] = self.aperture(p)
            if a > 0.0 and f >= 1.0 - a:
                managed[c] = False
                self._managed_sizes[p] -= 1
                self.demotions += 1
        # Eviction pass: least useful unmanaged candidate.
        best = -1
        best_f = None
        i = 0
        for c in candidates:
            f = futs[i]
            i += 1
            if managed[c]:
                continue
            if best_f is None or f > best_f:
                best_f = f
                best = c
        if best >= 0:
            return best
        # Forced eviction: every candidate is managed.
        self.forced_evictions += 1
        best = candidates[0]
        best_f = futs[0]
        i = 1
        for c in candidates[1:]:
            f = futs[i]
            i += 1
            if f > best_f:
                best_f = f
                best = c
        return best

    def on_insert(self, idx: int, part: int) -> None:
        self._managed[idx] = True
        self._managed_sizes[part] += 1

    def on_evict(self, idx: int, part: int) -> None:
        if self._managed[idx]:
            self._managed_sizes[part] -= 1
            self._managed[idx] = False

    def on_move(self, src: int, dst: int) -> None:
        self._managed[dst] = self._managed[src]
        self._managed[src] = False

"""Vantage cache partitioning (Sanchez & Kozyrakis, ISCA 2011) — the
strongest prior replacement-based scheme the paper compares against.

Vantage divides the cache into a *managed* region (fraction ``1 - u``) that
is partitioned, and an *unmanaged* region (fraction ``u``) that absorbs
evictions.  Lines are inserted into their partition's managed region; a
partition sheds capacity by *demoting* lines to the unmanaged region rather
than evicting them directly, and actual evictions take the least useful
unmanaged candidate.  Each partition's demotion rate is controlled by its
*aperture* ``A_i``: a candidate from partition ``i`` whose futility lies in
the top ``A_i`` fraction is demoted.  The aperture grows linearly from 0 (at
the scaled target size) to ``A_max`` (at ``slack`` beyond it), as in
Vantage's feedback-based practical design.

If none of the R candidates is unmanaged, the scheme is *forced* to evict a
managed line (probability ``(1-u)**R``, about 18.5% at u=0.1 and R=16 on
the paper's 16-way L2) — the cause of Vantage's weakened isolation and
slight associativity loss reported in Figs. 7a/7b.

Configuration matches the paper's evaluation: ``u = 0.1``,
``A_max = 0.5``, ``slack = 0.1``.  Targets passed to the cache refer to the
full cache; Vantage scales them by ``1 - u`` internally because it can only
manage that fraction.
"""

from __future__ import annotations

from typing import List, Sequence

from ...errors import ConfigurationError
from .base import PartitioningScheme, register_scheme

__all__ = ["VantageScheme"]


@register_scheme
class VantageScheme(PartitioningScheme):
    """Vantage: managed/unmanaged regions with aperture-controlled demotion."""

    name = "vantage"

    def __init__(self, unmanaged_fraction: float = 0.1,
                 max_aperture: float = 0.5, slack: float = 0.1) -> None:
        super().__init__()
        if not 0 < unmanaged_fraction < 1:
            raise ConfigurationError(
                f"unmanaged_fraction must be in (0, 1), got {unmanaged_fraction}")
        if not 0 < max_aperture <= 1:
            raise ConfigurationError(
                f"max_aperture must be in (0, 1], got {max_aperture}")
        if slack <= 0:
            raise ConfigurationError(f"slack must be positive, got {slack}")
        self.unmanaged_fraction = float(unmanaged_fraction)
        self.max_aperture = float(max_aperture)
        self.slack = float(slack)
        self._managed: List[bool] = []
        self._managed_sizes: List[int] = []
        self._scaled_targets: List[float] = []
        #: Forced evictions from the managed region (isolation failures).
        self.forced_evictions = 0
        #: Total demotions performed.
        self.demotions = 0

    def bind(self, cache) -> None:
        super().bind(cache)
        self._managed = [False] * cache.num_lines
        self._managed_sizes = [0] * cache.num_partitions
        self._scaled_targets = [0.0] * cache.num_partitions

    def set_targets(self, targets: Sequence[int]) -> None:
        total = sum(targets)
        capacity = self.cache.num_lines
        if total > capacity:
            raise ConfigurationError(
                f"targets sum to {total} > cache capacity {capacity}")
        scale = 1.0 - self.unmanaged_fraction
        self._scaled_targets = [t * scale for t in targets]

    def managed_sizes(self) -> List[int]:
        """Current managed-region occupancy per partition."""
        return list(self._managed_sizes)

    def aperture(self, part: int) -> float:
        """Current demotion aperture of ``part`` (0 .. max_aperture)."""
        target = self._scaled_targets[part]
        if target <= 0:
            return self.max_aperture
        over = (self._managed_sizes[part] - target) / (self.slack * target)
        if over <= 0:
            return 0.0
        if over >= 1:
            return self.max_aperture
        return over * self.max_aperture

    def choose_victim(self, candidates: List[int], incoming_part: int) -> int:
        invalid = self._first_invalid(candidates)
        if invalid is not None:
            return invalid
        cache = self.cache
        owner = cache.owner
        futility = cache.ranking.futility
        managed = self._managed
        # Demotion pass: push over-aperture managed candidates to the
        # unmanaged region (this is how partitions shrink smoothly).
        apertures = {}
        for c in candidates:
            if not managed[c]:
                continue
            p = owner[c]
            a = apertures.get(p)
            if a is None:
                a = apertures[p] = self.aperture(p)
            if a > 0.0 and futility(c) >= 1.0 - a:
                managed[c] = False
                self._managed_sizes[p] -= 1
                self.demotions += 1
        # Eviction pass: least useful unmanaged candidate.
        best = -1
        best_f = None
        for c in candidates:
            if managed[c]:
                continue
            f = futility(c)
            if best_f is None or f > best_f:
                best_f = f
                best = c
        if best >= 0:
            return best
        # Forced eviction: every candidate is managed.
        self.forced_evictions += 1
        best = candidates[0]
        best_f = futility(best)
        for c in candidates[1:]:
            f = futility(c)
            if f > best_f:
                best_f = f
                best = c
        return best

    def on_insert(self, idx: int, part: int) -> None:
        self._managed[idx] = True
        self._managed_sizes[part] += 1

    def on_evict(self, idx: int, part: int) -> None:
        if self._managed[idx]:
            self._managed_sizes[part] -= 1
            self._managed[idx] = False

    def on_move(self, src: int, dst: int) -> None:
        self._managed[dst] = self._managed[src]
        self._managed[src] = False

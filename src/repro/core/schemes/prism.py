"""PriSM: Probabilistic Shared-cache Management (Manikantan, Rajan &
Govindarajan, ISCA 2012) — the second baseline the paper compares against.

PriSM controls partition sizes by choosing, on each miss, *which partition
to evict from* according to a pre-computed eviction probability
distribution, then evicting the least useful candidate of that partition.
The distribution is refreshed every ``window`` evictions from the partitions'
measured insertion fractions and size deviations::

    E_i = I_i + (N_i_actual - N_i_target) / W

(clamped to [0, 1] and renormalized), which steers each partition back to
its target over the next window of W evictions.

The failure mode the paper highlights (Section VIII-A): the selected
partition may have *no line* in the candidate list at all.  With N = 32
partitions and R = 16 candidates this "abnormality" happens most of the
time (> 70% in the paper's QoS experiment), and PriSM then falls back to a
partition present among the candidates — losing both sizing precision and
associativity.  The abnormality count is exposed for measurement.
"""

from __future__ import annotations

import random
from typing import List

from ...errors import ConfigurationError
from . import kernels
from .base import PartitioningScheme, register_scheme

__all__ = ["PriSMScheme"]


@register_scheme
class PriSMScheme(PartitioningScheme):
    """PriSM eviction-probability-distribution partitioning."""

    name = "prism"

    def __init__(self, window: int = 128, seed: int = 0) -> None:
        super().__init__()
        if window < 1:
            raise ConfigurationError(f"window must be >= 1, got {window}")
        self.window = int(window)
        self._rng = random.Random(seed)
        self._probabilities: List[float] = []
        self._cumulative: List[float] = []
        self._window_insertions: List[int] = []
        self._evictions_in_window = 0
        #: Victim-identification abnormalities: selected partition had no
        #: candidate line.
        self.abnormalities = 0
        #: Total victim selections (for the abnormality rate).
        self.selections = 0

    def bind(self, cache) -> None:
        super().bind(cache)
        n = cache.num_partitions
        self._probabilities = [1.0 / n] * n
        self._window_insertions = [0] * n
        self._rebuild_cumulative()

    def _rebuild_cumulative(self) -> None:
        acc = 0.0
        cumulative = []
        for p in self._probabilities:
            acc += p
            cumulative.append(acc)
        if cumulative:
            cumulative[-1] = 1.0  # guard against rounding
        self._cumulative = cumulative

    def add_partition(self) -> None:
        # The new partition draws no eviction probability until the next
        # window refresh folds its measured insertions in.  The cumulative
        # array is extended in place (not rebuilt) so the existing entries —
        # including the rounding guard on the old last element — are
        # untouched: every pre-growth draw still lands on the same
        # partition, and the binary search can never reach the new tail.
        self._probabilities.append(0.0)
        self._window_insertions.append(0)
        self._cumulative = self._cumulative + [1.0]

    def eviction_probabilities(self) -> List[float]:
        """The current per-partition eviction probability distribution."""
        return list(self._probabilities)

    def abnormality_rate(self) -> float:
        """Fraction of victim selections where the chosen partition had no
        candidate (0.0 when nothing has been selected yet)."""
        if self.selections == 0:
            return 0.0
        return self.abnormalities / self.selections

    def _refresh_distribution(self) -> None:
        cache = self.cache
        total_ins = sum(self._window_insertions)
        n = cache.num_partitions
        w = float(self.window)
        probs = []
        for i in range(n):
            ins_frac = (self._window_insertions[i] / total_ins
                        if total_ins else 1.0 / n)
            drift = (cache.actual_sizes[i] - cache.targets[i]) / w
            probs.append(min(1.0, max(0.0, ins_frac + drift)))
        total = sum(probs)
        if total <= 0:
            probs = [1.0 / n] * n
        else:
            probs = [p / total for p in probs]
        self._probabilities = probs
        self._rebuild_cumulative()
        self._window_insertions = [0] * n
        self._evictions_in_window = 0

    def _sample_partition(self) -> int:
        x = self._rng.random()
        cumulative = self._cumulative
        lo, hi = 0, len(cumulative) - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if cumulative[mid] < x:
                lo = mid + 1
            else:
                hi = mid
        return lo

    def choose_victim(self, candidates: List[int], incoming_part: int) -> int:
        # NB: the empty-slot probe must run *before* sampling so that
        # warm-up fills consume no RNG draws (replay determinism).
        cache = self.cache
        if cache._resident != cache.num_lines:
            invalid = kernels.first_invalid(cache, candidates)
            if invalid is not None:
                return invalid
        self.selections += 1
        wanted = self._sample_partition()
        best = kernels.max_raw_in(self.cache, candidates, wanted)
        if best >= 0:
            return best
        # Abnormality: the sampled partition is absent from the candidate
        # list; evict the least useful candidate regardless of partition.
        self.abnormalities += 1
        return kernels.choose_scaled(self.cache, candidates)

    def on_insert(self, idx: int, part: int) -> None:
        self._window_insertions[part] += 1

    def on_evict(self, idx: int, part: int) -> None:
        self._evictions_in_window += 1
        if self._evictions_in_window >= self.window:
            self._refresh_distribution()

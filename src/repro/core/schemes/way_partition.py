"""Way-partitioning (column caching [11]) — the placement-based baseline.

Each partition owns a disjoint subset of the ways of a set-associative
array; an incoming line may only replace a line in one of its own ways.
This enforces isolation by construction but has the two defects that
motivate replacement-based schemes (Section II-B):

* **Coarse granularity / associativity loss** — a partition's associativity
  equals its way count, so 16 ways cannot support more than 16 partitions
  and every partition of ``k`` ways behaves like a ``k``-way cache.
* **Resizing penalty** — changing the way assignment strands lines in ways
  they no longer own; this implementation flushes them (counted in
  ``flushes``) exactly like the data invalidation the paper attributes to
  placement-based schemes.

Victim priority within the set: own-way empty slot, then a stale foreign
line parked in an own way (left over from a resize), then the least useful
own-way line.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ...errors import ConfigurationError
from .base import PartitioningScheme, register_scheme

__all__ = ["WayPartitionScheme"]


@register_scheme
class WayPartitionScheme(PartitioningScheme):
    """Placement-based partitioning by cache ways."""

    name = "way-partition"

    def __init__(self) -> None:
        super().__init__()
        self._way_owner: List[int] = []
        #: Lines invalidated by resizes (the placement-scheme resize cost).
        self.flushes = 0

    def bind(self, cache) -> None:
        super().bind(cache)
        if not hasattr(cache.array, "ways") or cache.array.ways < cache.num_partitions:
            ways = getattr(cache.array, "ways", None)
            raise ConfigurationError(
                f"way-partitioning needs a set-associative array with at "
                f"least one way per partition (ways={ways}, "
                f"partitions={cache.num_partitions})")

    def add_partition(self) -> None:
        cache = self.cache
        if cache.array.ways < cache.num_partitions:
            raise ConfigurationError(
                f"way-partitioning cannot grow to {cache.num_partitions} "
                f"partitions: the array has only {cache.array.ways} ways "
                f"(one-way floor per partition)")
        # The following set_targets reapportions the ways (flushing lines
        # stranded in transferred ways — the placement-scheme resize cost).

    def way_assignment(self) -> List[int]:
        """Owner partition of each way."""
        return list(self._way_owner)

    def ways_of(self, part: int) -> List[int]:
        return [w for w, p in enumerate(self._way_owner) if p == part]

    def set_targets(self, targets: Sequence[int]) -> None:
        cache = self.cache
        ways = cache.array.ways
        num_sets = cache.array.num_sets
        total = sum(targets)
        if total <= 0:
            raise ConfigurationError("targets must not all be zero")
        # Largest-remainder apportionment with a one-way floor per partition.
        quotas = [t / total * ways for t in targets]
        counts = [max(1, int(q)) for q in quotas]
        while sum(counts) > ways:
            # Shrink the partition with the most ways above its quota.
            candidates = [i for i, c in enumerate(counts) if c > 1]
            if not candidates:
                raise ConfigurationError(
                    f"{len(targets)} partitions cannot share {ways} ways")
            victim = max(candidates, key=lambda i: counts[i] - quotas[i])
            counts[victim] -= 1
        remainders = sorted(range(len(targets)),
                            key=lambda i: quotas[i] - counts[i], reverse=True)
        i = 0
        while sum(counts) < ways:
            counts[remainders[i % len(remainders)]] += 1
            i += 1
        new_owner: List[int] = []
        for part, c in enumerate(counts):
            new_owner.extend([part] * c)
        if self._way_owner and new_owner != self._way_owner:
            self._flush_transferred_ways(new_owner)
        self._way_owner = new_owner

    def _flush_transferred_ways(self, new_owner: List[int]) -> None:
        """Invalidate lines stranded in ways that changed hands."""
        cache = self.cache
        ways = cache.array.ways
        num_sets = cache.array.num_sets
        for way, (old, new) in enumerate(zip(self._way_owner, new_owner)):
            if old == new:
                continue
            for s in range(num_sets):
                idx = s * ways + way
                if cache.array.addr_at(idx) >= 0 and cache.owner[idx] != new:
                    cache.invalidate_index(idx)
                    self.flushes += 1

    def _way_of_index(self, idx: int) -> int:
        return idx % self.cache.array.ways

    def choose_victim(self, candidates: List[int], incoming_part: int) -> int:
        cache = self.cache
        owner = cache.owner
        tag = cache.lines.tag
        ways = cache.array.ways
        way_owner = self._way_owner
        # Filter down to the inserting partition's own ways, taking the
        # first empty own-way slot outright.
        own_ways: List[int] = []
        for c in candidates:
            if way_owner[c % ways] != incoming_part:
                continue
            if tag[c] < 0:
                return c
            own_ways.append(c)
        if not own_ways:
            raise ConfigurationError(  # pragma: no cover - 1-way floor
                f"partition {incoming_part} owns no way in the candidate set")
        # Foreign lines parked in our ways by a resize outrank our own
        # lines; futility breaks ties within each class.
        ranking = cache.ranking
        if ranking.key_ordered:
            # Group by partition on raw keys and rank only per-partition
            # winners (positional tie-breaks reproduce the flat
            # first-strict-max loop; see kernels.choose_scaled).
            key = ranking._key
            asc = ranking._ascending_futility
            parts: List[int] = []
            best_c: List[int] = []
            best_k: List = []
            best_pos: List[int] = []
            slot_of = {}
            pos = 0
            for c in own_ways:
                p = owner[c]
                k = key[c]
                s = slot_of.get(p)
                if s is None:
                    slot_of[p] = len(parts)
                    parts.append(p)
                    best_c.append(c)
                    best_k.append(k)
                    best_pos.append(pos)
                elif (k > best_k[s]) if asc else (k < best_k[s]):
                    best_k[s] = k
                    best_c[s] = c
                    best_pos[s] = pos
                pos += 1
            s_own = slot_of.get(incoming_part)
            foreign = [s for s in range(len(parts))
                       if parts[s] != incoming_part]
            if not foreign:
                return best_c[s_own]
            if len(foreign) == 1:
                return best_c[foreign[0]]
            fut = ranking.futility  # == raw_futility for key-ordered
            best = best_c[foreign[0]]
            bf = fut(best)
            bp = best_pos[foreign[0]]
            for s in foreign[1:]:
                f = fut(best_c[s])
                if f > bf or (f == bf and best_pos[s] < bp):
                    bf = f
                    best = best_c[s]
                    bp = best_pos[s]
            return best
        raws = ranking.raw_futilities(own_ways)
        best_own: Optional[int] = None
        best_own_f = None
        best_foreign: Optional[int] = None
        best_foreign_f = None
        for c, f in zip(own_ways, raws):
            if owner[c] != incoming_part:
                if best_foreign_f is None or f > best_foreign_f:
                    best_foreign_f = f
                    best_foreign = c
            elif best_own_f is None or f > best_own_f:
                best_own_f = f
                best_own = c
        if best_foreign is not None:
            return best_foreign
        return best_own

"""Batched victim-selection kernels over candidate index arrays.

Every replacement-based scheme reduces to an argmax over the candidate
list; historically each scheme ran its own per-candidate Python loop with a
``ranking.futility(c)`` method call (a bisect) per element.  These kernels
restructure that inner loop into a single pass that the schemes share:

* With a *key-ordered* ranking (``ranking.key_ordered``), candidates are
  first grouped by partition on their **raw keys** — within one partition,
  normalized futility is strictly monotone in the key, so the per-partition
  winner is found with plain comparisons and only one rank query (bisect)
  per *distinct partition* is ever issued.
* Otherwise, the rank/raw queries are batched through
  ``ranking.futilities`` / ``ranking.raw_futilities`` (one call for the
  whole candidate array) and the argmax runs over the resulting flat list.

Byte-identity contract: each kernel reproduces the historical per-candidate
loops *exactly* — same float expressions, same first-strict-max tie
handling (a tie between partitions resolves to the candidate earliest in
the list), no extra RNG draws, no ranking mutation.  The grouped path is
sound because within one partition scaled futilities are distinct (keys are
unique, partition sizes are far below 2**52, and scaling by a positive
per-partition weight preserves strict float order at these magnitudes), so
only per-partition winners can achieve the global maximum.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

__all__ = ["first_invalid", "choose_scaled", "choose_pf", "max_raw_in"]


def first_invalid(cache, candidates: Sequence[int]) -> Optional[int]:
    """First empty slot among ``candidates``, or ``None``.

    Skips the scan entirely once the cache is full — the common case in
    steady state — so the hot path pays for it only during warm-up.
    """
    if cache._resident == cache.num_lines:
        return None
    tag = cache.lines.tag
    for c in candidates:
        if tag[c] < 0:
            return c
    return None


def choose_scaled(cache, candidates: Sequence[int],
                  weights: Optional[Sequence[float]] = None,
                  *, raw: bool = False) -> int:
    """Argmax of ``weights[owner[c]] * futility(c)`` over valid candidates.

    ``weights=None`` means unscaled (plain most-futile).  ``raw=True``
    compares ``raw_futility`` instead of the normalized rank (only
    observable for non-exact rankings, where the two differ).
    """
    ranking = cache.ranking
    owner = cache.owner
    if ranking.key_ordered:
        key = ranking._key
        asc = ranking._ascending_futility
        # Group by partition: parallel lists of (partition, winning
        # candidate, winning key, original position), slot_of maps the
        # partition id to its row.
        parts: List[int] = []
        best_c: List[int] = []
        best_k: List = []
        best_pos: List[int] = []
        slot_of = {}
        pos = 0
        if asc:
            for c in candidates:
                p = owner[c]
                k = key[c]
                s = slot_of.get(p)
                if s is None:
                    slot_of[p] = len(parts)
                    parts.append(p)
                    best_c.append(c)
                    best_k.append(k)
                    best_pos.append(pos)
                elif k > best_k[s]:
                    best_k[s] = k
                    best_c[s] = c
                    best_pos[s] = pos
                pos += 1
        else:
            for c in candidates:
                p = owner[c]
                k = key[c]
                s = slot_of.get(p)
                if s is None:
                    slot_of[p] = len(parts)
                    parts.append(p)
                    best_c.append(c)
                    best_k.append(k)
                    best_pos.append(pos)
                elif k < best_k[s]:
                    best_k[s] = k
                    best_c[s] = c
                    best_pos[s] = pos
                pos += 1
        fut = ranking.futility  # == raw_futility for key-ordered rankings
        best = best_c[0]
        bp = best_pos[0]
        if weights is None:
            bv = fut(best)
            for s in range(1, len(parts)):
                v = fut(best_c[s])
                if v > bv or (v == bv and best_pos[s] < bp):
                    bv = v
                    best = best_c[s]
                    bp = best_pos[s]
        else:
            bv = weights[parts[0]] * fut(best)
            for s in range(1, len(parts)):
                v = weights[parts[s]] * fut(best_c[s])
                if v > bv or (v == bv and best_pos[s] < bp):
                    bv = v
                    best = best_c[s]
                    bp = best_pos[s]
        return best
    # Generic ranking: one batch rank query, flat first-strict-max.
    futs = (ranking.raw_futilities(candidates) if raw
            else ranking.futilities(candidates))
    best = candidates[0]
    if weights is None:
        bv = futs[0]
        i = 1
        for c in candidates[1:]:
            v = futs[i]
            i += 1
            if v > bv:
                bv = v
                best = c
    else:
        bv = weights[owner[best]] * futs[0]
        i = 1
        for c in candidates[1:]:
            v = weights[owner[c]] * futs[i]
            i += 1
            if v > bv:
                bv = v
                best = c
    return best


def choose_pf(cache, candidates: Sequence[int]) -> int:
    """Fused Partitioning-First pass: Partition-Selection (most oversized
    candidate partition, first-strict-max in candidate order) and
    Victim-Identification (most futile candidate of that partition) in one
    scan.  The fusion is exact because partition overshoot is constant
    while a candidate list is scanned.
    """
    owner = cache.owner
    actual = cache.actual_sizes
    target = cache.targets
    ranking = cache.ranking
    if ranking.key_ordered:
        # Zero rank queries: the VI winner within a partition is decided by
        # raw keys alone, and PS never needs futility at all.
        key = ranking._key
        asc = ranking._ascending_futility
        slot_of = {}
        best_k: List = []
        best_c: List[int] = []
        best_over = None
        best_s = 0
        for c in candidates:
            p = owner[c]
            k = key[c]
            s = slot_of.get(p)
            if s is None:
                s = slot_of[p] = len(best_k)
                best_k.append(k)
                best_c.append(c)
                over = actual[p] - target[p]
                if best_over is None or over > best_over:
                    best_over = over
                    best_s = s
            elif (k > best_k[s]) if asc else (k < best_k[s]):
                best_k[s] = k
                best_c[s] = c
        return best_c[best_s]
    raws = ranking.raw_futilities(candidates)
    best_over = None
    best_part = -1
    for c in candidates:
        p = owner[c]
        over = actual[p] - target[p]
        if best_over is None or over > best_over:
            best_over = over
            best_part = p
    best = -1
    best_f = None
    i = 0
    for c in candidates:
        f = raws[i]
        i += 1
        if owner[c] != best_part:
            continue
        if best_f is None or f > best_f:
            best_f = f
            best = c
    return best


def max_raw_in(cache, candidates: Sequence[int], part: int) -> int:
    """Most raw-futile candidate owned by ``part``; ``-1`` when the
    partition has no line in the list (PriSM's abnormality probe)."""
    owner = cache.owner
    ranking = cache.ranking
    if ranking.key_ordered:
        key = ranking._key
        asc = ranking._ascending_futility
        best = -1
        bk = None
        for c in candidates:
            if owner[c] != part:
                continue
            k = key[c]
            if best < 0 or ((k > bk) if asc else (k < bk)):
                bk = k
                best = c
        return best
    raw = ranking.raw_futility
    best = -1
    best_f = None
    for c in candidates:
        if owner[c] != part:
            continue
        f = raw(c)
        if best_f is None or f > best_f:
            best_f = f
            best = c
    return best

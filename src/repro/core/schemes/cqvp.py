"""CQVP: Cache Quota Violation Prohibition (Rafique et al. [4]).

The earliest replacement-based partitioning scheme the paper cites
(Section II-B): each partition has a quota, and the replacement "always
chooses the cache lines from the partition that exceeds its quota to
evict".  Compared with PF (Algorithm 1), CQVP is *quota*-driven rather
than overshoot-driven:

* if the inserting partition is within its quota, the victim is the most
  futile candidate among partitions currently **over quota**;
* if no candidate belongs to an over-quota partition (or the inserting
  partition itself is the violator), it falls back to the inserting
  partition's own most futile candidate, so a partition can never push
  others below their quotas to grow itself.

Like PF it suffers associativity degradation as the number of partitions
grows — the victim pool shrinks to the violators' candidates — which is
exactly why the paper groups it with PriSM as the "diminishing cache
associativity" family.
"""

from __future__ import annotations

from typing import List, Optional

from .base import PartitioningScheme, register_scheme

__all__ = ["CQVPScheme"]


@register_scheme
class CQVPScheme(PartitioningScheme):
    """Quota-violation-driven partitioning."""

    name = "cqvp"

    def choose_victim(self, candidates: List[int], incoming_part: int) -> int:
        invalid = self._first_invalid(candidates)
        if invalid is not None:
            return invalid
        cache = self.cache
        owner = cache.owner
        actual = cache.actual_sizes
        targets = cache.targets
        raw = cache.ranking.raw_futility
        incoming_over = actual[incoming_part] >= targets[incoming_part]

        best_violator: Optional[int] = None
        best_violator_f = None
        best_own: Optional[int] = None
        best_own_f = None
        best_any = candidates[0]
        best_any_f = raw(best_any)
        for c in candidates:
            p = owner[c]
            f = raw(c)
            if f > best_any_f:
                best_any_f = f
                best_any = c
            if actual[p] > targets[p]:
                if best_violator_f is None or f > best_violator_f:
                    best_violator_f = f
                    best_violator = c
            if p == incoming_part and (best_own_f is None or f > best_own_f):
                best_own_f = f
                best_own = c

        if incoming_over and best_own is not None:
            # The inserting partition is the violator: recycle its own line.
            return best_own
        if best_violator is not None:
            return best_violator
        if best_own is not None:
            return best_own
        # No violator and no own line among candidates: least useful overall.
        return best_any

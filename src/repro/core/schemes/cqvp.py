"""CQVP: Cache Quota Violation Prohibition (Rafique et al. [4]).

The earliest replacement-based partitioning scheme the paper cites
(Section II-B): each partition has a quota, and the replacement "always
chooses the cache lines from the partition that exceeds its quota to
evict".  Compared with PF (Algorithm 1), CQVP is *quota*-driven rather
than overshoot-driven:

* if the inserting partition is within its quota, the victim is the most
  futile candidate among partitions currently **over quota**;
* if no candidate belongs to an over-quota partition (or the inserting
  partition itself is the violator), it falls back to the inserting
  partition's own most futile candidate, so a partition can never push
  others below their quotas to grow itself.

Like PF it suffers associativity degradation as the number of partitions
grows — the victim pool shrinks to the violators' candidates — which is
exactly why the paper groups it with PriSM as the "diminishing cache
associativity" family.
"""

from __future__ import annotations

from typing import List, Optional

from . import kernels
from .base import PartitioningScheme, register_scheme

__all__ = ["CQVPScheme"]


@register_scheme
class CQVPScheme(PartitioningScheme):
    """Quota-violation-driven partitioning."""

    name = "cqvp"

    def choose_victim(self, candidates: List[int], incoming_part: int) -> int:
        cache = self.cache
        if cache._resident != cache.num_lines:
            invalid = kernels.first_invalid(cache, candidates)
            if invalid is not None:
                return invalid
        owner = cache.owner
        actual = cache.actual_sizes
        targets = cache.targets
        ranking = cache.ranking
        incoming_over = actual[incoming_part] >= targets[incoming_part]

        best_violator: Optional[int] = None
        best_own: Optional[int] = None
        if ranking.key_ordered:
            # Group candidates by partition on raw keys (futility is
            # strictly monotone in the key within one partition), then rank
            # only the per-partition winners — one bisect per distinct
            # candidate partition instead of one per candidate.  Positional
            # tie-breaks reproduce the flat first-strict-max loops exactly
            # (see kernels.choose_scaled for the full argument).
            key = ranking._key
            asc = ranking._ascending_futility
            parts: List[int] = []
            best_c: List[int] = []
            best_k: List = []
            best_pos: List[int] = []
            slot_of = {}
            pos = 0
            for c in candidates:
                p = owner[c]
                k = key[c]
                s = slot_of.get(p)
                if s is None:
                    slot_of[p] = len(parts)
                    parts.append(p)
                    best_c.append(c)
                    best_k.append(k)
                    best_pos.append(pos)
                elif (k > best_k[s]) if asc else (k < best_k[s]):
                    best_k[s] = k
                    best_c[s] = c
                    best_pos[s] = pos
                pos += 1
            s_own = slot_of.get(incoming_part)
            if s_own is not None:
                best_own = best_c[s_own]
            fut = ranking.futility  # == raw_futility for key-ordered
            best_any = best_c[0]
            ba_f = fut(best_any)
            ba_pos = best_pos[0]
            bv_f = None
            bv_pos = -1
            if actual[parts[0]] > targets[parts[0]]:
                best_violator = best_any
                bv_f = ba_f
                bv_pos = ba_pos
            for s in range(1, len(parts)):
                c = best_c[s]
                f = fut(c)
                pos = best_pos[s]
                if f > ba_f or (f == ba_f and pos < ba_pos):
                    ba_f = f
                    best_any = c
                    ba_pos = pos
                p = parts[s]
                if actual[p] > targets[p] and (
                        bv_f is None or f > bv_f
                        or (f == bv_f and pos < bv_pos)):
                    bv_f = f
                    best_violator = c
                    bv_pos = pos
            if incoming_over and best_own is not None:
                return best_own
            if best_violator is not None:
                return best_violator
            if best_own is not None:
                return best_own
            return best_any

        raws = ranking.raw_futilities(candidates)
        best_violator_f = None
        best_own_f = None
        best_any = candidates[0]
        best_any_f = raws[0]
        i = 0
        for c in candidates:
            p = owner[c]
            f = raws[i]
            i += 1
            if f > best_any_f:
                best_any_f = f
                best_any = c
            if actual[p] > targets[p]:
                if best_violator_f is None or f > best_violator_f:
                    best_violator_f = f
                    best_violator = c
            if p == incoming_part and (best_own_f is None or f > best_own_f):
                best_own_f = f
                best_own = c

        if incoming_over and best_own is not None:
            # The inserting partition is the violator: recycle its own line.
            return best_own
        if best_violator is not None:
            return best_violator
        if best_own is not None:
            return best_own
        # No violator and no own line among candidates: least useful overall.
        return best_any

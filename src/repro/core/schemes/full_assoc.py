"""FullAssoc: the paper's ideal partitioning scheme (Section VII-B).

"PF on a fully-associative cache": every resident line is a replacement
candidate, so the Partition-Selection step sees all partitions and the
Victim-Identification step always evicts the *globally* least useful line
of the most oversized partition.  This yields exact sizing **and** full
associativity (AEF = 1 by construction when measured against the decision
ranking) — an upper bound no practical array can reach.

The naive formulation scans every line per miss; this implementation gets
the same victim in O(num_partitions + log M) using the ranking's
per-partition order statistics, and therefore requires an *exact* ranking
(LRU, LFU, OPT, random) and an array exposing ``free_slot`` (the
:class:`~repro.cache.arrays.FullyAssociativeArray`).
"""

from __future__ import annotations

from typing import List

from ...errors import ConfigurationError
from .base import PartitioningScheme, register_scheme

__all__ = ["FullAssocScheme"]


@register_scheme
class FullAssocScheme(PartitioningScheme):
    """Ideal scheme: exact sizing with full associativity."""

    name = "full-assoc"
    uses_candidates = False

    def bind(self, cache) -> None:
        super().bind(cache)
        if not cache.ranking.exact:
            raise ConfigurationError(
                "FullAssocScheme requires an exact futility ranking "
                f"(got {cache.ranking.name!r})")
        if not hasattr(cache.ranking, "most_futile"):
            raise ConfigurationError(
                f"ranking {cache.ranking.name!r} does not support "
                "most-futile queries")
        # Ask the ranking to maintain its most-futile index eagerly from
        # here on; rankings without a FullAssoc consumer skip that work.
        ensure = getattr(cache.ranking, "ensure_index", None)
        if ensure is not None:
            ensure()

    def choose_victim(self, candidates: List[int], incoming_part: int) -> int:
        cache = self.cache
        actual = cache.actual_sizes
        targets = cache.targets
        best_part = -1
        best_over = None
        for p in range(cache.num_partitions):
            if actual[p] == 0:
                continue
            over = actual[p] - targets[p]
            if best_over is None or over > best_over:
                best_over = over
                best_part = p
        if best_part < 0:  # pragma: no cover - cache is full when called
            raise ConfigurationError("no non-empty partition to evict from")
        return cache.ranking.most_futile(best_part)

"""Unpartitioned (freely shared) cache baseline.

Victim selection ignores partitions entirely and evicts the candidate with
the largest normalized futility — the behaviour of an unmanaged shared
cache.  Partition ids are still tracked by the cache for per-thread
statistics, but exert no influence on replacement, so high-miss-rate threads
freely squeeze out everyone else (the destructive interference partitioning
exists to prevent).
"""

from __future__ import annotations

from typing import List

from .base import PartitioningScheme, register_scheme

__all__ = ["UnpartitionedScheme"]


@register_scheme
class UnpartitionedScheme(PartitioningScheme):
    """Evict the globally least useful candidate; no size control."""

    name = "unpartitioned"

    def choose_victim(self, candidates: List[int], incoming_part: int) -> int:
        invalid = self._first_invalid(candidates)
        if invalid is not None:
            return invalid
        futility = self.cache.ranking.futility
        best = candidates[0]
        best_f = futility(best)
        for c in candidates[1:]:
            f = futility(c)
            if f > best_f:
                best_f = f
                best = c
        return best

"""Unpartitioned (freely shared) cache baseline.

Victim selection ignores partitions entirely and evicts the candidate with
the largest normalized futility — the behaviour of an unmanaged shared
cache.  Partition ids are still tracked by the cache for per-thread
statistics, but exert no influence on replacement, so high-miss-rate threads
freely squeeze out everyone else (the destructive interference partitioning
exists to prevent).
"""

from __future__ import annotations

from typing import List

from . import kernels
from .base import PartitioningScheme, register_scheme

__all__ = ["UnpartitionedScheme"]


@register_scheme
class UnpartitionedScheme(PartitioningScheme):
    """Evict the globally least useful candidate; no size control."""

    name = "unpartitioned"

    def choose_victim(self, candidates: List[int], incoming_part: int) -> int:
        cache = self.cache
        if cache._resident != cache.num_lines:
            invalid = kernels.first_invalid(cache, candidates)
            if invalid is not None:
                return invalid
        return kernels.choose_scaled(cache, candidates)

"""Analytical framework for Futility Scaling (Section IV of the paper).

Model.  A cache holds partitions ``i = 0..N-1`` with size fractions ``S_i``
(summing to 1) and insertion-rate fractions ``I_i`` (summing to 1).  On each
eviction the array supplies ``R`` replacement candidates, independent and
uniform over all lines (the *Uniformity Assumption*).  A candidate from
partition ``i`` has unscaled futility ``f ~ U[0, 1]`` and scaled futility
``alpha_i * f``; FS evicts the candidate with the largest scaled futility.

Derivations implemented here
----------------------------

**Eviction rates.**  The scaled futility of a random candidate has CDF::

    F(x) = sum_j S_j * min(x / alpha_j, 1)

and the probability that the eviction comes from partition ``i`` is::

    E_i = R * (S_i / alpha_i) * integral_0^{alpha_i} F(x)^(R-1) dx

(F is piecewise linear, so the integral is evaluated in closed form per
piece).  The identity ``sum_i E_i = F(alpha_max)^R = 1`` holds exactly.

**Equation (1).**  For two partitions with ``alpha_1 = 1`` (partition 1
undersubscribed, ``I_1 < S_1``) the steady-state condition ``E_1 = I_1``
gives ``I_1 = S_1 * (S_1 + S_2/alpha_2)^(R-1)`` and hence::

    alpha_2 = S_2 / ( (I_1/S_1)^(1/(R-1)) - S_1 )

which is the paper's Equation (1) (the PDF's typography renders the
``(R-1)``-th root inline).  All properties the paper states hold: alpha_2
grows with ``I_2`` and shrinks with ``S_2`` (Fig. 3); ``alpha = 1`` when
``I/S = 1``; and alpha_2 diverges/turns negative exactly at the feasibility
bound below.

**Feasibility bound (Section IV-B).**  The minimum possible eviction
fraction of partition ``i`` is ``S_i**R`` (all R candidates land in it), so
no replacement-based scheme can hold partition ``i`` at fraction ``S_i``
unless ``I_i >= S_i**R``.

**Associativity.**  Given an eviction from partition ``i``, the *unscaled*
futility of the victim has conditional CDF::

    G_i(y) = integral_0^{y*alpha_i} F(x)^(R-1) dx
             / integral_0^{alpha_i} F(x)^(R-1) dx

whose mean is the partition's analytic Average Eviction Futility (AEF).
With a single unscaled partition this reduces to ``AEF = R / (R+1)``
(= 0.941 at R = 16, matching Fig. 2a's N=1 measurement of ~0.95).
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

from .._util import check_positive, check_probabilities
from ..errors import ConfigurationError, InfeasiblePartitioningError

__all__ = [
    "alpha_for_two_partitions",
    "scaling_factors_two_partitions",
    "eviction_rates",
    "solve_scaling_factors",
    "min_feasible_insertion_rate",
    "max_holdable_size_fraction",
    "check_feasible",
    "eviction_futility_cdf",
    "analytic_aef",
    "approximate_pf_aef",
]


def _validate_common(sizes: Sequence[float], insertions: Sequence[float],
                     candidates: int) -> None:
    if len(sizes) != len(insertions):
        raise ConfigurationError(
            f"sizes and insertions must have equal length, "
            f"got {len(sizes)} and {len(insertions)}")
    if len(sizes) < 1:
        raise ConfigurationError("at least one partition is required")
    check_probabilities(sizes, "sizes")
    check_probabilities(insertions, "insertions")
    if candidates < 1:
        raise ConfigurationError(f"candidates must be >= 1, got {candidates}")


def min_feasible_insertion_rate(size_fraction: float, candidates: int) -> float:
    """Smallest insertion-rate fraction that can sustain ``size_fraction``.

    Equals ``size_fraction ** candidates`` — the probability that all R
    replacement candidates belong to the partition, which lower-bounds its
    eviction rate (Section IV-B).
    """
    check_positive(candidates, "candidates")
    if not 0 <= size_fraction <= 1:
        raise ConfigurationError(
            f"size_fraction must be in [0, 1], got {size_fraction}")
    return size_fraction ** candidates


def max_holdable_size_fraction(insertion_rate: float, candidates: int) -> float:
    """Largest size fraction sustainable at ``insertion_rate``: ``I**(1/R)``.

    Example from the paper: with ``R = 16`` a partition inserting only 1% of
    misses can still hold about 75% of the cache.
    """
    check_positive(candidates, "candidates")
    if not 0 <= insertion_rate <= 1:
        raise ConfigurationError(
            f"insertion_rate must be in [0, 1], got {insertion_rate}")
    return insertion_rate ** (1.0 / candidates)


def check_feasible(sizes: Sequence[float], insertions: Sequence[float],
                   candidates: int) -> None:
    """Raise :class:`InfeasiblePartitioningError` if any partition's target
    cannot be sustained by any replacement-based scheme."""
    _validate_common(sizes, insertions, candidates)
    for i, (s, ins) in enumerate(zip(sizes, insertions)):
        bound = min_feasible_insertion_rate(s, candidates)
        if ins < bound and not math.isclose(ins, bound, rel_tol=1e-12):
            raise InfeasiblePartitioningError(
                f"partition {i}: insertion fraction {ins:.6g} is below the "
                f"feasibility bound S**R = {bound:.6g} for size fraction "
                f"{s:.6g} with R = {candidates}")


def alpha_for_two_partitions(s2: float, i2: float, candidates: int) -> float:
    """Equation (1): the scaling factor of the oversubscribed partition.

    Partition 2 has target size fraction ``s2`` and insertion fraction
    ``i2 >= s2``; partition 1 (fractions ``1-s2``, ``1-i2``) is left
    unscaled (``alpha_1 = 1``).  Returns ``alpha_2 >= 1``.
    """
    if not 0 < s2 < 1:
        raise ConfigurationError(f"s2 must be in (0, 1), got {s2}")
    if not 0 <= i2 <= 1:
        raise ConfigurationError(f"i2 must be in [0, 1], got {i2}")
    if candidates < 2:
        raise ConfigurationError(
            f"Equation (1) needs R >= 2 candidates, got {candidates}")
    if i2 < s2:
        raise ConfigurationError(
            f"partition 2 must be oversubscribed (i2 >= s2), got "
            f"i2={i2} < s2={s2}; swap the partitions")
    s1 = 1.0 - s2
    i1 = 1.0 - i2
    root = (i1 / s1) ** (1.0 / (candidates - 1))
    denom = root - s1
    if denom <= 0:
        raise InfeasiblePartitioningError(
            f"no valid scaling factor: I_1 = {i1:.6g} is at or below the "
            f"feasibility bound S_1**R = {s1 ** candidates:.6g}")
    return s2 / denom


def scaling_factors_two_partitions(sizes: Sequence[float],
                                   insertions: Sequence[float],
                                   candidates: int) -> Tuple[float, float]:
    """Scaling factors ``(alpha_1, alpha_2)`` with the undersubscribed
    partition pinned at 1 (Section IV-B convention)."""
    _validate_common(sizes, insertions, candidates)
    if len(sizes) != 2:
        raise ConfigurationError("exactly two partitions are required")
    s1, s2 = sizes
    i1, i2 = insertions
    if i2 >= s2:
        return 1.0, alpha_for_two_partitions(s2, i2, candidates)
    return alpha_for_two_partitions(s1, i1, candidates), 1.0


def _piecewise_integrals(alphas: Sequence[float], sizes: Sequence[float],
                         exponent: int, upper: float,
                         *, weighted: bool = False) -> float:
    """``integral_0^upper F(x)**exponent dx`` (or ``x * F(x)**exponent`` when
    ``weighted``), with F piecewise linear between sorted alpha breakpoints."""
    breakpoints = sorted({a for a in alphas if a <= upper + 1e-15})
    if not breakpoints or breakpoints[-1] < upper - 1e-15:
        breakpoints.append(upper)
    total = 0.0
    lo = 0.0
    n = exponent
    for hi in breakpoints:
        hi = min(hi, upper)
        if hi <= lo:
            continue
        # On (lo, hi]: F(x) = m*x + c where partitions with alpha >= hi are
        # still growing and partitions with alpha <= lo have saturated.
        m = sum(s / a for a, s in zip(alphas, sizes) if a >= hi - 1e-15)
        c = sum(s for a, s in zip(alphas, sizes) if a < hi - 1e-15)
        if m <= 0:
            fval = c ** n
            if weighted:
                total += fval * (hi * hi - lo * lo) / 2.0
            else:
                total += fval * (hi - lo)
        else:
            u_hi = m * hi + c
            u_lo = m * lo + c
            if weighted:
                # integral x*(m x + c)^n dx
                #   = [u^(n+2)/(n+2) - c*u^(n+1)/(n+1)] / m^2
                term_hi = u_hi ** (n + 2) / (n + 2) - c * u_hi ** (n + 1) / (n + 1)
                term_lo = u_lo ** (n + 2) / (n + 2) - c * u_lo ** (n + 1) / (n + 1)
                total += (term_hi - term_lo) / (m * m)
            else:
                total += (u_hi ** (n + 1) - u_lo ** (n + 1)) / (m * (n + 1))
        lo = hi
    return total


def eviction_rates(alphas: Sequence[float], sizes: Sequence[float],
                   candidates: int) -> List[float]:
    """Per-partition eviction fractions ``E_i`` under the analytical model.

    ``alphas`` are the scaling factors, ``sizes`` the *actual* size
    fractions.  The returned fractions sum to 1.
    """
    if len(alphas) != len(sizes):
        raise ConfigurationError("alphas and sizes must have equal length")
    check_probabilities(sizes, "sizes")
    for i, a in enumerate(alphas):
        if a <= 0:
            raise ConfigurationError(f"alphas[{i}] must be positive, got {a}")
    r = int(candidates)
    if r < 1:
        raise ConfigurationError(f"candidates must be >= 1, got {candidates}")
    rates = []
    for a_i, s_i in zip(alphas, sizes):
        integral = _piecewise_integrals(alphas, sizes, r - 1, a_i)
        rates.append(r * (s_i / a_i) * integral)
    return rates


def solve_scaling_factors(sizes: Sequence[float], insertions: Sequence[float],
                          candidates: int, *, tolerance: float = 1e-10,
                          max_iterations: int = 100_000) -> List[float]:
    """Solve ``E_i(alpha) = I_i`` for N partitions (the paper's extension to
    more than two partitions, derived in its technical report [21]).

    The solution is unique up to a common scale factor; the returned vector
    is normalized so ``min(alpha) == 1``.  Raises
    :class:`InfeasiblePartitioningError` when the targets violate the
    ``I_i >= S_i**R`` bound.  Uses damped multiplicative fixed-point
    iteration, which converges because each ``E_i`` is strictly increasing
    in ``alpha_i`` and decreasing in the other factors.
    """
    _validate_common(sizes, insertions, candidates)
    check_feasible(sizes, insertions, candidates)
    n = len(sizes)
    if n == 1:
        return [1.0]
    alphas = [1.0] * n
    # E_i scales roughly like alpha_i**(R-1) near the fixed point, so the
    # multiplicative step must be damped by ~1/R to avoid oscillation; the
    # damping backs off further whenever the residual worsens.  Individual
    # steps are clamped to a factor of two and alphas capped (their effect
    # on E saturates) to keep extreme-but-feasible instances finite.
    damping = 1.0 / max(2, candidates)
    alpha_cap = 1e12
    previous_worst = math.inf
    for _ in range(max_iterations):
        rates = eviction_rates(alphas, sizes, candidates)
        worst = 0.0
        ratios = []
        for i in range(n):
            if insertions[i] <= 0:
                # Zero insertions: any finite eviction rate shrinks the
                # partition; pin alpha at the minimum to protect it.
                ratios.append(1.0)
                continue
            ratio = insertions[i] / max(rates[i], 1e-300)
            ratios.append(ratio)
            if alphas[i] < alpha_cap or ratio < 1.0:
                worst = max(worst, abs(ratio - 1.0))
        if worst < tolerance:
            return alphas
        if worst > previous_worst * 1.000001:
            damping *= 0.5
        previous_worst = worst
        for i in range(n):
            step = ratios[i] ** damping
            step = min(2.0, max(0.5, step))
            alphas[i] = min(alpha_cap, alphas[i] * step)
        floor = min(alphas)
        alphas = [a / floor for a in alphas]
    raise InfeasiblePartitioningError(
        f"scaling-factor solver did not converge within {max_iterations} "
        f"iterations (residual {worst:.3g}); the requested partitioning is "
        f"at or beyond the feasibility boundary")


def approximate_pf_aef(num_partitions: int, candidates: int) -> float:
    """Approximate AEF of an equally partitioned PF cache (Section III-C).

    Model: under the uniformity assumption, the number of candidates ``k``
    belonging to the partition chosen by the PS step is roughly
    ``Binomial(R, 1/N)`` conditioned on ``k >= 1``; the VI step then evicts
    the max of ``k`` uniform futilities, whose mean is ``k / (k + 1)``, so::

        AEF ~= E[k / (k+1) | k >= 1]

    The approximation ignores the PS step's bias toward partitions with
    more candidates (it picks by size overshoot, which correlates with
    representation), so it is tight in the many-partition regime the
    paper's Fig. 2 worst case lives in (``N >~ R/2``: e.g. N=32, R=16
    gives 0.52 vs the measured 0.53) and overestimates at small ``N``.
    As ``N -> infinity`` it approaches the 0.5 random-eviction floor; at
    ``N = 1`` it reduces to the exact fully-shared value ``R/(R+1)``.
    """
    if num_partitions < 1:
        raise ConfigurationError(
            f"num_partitions must be >= 1, got {num_partitions}")
    if candidates < 1:
        raise ConfigurationError(f"candidates must be >= 1, got {candidates}")
    r = int(candidates)
    p = 1.0 / num_partitions
    # P(k) for Binomial(r, p), k = 0..r.
    pmf = []
    for k in range(r + 1):
        pmf.append(math.comb(r, k) * p ** k * (1 - p) ** (r - k))
    conditioning = 1.0 - pmf[0]
    if conditioning <= 0:  # pragma: no cover - p > 0 always
        return 0.5
    return sum(pmf[k] * k / (k + 1) for k in range(1, r + 1)) / conditioning


def eviction_futility_cdf(alphas: Sequence[float], sizes: Sequence[float],
                          candidates: int, partition: int,
                          futility: float) -> float:
    """Analytic associativity CDF: ``P(f_evict <= futility | evicted from
    partition)`` with unscaled futility ``f_evict`` in [0, 1]."""
    if not 0 <= futility <= 1:
        raise ConfigurationError(f"futility must be in [0, 1], got {futility}")
    a_i = alphas[partition]
    r = int(candidates)
    denom = _piecewise_integrals(alphas, sizes, r - 1, a_i)
    if denom <= 0:
        raise ConfigurationError("partition has zero eviction probability")
    numer = _piecewise_integrals(alphas, sizes, r - 1, futility * a_i)
    return numer / denom


def analytic_aef(alphas: Sequence[float], sizes: Sequence[float],
                 candidates: int, partition: Optional[int] = None) -> float:
    """Analytic Average Eviction Futility.

    With ``partition`` given, the AEF of that partition's evictions;
    otherwise the eviction-weighted AEF over the whole cache.  For a single
    unscaled partition this equals ``R / (R + 1)``.
    """
    r = int(candidates)
    if partition is None:
        rates = eviction_rates(alphas, sizes, r)
        return sum(rate * analytic_aef(alphas, sizes, r, i)
                   for i, rate in enumerate(rates))
    a_i = alphas[partition]
    denom = _piecewise_integrals(alphas, sizes, r - 1, a_i)
    if denom <= 0:
        raise ConfigurationError("partition has zero eviction probability")
    weighted = _piecewise_integrals(alphas, sizes, r - 1, a_i, weighted=True)
    # E[f | evict from i] = E[x | ...] / alpha_i with x the scaled victim value.
    return (weighted / denom) / a_i

"""Futility ranking schemes (Section III-A of the paper).

The *futility* of a cache line measures how useless keeping the line would
be.  Within each partition, lines are strictly totally ordered by a ranking
scheme; a line ranked ``r``-th (1-based) in a partition of ``M`` lines has
normalized futility ``f = r / M``, ``f in (0, 1]`` — higher is more useless.

Rankings implemented:

* :class:`LRURanking` — rank by time of last access (exact recency order).
* :class:`LFURanking` — rank by access frequency (ties broken by recency).
* :class:`OPTRanking` — Belady's OPT [14]: rank by time to next reference,
  using future knowledge supplied with each access (``next_use``).
* :class:`CoarseTimestampLRURanking` — the practical 8-bit coarse-grain
  timestamp LRU of [17] used by the paper's feedback-based FS hardware
  design (Section V): each partition keeps an 8-bit current timestamp that
  increments every ``K = partition_size / 16`` accesses; a line's raw
  futility is the unsigned 8-bit distance from the current timestamp.
* :class:`RandomRanking` — control for tests and ablations.

Every ranking exposes two views:

* ``futility(idx)`` — normalized rank-based futility in ``(0, 1]``, the
  quantity the paper's analytical framework and associativity statistics are
  defined over (for the coarse-timestamp ranking this is the timestamp
  distance normalized by 255, an approximation).
* ``raw_futility(idx)`` — the scheme-facing magnitude the replacement
  hardware would compare (the 8-bit distance for coarse timestamps; equal to
  ``futility`` for the exact rankings).

Layout note (the access-kernel contract): the keyed exact rankings are
struct-of-arrays — a flat per-line key array plus one plain sorted key list
per partition — and advertise ``key_ordered = True``.  Within a partition,
normalized futility is strictly monotone in the key (direction given by
``_ascending_futility``), so the victim-selection kernels in
:mod:`repro.core.schemes.kernels` compare raw keys instead of issuing a
rank query (a bisect) per candidate, and batch the few rank queries that
remain via :meth:`FutilityRanking.futilities`.  The per-partition
``most_futile`` index (a key -> line dict) is maintained only once
:meth:`_KeyedRanking.ensure_index` has been called — the FullAssoc scheme
is its lone hot-path consumer, so everyone else skips two dict writes per
event.
"""

from __future__ import annotations

import random
from array import array
from bisect import bisect_left, insort
from typing import List, Optional, Sequence

from ..errors import ConfigurationError

__all__ = [
    "FutilityRanking",
    "LRURanking",
    "LFURanking",
    "OPTRanking",
    "CoarseTimestampLRURanking",
    "RandomRanking",
    "make_ranking",
    "TIMESTAMP_BITS",
    "TIMESTAMP_MOD",
]

TIMESTAMP_BITS = 8
TIMESTAMP_MOD = 1 << TIMESTAMP_BITS


class FutilityRanking:
    """Base class for per-partition futility rankings.

    Lifecycle: the owning cache calls :meth:`bind` once, then notifies the
    ranking of every insertion, hit, eviction and block move.  Rank queries
    are only valid for currently resident line indices.
    """

    #: Human-readable scheme name (used in experiment reports).
    name = "abstract"
    #: Whether ``futility`` returns the exact normalized rank.
    exact = False
    #: Whether accesses must carry Belady next-use information.
    needs_future = False
    #: Whether resident lines of one partition may be *compared* by their
    #: raw keys (``_key``/``_keys``/``_ascending_futility``), letting victim
    #: kernels avoid per-candidate rank queries.
    key_ordered = False

    def __init__(self) -> None:
        self._num_lines = 0
        self._num_partitions = 0

    def bind(self, num_lines: int, num_partitions: int) -> None:
        """Allocate per-line and per-partition state."""
        if num_lines <= 0 or num_partitions <= 0:
            raise ConfigurationError("num_lines and num_partitions must be positive")
        self._num_lines = num_lines
        self._num_partitions = num_partitions

    def set_targets(self, targets: Sequence[int]) -> None:
        """Notify the ranking of partition target sizes (coarse-TS uses this
        to derive its timestamp increment period)."""

    def add_partition(self) -> int:
        """Grow per-partition state by one empty partition.

        Part of the cache's partition control plane (tenant arrival):
        subclasses append one zeroed slot to every per-partition structure.
        Returns the new partition id.  The caller follows up with
        :meth:`set_targets` carrying the lengthened target vector.
        """
        part = self._num_partitions
        self._num_partitions = part + 1
        return part

    def partition_size(self, part: int) -> int:
        """Number of resident lines currently ranked in ``part``."""
        raise NotImplementedError

    # -- event hooks -------------------------------------------------------
    def on_insert(self, idx: int, part: int, *, next_use: Optional[int] = None) -> None:
        raise NotImplementedError

    def on_hit(self, idx: int, part: int, *, next_use: Optional[int] = None) -> None:
        raise NotImplementedError

    def on_evict(self, idx: int, part: int) -> None:
        raise NotImplementedError

    def on_move(self, src: int, dst: int) -> None:
        """A block (and its ranking state) moved between slots (zcache)."""
        raise NotImplementedError

    # -- queries -----------------------------------------------------------
    def futility(self, idx: int) -> float:
        """Normalized futility of resident line ``idx`` in ``(0, 1]``."""
        raise NotImplementedError

    def raw_futility(self, idx: int) -> float:
        """Scheme-facing futility magnitude (larger = more useless)."""
        return self.futility(idx)

    # -- batch queries (the victim kernels' entry points) ------------------
    def futilities(self, indices: Sequence[int]) -> List[float]:
        """``futility`` over many lines in one call (subclasses inline)."""
        futility = self.futility
        return [futility(i) for i in indices]

    def raw_futilities(self, indices: Sequence[int]) -> List[float]:
        """``raw_futility`` over many lines in one call."""
        raw = self.raw_futility
        return [raw(i) for i in indices]


class _KeyedRanking(FutilityRanking):
    """Shared machinery for rankings backed by per-partition sorted keys.

    Subclasses define how keys are produced; this class maintains the flat
    per-line key/partition arrays and one plain sorted list of keys per
    partition (``_keys[part]``).  ``_ascending_futility`` selects the rank
    direction: ``True`` means larger keys are more futile (OPT next-use
    times), ``False`` means smaller keys are more futile (LRU last-access
    times, LFU counts).
    """

    _ascending_futility = True
    key_ordered = True

    def bind(self, num_lines: int, num_partitions: int) -> None:
        super().bind(num_lines, num_partitions)
        self._key: List = [None] * num_lines
        self._part = array("i", [-1]) * num_lines
        self._keys: List[List] = [[] for _ in range(num_partitions)]
        # key -> line index per partition; built lazily by ensure_index()
        # because only most_futile() consumers (FullAssoc) need it.
        self._index_of: Optional[List[dict]] = None

    def add_partition(self) -> int:
        part = super().add_partition()
        self._keys.append([])
        if self._index_of is not None:
            self._index_of.append(dict())
        return part

    def partition_size(self, part: int) -> int:
        return len(self._keys[part])

    def ensure_index(self) -> None:
        """Build (and from then on maintain) the key -> line index used by
        :meth:`most_futile`.  Idempotent; callable at any point."""
        if self._index_of is not None:
            return
        index_of: List[dict] = [dict() for _ in range(self._num_partitions)]
        key = self._key
        part = self._part
        for idx in range(self._num_lines):
            p = part[idx]
            if p >= 0:
                index_of[p][key[idx]] = idx
        self._index_of = index_of

    def most_futile(self, part: int) -> int:
        """Line index of the most futile resident line in ``part``.

        Used by the FullAssoc ideal scheme; raises ``IndexError`` when the
        partition is empty.
        """
        if self._index_of is None:
            self.ensure_index()
        ks = self._keys[part]
        key = ks[-1] if self._ascending_futility else ks[0]
        return self._index_of[part][key]

    def _make_key(self, idx: int, part: int, next_use: Optional[int],
                  *, is_hit: bool):
        raise NotImplementedError

    def on_insert(self, idx: int, part: int, *, next_use: Optional[int] = None) -> None:
        key = self._make_key(idx, part, next_use, is_hit=False)
        self._key[idx] = key
        self._part[idx] = part
        ks = self._keys[part]
        if ks and key < ks[-1]:
            insort(ks, key)
        else:
            ks.append(key)
        if self._index_of is not None:
            self._index_of[part][key] = idx

    def on_hit(self, idx: int, part: int, *, next_use: Optional[int] = None) -> None:
        ks = self._keys[part]
        old = self._key[idx]
        del ks[bisect_left(ks, old)]
        key = self._make_key(idx, part, next_use, is_hit=True)
        self._key[idx] = key
        if ks and key < ks[-1]:
            insort(ks, key)
        else:
            ks.append(key)
        if self._index_of is not None:
            index_of = self._index_of[part]
            del index_of[old]
            index_of[key] = idx

    def on_evict(self, idx: int, part: int) -> None:
        key = self._key[idx]
        ks = self._keys[part]
        del ks[bisect_left(ks, key)]
        if self._index_of is not None:
            del self._index_of[part][key]
        self._key[idx] = None
        self._part[idx] = -1

    def on_move(self, src: int, dst: int) -> None:
        key = self._key[src]
        part = self._part[src]
        self._key[dst] = key
        self._part[dst] = part
        if self._index_of is not None:
            self._index_of[part][key] = dst
        self._key[src] = None
        self._part[src] = -1

    def futility(self, idx: int) -> float:
        ks = self._keys[self._part[idx]]
        size = len(ks)
        rank = bisect_left(ks, self._key[idx])  # keys strictly smaller
        if self._ascending_futility:
            return (rank + 1) / size
        return (size - rank) / size

    def futilities(self, indices: Sequence[int]) -> List[float]:
        key = self._key
        part = self._part
        keys = self._keys
        asc = self._ascending_futility
        out: List[float] = []
        append = out.append
        for i in indices:
            ks = keys[part[i]]
            size = len(ks)
            rank = bisect_left(ks, key[i])
            append((rank + 1) / size if asc else (size - rank) / size)
        return out

    # Exact rankings: the raw magnitude *is* the normalized rank.
    def raw_futilities(self, indices: Sequence[int]) -> List[float]:
        return self.futilities(indices)


class LRURanking(_KeyedRanking):
    """Exact least-recently-used futility: oldest line has futility 1."""

    name = "lru"
    exact = True
    _ascending_futility = False  # smaller (older) access seq = more futile

    def bind(self, num_lines: int, num_partitions: int) -> None:
        super().bind(num_lines, num_partitions)
        self._seq = 0

    def _make_key(self, idx, part, next_use, *, is_hit):
        self._seq += 1
        return self._seq

    # Access-sequence keys are strictly increasing, so the sorted-position
    # search of the generic paths degenerates to an append; these overrides
    # keep the hottest ranking events free of _make_key dispatch too.
    def on_insert(self, idx: int, part: int, *, next_use: Optional[int] = None) -> None:
        key = self._seq + 1
        self._seq = key
        self._key[idx] = key
        self._part[idx] = part
        self._keys[part].append(key)
        if self._index_of is not None:
            self._index_of[part][key] = idx

    def on_hit(self, idx: int, part: int, *, next_use: Optional[int] = None) -> None:
        ks = self._keys[part]
        old = self._key[idx]
        del ks[bisect_left(ks, old)]
        key = self._seq + 1
        self._seq = key
        self._key[idx] = key
        ks.append(key)
        if self._index_of is not None:
            index_of = self._index_of[part]
            del index_of[old]
            index_of[key] = idx


class LFURanking(_KeyedRanking):
    """Exact least-frequently-used futility, recency-tie-broken.

    Keys are ``(access_count, last_access_seq)`` so the total order is
    strict; fewer accesses (and, at equal counts, older access) = more
    futile.
    """

    name = "lfu"
    exact = True
    _ascending_futility = False

    def bind(self, num_lines: int, num_partitions: int) -> None:
        super().bind(num_lines, num_partitions)
        self._seq = 0
        self._count: List[int] = [0] * num_lines

    def _make_key(self, idx, part, next_use, *, is_hit):
        self._seq += 1
        self._count[idx] = self._count[idx] + 1 if is_hit else 1
        return (self._count[idx], self._seq)

    def on_evict(self, idx: int, part: int) -> None:
        super().on_evict(idx, part)
        self._count[idx] = 0

    def on_move(self, src: int, dst: int) -> None:
        super().on_move(src, dst)
        self._count[dst] = self._count[src]
        self._count[src] = 0


class OPTRanking(_KeyedRanking):
    """Belady's OPT futility [14]: rank by time to next reference.

    Each access must supply ``next_use`` — the (thread-local) position of the
    next reference to the same address, or any value strictly larger than
    every finite position if the address is never referenced again.  Trace
    containers precompute this (see :func:`repro.trace.access.annotate_next_use`).
    """

    name = "opt"
    exact = True
    needs_future = True
    _ascending_futility = True  # later next use = more futile

    def _make_key(self, idx, part, next_use, *, is_hit):
        if next_use is None:
            raise ConfigurationError(
                "OPTRanking requires next_use on every access; "
                "annotate the trace with next-use information first")
        # (next_use, idx) keeps keys strict even if a caller reuses a
        # sentinel next_use for many never-referenced-again lines.
        return (next_use, idx)


class RandomRanking(_KeyedRanking):
    """Uniformly random futility (control: associativity CDF is diagonal)."""

    name = "random"
    exact = True
    _ascending_futility = True

    def __init__(self, seed: int = 0) -> None:
        super().__init__()
        self._rng = random.Random(seed)

    def _make_key(self, idx, part, next_use, *, is_hit):
        return (self._rng.random(), idx)


class CoarseTimestampLRURanking(FutilityRanking):
    """Coarse-grain 8-bit timestamp LRU [17] (the paper's hardware design).

    Per partition: an 8-bit ``current timestamp`` counter incremented once
    every ``K`` accesses to that partition, where ``K = max(1, target/16)``.
    Each resident line is tagged with its partition's current timestamp at
    insertion and on every hit.  The raw futility of a line is the unsigned
    8-bit distance ``(current - line_ts) mod 256`` — an O(1) operation, no
    rank structures needed (this is why the design is cheap: ~1.5% state
    overhead, Section V-B).

    ``futility`` (used only for *measurement*, never for the hardware
    decision path) returns the distance normalized by 255.

    Per-line state is a ``bytearray`` of timestamps plus a flat partition
    array — the modeled hardware's 8-bit tag store, laid out as such.
    """

    name = "coarse-ts-lru"
    exact = False

    def __init__(self, period_fraction: int = 16) -> None:
        super().__init__()
        if period_fraction <= 0:
            raise ConfigurationError("period_fraction must be positive")
        self.period_fraction = int(period_fraction)

    def bind(self, num_lines: int, num_partitions: int) -> None:
        super().bind(num_lines, num_partitions)
        self._ts = bytearray(num_lines)
        self._part = array("i", [-1]) * num_lines
        self._cur_ts: List[int] = [0] * num_partitions
        self._acc: List[int] = [0] * num_partitions
        self._period: List[int] = [1] * num_partitions
        self._sizes: List[int] = [0] * num_partitions

    def set_targets(self, targets: Sequence[int]) -> None:
        if len(targets) != self._num_partitions:
            raise ConfigurationError(
                f"expected {self._num_partitions} targets, got {len(targets)}")
        self._period = [max(1, int(t) // self.period_fraction) for t in targets]

    def add_partition(self) -> int:
        part = super().add_partition()
        self._cur_ts.append(0)
        self._acc.append(0)
        self._period.append(1)
        self._sizes.append(0)
        return part

    def partition_size(self, part: int) -> int:
        return self._sizes[part]

    def current_timestamp(self, part: int) -> int:
        return self._cur_ts[part]

    def _tick(self, part: int) -> None:
        acc = self._acc[part] + 1
        if acc >= self._period[part]:
            self._acc[part] = 0
            self._cur_ts[part] = (self._cur_ts[part] + 1) % TIMESTAMP_MOD
        else:
            self._acc[part] = acc

    def on_insert(self, idx: int, part: int, *, next_use: Optional[int] = None) -> None:
        self._tick(part)
        self._ts[idx] = self._cur_ts[part]
        self._part[idx] = part
        self._sizes[part] += 1

    def on_hit(self, idx: int, part: int, *, next_use: Optional[int] = None) -> None:
        self._tick(part)
        self._ts[idx] = self._cur_ts[part]

    def on_evict(self, idx: int, part: int) -> None:
        self._sizes[part] -= 1
        self._part[idx] = -1

    def on_move(self, src: int, dst: int) -> None:
        self._ts[dst] = self._ts[src]
        self._part[dst] = self._part[src]
        self._part[src] = -1

    def raw_futility(self, idx: int) -> int:
        part = self._part[idx]
        return (self._cur_ts[part] - self._ts[idx]) % TIMESTAMP_MOD

    def futility(self, idx: int) -> float:
        return self.raw_futility(idx) / (TIMESTAMP_MOD - 1)

    def raw_futilities(self, indices: Sequence[int]) -> List[int]:
        ts = self._ts
        part = self._part
        cur = self._cur_ts
        return [(cur[part[i]] - ts[i]) % TIMESTAMP_MOD for i in indices]

    def futilities(self, indices: Sequence[int]) -> List[float]:
        scale = TIMESTAMP_MOD - 1
        return [raw / scale for raw in self.raw_futilities(indices)]


_RANKING_KINDS = {
    "lru": LRURanking,
    "lfu": LFURanking,
    "opt": OPTRanking,
    "coarse-ts-lru": CoarseTimestampLRURanking,
    "random": RandomRanking,
}


def make_ranking(kind: str, **kwargs) -> FutilityRanking:
    """Construct a futility ranking by name."""
    try:
        cls = _RANKING_KINDS[kind]
    except KeyError:
        raise ConfigurationError(
            f"unknown ranking kind {kind!r}; expected one of {sorted(_RANKING_KINDS)}")
    return cls(**kwargs)

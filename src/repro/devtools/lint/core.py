"""reprolint framework: findings, rule registry, suppressions, checker.

The analyzer mirrors the experiment-registry pattern
(:mod:`repro.experiments.registry`): every check is a :class:`Rule`
subclass registered under a stable ID via :func:`register_rule`, and the
:class:`Checker` runs any subset of the registry over parsed source
files.  Rules are pure AST passes — no imports of the code under
analysis, no execution — so the linter can safely run over broken or
heavyweight modules.

Suppression is per line: a ``# reprolint: disable=RULE`` (or
``disable=RULE1,RULE2``, or ``disable=all``) comment on the *physical
line a finding points at* silences that finding.  Suppressions are
deliberately narrow; there is no file- or block-level escape hatch, so
every accepted hazard is visible at the line that carries it.

Path scoping: a rule may declare ``include`` fragments (only library
files matching one of them are checked — e.g. COR001 only watches
``repro/core/`` and ``repro/analysis/``) and ``allow`` fragments
(sanctioned files skipped entirely — e.g. the worker-reseed site in
``repro/runner/pool.py`` for DET001).  ``include`` scoping only applies
to files that live inside a ``repro`` package directory; standalone
snippets (fixtures, examples) are always checked, which keeps the rule
testable outside the tree.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass
from pathlib import Path, PurePosixPath
from typing import (
    Any,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Type,
)

__all__ = [
    "Checker",
    "FileContext",
    "Finding",
    "LintConfigError",
    "ProjectRule",
    "Rule",
    "dotted_name",
    "import_aliases",
    "iter_rules",
    "parse_suppressions",
    "register_rule",
    "rule_ids",
    "unregister_rule",
]

#: Matches ``# reprolint: disable=DET001`` / ``disable=DET001,COR002`` /
#: ``disable=all`` anywhere in a comment.
_SUPPRESS_RE = re.compile(
    r"#\s*reprolint:\s*disable=([A-Za-z0-9_]+(?:\s*,\s*[A-Za-z0-9_]+)*)")

#: Stable rule IDs are an uppercase prefix plus a 3-digit number.
_RULE_ID_RE = re.compile(r"^[A-Z]{3}\d{3}$")

#: Sentinel suppression token silencing every rule on a line.
SUPPRESS_ALL = "all"


class LintConfigError(ValueError):
    """Invalid analyzer configuration (bad rule ID, unknown rule, ...)."""


@dataclass(frozen=True, order=True)
class Finding:
    """One diagnostic: a rule fired at a source location."""

    path: str
    line: int
    col: int
    rule_id: str
    message: str

    def render(self) -> str:
        """Classic compiler format: ``path:line:col: ID message``."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule_id} {self.message}"

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready mapping (stable key order via sort_keys later)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule_id,
            "message": self.message,
        }


@dataclass(frozen=True)
class FileContext:
    """Everything a rule sees for one source file."""

    #: Path exactly as reported in findings.
    path: str
    #: Normalized posix path used for include/allow scoping.
    posix: str
    source: str
    tree: ast.Module
    #: line number -> rule IDs suppressed there (may contain ``all``).
    suppressions: Mapping[int, FrozenSet[str]]
    #: local name -> dotted module/attribute origin (import tracking).
    aliases: Mapping[str, str]

    @property
    def in_package(self) -> bool:
        """True when the file lives inside a ``repro`` package tree."""
        return "repro" in PurePosixPath(self.posix).parts


class Rule:
    """Base class for reprolint rules.

    Subclasses set the class attributes below and implement
    :meth:`check`; decorating with :func:`register_rule` adds them to
    the default ruleset.

    Attributes
    ----------
    rule_id:
        Stable ID, ``AAA000`` shape (``DET...`` determinism,
        ``COR...`` correctness).  Never renumber a published rule.
    summary:
        One-line description shown by ``--list-rules``.
    include:
        Posix path fragments; when non-empty, library files matching
        none of them are skipped (see module docstring).
    allow:
        Posix path fragments of sanctioned files this rule never fires
        in (the auditable alternative to sprinkling suppressions).
    """

    rule_id: str = ""
    summary: str = ""
    include: Tuple[str, ...] = ()
    allow: Tuple[str, ...] = ()
    #: Optional illustrative snippets shown by ``--explain``.
    example_bad: str = ""
    example_good: str = ""

    def path_applies(self, posix: str) -> bool:
        """Path-level gate combining ``allow`` and ``include``."""
        if any(frag in posix for frag in self.allow):
            return False
        in_package = "repro" in PurePosixPath(posix).parts
        if self.include and in_package:
            return any(frag in posix for frag in self.include)
        return True

    def applies_to(self, ctx: FileContext) -> bool:
        """Path-level gate for one file context."""
        return self.path_applies(ctx.posix)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Yield every finding for ``ctx``; must not mutate the tree."""
        raise NotImplementedError

    def finding(self, ctx: FileContext, node: ast.AST, message: str) -> Finding:
        """Build a :class:`Finding` at ``node``'s location."""
        return Finding(path=ctx.path, line=getattr(node, "lineno", 1),
                       col=getattr(node, "col_offset", 0) + 1,
                       rule_id=self.rule_id, message=message)


class ProjectRule(Rule):
    """Base class for whole-program (phase 2) rules.

    A :class:`ProjectRule` never sees a single AST; it runs once per
    lint invocation over the assembled
    :class:`~repro.devtools.lint.index.ProjectIndex` and may report
    findings in any indexed file.  ``include``/``allow`` scoping is
    applied to each *finding's* path rather than gating the rule as a
    whole, so a cross-module rule can follow evidence through files it
    would never report in.
    """

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Project rules do not participate in the per-file phase."""
        return iter(())

    def check_project(self, index: Any) -> Iterator[Finding]:
        """Yield findings for the whole project index."""
        raise NotImplementedError

    def finding_at(self, path: str, line: int, col: int,
                   message: str) -> Finding:
        """Build a :class:`Finding` at an explicit location."""
        return Finding(path=path, line=line, col=col,
                       rule_id=self.rule_id, message=message)


_RULES: Dict[str, Type[Rule]] = {}


def register_rule(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the default registry.

    Mirrors :func:`repro.experiments.registry.register_experiment`:
    IDs are unique and stable; re-registering an ID raises.
    """
    if not _RULE_ID_RE.match(cls.rule_id or ""):
        raise LintConfigError(
            f"rule {cls.__name__} has invalid id {cls.rule_id!r}; "
            f"expected e.g. 'DET001'")
    if cls.rule_id in _RULES:
        raise LintConfigError(f"rule id {cls.rule_id!r} is already registered")
    if not cls.summary:
        raise LintConfigError(f"rule {cls.rule_id} must define a summary")
    _RULES[cls.rule_id] = cls
    return cls


def unregister_rule(rule_id: str) -> None:
    """Remove a rule (primarily for tests and plugins)."""
    _RULES.pop(rule_id, None)


def rule_ids() -> List[str]:
    """Sorted IDs of all registered rules."""
    return sorted(_RULES)


def iter_rules() -> Iterator[Type[Rule]]:
    """Iterate rule classes in sorted-ID order."""
    for rid in rule_ids():
        yield _RULES[rid]


def parse_suppressions(source: str) -> Dict[int, FrozenSet[str]]:
    """Map line numbers to the rule IDs suppressed on them.

    Tolerates tokenize errors (the AST parse is the authoritative
    syntax gate); a file that parses but cannot be tokenized simply has
    no suppressions.
    """
    table: Dict[int, FrozenSet[str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            match = _SUPPRESS_RE.search(tok.string)
            if not match:
                continue
            ids = frozenset(part.strip() for part in match.group(1).split(","))
            line = tok.start[0]
            table[line] = table.get(line, frozenset()) | ids
    except tokenize.TokenizeError:
        pass
    return table


def import_aliases(tree: ast.Module) -> Dict[str, str]:
    """Resolve local names to dotted import origins.

    ``import numpy as np`` maps ``np -> numpy``; ``from datetime import
    datetime`` maps ``datetime -> datetime.datetime``; relative imports
    are ignored (the determinism rules target stdlib/numpy only).
    """
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for name in node.names:
                if name.asname:
                    aliases[name.asname] = name.name
                else:
                    root = name.name.split(".")[0]
                    aliases[root] = root
        elif isinstance(node, ast.ImportFrom):
            if node.level or not node.module:
                continue
            for name in node.names:
                if name.name == "*":
                    continue
                aliases[name.asname or name.name] = (
                    f"{node.module}.{name.name}")
    return aliases


def dotted_name(node: ast.AST, aliases: Mapping[str, str]) -> Optional[str]:
    """Dotted origin of a Name/Attribute chain, or None.

    ``np.random.default_rng`` with ``np -> numpy`` resolves to
    ``"numpy.random.default_rng"``.  Chains whose root is not a tracked
    import resolve to None — a local variable that merely shadows a
    module name must not trip module-targeted rules.
    """
    parts: List[str] = []
    cur = node
    while isinstance(cur, ast.Attribute):
        parts.append(cur.attr)
        cur = cur.value
    if not isinstance(cur, ast.Name):
        return None
    origin = aliases.get(cur.id)
    if origin is None:
        return None
    parts.append(origin)
    return ".".join(reversed(parts))


def _as_posix(path: str) -> str:
    return str(PurePosixPath(Path(path).as_posix()))


class Checker:
    """Run a set of rules over source files and collect findings.

    Per-file rules run in phase 1, one AST at a time.  When any
    :class:`ProjectRule` is selected, phase 2 assembles a
    :class:`~repro.devtools.lint.index.ProjectIndex` over every linted
    file (plus any ``aux`` files, indexed for cross-reference only) and
    runs the project rules over it.  ``index_cache`` names an optional
    JSON file reused across runs to skip re-indexing unchanged files.
    """

    def __init__(self, rules: Optional[Iterable[Type[Rule]]] = None, *,
                 respect_suppressions: bool = True,
                 project: bool = True,
                 index_cache: Optional[str] = None) -> None:
        classes = list(rules) if rules is not None else list(iter_rules())
        self.rules: List[Rule] = [cls() for cls in classes]
        self.respect_suppressions = respect_suppressions
        self.project = project
        self.index_cache = index_cache
        #: Last ProjectIndex built, for introspection (``--stats``, tests).
        self.last_index: Optional[Any] = None

    @property
    def file_rules(self) -> List[Rule]:
        return [r for r in self.rules if not isinstance(r, ProjectRule)]

    @property
    def project_rules(self) -> List[ProjectRule]:
        if not self.project:
            return []
        return [r for r in self.rules if isinstance(r, ProjectRule)]

    def check_source(self, source: str, path: str = "<string>") -> List[Finding]:
        """Lint one in-memory source blob under a (possibly virtual) path.

        Raises :class:`SyntaxError` when the source does not parse; the
        CLI maps that to exit code 2.
        """
        return self.check_sources([(path, source)])

    def check_sources(self, pairs: Sequence[Tuple[str, str]],
                      aux_pairs: Sequence[Tuple[str, str]] = (),
                      ) -> List[Finding]:
        """Lint ``(path, source)`` blobs as one project.

        ``aux_pairs`` join the project index (so cross-reference rules
        can see tests, examples, ...) but never carry findings.
        """
        findings: List[Finding] = []
        for path, source in pairs:
            findings.extend(self._check_file_phase(source, path))
        if self.project_rules:
            from .index import ProjectIndexer  # circular-at-import guard

            indexer = ProjectIndexer(self.index_cache)
            index = indexer.build(pairs, aux_pairs)
            self.last_index = index
            findings.extend(self._check_project_phase(index))
        return sorted(findings)

    def _check_file_phase(self, source: str, path: str) -> List[Finding]:
        tree = ast.parse(source, filename=path)
        ctx = FileContext(
            path=path, posix=_as_posix(path), source=source, tree=tree,
            suppressions=parse_suppressions(source),
            aliases=import_aliases(tree))
        findings: List[Finding] = []
        for rule in self.file_rules:
            if not rule.applies_to(ctx):
                continue
            for finding in rule.check(ctx):
                if self.respect_suppressions and self._suppressed(ctx, finding):
                    continue
                findings.append(finding)
        return findings

    def _check_project_phase(self, index: Any) -> List[Finding]:
        findings: List[Finding] = []
        for rule in self.project_rules:
            for finding in rule.check_project(index):
                if not rule.path_applies(_as_posix(finding.path)):
                    continue
                if self.respect_suppressions:
                    ids = index.suppressions_for(finding.path).get(
                        finding.line)
                    if ids and (finding.rule_id in ids
                                or SUPPRESS_ALL in ids):
                        continue
                findings.append(finding)
        return findings

    def check_file(self, path: str) -> List[Finding]:
        """Lint one file from disk."""
        return self.check_paths([path])

    def check_paths(self, paths: Sequence[str],
                    aux_paths: Sequence[str] = ()) -> List[Finding]:
        """Lint files and directory trees (``*.py``, sorted walk)."""
        return self.check_sources(self._collect(paths),
                                  self._collect(aux_paths))

    @staticmethod
    def _collect(paths: Sequence[str]) -> List[Tuple[str, str]]:
        pairs: List[Tuple[str, str]] = []
        for path in paths:
            target = Path(path)
            if target.is_dir():
                items = [str(item) for item in sorted(target.rglob("*.py"))
                         if "__pycache__" not in item.parts]
            else:
                items = [str(target)]
            for item in items:
                with tokenize.open(item) as fh:  # honors PEP 263 cookies
                    pairs.append((item, fh.read()))
        return pairs

    @staticmethod
    def _suppressed(ctx: FileContext, finding: Finding) -> bool:
        ids = ctx.suppressions.get(finding.line)
        if not ids:
            return False
        return finding.rule_id in ids or SUPPRESS_ALL in ids

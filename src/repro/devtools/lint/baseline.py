"""Finding baselines: burn down pre-existing debt without blocking CI.

A baseline file (conventionally ``.reprolint-baseline.json``, committed
at the repo root) records a *fingerprint* for every finding that existed
when the baseline was written.  CI fails only on findings whose
fingerprint is not in the baseline, so a new rule can land with the tree
still dirty and the debt paid off file by file — regenerate deliberately
with ``make lint-baseline``.

Fingerprints are content-based, not line-based: the SHA-256 of the rule
ID, the file's posix path, the *stripped text of the offending line*,
and an occurrence counter (for identical lines repeated in one file).
Inserting or deleting unrelated lines above a finding therefore does not
invalidate it, while editing the flagged line itself does — exactly the
"touch it, fix it" pressure a baseline should apply.  The same
fingerprint is embedded in SARIF output as a ``partialFingerprints``
entry (:data:`FINGERPRINT_KEY`).
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from .core import Finding

__all__ = [
    "BASELINE_VERSION",
    "DEFAULT_BASELINE",
    "FINGERPRINT_KEY",
    "filter_baselined",
    "fingerprint_findings",
    "load_baseline",
    "write_baseline",
]

BASELINE_VERSION = 1
DEFAULT_BASELINE = ".reprolint-baseline.json"
#: partialFingerprints key shared with the SARIF emitter.
FINGERPRINT_KEY = "reprolint/v1"


def _line_text(path: str, line: int,
               sources: Optional[Mapping[str, str]]) -> str:
    source = None
    if sources is not None:
        source = sources.get(path)
    if source is None:
        try:
            source = Path(path).read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError):
            return ""
    lines = source.splitlines()
    if 1 <= line <= len(lines):
        return lines[line - 1].strip()
    return ""


def fingerprint_findings(
        findings: Sequence[Finding], *,
        sources: Optional[Mapping[str, str]] = None,
) -> List[Tuple[Finding, str]]:
    """Pair each finding with its stable content fingerprint.

    ``sources`` maps paths to source text for files not on disk
    (virtual paths in tests); files are read from disk otherwise.
    """
    counters: Dict[Tuple[str, str, str], int] = {}
    out: List[Tuple[Finding, str]] = []
    for finding in sorted(findings):
        posix = finding.path.replace("\\", "/")
        text = _line_text(finding.path, finding.line, sources)
        key = (finding.rule_id, posix, text)
        occurrence = counters.get(key, 0)
        counters[key] = occurrence + 1
        payload = "|".join((finding.rule_id, posix, text, str(occurrence)))
        digest = hashlib.sha256(payload.encode("utf-8")).hexdigest()
        out.append((finding, digest[:32]))
    return out


def write_baseline(findings: Sequence[Finding], path: str, *,
                   sources: Optional[Mapping[str, str]] = None) -> int:
    """Write the baseline for ``findings``; returns how many it holds."""
    entries = {}
    for finding, fingerprint in fingerprint_findings(findings,
                                                     sources=sources):
        entries[fingerprint] = {
            "rule": finding.rule_id,
            "path": finding.path.replace("\\", "/"),
            "message": finding.message,
        }
    doc = {
        "version": BASELINE_VERSION,
        "tool": "reprolint",
        "note": ("Known findings burned down over time; regenerate "
                 "deliberately with `make lint-baseline`."),
        "fingerprints": dict(sorted(entries.items())),
    }
    Path(path).write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n",
                          encoding="utf-8")
    return len(entries)


def load_baseline(path: str) -> frozenset:
    """Fingerprints recorded in ``path`` (empty set if absent/invalid)."""
    try:
        doc = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return frozenset()
    if not isinstance(doc, dict) or doc.get("version") != BASELINE_VERSION:
        return frozenset()
    fingerprints = doc.get("fingerprints", {})
    if not isinstance(fingerprints, dict):
        return frozenset()
    return frozenset(fingerprints)


def filter_baselined(
        findings: Sequence[Finding], baseline: Iterable[str], *,
        sources: Optional[Mapping[str, str]] = None,
) -> Tuple[List[Finding], int]:
    """Split ``findings`` into (new, number suppressed by baseline)."""
    known = frozenset(baseline)
    fresh: List[Finding] = []
    suppressed = 0
    for finding, fingerprint in fingerprint_findings(findings,
                                                     sources=sources):
        if fingerprint in known:
            suppressed += 1
        else:
            fresh.append(finding)
    return fresh, suppressed

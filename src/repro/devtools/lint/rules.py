"""The built-in reprolint ruleset.

Determinism rules (``DET``) enforce the invariants the runner's
content-addressed cache and byte-identical ``--jobs N`` output depend
on (:mod:`repro.runner`); correctness rules (``COR``) catch classic
Python footguns in simulation code.  Rule IDs are stable: never reuse
or renumber a published ID — retire it and mint the next number.

See CONTRIBUTING.md for the user-facing documentation of every rule,
and ``tests/devtools/fixtures/`` for the canonical tripping /
non-tripping examples.
"""

from __future__ import annotations

import ast
from typing import FrozenSet, Iterator, List, Optional, Set

from .core import FileContext, Finding, Rule, dotted_name, register_rule

__all__ = [
    "BareExceptRule",
    "FloatEqualityRule",
    "MutableDefaultRule",
    "SimulationTimingRule",
    "UnorderedIterationRule",
    "UnseededRandomRule",
    "WallClockRule",
]


def _call_has_arguments(node: ast.Call) -> bool:
    return bool(node.args or node.keywords)


@register_rule
class UnseededRandomRule(Rule):
    """DET001: RNGs must be constructed from an explicit seed.

    An unseeded ``random.Random()`` / ``np.random.default_rng()`` (or
    any use of the process-global ``random.*`` / ``np.random.*``
    generators) makes a cell's output depend on interpreter state, so
    identical configs can cache different results and ``--jobs N``
    stdout can diverge from ``--jobs 1``.  The one sanctioned global
    reseed lives in ``repro/runner/pool.py``.
    """

    rule_id = "DET001"
    summary = ("unseeded RNG construction or module-level global RNG use "
               "(derive every generator from a config seed)")
    allow = ("repro/runner/pool.py",)

    #: ``random`` module functions operating on the shared global RNG.
    GLOBAL_RANDOM: FrozenSet[str] = frozenset({
        "betavariate", "choice", "choices", "expovariate", "gauss",
        "getrandbits", "lognormvariate", "normalvariate", "paretovariate",
        "randbytes", "randint", "random", "randrange", "sample", "seed",
        "shuffle", "triangular", "uniform", "vonmisesvariate",
        "weibullvariate",
    })
    #: ``numpy.random`` module functions operating on the legacy global
    #: RandomState.
    GLOBAL_NUMPY: FrozenSet[str] = frozenset({
        "binomial", "choice", "exponential", "normal", "permutation",
        "poisson", "rand", "randint", "randn", "random", "random_sample",
        "seed", "shuffle", "standard_normal", "uniform",
    })

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            qual = dotted_name(node.func, ctx.aliases)
            if qual is None:
                continue
            if qual == "random.Random" and not _call_has_arguments(node):
                yield self.finding(
                    ctx, node,
                    "random.Random() constructed without a seed; pass a "
                    "seed derived from the experiment config")
            elif qual == "random.SystemRandom":
                yield self.finding(
                    ctx, node,
                    "random.SystemRandom is OS-entropy-backed and can "
                    "never be reproduced; use a seeded random.Random")
            elif (qual in ("numpy.random.default_rng",
                           "numpy.random.RandomState")
                  and not _call_has_arguments(node)):
                yield self.finding(
                    ctx, node,
                    f"{qual}() constructed without a seed; pass a seed "
                    f"derived from the experiment config")
            elif qual.startswith("random.") and qual.split(".")[1] in \
                    self.GLOBAL_RANDOM and len(qual.split(".")) == 2:
                yield self.finding(
                    ctx, node,
                    f"{qual}() uses the process-global RNG; derive a "
                    f"seeded random.Random from the config instead")
            elif (qual.startswith("numpy.random.")
                  and qual.split(".")[2] in self.GLOBAL_NUMPY
                  and len(qual.split(".")) == 3):
                yield self.finding(
                    ctx, node,
                    f"np.random.{qual.split('.')[2]}() uses the legacy "
                    f"global RandomState; use np.random.default_rng(seed)")


@register_rule
class WallClockRule(Rule):
    """DET002: wall-clock reads must stay out of result-producing code.

    ``time.time()`` / ``datetime.now()`` values that leak into a cell
    result or a cache key make reruns non-reproducible and cache
    entries unsound.  Monotonic interval timing (``time.perf_counter``,
    ``time.monotonic``) is deliberately *not* flagged: the runner uses
    it for per-cell timings that stream to stderr, never into results,
    and the resilience layer (``repro/runner/resilience.py``) uses it
    for retry backoff and per-cell deadlines — scheduling decisions
    that never reach results or cache keys.  Three sanctioned
    wall-clock sites remain: the CLI's progress/timing path in
    ``repro/experiments/__main__.py``; the work queue's claim leases
    (claim, renewal heartbeats, steal checks) in
    ``repro/store/queue.py`` — lease expiries must be comparable
    *across worker processes*, which monotonic clocks are not, and
    lease timing only schedules work (it never feeds results or cache
    keys); the read-only queue-status CLI in
    ``repro/store/__main__.py``, which compares those stored lease
    deadlines against the wall clock for time-to-expiry display; and
    the live fleet dashboard ``repro/obs/top.py``, a pure *observer*
    (lease countdowns, throughput rates, refresh stamps — display and
    alert evaluation only, nothing feeds results or cache keys).  The
    store backends, proxies and the fault-injection harness
    (``repro/store/faults.py``) stay *unsanctioned*: injection
    schedules must be pure functions of call counts and seeds or chaos
    runs stop being reproducible.  Note ``repro/obs/trace.py`` is *not*
    allow-listed: its single clock read (``wall_now``) carries an
    explicit suppression, so any new clock read there — e.g. one that
    could leak into a trace ID — fires.
    """

    rule_id = "DET002"
    summary = ("wall-clock read (time.time / datetime.now) in code that "
               "may feed results or cache keys")
    allow = ("repro/experiments/__main__.py", "repro/store/queue.py",
             "repro/store/__main__.py", "repro/obs/top.py")

    WALL_CLOCK: FrozenSet[str] = frozenset({
        "time.time", "time.time_ns", "time.localtime", "time.gmtime",
        "time.ctime", "time.strftime",
        "datetime.datetime.now", "datetime.datetime.utcnow",
        "datetime.datetime.today", "datetime.date.today",
    })

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            qual = dotted_name(node.func, ctx.aliases)
            if qual in self.WALL_CLOCK:
                yield self.finding(
                    ctx, node,
                    f"{qual}() reads the wall clock; results and cache "
                    f"keys must be pure functions of config + seed "
                    f"(use time.perf_counter for stderr-only timings)")


@register_rule
class SimulationTimingRule(Rule):
    """DET004: no host timing at all inside the simulation substrate.

    DET002 tolerates monotonic interval timing (``time.perf_counter``,
    ``time.monotonic``) because the runner streams it to stderr only.
    Inside ``repro/cache/``, ``repro/core/`` and ``repro/sim/`` the bar
    is stricter: *any* host-clock read — wall or monotonic — is a bug,
    because everything observable there (sampling windows, coarse
    timestamps, feedback epochs, telemetry series) must be driven off
    the deterministic access counter, or byte-reproducibility across
    machines and ``--jobs N`` is lost.  Timing the simulation from the
    outside belongs in ``repro/runner/`` or ``repro/obs/``.

    ``repro/obs/trace.py`` is held to the same bar: trace and span IDs
    are pure hashes of the sweep fingerprint, cell key and attempt —
    byte-identical at any ``--jobs`` — so the module may touch a host
    clock only at its one fenced ``wall_now()`` site (explicitly
    suppressed, and its value confined to ``"wall"`` sub-objects).  Any
    other clock read in the tracer is an identity bug waiting to
    happen, and fires here.
    """

    rule_id = "DET004"
    summary = ("host clock read (time.time / perf_counter / monotonic) in "
               "simulation code; drive timing off the access counter")
    include = ("repro/cache/", "repro/core/", "repro/sim/",
               "repro/obs/trace.py")

    TIMING_CALLS: FrozenSet[str] = frozenset({
        "time.time", "time.time_ns",
        "time.perf_counter", "time.perf_counter_ns",
        "time.monotonic", "time.monotonic_ns",
        "time.process_time", "time.process_time_ns",
        "time.thread_time", "time.thread_time_ns",
        "time.clock_gettime", "time.clock_gettime_ns",
    })

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            qual = dotted_name(node.func, ctx.aliases)
            if qual in self.TIMING_CALLS:
                yield self.finding(
                    ctx, node,
                    f"{qual}() reads a host clock inside the simulation "
                    f"substrate; simulated time is the access counter — "
                    f"measure wall time from repro/runner or repro/obs")


#: Builtins whose single-argument call we look through when judging an
#: iteration target (``enumerate(set(...))`` is still set iteration).
_TRANSPARENT_WRAPPERS = frozenset({"enumerate", "list", "tuple", "iter"})

#: Set methods that return another (unordered) set.
_SET_RETURNING_METHODS = frozenset({
    "union", "intersection", "difference", "symmetric_difference", "copy",
})


@register_rule
class UnorderedIterationRule(Rule):
    """DET003: don't iterate unordered collections into output.

    Set iteration order depends on hash randomization and insertion
    history, so any serialized output derived from it can differ
    between runs.  Iterating ``d.keys()`` (rather than ``sorted(d)``)
    is flagged for the same reason: the dict's insertion order is an
    accident of code path, not a stable contract for rendered output.
    Wrap the iterable in ``sorted(...)`` or suppress where order
    provably never reaches serialized output.
    """

    rule_id = "DET003"
    summary = ("iteration over a set / dict view that may feed "
               "order-sensitive output; wrap in sorted(...)")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        set_names = self._set_valued_names(ctx.tree)
        for node in ast.walk(ctx.tree):
            targets: List[ast.expr] = []
            if isinstance(node, ast.For):
                targets.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp)):
                targets.extend(gen.iter for gen in node.generators)
            elif (isinstance(node, ast.Call)
                  and isinstance(node.func, ast.Attribute)
                  and node.func.attr == "join" and len(node.args) == 1):
                targets.append(node.args[0])
            for target in targets:
                unwrapped = self._unwrap(target)
                reason = self._unordered_reason(unwrapped, set_names)
                if reason is not None:
                    yield self.finding(
                        ctx, target,
                        f"iterating {reason} has no deterministic order; "
                        f"wrap it in sorted(...) if the order can reach "
                        f"serialized output")

    @staticmethod
    def _unwrap(node: ast.expr) -> ast.expr:
        while (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
               and node.func.id in _TRANSPARENT_WRAPPERS
               and len(node.args) >= 1):
            node = node.args[0]
        return node

    @staticmethod
    def _set_valued_names(tree: ast.Module) -> Set[str]:
        """Names bound (anywhere in the file) to an obvious set value.

        A deliberately shallow, file-wide binding scan: precise scope
        analysis is not worth the complexity for a lint heuristic, and
        a name that holds a set in *any* scope is worth a second look
        in every scope.
        """
        names: Set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.Assign):
                value = node.value
                if UnorderedIterationRule._is_set_expr(value):
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            names.add(target.id)
        return names

    @staticmethod
    def _is_set_expr(node: ast.expr) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            if isinstance(node.func, ast.Name) and node.func.id in (
                    "set", "frozenset"):
                return True
            if (isinstance(node.func, ast.Attribute)
                    and node.func.attr in _SET_RETURNING_METHODS):
                return False  # receiver type unknown; stay conservative
        return False

    def _unordered_reason(self, node: ast.expr,
                          set_names: Set[str]) -> Optional[str]:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return "a set literal"
        if isinstance(node, ast.Call):
            if isinstance(node.func, ast.Name) and node.func.id in (
                    "set", "frozenset"):
                return f"a {node.func.id}(...)"
            if (isinstance(node.func, ast.Attribute)
                    and node.func.attr == "keys" and not node.args):
                return "a dict .keys() view"
        if isinstance(node, ast.Name) and node.id in set_names:
            return f"{node.id!r} (bound to a set in this file)"
        return None


#: Callables whose result is float-typed for COR001 evidence purposes.
_FLOAT_CALLS = frozenset({
    "float", "math.sqrt", "math.exp", "math.log", "math.log2", "math.log10",
    "math.sin", "math.cos", "math.tan", "math.pow", "math.fsum",
    "math.hypot", "math.fabs",
})


@register_rule
class FloatEqualityRule(Rule):
    """COR001: exact ``==`` / ``!=`` on floating-point values.

    Scoped to the numeric heart of the library (``repro/core/``,
    ``repro/analysis/``) where an exact comparison against a computed
    float is almost always a latent bug — use ``math.isclose`` (as
    ``repro/core/scaling.py`` does at its feasibility bound) or an
    explicit tolerance.
    """

    rule_id = "COR001"
    summary = ("float == / != comparison in numeric code; use "
               "math.isclose or an explicit tolerance")
    include = ("repro/core/", "repro/analysis/")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left] + list(node.comparators)
            for i, op in enumerate(node.ops):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                left, right = operands[i], operands[i + 1]
                if self._floatish(left, ctx) or self._floatish(right, ctx):
                    symbol = "==" if isinstance(op, ast.Eq) else "!="
                    yield self.finding(
                        ctx, node,
                        f"exact float {symbol} comparison; use "
                        f"math.isclose(..) or compare against a tolerance")

    def _floatish(self, node: ast.expr, ctx: FileContext) -> bool:
        """Syntactic evidence that ``node`` is float-typed."""
        if isinstance(node, ast.Constant):
            return isinstance(node.value, float)
        if isinstance(node, ast.UnaryOp):
            return self._floatish(node.operand, ctx)
        if isinstance(node, ast.BinOp):
            if isinstance(node.op, ast.Div):
                return True
            return self._floatish(node.left, ctx) or \
                self._floatish(node.right, ctx)
        if isinstance(node, ast.Call):
            qual = dotted_name(node.func, ctx.aliases)
            if qual in _FLOAT_CALLS:
                return True
            if isinstance(node.func, ast.Name) and node.func.id == "float":
                return True
        return False


#: Constructors producing freshly-mutable containers.
_MUTABLE_CALLS = frozenset({
    "list", "dict", "set", "bytearray",
    "collections.defaultdict", "collections.OrderedDict",
    "collections.Counter", "collections.deque",
})


@register_rule
class MutableDefaultRule(Rule):
    """COR002: mutable default argument values.

    The default is evaluated once at ``def`` time and shared across
    every call — state leaks between calls (and between experiment
    cells sharing a worker process).  Use ``None`` plus an in-body
    default, or an immutable tuple.
    """

    rule_id = "COR002"
    summary = "mutable default argument (list/dict/set/... evaluated once)"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                     ast.Lambda)):
                continue
            args = node.args
            positional = list(args.posonlyargs) + list(args.args)
            defaulted = positional[len(positional) - len(args.defaults):]
            pairs = list(zip(defaulted, args.defaults))
            pairs.extend((arg, default) for arg, default
                         in zip(args.kwonlyargs, args.kw_defaults)
                         if default is not None)
            for arg, default in pairs:
                reason = self._mutable_reason(default, ctx)
                if reason is not None:
                    yield self.finding(
                        ctx, default,
                        f"argument {arg.arg!r} defaults to {reason}, "
                        f"evaluated once and shared across calls; use "
                        f"None (or a tuple) and build it in the body")

    @staticmethod
    def _mutable_reason(node: ast.expr, ctx: FileContext) -> Optional[str]:
        if isinstance(node, ast.List):
            return "a list literal"
        if isinstance(node, ast.Dict):
            return "a dict literal"
        if isinstance(node, ast.Set):
            return "a set literal"
        if isinstance(node, (ast.ListComp, ast.DictComp, ast.SetComp)):
            return "a comprehension"
        if isinstance(node, ast.Call):
            qual = dotted_name(node.func, ctx.aliases)
            if qual in _MUTABLE_CALLS:
                return f"{qual}()"
            if isinstance(node.func, ast.Name) and \
                    node.func.id in _MUTABLE_CALLS:
                return f"{node.func.id}()"
        return None


@register_rule
class BareExceptRule(Rule):
    """COR003: bare ``except:`` clauses.

    A bare handler swallows ``KeyboardInterrupt`` / ``SystemExit`` and
    every library error alike, turning interrupted sweeps into silent
    data corruption.  Catch a concrete class (the library's exceptions
    all derive from :class:`repro.errors.ReproError`), or at minimum
    ``Exception``.
    """

    rule_id = "COR003"
    summary = "bare except: clause (catches KeyboardInterrupt/SystemExit)"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ExceptHandler) and node.type is None:
                yield self.finding(
                    ctx, node,
                    "bare 'except:' also catches KeyboardInterrupt and "
                    "SystemExit; name a concrete exception class")

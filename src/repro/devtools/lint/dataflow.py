"""Summary-based taint dataflow for the whole-program analyzer.

Phase 1 (:func:`summarize_functions`, called while indexing) digests
every function body into a JSON-serializable *taint summary*: which
calls feed which arguments, what flows into the return value, which
``self`` attributes are written with what, and which dict fields receive
flowing values.  Provenance is tracked as strings so summaries round-trip
through the index cache:

* ``call:<dotted>@<line>`` — the result of a call (a taint source if a
  rule says ``<dotted>`` is one, an edge to follow if ``<dotted>`` is a
  project function);
* ``param:<name>`` — the value of a parameter (resolved at call sites);
* ``attr:<module>.<Class>.<attr>`` — the value of a ``self`` attribute
  (resolved against every write to it anywhere in the class).

Phase 2 (:class:`TaintEngine`, run by the TNT/CON rules) stitches the
summaries together along the call graph: a fixpoint resolves which
functions *return* taint and which *forward parameters into sinks*, so a
``time.time()`` in one module is traced through assignments, returns and
attribute fields into a cache-key hash in another — precisely the flows
the per-file DET rules cannot see.

The analysis is deliberately optimistic where it must guess (unresolved
calls propagate the union of their argument taints; containers taint
wholesale) and terminates via memoization + cycle guards.  It is a
linter, not a verifier: its job is to make cross-module clock/RNG leaks
*visible*, with a provenance chain a human can check in seconds.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import (
    Any,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

__all__ = [
    "SinkSpec",
    "TaintEngine",
    "TaintFlow",
    "summarize_functions",
]

Prov = FrozenSet[str]
_EMPTY: Prov = frozenset()

#: Cap on distinct witness chains kept per resolution step — one good
#: provenance chain per finding is worth more than fifty.
_MAX_WITNESSES = 3


def _union(parts: Iterable[Prov]) -> Prov:
    out: Set[str] = set()
    for p in parts:
        out |= p
    return frozenset(out)


class _FunctionSummarizer:
    """One forward abstract-interpretation pass over a function body."""

    def __init__(self, fn: ast.AST, qualname: str, module: str,
                 cls: Optional[str], aliases: Mapping[str, str],
                 module_defs: FrozenSet[str],
                 class_methods: Mapping[str, FrozenSet[str]]) -> None:
        self.fn = fn
        self.qualname = qualname
        self.module = module
        self.cls = cls
        self.aliases = aliases
        self.module_defs = module_defs
        self.class_methods = class_methods
        args = fn.args  # type: ignore[attr-defined]
        self.params: List[str] = [a.arg for a in (
            list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs))]
        self.env: Dict[str, Prov] = {
            p: frozenset({f"param:{p}"}) for p in self.params
            if p not in ("self", "cls")}
        self.returns: Set[str] = set()
        self.attr_writes: Dict[str, Set[str]] = {}
        self.calls: List[Dict[str, Any]] = []
        self.dict_fields: List[Dict[str, Any]] = []

    def run(self) -> Dict[str, Any]:
        self._block(self.fn.body)  # type: ignore[attr-defined]
        return {
            "line": self.fn.lineno,  # type: ignore[attr-defined]
            "params": [p for p in self.params if p not in ("self", "cls")],
            "returns": sorted(self.returns),
            "attr_writes": {k: sorted(v)
                            for k, v in self.attr_writes.items()},
            "calls": self.calls,
            "dict_fields": self.dict_fields,
        }

    # -- name resolution -----------------------------------------------

    def _resolve_callee(self, func: ast.expr) -> Optional[str]:
        """Dotted callee, ``.name`` for a bare method, None = opaque."""
        if isinstance(func, ast.Name):
            if func.id in self.module_defs:
                return f"{self.module}.{func.id}"
            return self.aliases.get(func.id)
        if isinstance(func, ast.Attribute):
            if (isinstance(func.value, ast.Name) and func.value.id == "self"
                    and self.cls is not None
                    and func.attr in self.class_methods.get(
                        self.cls, frozenset())):
                return f"{self.module}.{self.cls}.{func.attr}"
            parts: List[str] = []
            cur: ast.expr = func
            while isinstance(cur, ast.Attribute):
                parts.append(cur.attr)
                cur = cur.value
            if isinstance(cur, ast.Name):
                origin = self.aliases.get(cur.id)
                if origin is None and cur.id in self.module_defs:
                    origin = f"{self.module}.{cur.id}"
                if origin is not None:
                    parts.append(origin)
                    return ".".join(reversed(parts))
            return f".{func.attr}"
        return None

    # -- expression evaluation ------------------------------------------

    def _eval(self, node: Optional[ast.expr]) -> Prov:
        if node is None or isinstance(node, (ast.Constant, ast.Lambda)):
            return _EMPTY
        if isinstance(node, ast.Name):
            return self.env.get(node.id, _EMPTY)
        if isinstance(node, ast.Attribute):
            attr_prov = self._self_attr_prov(node)
            if attr_prov is not None:
                return attr_prov
            return self._eval(node.value)
        if isinstance(node, ast.Call):
            return self._eval_call(node)
        if isinstance(node, ast.Dict):
            return self._eval_dict(node, under_wall=False)
        if isinstance(node, (ast.Yield, ast.YieldFrom, ast.Await)):
            return self._eval(node.value)  # type: ignore[arg-type]
        # Default: taint of any sub-expression taints the whole
        # (BinOp, BoolOp, JoinedStr, IfExp, Subscript, comprehensions...).
        return _union(self._eval(child)
                      for child in ast.iter_child_nodes(node)
                      if isinstance(child, ast.expr))

    def _self_attr_prov(self, node: ast.Attribute) -> Optional[Prov]:
        if (isinstance(node.value, ast.Name) and node.value.id == "self"
                and self.cls is not None):
            return frozenset(
                {f"attr:{self.module}.{self.cls}.{node.attr}"})
        return None

    def _eval_call(self, node: ast.Call) -> Prov:
        callee = self._resolve_callee(node.func)
        arg_provs = [self._eval(a) for a in node.args]
        kw_provs = {kw.arg: self._eval(kw.value)
                    for kw in node.keywords if kw.arg is not None}
        if callee is not None and (any(arg_provs) or any(kw_provs.values())):
            self.calls.append({
                "callee": callee, "line": node.lineno,
                "col": node.col_offset + 1,
                "args": [sorted(p) for p in arg_provs],
                "kwargs": {k: sorted(v) for k, v in kw_provs.items()},
            })
        if callee is not None and not callee.startswith("."):
            return frozenset({f"call:{callee}@{node.lineno}"})
        # Opaque callee (builtin, local variable, foreign method):
        # optimistically pass taint from receiver and arguments through.
        recv = (self._eval(node.func.value)
                if isinstance(node.func, ast.Attribute) else _EMPTY)
        return _union([recv] + arg_provs + list(kw_provs.values()))

    def _eval_dict(self, node: ast.Dict, under_wall: bool) -> Prov:
        provs: List[Prov] = []
        for key, value in zip(node.keys, node.values):
            key_s = (key.value if isinstance(key, ast.Constant)
                     and isinstance(key.value, str) else None)
            if isinstance(value, ast.Dict):
                prov = self._eval_dict(
                    value, under_wall or key_s == "wall")
            else:
                prov = self._eval(value)
            if prov and key_s is not None:
                self.dict_fields.append({
                    "key": key_s, "line": value.lineno,
                    "col": value.col_offset + 1, "prov": sorted(prov),
                    "wall": under_wall or key_s == "wall",
                })
            provs.append(prov)
            if key is not None:
                provs.append(self._eval(key))
        return _union(provs)

    # -- statement walk -------------------------------------------------

    def _block(self, body: Sequence[ast.stmt]) -> None:
        for stmt in body:
            self._stmt(stmt)

    def _assign_target(self, target: ast.expr, prov: Prov) -> None:
        if isinstance(target, ast.Name):
            if prov:
                self.env[target.id] = self.env.get(target.id, _EMPTY) | prov
            else:
                self.env[target.id] = _EMPTY
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._assign_target(elt, prov)
        elif isinstance(target, ast.Attribute):
            attr = None
            if (isinstance(target.value, ast.Name)
                    and target.value.id == "self" and self.cls is not None):
                attr = f"{self.module}.{self.cls}.{target.attr}"
            if attr is not None and prov:
                self.attr_writes.setdefault(attr, set()).update(prov)
            elif isinstance(target.value, ast.Name) and prov:
                # ``obj.field = tainted`` taints the container.
                name = target.value.id
                self.env[name] = self.env.get(name, _EMPTY) | prov
        elif isinstance(target, ast.Subscript):
            self._subscript_store(target, prov)

    def _subscript_store(self, target: ast.Subscript, prov: Prov) -> None:
        key = target.slice
        key_s = (key.value if isinstance(key, ast.Constant)
                 and isinstance(key.value, str) else None)
        if prov and key_s is not None:
            self.dict_fields.append({
                "key": key_s, "line": target.lineno,
                "col": target.col_offset + 1, "prov": sorted(prov),
                "wall": key_s == "wall",
            })
        if isinstance(target.value, ast.Name) and prov:
            name = target.value.id
            self.env[name] = self.env.get(name, _EMPTY) | prov

    def _stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            return  # nested scopes are out of (this) scope
        if isinstance(stmt, ast.Assign):
            prov = self._eval(stmt.value)
            for target in stmt.targets:
                self._assign_target(target, prov)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            self._assign_target(stmt.target, self._eval(stmt.value))
        elif isinstance(stmt, ast.AugAssign):
            prov = self._eval(stmt.value) | self._eval(stmt.target)
            self._assign_target(stmt.target, prov)
        elif isinstance(stmt, ast.Return):
            self.returns |= self._eval(stmt.value)
        elif isinstance(stmt, ast.Expr):
            value = stmt.value
            if isinstance(value, (ast.Yield, ast.YieldFrom)):
                # A generator's yields are its observable returns.
                self.returns |= self._eval(value.value
                                           if value.value else None)
            else:
                self._eval(value)
        elif isinstance(stmt, (ast.If,)):
            self._eval(stmt.test)
            self._block(stmt.body)
            self._block(stmt.orelse)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            prov = self._eval(stmt.iter)
            self._assign_target(stmt.target, prov)
            # Two passes approximate loop-carried flows cheaply.
            self._block(stmt.body)
            self._block(stmt.body)
            self._block(stmt.orelse)
        elif isinstance(stmt, ast.While):
            self._eval(stmt.test)
            self._block(stmt.body)
            self._block(stmt.body)
            self._block(stmt.orelse)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                prov = self._eval(item.context_expr)
                if item.optional_vars is not None:
                    self._assign_target(item.optional_vars, prov)
            self._block(stmt.body)
        elif isinstance(stmt, ast.Try):
            self._block(stmt.body)
            for handler in stmt.handlers:
                self._block(handler.body)
            self._block(stmt.orelse)
            self._block(stmt.finalbody)
        else:
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self._eval(child)


def summarize_functions(
        tree: ast.Module, module: str, aliases: Mapping[str, str],
        class_methods: Mapping[str, FrozenSet[str]]) -> Dict[str, Any]:
    """Taint summaries for every module-level function and method."""
    module_defs = frozenset(
        stmt.name for stmt in tree.body
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)))
    out: Dict[str, Any] = {}
    for stmt in tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            qual = f"{module}.{stmt.name}"
            out[qual] = _FunctionSummarizer(
                stmt, qual, module, None, aliases, module_defs,
                class_methods).run()
        elif isinstance(stmt, ast.ClassDef):
            for sub in stmt.body:
                if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    qual = f"{module}.{stmt.name}.{sub.name}"
                    out[qual] = _FunctionSummarizer(
                        sub, qual, module, stmt.name, aliases,
                        module_defs, class_methods).run()
    return out


@dataclass(frozen=True)
class SinkSpec:
    """What counts as a sink for one rule.

    ``calls`` are dotted callee names (``hashlib.sha256``); ``methods``
    are receiver-agnostic method names in ``.name`` form (``.put``);
    ``dict_field_paths`` activates the "dict field outside the 'wall'
    namespace" sink in files whose posix path contains a fragment.
    """

    label: str
    calls: FrozenSet[str] = frozenset()
    methods: FrozenSet[str] = frozenset()
    dict_field_paths: Tuple[str, ...] = ()

    def matches_call(self, callee: str) -> bool:
        if callee.startswith("."):
            return callee in self.methods
        return callee in self.calls


@dataclass(frozen=True)
class TaintFlow:
    """One source-to-sink flow: where to report, and the evidence."""

    path: str
    line: int
    col: int
    sink: str
    chain: Tuple[str, ...]

    def describe(self) -> str:
        return " <- ".join(self.chain)


class TaintEngine:
    """Phase-2 interprocedural resolution over a project index.

    ``sources`` are dotted call names (a trailing ``.*`` matches a
    module prefix: ``random.*``).  The engine answers two questions:
    which summarized provenances trace back to a source (with the chain
    of calls/attributes in between), and which call sites feed a sink —
    directly, or through functions that forward a parameter into one.
    """

    def __init__(self, project: Any, sources: Iterable[str],
                 sinks: Sequence[SinkSpec]) -> None:
        self.project = project
        self.exact_sources = frozenset(
            s for s in sources if not s.endswith(".*"))
        self.prefix_sources = tuple(
            s[:-1] for s in sources if s.endswith(".*"))
        self.sinks = tuple(sinks)
        self._return_memo: Dict[str, Tuple[Tuple[str, ...], ...]] = {}
        self._attr_memo: Dict[str, Tuple[Tuple[str, ...], ...]] = {}

    # -- sources ---------------------------------------------------------

    def is_source(self, dotted: str) -> bool:
        if dotted in self.exact_sources:
            return True
        return any(dotted.startswith(p) for p in self.prefix_sources)

    # -- provenance resolution -------------------------------------------

    def witnesses(self, provs: Iterable[str], posix: str,
                  stack: FrozenSet[str] = frozenset(),
                  ) -> List[Tuple[str, ...]]:
        """Chains proving ``provs`` trace back to a source (maybe [])."""
        out: List[Tuple[str, ...]] = []
        for prov in sorted(provs):
            kind, _, rest = prov.partition(":")
            if kind == "call":
                dotted, _, line = rest.rpartition("@")
                if self.is_source(dotted):
                    out.append((f"{dotted}() at {posix}:{line}",))
                elif dotted in self.project.functions:
                    for chain in self._fn_returns(dotted, stack):
                        out.append(
                            chain + (f"via {dotted}() called at "
                                     f"{posix}:{line}",))
            elif kind == "attr":
                for chain in self._attr_witnesses(rest, stack):
                    out.append(chain + (f"via attribute {rest}",))
            if len(out) >= _MAX_WITNESSES:
                break
        return out[:_MAX_WITNESSES]

    def _fn_returns(self, qual: str,
                    stack: FrozenSet[str]) -> Tuple[Tuple[str, ...], ...]:
        if qual in self._return_memo:
            return self._return_memo[qual]
        if qual in stack:
            return ()
        summary, file = self.project.functions[qual]
        chains = tuple(self.witnesses(
            summary.get("returns", ()), file.posix, stack | {qual}))
        if not (stack & set(self._return_memo)):
            self._return_memo[qual] = chains
        return chains

    def _attr_witnesses(self, attr_qual: str,
                        stack: FrozenSet[str]) -> Tuple[Tuple[str, ...], ...]:
        """Resolve ``module.Class.attr`` against every write to it."""
        if attr_qual in self._attr_memo:
            return self._attr_memo[attr_qual]
        if attr_qual in stack:
            return ()
        cls_prefix = attr_qual.rpartition(".")[0] + "."
        chains: List[Tuple[str, ...]] = []
        for qual, (summary, file) in sorted(self.project.functions.items()):
            if not qual.startswith(cls_prefix):
                continue
            provs = summary.get("attr_writes", {}).get(attr_qual)
            if provs:
                chains.extend(self.witnesses(
                    provs, file.posix, stack | {attr_qual}))
            if len(chains) >= _MAX_WITNESSES:
                break
        result = tuple(chains[:_MAX_WITNESSES])
        self._attr_memo[attr_qual] = result
        return result

    # -- sink-side analysis ----------------------------------------------

    def _param_forwarders(self) -> Dict[Tuple[str, str], Tuple[str, ...]]:
        """``(function, param) -> sink chain`` fixpoint.

        Seeded by functions whose parameter reaches a sink call in their
        own body; extended transitively through call sites that pass a
        parameter of *their* function onward.
        """
        forward: Dict[Tuple[str, str], Tuple[str, ...]] = {}
        for qual, (summary, file) in sorted(self.project.functions.items()):
            for call in summary.get("calls", ()):
                sink = self._match_sink(call["callee"])
                if sink is None:
                    continue
                for provs in self._call_arg_provs(call):
                    for prov in provs:
                        if prov.startswith("param:"):
                            key = (qual, prov[len("param:"):])
                            forward.setdefault(key, (
                                f"into {sink.label} at "
                                f"{file.posix}:{call['line']}",))
        changed = True
        while changed:
            changed = False
            for qual, (summary, file) in sorted(
                    self.project.functions.items()):
                for call in summary.get("calls", ()):
                    targets = self._forward_targets(call, forward)
                    if not targets:
                        continue
                    for chain, provs in targets:
                        for prov in provs:
                            if not prov.startswith("param:"):
                                continue
                            key = (qual, prov[len("param:"):])
                            if key not in forward:
                                forward[key] = chain + (
                                    f"through {call['callee']}() at "
                                    f"{file.posix}:{call['line']}",)
                                changed = True
        return forward

    def _call_arg_provs(self, call: Mapping[str, Any]) -> List[List[str]]:
        return list(call.get("args", [])) + list(
            call.get("kwargs", {}).values())

    def _forward_targets(
            self, call: Mapping[str, Any],
            forward: Mapping[Tuple[str, str], Tuple[str, ...]],
    ) -> List[Tuple[Tuple[str, ...], List[str]]]:
        """(sink chain, arg provs) pairs where this call feeds a
        forwarding parameter of its callee."""
        callee = call["callee"]
        if callee.startswith(".") or callee not in self.project.functions:
            return []
        params = self.project.functions[callee][0].get("params", [])
        out: List[Tuple[Tuple[str, ...], List[str]]] = []
        for i, provs in enumerate(call.get("args", [])):
            if i < len(params) and (callee, params[i]) in forward:
                out.append((forward[(callee, params[i])], provs))
        for name, provs in call.get("kwargs", {}).items():
            if (callee, name) in forward:
                out.append((forward[(callee, name)], provs))
        return out

    def _match_sink(self, callee: str) -> Optional[SinkSpec]:
        for sink in self.sinks:
            if sink.matches_call(callee):
                return sink
        return None

    def find_flows(self) -> Iterator[TaintFlow]:
        """Witnessed source-to-sink flows in non-aux files.

        De-duplicated per sink location: many provenances can reach one
        sink call, but one finding with one checkable chain is what a
        human needs.
        """
        seen: Set[Tuple[str, int, int]] = set()
        forward = self._param_forwarders()
        for qual, (summary, file) in sorted(self.project.functions.items()):
            if file.aux:
                continue
            for call in summary.get("calls", ()):
                site = (file.path, call["line"], call["col"])
                if site in seen:
                    continue
                sink = self._match_sink(call["callee"])
                if sink is not None:
                    for provs in self._call_arg_provs(call):
                        for chain in self.witnesses(provs, file.posix):
                            seen.add(site)
                            yield TaintFlow(
                                path=file.path, line=call["line"],
                                col=call["col"], sink=sink.label,
                                chain=chain)
                            break
                        if site in seen:
                            break
                if site in seen:
                    continue
                for sink_chain, provs in self._forward_targets(call, forward):
                    for chain in self.witnesses(provs, file.posix):
                        seen.add(site)
                        yield TaintFlow(
                            path=file.path, line=call["line"],
                            col=call["col"], sink=sink_chain[0],
                            chain=chain + sink_chain)
                        break
                    if site in seen:
                        break
            for entry in summary.get("dict_fields", ()):
                if entry.get("wall"):
                    continue
                site = (file.path, entry["line"], entry["col"])
                if site in seen:
                    continue
                for sink in self.sinks:
                    if not any(frag in file.posix
                               for frag in sink.dict_field_paths):
                        continue
                    for chain in self.witnesses(entry["prov"], file.posix):
                        seen.add(site)
                        yield TaintFlow(
                            path=file.path, line=entry["line"],
                            col=entry["col"],
                            sink=(f"{sink.label} dict field "
                                  f"{entry['key']!r}"),
                            chain=chain)
                        break
                    if site in seen:
                        break

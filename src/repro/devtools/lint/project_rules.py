"""Whole-program (phase 2) rules: CON0xx, TNT001, API0xx.

These rules run over the :class:`~repro.devtools.lint.index.ProjectIndex`
rather than a single AST, which is what lets them enforce the
reproduction's *cross-module* contracts:

* **CON001/CON002/CON003** — concurrency discipline.  Every access to a
  lock-guarded attribute happens under the lock (declared with
  ``# reprolint: guarded-by=_lock`` or inferred from majority-under-lock
  usage), monotonic clock readings never cross a process boundary (the
  inverse of the queue's sanctioned wall-clock leases), and sqlite
  connections opened with ``check_same_thread=False`` never escape the
  class that serializes them.
* **TNT001** — taint tracking.  Wall-clock / OS-entropy values must not
  flow, through any chain of assignments, returns, attributes and calls,
  into cache-key hashing, store payloads, or non-``"wall"`` telemetry
  fields.  This is the dataflow generalization of the syntactic
  DET001/DET002 rules: it catches a ``time.time()`` two modules away
  from the hash it poisons.
* **API001/API002** — drift detection.  ``RunConfig`` fields, the CLI's
  ``argparse`` flags, and the ``coerce_run_config`` legacy-alias shim
  must agree; every registered store backend must be importable from
  ``repro.store`` and covered by the conformance suite.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Mapping, Optional, Tuple

from .core import Finding, ProjectRule, register_rule
from .dataflow import SinkSpec, TaintEngine
from .index import CONSTRUCTION_METHODS, FileIndex, ProjectIndex
from .rules import UnseededRandomRule, WallClockRule

__all__ = [
    "ApiDriftRule",
    "BackendCoverageRule",
    "ConnectionEscapeRule",
    "LockDisciplineRule",
    "MonotonicBoundaryRule",
    "WallTaintRule",
]


def _class_items(index: ProjectIndex,
                 ) -> Iterator[Tuple[FileIndex, str, Dict[str, Any]]]:
    for f in index.lib_files():
        for name, digest in f.classes.items():
            yield f, name, digest


def _guarded_attrs(digest: Mapping[str, Any]) -> Dict[str, str]:
    """Attr -> guarding lock: explicit annotations plus inference.

    An unannotated attribute is *inferred* guarded when, outside
    construction methods, it is accessed under some class lock at least
    twice and more often locked than not — the "majority under lock"
    heuristic from the issue.  Explicit ``guarded-by`` always wins.
    """
    guarded: Dict[str, str] = dict(digest.get("guarded", {}))
    locks = set(digest.get("lock_attrs", ()))
    if not locks:
        return guarded
    for attr, accesses in digest.get("accesses", {}).items():
        if attr in guarded:
            continue
        votes: Dict[str, int] = {}
        unlocked = 0
        for access in accesses:
            if access["method"] in CONSTRUCTION_METHODS:
                continue
            held = [lk for lk in access.get("locks", ()) if lk in locks]
            if held:
                votes[held[0]] = votes.get(held[0], 0) + 1
            else:
                unlocked += 1
        if votes:
            lock, count = max(votes.items(), key=lambda kv: kv[1])
            if count >= 2 and count > unlocked:
                guarded[attr] = lock
    return guarded


@register_rule
class LockDisciplineRule(ProjectRule):
    """CON001: guarded attributes are only touched under their lock.

    A ``threading.Lock`` only protects state if *every* access honors
    it; one bare read is a data race.  The rule also flags code that
    reaches *into another object's* lock or guarded attribute
    (``other.store._lock``) — cross-object lock acquisition couples two
    classes' locking protocols and belongs behind a method of the
    owning class.
    """

    rule_id = "CON001"
    summary = ("access to a lock-guarded attribute outside `with "
               "self.<lock>:` (declare guards with `# reprolint: "
               "guarded-by=<lock>`)")
    example_bad = (
        "class Store:\n"
        "    def __init__(self):\n"
        "        self._lock = threading.Lock()\n"
        "        self._count = 0  # reprolint: guarded-by=_lock\n"
        "    def bump(self):\n"
        "        self._count += 1   # CON001: not under self._lock\n")
    example_good = (
        "    def bump(self):\n"
        "        with self._lock:\n"
        "            self._count += 1\n")

    def check_project(self, index: ProjectIndex) -> Iterator[Finding]:
        for f, cls, digest in _class_items(index):
            guarded = _guarded_attrs(digest)
            for attr, lock in sorted(guarded.items()):
                for access in digest.get("accesses", {}).get(attr, ()):
                    if access["method"] in CONSTRUCTION_METHODS:
                        continue
                    if lock in access.get("locks", ()):
                        continue
                    kind = "write to" if access["write"] else "read of"
                    yield self.finding_at(
                        f.path, access["line"], access["col"],
                        f"{kind} {cls}.{attr} outside `with "
                        f"self.{lock}:` (guarded by {lock}; add the "
                        f"lock or move the access under it)")
            yield from self._cross_object(index, f, cls, digest)

    def _cross_object(self, index: ProjectIndex, f: FileIndex, cls: str,
                      digest: Mapping[str, Any]) -> Iterator[Finding]:
        for ref in digest.get("foreign_refs", ()):
            owner = self._owner_digest(index, digest, ref["base"])
            if owner is None:
                continue
            owner_cls, owner_digest = owner
            attr = ref["attr"]
            if attr in owner_digest.get("lock_attrs", ()):
                what = f"lock {owner_cls}.{attr}"
            elif attr in _guarded_attrs(owner_digest):
                what = f"guarded attribute {owner_cls}.{attr}"
            else:
                continue
            yield self.finding_at(
                f.path, ref["line"], ref["col"],
                f"{cls}.{ref['method']} reaches into {what} via "
                f"self.{ref['base']}.{attr}; expose a method on "
                f"{owner_cls} that does the locking instead")

    @staticmethod
    def _owner_digest(index: ProjectIndex, digest: Mapping[str, Any],
                      base: str) -> Optional[Tuple[str, Dict[str, Any]]]:
        """Resolve a foreign ref's base attribute to its class digest."""
        declared = digest.get("attr_types", {}).get(base)
        if not declared:
            return None
        bare = declared.split(".")[-1].strip("'\"")
        matches = index.find_class(bare)
        if len(matches) == 1:
            return bare, matches[0][1]
        return None


@register_rule
class MonotonicBoundaryRule(ProjectRule):
    """CON002: monotonic clock values must not cross a process boundary.

    ``time.monotonic()`` readings are only comparable within one
    process; persisting one (sqlite, json, pickle) and comparing it in
    another process silently breaks lease expiry and timeouts.  The
    work queue's leases are sanctioned to use ``time.time()`` for
    exactly this reason — this rule is the inverse guard.
    """

    rule_id = "CON002"
    summary = ("time.monotonic/perf_counter value serialized or stored "
               "across a process boundary (use time.time for leases)")
    # Scoped to the persistence layer: the runner/obs layers stream
    # monotonic *durations* (differences, valid anywhere) to stderr and
    # telemetry manifests, which DET002's docstring already sanctions.
    include = ("repro/store/",)
    example_bad = (
        "    deadline = time.monotonic() + lease\n"
        "    conn.execute('UPDATE items SET lease_expiry=?', (deadline,))\n")
    example_good = (
        "    deadline = time.time() + lease  # comparable across workers\n")

    SOURCES = (
        "time.monotonic", "time.monotonic_ns",
        "time.perf_counter", "time.perf_counter_ns",
    )
    SINKS = (
        SinkSpec(label="process-boundary serialization",
                 calls=frozenset({
                     "json.dump", "json.dumps", "pickle.dump",
                     "pickle.dumps", "marshal.dump", "marshal.dumps",
                 }),
                 methods=frozenset({".execute", ".executemany", ".put"})),
    )

    def check_project(self, index: ProjectIndex) -> Iterator[Finding]:
        engine = TaintEngine(index, self.SOURCES, self.SINKS)
        for flow in engine.find_flows():
            yield self.finding_at(
                flow.path, flow.line, flow.col,
                f"monotonic clock value reaches {flow.sink} "
                f"[{flow.describe()}]; monotonic readings are "
                f"meaningless in other processes — use time.time()")


@register_rule
class ConnectionEscapeRule(ProjectRule):
    """CON003: thread-shared sqlite connections must not escape.

    A connection opened with ``check_same_thread=False`` is only safe
    because the owning class serializes every use behind its lock.
    Returning the raw connection (or a cursor on it) hands callers a
    handle they can use *without* that lock.  Accessors that exist to
    share the connection must declare the contract with
    ``# reprolint: requires-lock=<lock>``.
    """

    rule_id = "CON003"
    summary = ("raw sqlite connection/cursor opened with "
               "check_same_thread=False escapes the owning class")
    example_bad = (
        "    def conn(self):\n"
        "        return self._conn   # CON003: unlocked escape\n")
    example_good = (
        "    def connection(self):  # reprolint: requires-lock=_lock\n"
        "        return self._conn\n")

    def check_project(self, index: ProjectIndex) -> Iterator[Finding]:
        for f, cls, digest in _class_items(index):
            if not digest.get("sqlite_unsafe"):
                continue
            for escape in digest.get("escapes", ()):
                if escape.get("locked") or escape.get("requires"):
                    continue
                if escape["method"] in CONSTRUCTION_METHODS:
                    continue
                yield self.finding_at(
                    f.path, escape["line"], escape["col"],
                    f"{cls}.{escape['method']} leaks the thread-shared "
                    f"sqlite connection {cls}.{escape['attr']}; hold "
                    f"the lock, or annotate the accessor with "
                    f"`# reprolint: requires-lock=<lock>`")


@register_rule
class WallTaintRule(ProjectRule):
    """TNT001: wall-clock/entropy taint must not reach reproducible data.

    The dataflow generalization of DET001/DET002: a value born from
    ``time.time``, ``datetime.now``, ``os.urandom``, ``uuid.uuid4`` or
    the global ``random`` state is *tainted*, taint survives
    assignments, arithmetic, f-strings, returns, attribute fields and
    calls along the project call graph, and it must never reach a cache
    key hash, a store entry payload, a telemetry field outside the
    ``"wall"`` namespace, or — since the distributed tracer ships span
    identity across process boundaries — the trace/span ID derivation
    functions, whose outputs must be byte-identical at any ``--jobs``.
    Findings carry the full provenance chain.
    """

    rule_id = "TNT001"
    summary = ("wall-clock/RNG-tainted value flows into cache-key "
               "hashing, store payloads, or non-'wall' telemetry fields")
    example_bad = (
        "    stamp = time.time()            # tainted at the source\n"
        "    tag = f'run-{stamp:.0f}'       # taint survives the f-string\n"
        "    key = hashlib.sha256(tag.encode())   # TNT001 at the sink\n")
    example_good = (
        "    key = hashlib.sha256(canonical_encode(config))\n"
        "    span['wall'] = {'started': time.time()}  # 'wall' namespace\n")

    SOURCES = tuple(
        sorted(WallClockRule.WALL_CLOCK)
        + ["os.urandom", "uuid.uuid4", "uuid.uuid1", "secrets.token_bytes",
           "secrets.token_hex", "random.SystemRandom"]
        + [f"random.{name}" for name in UnseededRandomRule.GLOBAL_RANDOM]
        + [f"numpy.random.{name}" for name in UnseededRandomRule.GLOBAL_NUMPY]
    )
    SINKS = (
        SinkSpec(label="cache-key hashing",
                 calls=frozenset({
                     "hashlib.sha256", "hashlib.sha1", "hashlib.md5",
                     "hashlib.blake2b", "hashlib.blake2s", "hashlib.new",
                     "repro.runner.cache.cell_key",
                     "repro.runner.cache.canonical_encode",
                     "repro.runner.cache.code_version_salt",
                 })),
        SinkSpec(label="store entry payload",
                 calls=frozenset({"repro.store.base.encode_entry"}),
                 methods=frozenset({".put"})),
        SinkSpec(label="telemetry",
                 dict_field_paths=("repro/obs/", "obs/")),
        SinkSpec(label="trace-id derivation",
                 calls=frozenset({
                     "repro.obs.trace.trace_id_for",
                     "repro.obs.trace.span_id",
                 })),
    )

    def check_project(self, index: ProjectIndex) -> Iterator[Finding]:
        engine = TaintEngine(index, self.SOURCES, self.SINKS)
        for flow in engine.find_flows():
            yield self.finding_at(
                flow.path, flow.line, flow.col,
                f"wall-clock/RNG-tainted value reaches {flow.sink} "
                f"[{flow.describe()}]; reproducible outputs must be "
                f"pure functions of config + seed (wall facts belong "
                f"under the 'wall' namespace)")


@register_rule
class ApiDriftRule(ProjectRule):
    """API001: RunConfig fields, CLI flags and the legacy shim agree.

    Every ``RunConfig`` field must be settable from the CLI (an
    ``argparse`` flag whose dest matches the field name) unless the
    field line carries ``# reprolint: cli-exempt``; every legacy-alias
    key in ``_LEGACY_ALIASES`` must name a *retired* kwarg mapping onto
    a *current* field.  Drift here is how "works in the API, silently
    ignored on the CLI" bugs are born.
    """

    rule_id = "API001"
    summary = ("RunConfig fields, argparse flags, and coerce_run_config "
               "legacy aliases out of sync")
    example_bad = (
        "@dataclass(frozen=True)\n"
        "class RunConfig:\n"
        "    retries: int = 0     # API001: no --retries flag anywhere\n")
    example_good = (
        "    backoff_base: float = 0.25  # reprolint: cli-exempt\n"
        "    # ...or add: parser.add_argument('--retries', type=int)\n")

    CONFIG_CLASS = "RunConfig"
    ALIAS_CONST = "_LEGACY_ALIASES"

    def check_project(self, index: ProjectIndex) -> Iterator[Finding]:
        matches = index.find_class(self.CONFIG_CLASS)
        if len(matches) != 1:
            return
        config_file, digest = matches[0]
        if not digest.get("is_dataclass"):
            return
        fields = {entry["name"]: entry for entry in digest.get("fields", ())}
        dests = {
            flag["dest"]
            for f in index.lib_files()
            for flag in f.argparse_flags
        }
        for name, entry in sorted(fields.items()):
            if entry.get("cli_exempt") or name in dests:
                continue
            yield self.finding_at(
                config_file.path, entry["line"], 1,
                f"{self.CONFIG_CLASS}.{name} has no matching CLI flag "
                f"(expected an add_argument dest {name!r}); add the "
                f"flag or annotate `# reprolint: cli-exempt`")
        aliases = config_file.dict_consts.get(self.ALIAS_CONST)
        if aliases is None:
            return
        line = aliases.get("line", 1)
        for key, value in sorted(aliases.get("entries", {}).items()):
            if key in fields:
                yield self.finding_at(
                    config_file.path, line, 1,
                    f"legacy alias {key!r} shadows a live "
                    f"{self.CONFIG_CLASS} field; remove the alias or "
                    f"rename the field")
            if not isinstance(value, str) or value not in fields:
                yield self.finding_at(
                    config_file.path, line, 1,
                    f"legacy alias {key!r} maps to {value!r}, which is "
                    f"not a {self.CONFIG_CLASS} field")


@register_rule
class BackendCoverageRule(ProjectRule):
    """API002: every registered store backend is importable and tested.

    ``@register_backend`` only runs if the defining module is imported;
    a backend whose module is unreachable from ``repro.store`` exists
    in source but not in ``STORE_BACKENDS`` at runtime.  And a backend
    that no test parametrizes over ``STORE_BACKENDS`` ships without the
    conformance suite's byte-identical guarantees.
    """

    rule_id = "API002"
    summary = ("store backend not imported from repro.store or not "
               "covered by the STORE_BACKENDS conformance suite")
    example_bad = (
        "# repro/store/redis.py defines @register_backend class "
        "RedisStore\n# ...but repro/store/__init__.py never imports "
        ".redis  -> API002\n")
    example_good = (
        "# repro/store/__init__.py\n"
        "from . import base, local, queue, redis, sqlite  # registers all\n")

    ROOT_MODULE = "repro.store"

    def check_project(self, index: ProjectIndex) -> Iterator[Finding]:
        backends = [(f, entry) for f in index.lib_files()
                    for entry in f.registered_backends]
        if not backends:
            return
        have_root = self.ROOT_MODULE in index.by_module
        reachable = (index.reachable_modules(self.ROOT_MODULE)
                     if have_root else set())
        aux_files = [f for f in index.files if f.aux]
        covered = any("STORE_BACKENDS" in f.references for f in aux_files)
        for f, entry in backends:
            if have_root and f.module not in reachable:
                yield self.finding_at(
                    f.path, entry["line"], 1,
                    f"backend {entry['class']} "
                    f"(scheme {entry.get('scheme')!r}) is never imported "
                    f"from {self.ROOT_MODULE}, so register_backend never "
                    f"runs; import it from {self.ROOT_MODULE}/__init__.py")
            if aux_files and not covered:
                yield self.finding_at(
                    f.path, entry["line"], 1,
                    f"backend {entry['class']} has no conformance-suite "
                    f"coverage: no indexed test parametrizes over "
                    f"STORE_BACKENDS")

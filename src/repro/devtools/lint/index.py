"""Phase 1 of the whole-program analyzer: the project index.

Per-file rules (:class:`~repro.devtools.lint.core.Rule`) see one AST at
a time; cross-module rules (:class:`~repro.devtools.lint.core.ProjectRule`)
instead see a :class:`ProjectIndex` — a JSON-serializable digest of every
file built here: module symbol tables, the import graph, class attribute
maps (locks, guarded attributes, sqlite connections, dataclass fields),
argparse flags, backend registrations, and the per-function taint
summaries computed by :mod:`repro.devtools.lint.dataflow`.

Two properties matter:

* **Everything is plain data.**  A :class:`FileIndex` round-trips
  through JSON, which is what makes the incremental cache sound: the
  index of an unchanged file (same SHA-256) is reloaded, never re-built,
  so ``make lint`` stays fast as the tree grows.
* **Annotations are comments.**  ``# reprolint: guarded-by=_lock`` on an
  attribute assignment declares the lock that guards it;
  ``# reprolint: requires-lock=_lock`` on a ``def`` line declares that
  callers must hold the lock (the body is analyzed as if locked);
  ``# reprolint: cli-exempt`` on a dataclass field excuses it from the
  CLI-drift check (API001).  See CONTRIBUTING.md.
"""

from __future__ import annotations

import ast
import hashlib
import io
import json
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Any,
    Dict,
    FrozenSet,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from .dataflow import summarize_functions

_FnDef = Union[ast.FunctionDef, ast.AsyncFunctionDef]

__all__ = [
    "INDEX_FORMAT_VERSION",
    "FileIndex",
    "IndexStats",
    "ProjectIndex",
    "ProjectIndexer",
    "build_file_index",
    "module_name_for",
    "parse_annotations",
]

#: Bump whenever the FileIndex layout changes: stale caches are
#: discarded wholesale instead of misread.
INDEX_FORMAT_VERSION = 1

#: ``# reprolint: key=value key2 ...`` annotation comments (``disable=``
#: belongs to the suppression parser in :mod:`.core`, not here).
_ANNOTATION_RE = re.compile(r"#\s*reprolint:\s*(.+)$")

#: Methods where unlocked access to guarded attributes is sanctioned by
#: design: the object is not yet (or no longer) shared across threads.
CONSTRUCTION_METHODS = frozenset({
    "__init__", "__new__", "__del__", "__getstate__", "__setstate__",
    "__reduce__", "__copy__", "__deepcopy__",
})

#: Names whose module-level references are worth recording (API002 uses
#: ``STORE_BACKENDS`` to find the conformance-suite parametrization).
_WATCHED_NAMES = frozenset({"STORE_BACKENDS"})


def parse_annotations(source: str) -> Dict[int, Dict[str, str]]:
    """Per-line ``# reprolint: key[=value]`` annotations.

    ``disable=`` entries are skipped (they are suppressions, parsed by
    :func:`repro.devtools.lint.core.parse_suppressions`); everything
    else maps ``key -> value`` (``""`` for bare flags like
    ``cli-exempt``).
    """
    table: Dict[int, Dict[str, str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            match = _ANNOTATION_RE.search(tok.string)
            if not match:
                continue
            entries: Dict[str, str] = {}
            for part in match.group(1).replace(",", " ").split():
                key, _, value = part.partition("=")
                if key == "disable":
                    continue
                entries[key] = value
            if entries:
                line = table.setdefault(tok.start[0], {})
                line.update(entries)
    except tokenize.TokenizeError:
        pass
    return table


def module_name_for(path: str) -> str:
    """Dotted module name a (possibly virtual) path denotes.

    ``.../src/repro/store/queue.py`` -> ``repro.store.queue``; a path
    containing no ``repro`` package directory is dotted from its own
    parts (``pkg/mod.py`` -> ``pkg.mod``) so fixture trees form their
    own mini-projects; ``__init__.py`` names the package itself.
    """
    parts = list(Path(path).parts)
    if "repro" in parts:
        parts = parts[parts.index("repro"):]
    elif parts and parts[0] in ("/", "\\"):
        parts = [parts[-1]]
    if parts and parts[-1].endswith(".py"):
        last = parts[-1][:-3]
        parts = parts[:-1] if last == "__init__" else parts[:-1] + [last]
    return ".".join(p for p in parts if p) or "__main__"


def _resolve_relative(module: str, is_package: bool, level: int,
                      target: Optional[str]) -> Optional[str]:
    """Absolute module a relative import refers to, or ``None``."""
    package = module if is_package else module.rpartition(".")[0]
    for _ in range(level - 1):
        if not package:
            return None
        package = package.rpartition(".")[0]
    if target:
        return f"{package}.{target}" if package else target
    return package or None


@dataclass
class FileIndex:
    """Everything phase 2 knows about one source file (plain data)."""

    path: str
    posix: str
    module: str
    sha256: str
    aux: bool = False
    #: local name -> dotted origin, relative imports resolved.
    imports: Dict[str, str] = field(default_factory=dict)
    #: project-level import-graph edges (dotted module names).
    imported_modules: List[str] = field(default_factory=list)
    #: line -> suppressed rule IDs (mirrors the per-file table).
    suppressions: Dict[int, List[str]] = field(default_factory=dict)
    #: line -> {annotation key: value}.
    annotations: Dict[int, Dict[str, str]] = field(default_factory=dict)
    #: class name -> class digest (see ``_index_class``).
    classes: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    #: qualified function name -> taint summary (see ``dataflow``).
    functions: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    #: argparse ``add_argument`` flags: {"flag", "dest", "line"}.
    argparse_flags: List[Dict[str, Any]] = field(default_factory=list)
    #: module-level ``NAME = {...}`` dicts with constant string keys.
    dict_consts: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    #: ``@register_backend`` classes: {"class", "line", "scheme"}.
    registered_backends: List[Dict[str, Any]] = field(default_factory=list)
    #: watched names (``STORE_BACKENDS``) referenced anywhere in the file.
    references: List[str] = field(default_factory=list)

    def to_json(self) -> Dict[str, Any]:
        return {
            "path": self.path, "posix": self.posix, "module": self.module,
            "sha256": self.sha256, "aux": self.aux, "imports": self.imports,
            "imported_modules": self.imported_modules,
            "suppressions": {str(k): v for k, v in self.suppressions.items()},
            "annotations": {str(k): v for k, v in self.annotations.items()},
            "classes": self.classes, "functions": self.functions,
            "argparse_flags": self.argparse_flags,
            "dict_consts": self.dict_consts,
            "registered_backends": self.registered_backends,
            "references": self.references,
        }

    @classmethod
    def from_json(cls, doc: Mapping[str, Any]) -> "FileIndex":
        return cls(
            path=doc["path"], posix=doc["posix"], module=doc["module"],
            sha256=doc["sha256"], aux=bool(doc.get("aux", False)),
            imports=dict(doc.get("imports", {})),
            imported_modules=list(doc.get("imported_modules", [])),
            suppressions={int(k): list(v) for k, v
                          in doc.get("suppressions", {}).items()},
            annotations={int(k): dict(v) for k, v
                         in doc.get("annotations", {}).items()},
            classes=dict(doc.get("classes", {})),
            functions=dict(doc.get("functions", {})),
            argparse_flags=list(doc.get("argparse_flags", [])),
            dict_consts=dict(doc.get("dict_consts", {})),
            registered_backends=list(doc.get("registered_backends", [])),
            references=list(doc.get("references", [])),
        )


def _rich_aliases(tree: ast.Module, module: str,
                  is_package: bool) -> Tuple[Dict[str, str], List[str]]:
    """Import aliases with relative imports resolved, plus graph edges."""
    aliases: Dict[str, str] = {}
    edges: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for name in node.names:
                edges.add(name.name)
                if name.asname:
                    aliases[name.asname] = name.name
                else:
                    root = name.name.split(".")[0]
                    aliases[root] = root
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                base = _resolve_relative(module, is_package, node.level,
                                         node.module)
                if base is None:
                    continue
            else:
                base = node.module
                if base is None:
                    continue
            edges.add(base)
            for name in node.names:
                if name.name == "*":
                    continue
                aliases[name.asname or name.name] = f"{base}.{name.name}"
                # ``from pkg import sub`` may bind a submodule; record the
                # candidate edge — the BFS drops names that aren't project
                # modules, so speculation is free.
                edges.add(f"{base}.{name.name}")
    return aliases, sorted(edges)


def _const_str(node: ast.expr) -> Optional[str]:
    return node.value if (isinstance(node, ast.Constant)
                          and isinstance(node.value, str)) else None


def _self_attr(node: ast.expr) -> Optional[str]:
    """``self.<attr>`` -> attr name, else None."""
    if (isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name)
            and node.value.id == "self"):
        return node.attr
    return None


_LOCK_CONSTRUCTORS = frozenset({
    "threading.Lock", "threading.RLock", "threading.Condition",
    "multiprocessing.Lock", "multiprocessing.RLock",
})

_DATACLASS_DECOS = frozenset({"dataclass", "dataclasses.dataclass"})


def _dotted(node: ast.AST, aliases: Mapping[str, str]) -> Optional[str]:
    """Dotted origin of a Name/Attribute chain under ``aliases``."""
    parts: List[str] = []
    cur = node
    while isinstance(cur, ast.Attribute):
        parts.append(cur.attr)
        cur = cur.value
    if not isinstance(cur, ast.Name):
        return None
    origin = aliases.get(cur.id)
    if origin is None:
        return None
    parts.append(origin)
    return ".".join(reversed(parts))


def _deco_name(deco: ast.expr, aliases: Mapping[str, str]) -> str:
    """Best-effort dotted (or bare) name of a decorator expression."""
    target = deco.func if isinstance(deco, ast.Call) else deco
    dotted = _dotted(target, aliases)
    if dotted:
        return dotted
    if isinstance(target, ast.Name):
        return target.id
    if isinstance(target, ast.Attribute):
        return target.attr
    return ""


class _ClassIndexer(ast.NodeVisitor):
    """Digest one class body into plain data (locks, attrs, escapes)."""

    def __init__(self, node: ast.ClassDef, aliases: Mapping[str, str],
                 annotations: Mapping[int, Mapping[str, str]]) -> None:
        self.node = node
        self.aliases = aliases
        self.annotations = annotations
        self._param_types: Dict[str, str] = {}
        self.lock_attrs: Set[str] = set()
        self.guarded: Dict[str, str] = {}
        self.attr_types: Dict[str, str] = {}
        self.conn_attrs: Set[str] = set()
        self.sqlite_unsafe = False
        self.accesses: Dict[str, List[Dict[str, Any]]] = {}
        self.foreign_refs: List[Dict[str, Any]] = []
        self.escapes: List[Dict[str, Any]] = []
        self.methods: Dict[str, Dict[str, Any]] = {}
        self.fields: List[Dict[str, Any]] = []
        self.decorators = [_deco_name(d, aliases) for d in node.decorator_list]
        self.is_dataclass = any(
            d in _DATACLASS_DECOS for d in self.decorators)

    def run(self) -> Dict[str, Any]:
        self._scan_fields()
        self._scan_attr_declarations()
        for stmt in self.node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._scan_method(stmt)
        return {
            "lineno": self.node.lineno,
            "decorators": self.decorators,
            "is_dataclass": self.is_dataclass,
            "fields": self.fields,
            "lock_attrs": sorted(self.lock_attrs),
            "guarded": self.guarded,
            "attr_types": self.attr_types,
            "conn_attrs": sorted(self.conn_attrs),
            "sqlite_unsafe": self.sqlite_unsafe,
            "accesses": self.accesses,
            "foreign_refs": self.foreign_refs,
            "escapes": self.escapes,
            "methods": self.methods,
        }

    # -- declarations --------------------------------------------------

    def _scan_fields(self) -> None:
        """Dataclass fields: annotated assignments in the class body."""
        for stmt in self.node.body:
            if isinstance(stmt, ast.AnnAssign) and isinstance(
                    stmt.target, ast.Name):
                anno = ast.unparse(stmt.annotation) if stmt.annotation else ""
                if anno.startswith("ClassVar"):
                    continue
                exempt = "cli-exempt" in self.annotations.get(
                    stmt.lineno, {})
                self.fields.append({"name": stmt.target.id,
                                    "line": stmt.lineno,
                                    "cli_exempt": exempt})

    def _scan_attr_declarations(self) -> None:
        """Find lock attrs, guarded-by annotations, connection attrs and
        annotation-typed attrs from every ``self.x = ...`` in the class."""
        # First pass: local names bound to sqlite3.connect(...) so the
        # common ``conn = sqlite3.connect(...); self._conn = conn``
        # indirection is still recognized.
        conn_locals: Set[str] = set()
        for stmt in ast.walk(self.node):
            if not isinstance(stmt, ast.Assign):
                continue
            if self._is_sqlite_connect(stmt.value):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        conn_locals.add(target.id)
        for stmt in ast.walk(self.node):
            if isinstance(stmt, ast.Assign):
                value, targets = stmt.value, stmt.targets
                anno = ""
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                value, targets = stmt.value, [stmt.target]
                anno = ast.unparse(stmt.annotation) if stmt.annotation else ""
            else:
                continue
            for target in targets:
                attr = _self_attr(target)
                if attr is None:
                    continue
                note = self.annotations.get(stmt.lineno, {})
                if "guarded-by" in note:
                    self.guarded[attr] = note["guarded-by"]
                dotted = (_dotted(value.func, self.aliases)
                          if isinstance(value, ast.Call) else None)
                if dotted in _LOCK_CONSTRUCTORS:
                    self.lock_attrs.add(attr)
                if (self._is_sqlite_connect(value)
                        or (isinstance(value, ast.Name)
                            and value.id in conn_locals)
                        or "Connection" in anno):
                    self.conn_attrs.add(attr)
                if isinstance(value, ast.Name):
                    # ``self.store = store`` picks up the parameter's
                    # annotation as the attribute's declared type.
                    param_type = self._param_types.get(value.id)
                    if param_type:
                        self.attr_types[attr] = param_type

    def _is_sqlite_connect(self, value: ast.expr) -> bool:
        """True for ``sqlite3.connect(...)``; sets the unsafe flag when
        the call passes ``check_same_thread=False``."""
        if not isinstance(value, ast.Call):
            return False
        if _dotted(value.func, self.aliases) != "sqlite3.connect":
            return False
        for kw in value.keywords:
            if (kw.arg == "check_same_thread"
                    and isinstance(kw.value, ast.Constant)
                    and kw.value.value is False):
                self.sqlite_unsafe = True
        return True

    # -- method bodies -------------------------------------------------

    def _scan_method(self, fn: "_FnDef",
                     ) -> None:
        note = self.annotations.get(fn.lineno, {})
        requires = note.get("requires-lock")
        decos = [_deco_name(d, self.aliases) for d in fn.decorator_list]
        self.methods[fn.name] = {
            "lineno": fn.lineno,
            "requires_lock": requires,
            "decorators": decos,
        }
        # Parameter annotations feed attribute typing in __init__.
        self._param_types = {}
        for arg in fn.args.args + fn.args.kwonlyargs:
            if arg.annotation is not None:
                anno = _dotted(arg.annotation, self.aliases)
                if anno is None and isinstance(arg.annotation, ast.Name):
                    anno = arg.annotation.id
                elif anno is None and isinstance(arg.annotation,
                                                ast.Constant):
                    anno = str(arg.annotation.value)
                if anno:
                    self._param_types[arg.arg] = anno
        if fn.name == "__init__":
            self._scan_attr_declarations()
        held: Tuple[str, ...] = (requires,) if requires else ()
        self._walk_body(fn.body, fn, held)

    def _walk_body(self, body: Sequence[ast.stmt],
                   fn: "_FnDef",
                   held: Tuple[str, ...]) -> None:
        for stmt in body:
            self._walk_stmt(stmt, fn, held)

    def _walk_stmt(self, stmt: ast.stmt,
                   fn: "_FnDef",
                   held: Tuple[str, ...]) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return  # nested defs are their own scope; keep it simple
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            now = held
            for item in stmt.items:
                lock = _self_attr(item.context_expr)
                if lock is not None and lock in self.lock_attrs:
                    now = now + (lock,)
                self._record_reads(item.context_expr, fn, held)
            self._walk_body(stmt.body, fn, now)
            return
        if isinstance(stmt, (ast.Return, ast.Expr)) and stmt.value is not None:
            self._record_escape(stmt.value, fn, held)
        for node in ast.iter_child_nodes(stmt):
            if isinstance(node, ast.stmt):
                self._walk_stmt(node, fn, held)
            elif isinstance(node, ast.expr):
                self._record_reads(node, fn, held)
            elif isinstance(node, (ast.excepthandler,)):
                self._walk_body(node.body, fn, held)
        # Bodies of compound statements are stmt lists, walked above via
        # iter_child_nodes only when they appear as direct children —
        # ast.iter_child_nodes flattens them, so this covers If/For/Try.

    def _record_reads(self, expr: ast.expr,
                      fn: "_FnDef",
                      held: Tuple[str, ...]) -> None:
        for node in ast.walk(expr):
            if not isinstance(node, ast.Attribute):
                continue
            attr = _self_attr(node)
            if attr is not None:
                if attr in self.lock_attrs:
                    continue  # taking/naming the lock is not an access
                write = isinstance(node.ctx, (ast.Store, ast.Del))
                self.accesses.setdefault(attr, []).append({
                    "line": node.lineno, "col": node.col_offset + 1,
                    "write": write, "locks": sorted(set(held)),
                    "method": fn.name,
                })
            elif (node.attr.startswith("_")
                  and not node.attr.startswith("__")
                  and isinstance(node.value, ast.Attribute)):
                # ``self.store._lock`` — reaching into another object's
                # private state; CON001 resolves the owner by the base
                # attribute's declared type.
                base = _self_attr(node.value)
                if base is not None:
                    self.foreign_refs.append({
                        "base": base, "attr": node.attr,
                        "line": node.lineno, "col": node.col_offset + 1,
                        "method": fn.name,
                    })

    def _record_escape(self, value: ast.expr,
                       fn: "_FnDef",
                       held: Tuple[str, ...]) -> None:
        """Return/yield of a raw connection attr (or its cursor)."""
        exprs = [value]
        if isinstance(value, (ast.Yield, ast.YieldFrom)) and value.value:
            exprs = [value.value]
        for expr in exprs:
            attr = _self_attr(expr)
            if attr is None and isinstance(expr, ast.Call):
                # ``return self._conn.cursor()`` escapes the same way.
                if (isinstance(expr.func, ast.Attribute)
                        and expr.func.attr in ("cursor", "execute")):
                    attr = _self_attr(expr.func.value)
            if attr is not None and attr in self.conn_attrs:
                method = self.methods.get(fn.name, {})
                self.escapes.append({
                    "line": expr.lineno, "col": expr.col_offset + 1,
                    "attr": attr, "method": fn.name,
                    "locked": bool(held),
                    "requires": bool(method.get("requires_lock")),
                })


def _index_module_level(tree: ast.Module, aliases: Mapping[str, str],
                        idx: FileIndex) -> None:
    """Module-level facts: const dicts, argparse flags, watched refs."""
    for stmt in tree.body:
        if isinstance(stmt, ast.Assign) and isinstance(stmt.value, ast.Dict):
            for target in stmt.targets:
                if not isinstance(target, ast.Name):
                    continue
                entries: Dict[str, Any] = {}
                ok = True
                for key, value in zip(stmt.value.keys, stmt.value.values):
                    key_s = _const_str(key) if key is not None else None
                    if key_s is None:
                        ok = False
                        break
                    entries[key_s] = _const_str(value)
                if ok:
                    idx.dict_consts[target.id] = {
                        "line": stmt.lineno, "entries": entries}
    refs: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Name) and node.id in _WATCHED_NAMES:
            refs.add(node.id)
        elif isinstance(node, ast.Attribute) and node.attr in _WATCHED_NAMES:
            refs.add(node.attr)
        elif isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute) and func.attr == "add_argument":
                flag = _const_str(node.args[0]) if node.args else None
                if flag and flag.startswith("--"):
                    idx.argparse_flags.append({
                        "flag": flag,
                        "dest": flag.lstrip("-").replace("-", "_"),
                        "line": node.lineno,
                    })
    idx.references = sorted(refs)


_BACKEND_DECOS = frozenset({
    "register_backend", "repro.store.base.register_backend",
})


def build_file_index(source: str, path: str, *, aux: bool = False,
                     tree: Optional[ast.Module] = None) -> FileIndex:
    """Index one file (phase 1 unit of work)."""
    from .core import parse_suppressions  # local import: core imports us

    path = str(path)
    if tree is None:
        tree = ast.parse(source, filename=path)
    posix = str(Path(path).as_posix())
    is_package = Path(path).name == "__init__.py"
    module = module_name_for(posix)
    aliases, edges = _rich_aliases(tree, module, is_package)
    annotations = parse_annotations(source)
    idx = FileIndex(
        path=path, posix=posix, module=module,
        sha256=hashlib.sha256(source.encode("utf-8")).hexdigest(),
        aux=aux, imports=aliases, imported_modules=edges,
        suppressions={line: sorted(ids) for line, ids
                      in parse_suppressions(source).items()},
        annotations=annotations,
    )
    _index_module_level(tree, aliases, idx)
    class_methods: Dict[str, FrozenSet[str]] = {}
    for stmt in tree.body:
        if not isinstance(stmt, ast.ClassDef):
            continue
        digest = _ClassIndexer(stmt, aliases, annotations).run()
        idx.classes[stmt.name] = digest
        class_methods[stmt.name] = frozenset(digest["methods"])
        for deco in digest["decorators"]:
            if deco in _BACKEND_DECOS:
                scheme = None
                for sub in stmt.body:
                    if (isinstance(sub, ast.Assign)
                            and any(isinstance(t, ast.Name)
                                    and t.id == "scheme"
                                    for t in sub.targets)):
                        scheme = _const_str(sub.value)
                idx.registered_backends.append({
                    "class": stmt.name, "line": stmt.lineno,
                    "scheme": scheme,
                })
    idx.functions = summarize_functions(tree, module, aliases, class_methods)
    return idx


@dataclass(frozen=True)
class IndexStats:
    """How an index build went: cache reuse vs fresh parses."""

    built: int
    reused: int

    @property
    def total(self) -> int:
        return self.built + self.reused


class ProjectIndex:
    """The assembled whole-program index phase 2 rules run over."""

    def __init__(self, files: Sequence[FileIndex],
                 stats: Optional[IndexStats] = None) -> None:
        self.files: List[FileIndex] = sorted(files, key=lambda f: f.posix)
        self.stats = stats or IndexStats(built=len(self.files), reused=0)
        self.by_module: Dict[str, FileIndex] = {}
        for f in self.files:
            self.by_module.setdefault(f.module, f)
        #: qualified function name -> (summary, owning FileIndex).
        self.functions: Dict[str, Tuple[Dict[str, Any], FileIndex]] = {}
        for f in self.files:
            for qual, summary in f.functions.items():
                self.functions.setdefault(qual, (summary, f))

    def lib_files(self) -> List[FileIndex]:
        """Files subject to findings (aux files are index-only)."""
        return [f for f in self.files if not f.aux]

    def suppressions_for(self, path: str) -> Mapping[int, List[str]]:
        for f in self.files:
            if f.path == path:
                return f.suppressions
        return {}

    def modules_importing(self, name: str) -> List[FileIndex]:
        return [f for f in self.files if name in f.imported_modules]

    def reachable_modules(self, root: str) -> Set[str]:
        """Modules transitively imported from ``root`` (project-only)."""
        seen: Set[str] = set()
        frontier = [root]
        while frontier:
            module = frontier.pop()
            if module in seen or module not in self.by_module:
                continue
            seen.add(module)
            frontier.extend(self.by_module[module].imported_modules)
        return seen

    def find_class(self, name: str) -> List[Tuple[FileIndex, Dict[str, Any]]]:
        """Every indexed class with the given bare name."""
        out = []
        for f in self.files:
            if name in f.classes:
                out.append((f, f.classes[name]))
        return out


class ProjectIndexer:
    """Builds :class:`ProjectIndex` objects with an incremental cache.

    The cache file maps ``posix path -> {sha256, index}``; a file whose
    content hash matches is reloaded from JSON instead of re-parsed.
    The cache is versioned by :data:`INDEX_FORMAT_VERSION` and safe to
    delete at any time.
    """

    def __init__(self, cache_path: Optional[str] = None) -> None:
        self.cache_path = Path(cache_path) if cache_path else None
        self._cache: Dict[str, Dict[str, Any]] = {}
        if self.cache_path is not None and self.cache_path.exists():
            try:
                doc = json.loads(self.cache_path.read_text())
                if doc.get("version") == INDEX_FORMAT_VERSION:
                    self._cache = doc.get("files", {})
            except (OSError, ValueError):
                self._cache = {}

    def index_source(self, source: str, path: str, *,
                     aux: bool = False) -> Tuple[FileIndex, bool]:
        """Index one blob; ``(index, reused_from_cache)``."""
        posix = str(Path(path).as_posix())
        digest = hashlib.sha256(source.encode("utf-8")).hexdigest()
        cached = self._cache.get(posix)
        if cached is not None and cached.get("sha256") == digest:
            idx = FileIndex.from_json(cached["index"])
            idx.aux = aux
            return idx, True
        idx = build_file_index(source, path, aux=aux)
        self._cache[posix] = {"sha256": digest, "index": idx.to_json()}
        return idx, False

    def build(self, sources: Sequence[Tuple[str, str]],
              aux_sources: Sequence[Tuple[str, str]] = ()) -> ProjectIndex:
        """Index ``(path, source)`` pairs into a :class:`ProjectIndex`.

        ``aux_sources`` are indexed for cross-reference data only
        (tests, examples): project rules may read them but never report
        findings in them.
        """
        files: List[FileIndex] = []
        built = reused = 0
        for aux, pairs in ((False, sources), (True, aux_sources)):
            for path, source in pairs:
                idx, hit = self.index_source(source, path, aux=aux)
                files.append(idx)
                reused += 1 if hit else 0
                built += 0 if hit else 1
        self.save()
        return ProjectIndex(files, IndexStats(built=built, reused=reused))

    def save(self) -> None:
        if self.cache_path is None:
            return
        doc = {"version": INDEX_FORMAT_VERSION, "files": self._cache}
        tmp = self.cache_path.with_name(self.cache_path.name + ".tmp")
        try:
            self.cache_path.parent.mkdir(parents=True, exist_ok=True)
            tmp.write_text(json.dumps(doc, sort_keys=True))
            tmp.replace(self.cache_path)
        except OSError:
            pass  # a cache that cannot be written is simply not a cache

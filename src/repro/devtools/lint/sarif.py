"""SARIF 2.1.0 serialization for reprolint findings.

SARIF (Static Analysis Results Interchange Format) is the OASIS
standard GitHub code scanning ingests; emitting it lets CI upload
reprolint findings so they annotate PR diffs instead of living in a job
log.  Only the small, stable core of the spec is produced: a single
``run`` with the tool's rule metadata and one ``result`` per finding,
each carrying a ``partialFingerprints`` entry shared with the baseline
machinery (:mod:`repro.devtools.lint.baseline`) so the two views of
"which finding is this" can never drift apart.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Sequence, Type

from .baseline import FINGERPRINT_KEY, fingerprint_findings
from .core import Finding, Rule

__all__ = ["SARIF_SCHEMA_URI", "SARIF_VERSION", "to_sarif"]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = "https://json.schemastore.org/sarif-2.1.0.json"

_TOOL_URI = "https://github.com/paper-repro/futility-scaling"


def _rule_descriptor(rule: Type[Rule]) -> Dict[str, Any]:
    descriptor: Dict[str, Any] = {
        "id": rule.rule_id,
        "name": rule.__name__,
        "shortDescription": {"text": rule.summary},
        "defaultConfiguration": {"level": "warning"},
    }
    doc = (rule.__doc__ or "").strip()
    if doc:
        descriptor["fullDescription"] = {"text": doc.splitlines()[0]}
        descriptor["help"] = {"text": doc}
    return descriptor


def to_sarif(findings: Sequence[Finding], rules: Sequence[Type[Rule]], *,
             sources: Optional[Mapping[str, str]] = None) -> Dict[str, Any]:
    """Build the SARIF 2.1.0 document for ``findings``.

    ``rules`` is the rule classes the run was configured with (all of
    them, not only those that fired — code scanning uses the list to
    render rule help).  ``sources`` optionally maps paths to in-memory
    source text for fingerprinting virtual files.
    """
    ordered = sorted(rules, key=lambda r: r.rule_id)
    rule_index = {r.rule_id: i for i, r in enumerate(ordered)}
    results: List[Dict[str, Any]] = []
    for finding, fingerprint in fingerprint_findings(findings,
                                                     sources=sources):
        result: Dict[str, Any] = {
            "ruleId": finding.rule_id,
            "level": "warning",
            "message": {"text": finding.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": finding.path.replace("\\", "/"),
                        "uriBaseId": "%SRCROOT%",
                    },
                    "region": {
                        "startLine": max(finding.line, 1),
                        "startColumn": max(finding.col, 1),
                    },
                },
            }],
            "partialFingerprints": {FINGERPRINT_KEY: fingerprint},
        }
        if finding.rule_id in rule_index:
            result["ruleIndex"] = rule_index[finding.rule_id]
        results.append(result)
    return {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": "reprolint",
                    "informationUri": _TOOL_URI,
                    "rules": [_rule_descriptor(r) for r in ordered],
                },
            },
            "columnKind": "utf16CodeUnits",
            "results": results,
        }],
    }

"""reprolint command line: ``python -m repro.devtools.lint [opts] paths``.

Exit codes (CI contract):

* ``0`` — no findings;
* ``1`` — at least one (non-baselined) finding (the build must fail);
* ``2`` — usage / IO / syntax error (could not complete the analysis).

Findings stream to stdout in ``path:line:col: ID message`` form (or a
JSON array with ``--format json``, or a SARIF 2.1.0 document with
``--format sarif`` for GitHub code scanning); the summary line and all
errors go to stderr so tooling can parse stdout alone.  Output ordering
is fully deterministic — reprolint practices what it preaches.

Whole-program analysis: any selected :class:`~.core.ProjectRule` runs
over a project index of every linted file.  ``--aux PATH`` adds files to
the index without linting them (tests feeding API002's conformance
check), ``--index-cache FILE`` persists per-file indexes across runs,
``--no-project`` restricts the run to per-file rules.  ``--baseline
[FILE]`` suppresses findings recorded in a committed baseline;
``--write-baseline`` regenerates it (see ``make lint-baseline``).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Sequence, Type

from .baseline import (
    DEFAULT_BASELINE,
    filter_baselined,
    load_baseline,
    write_baseline,
)
from .core import Checker, LintConfigError, Rule, iter_rules, rule_ids
from .sarif import to_sarif

__all__ = ["main"]

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_ERROR = 2


def _parse_ids(raw: str, known: set) -> set:
    wanted = {part.strip() for part in raw.split(",") if part.strip()}
    unknown = wanted - known
    if unknown:
        raise LintConfigError(
            f"no such rule: {', '.join(sorted(unknown))} "
            f"(known: {', '.join(sorted(known))})")
    return wanted


def _select_rules(select: Optional[str],
                  ignore: Optional[str]) -> List[Type[Rule]]:
    known = set(rule_ids())
    chosen = set(known)
    if select:
        chosen = _parse_ids(select, known)
    if ignore:
        chosen -= _parse_ids(ignore, known)
    return [cls for cls in iter_rules() if cls.rule_id in chosen]


def _list_rules() -> str:
    lines = ["reprolint rules (see CONTRIBUTING.md for details):", ""]
    for cls in iter_rules():
        lines.append(f"  {cls.rule_id}  {cls.summary}")
        if cls.include:
            lines.append(f"          scope: {', '.join(cls.include)}")
        if cls.allow:
            lines.append(f"          sanctioned: {', '.join(cls.allow)}")
    lines.append("")
    lines.append("suppress one line with: # reprolint: disable=RULE[,RULE]")
    lines.append("explain one rule with:  --explain RULE")
    return "\n".join(lines)


def _explain_rule(rule_id: str) -> str:
    known = set(rule_ids())
    if rule_id not in known:
        raise LintConfigError(
            f"no such rule: {rule_id} (known: {', '.join(sorted(known))})")
    cls = next(cls for cls in iter_rules() if cls.rule_id == rule_id)
    lines = [f"{cls.rule_id}: {cls.summary}", ""]
    doc = (cls.__doc__ or "").strip()
    if doc:
        lines.extend(line.strip() and f"  {line.strip()}" or ""
                     for line in doc.splitlines())
        lines.append("")
    if cls.include:
        lines.append(f"  scope: {', '.join(cls.include)}")
    if cls.allow:
        lines.append(f"  sanctioned paths: {', '.join(cls.allow)}")
    if cls.example_bad:
        lines.append("")
        lines.append("  bad:")
        lines.extend(f"    {line}" for line in
                     cls.example_bad.rstrip().splitlines())
    if cls.example_good:
        lines.append("")
        lines.append("  good:")
        lines.extend(f"    {line}" for line in
                     cls.example_good.rstrip().splitlines())
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.devtools.lint",
        description="reprolint: whole-program determinism, concurrency "
                    "& drift analyzer for the futility-scaling "
                    "reproduction.")
    parser.add_argument("paths", nargs="*", metavar="PATH",
                        help="files or directories to analyze")
    parser.add_argument("--format", default="text",
                        choices=("text", "json", "sarif"),
                        help="findings output format (default: text)")
    parser.add_argument("--select", default=None, metavar="IDS",
                        help="comma-separated rule IDs to run exclusively")
    parser.add_argument("--ignore", default=None, metavar="IDS",
                        help="comma-separated rule IDs to skip")
    parser.add_argument("--explain", default=None, metavar="RULE",
                        help="print one rule's documentation and "
                             "good/bad examples, then exit")
    parser.add_argument("--no-suppressions", action="store_true",
                        help="report findings even on lines carrying "
                             "'# reprolint: disable=...' comments")
    parser.add_argument("--no-project", action="store_true",
                        help="per-file rules only; skip the "
                             "whole-program index and project rules")
    parser.add_argument("--aux", action="append", default=[],
                        metavar="PATH",
                        help="index PATH (file or tree) for cross-"
                             "reference data without linting it; "
                             "repeatable (e.g. --aux tests/store)")
    parser.add_argument("--index-cache", default=None, metavar="FILE",
                        help="JSON cache of per-file indexes, reused "
                             "across runs for unchanged files")
    parser.add_argument("--baseline", nargs="?", const=DEFAULT_BASELINE,
                        default=None, metavar="FILE",
                        help="suppress findings fingerprinted in FILE "
                             f"(default: {DEFAULT_BASELINE})")
    parser.add_argument("--write-baseline", action="store_true",
                        help="write the current findings to the "
                             "baseline file instead of failing on them")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the registered ruleset and exit")
    args = parser.parse_args(argv)

    if args.list_rules:
        print(_list_rules())
        return EXIT_CLEAN
    if args.explain:
        try:
            print(_explain_rule(args.explain))
        except LintConfigError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return EXIT_ERROR
        return EXIT_CLEAN
    if not args.paths:
        parser.print_usage(sys.stderr)
        print("error: no paths given (or use --list-rules)", file=sys.stderr)
        return EXIT_ERROR

    try:
        rules = _select_rules(args.select, args.ignore)
    except LintConfigError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_ERROR

    checker = Checker(rules,
                      respect_suppressions=not args.no_suppressions,
                      project=not args.no_project,
                      index_cache=args.index_cache)
    try:
        findings = checker.check_paths(args.paths, aux_paths=args.aux)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_ERROR
    except SyntaxError as exc:
        print(f"error: {exc.filename}:{exc.lineno}: syntax error: "
              f"{exc.msg}", file=sys.stderr)
        return EXIT_ERROR

    if args.write_baseline:
        target = args.baseline or DEFAULT_BASELINE
        count = write_baseline(findings, target)
        print(f"reprolint: baseline of {count} finding(s) written to "
              f"{target}", file=sys.stderr)
        return EXIT_CLEAN
    if args.baseline is not None:
        findings, suppressed = filter_baselined(
            findings, load_baseline(args.baseline))
        if suppressed:
            print(f"reprolint: {suppressed} baselined finding(s) "
                  f"suppressed ({args.baseline})", file=sys.stderr)

    if args.format == "json":
        print(json.dumps([f.to_dict() for f in findings],
                         indent=2, sort_keys=True))
    elif args.format == "sarif":
        print(json.dumps(to_sarif(findings, [type(r) for r in
                                             checker.rules]),
                         indent=2, sort_keys=True))
    else:
        for finding in findings:
            print(finding.render())
    if findings:
        print(f"reprolint: {len(findings)} finding(s)", file=sys.stderr)
        return EXIT_FINDINGS
    return EXIT_CLEAN

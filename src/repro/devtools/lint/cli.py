"""reprolint command line: ``python -m repro.devtools.lint [opts] paths``.

Exit codes (CI contract):

* ``0`` — no findings;
* ``1`` — at least one finding (the build must fail);
* ``2`` — usage / IO / syntax error (could not complete the analysis).

Findings stream to stdout in ``path:line:col: ID message`` form (or a
JSON array with ``--format json``); the summary line and all errors go
to stderr so tooling can parse stdout alone.  Output ordering is fully
deterministic — reprolint practices what it preaches.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Sequence, Type

from .core import Checker, LintConfigError, Rule, iter_rules, rule_ids

__all__ = ["main"]

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_ERROR = 2


def _select_rules(select: Optional[str],
                  ignore: Optional[str]) -> List[Type[Rule]]:
    known = set(rule_ids())
    chosen = set(known)
    if select:
        wanted = {part.strip() for part in select.split(",") if part.strip()}
        unknown = wanted - known
        if unknown:
            raise LintConfigError(
                f"unknown rule id(s) {sorted(unknown)}; "
                f"known: {sorted(known)}")
        chosen = wanted
    if ignore:
        dropped = {part.strip() for part in ignore.split(",") if part.strip()}
        unknown = dropped - known
        if unknown:
            raise LintConfigError(
                f"unknown rule id(s) {sorted(unknown)}; "
                f"known: {sorted(known)}")
        chosen -= dropped
    return [cls for cls in iter_rules() if cls.rule_id in chosen]


def _list_rules() -> str:
    lines = ["reprolint rules (see CONTRIBUTING.md for details):", ""]
    for cls in iter_rules():
        lines.append(f"  {cls.rule_id}  {cls.summary}")
        if cls.include:
            lines.append(f"          scope: {', '.join(cls.include)}")
        if cls.allow:
            lines.append(f"          sanctioned: {', '.join(cls.allow)}")
    lines.append("")
    lines.append("suppress one line with: # reprolint: disable=RULE[,RULE]")
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.devtools.lint",
        description="reprolint: AST-based determinism & correctness "
                    "analyzer for the futility-scaling reproduction.")
    parser.add_argument("paths", nargs="*", metavar="PATH",
                        help="files or directories to analyze")
    parser.add_argument("--format", default="text",
                        choices=("text", "json"),
                        help="findings output format (default: text)")
    parser.add_argument("--select", default=None, metavar="IDS",
                        help="comma-separated rule IDs to run exclusively")
    parser.add_argument("--ignore", default=None, metavar="IDS",
                        help="comma-separated rule IDs to skip")
    parser.add_argument("--no-suppressions", action="store_true",
                        help="report findings even on lines carrying "
                             "'# reprolint: disable=...' comments")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the registered ruleset and exit")
    args = parser.parse_args(argv)

    if args.list_rules:
        print(_list_rules())
        return EXIT_CLEAN
    if not args.paths:
        parser.print_usage(sys.stderr)
        print("error: no paths given (or use --list-rules)", file=sys.stderr)
        return EXIT_ERROR

    try:
        rules = _select_rules(args.select, args.ignore)
    except LintConfigError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_ERROR

    checker = Checker(rules,
                      respect_suppressions=not args.no_suppressions)
    try:
        findings = checker.check_paths(args.paths)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_ERROR
    except SyntaxError as exc:
        print(f"error: {exc.filename}:{exc.lineno}: syntax error: "
              f"{exc.msg}", file=sys.stderr)
        return EXIT_ERROR

    if args.format == "json":
        print(json.dumps([f.to_dict() for f in findings],
                         indent=2, sort_keys=True))
    else:
        for finding in findings:
            print(finding.render())
    if findings:
        print(f"reprolint: {len(findings)} finding(s)", file=sys.stderr)
        return EXIT_FINDINGS
    return EXIT_CLEAN

"""reprolint: AST-based determinism & correctness analyzer.

The experiment pipeline's two load-bearing invariants — a cell's result
is a pure function of its config + seed (content-addressed cache
soundness) and figure stdout is byte-identical for any ``--jobs``
(ordered reduce) — are enforced mechanically here instead of living in
reviewers' heads.  Run over the tree with::

    python -m repro.devtools.lint src
    python -m repro.devtools.lint --format json src
    python -m repro.devtools.lint --list-rules

Rules live in :mod:`repro.devtools.lint.rules` (DET001–DET003 and
COR001–COR003), register through :func:`register_rule` exactly like
experiments register through the experiment registry, and are silenced
per line with ``# reprolint: disable=RULE``.  See CONTRIBUTING.md for
the full ruleset documentation and ``tests/devtools/`` for the
tripping / non-tripping fixture suite.
"""

from . import rules  # noqa: F401  — importing registers the builtin ruleset
from . import project_rules  # noqa: F401  — registers the phase-2 ruleset
from .cli import EXIT_CLEAN, EXIT_ERROR, EXIT_FINDINGS, main
from .core import (
    Checker,
    FileContext,
    Finding,
    LintConfigError,
    ProjectRule,
    Rule,
    dotted_name,
    import_aliases,
    iter_rules,
    parse_suppressions,
    register_rule,
    rule_ids,
    unregister_rule,
)
from .index import FileIndex, ProjectIndex, ProjectIndexer, build_file_index

__all__ = [
    "Checker",
    "EXIT_CLEAN",
    "EXIT_ERROR",
    "EXIT_FINDINGS",
    "FileContext",
    "FileIndex",
    "Finding",
    "LintConfigError",
    "ProjectIndex",
    "ProjectIndexer",
    "ProjectRule",
    "Rule",
    "build_file_index",
    "dotted_name",
    "import_aliases",
    "iter_rules",
    "main",
    "parse_suppressions",
    "register_rule",
    "rule_ids",
    "unregister_rule",
]

"""Developer tooling for the futility-scaling reproduction.

Currently one subsystem: :mod:`repro.devtools.lint` ("reprolint"), an
AST-based determinism and correctness analyzer enforcing the invariants
the experiment pipeline depends on (content-addressed cache soundness,
byte-identical ``--jobs N`` output).  Run it with::

    python -m repro.devtools.lint src

See CONTRIBUTING.md for the ruleset and suppression syntax.
"""

from . import lint

__all__ = ["lint"]

"""Measurement analysis: associativity distributions, sizing precision and
multiprogrammed performance metrics."""

from .associativity import (
    aef,
    associativity_cdf,
    cdf_at,
    full_assoc_aef,
    worst_case_cdf,
)
from .metrics import (
    antt,
    fairness,
    geometric_mean,
    harmonic_mean_speedup,
    mpki,
    normalized,
    slowdowns,
    speedups,
    stp,
    throughput,
    unfairness_factor,
    weighted_speedup,
)
from .report import build_report
from .text_plots import ascii_chart, sparkline
from .sizing import (
    absolute_deviation_quantile,
    deviation_cdf,
    mean_absolute_deviation,
    mean_deviation,
    theoretical_step_probability,
)

__all__ = [
    "aef",
    "associativity_cdf",
    "cdf_at",
    "worst_case_cdf",
    "full_assoc_aef",
    "mean_absolute_deviation",
    "mean_deviation",
    "deviation_cdf",
    "absolute_deviation_quantile",
    "theoretical_step_probability",
    "speedups",
    "weighted_speedup",
    "throughput",
    "harmonic_mean_speedup",
    "geometric_mean",
    "fairness",
    "mpki",
    "normalized",
    "slowdowns",
    "unfairness_factor",
    "stp",
    "antt",
    "build_report",
    "sparkline",
    "ascii_chart",
]

"""Performance metrics for multiprogrammed evaluations.

The paper reports per-thread IPC (normalized to a baseline), miss counts,
and scheme-vs-scheme performance ratios ("FS improves performance over
Vantage and PriSM by up to 6.0% and 13.7%").  This module provides the
standard multiprogrammed metrics those comparisons are built from.
"""

from __future__ import annotations

import math
from typing import List, Sequence

from ..errors import ConfigurationError

__all__ = ["speedups", "weighted_speedup", "throughput",
           "harmonic_mean_speedup", "geometric_mean", "fairness",
           "mpki", "normalized",
           "slowdowns", "unfairness_factor", "stp", "antt"]


def _check_same_length(a: Sequence[float], b: Sequence[float]) -> None:
    if len(a) != len(b):
        raise ConfigurationError(
            f"vectors must have equal length, got {len(a)} and {len(b)}")
    if not a:
        raise ConfigurationError("vectors must not be empty")


def speedups(ipcs: Sequence[float], baseline_ipcs: Sequence[float]) -> List[float]:
    """Per-thread ``IPC / IPC_baseline``."""
    _check_same_length(ipcs, baseline_ipcs)
    out = []
    for ipc, base in zip(ipcs, baseline_ipcs):
        if base <= 0:
            raise ConfigurationError("baseline IPC must be positive")
        out.append(ipc / base)
    return out


def weighted_speedup(ipcs: Sequence[float],
                     baseline_ipcs: Sequence[float]) -> float:
    """System throughput metric: sum of per-thread speedups."""
    return sum(speedups(ipcs, baseline_ipcs))


def throughput(ipcs: Sequence[float]) -> float:
    """Aggregate IPC."""
    if not ipcs:
        raise ConfigurationError("ipcs must not be empty")
    return float(sum(ipcs))


def harmonic_mean_speedup(ipcs: Sequence[float],
                          baseline_ipcs: Sequence[float]) -> float:
    """Balanced fairness/throughput metric (harmonic mean of speedups)."""
    s = speedups(ipcs, baseline_ipcs)
    if any(v <= 0 for v in s):
        return 0.0
    return len(s) / sum(1.0 / v for v in s)


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean (for cross-workload aggregates)."""
    if not values:
        raise ConfigurationError("values must not be empty")
    if any(v <= 0 for v in values):
        raise ConfigurationError("geometric mean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def fairness(ipcs: Sequence[float], baseline_ipcs: Sequence[float]) -> float:
    """Min/max speedup ratio: 1 is perfectly fair, 0 maximally unfair."""
    s = speedups(ipcs, baseline_ipcs)
    top = max(s)
    return min(s) / top if top > 0 else 0.0


def mpki(misses: float, instructions: float) -> float:
    """Misses per kilo-instruction."""
    if instructions <= 0:
        raise ConfigurationError("instructions must be positive")
    return misses / instructions * 1000.0


def normalized(values: Sequence[float], reference: float) -> List[float]:
    """Each value divided by ``reference`` (Fig. 2b/2c style N=1 baseline)."""
    if reference <= 0:
        raise ConfigurationError("reference must be positive")
    return [v / reference for v in values]


# -- slowdown-based fairness metrics (scenario suite) -------------------------
#
# The lifecycle scenarios report fairness in the slowdown vocabulary of the
# QoS literature (STP/ANTT as in Eyerman & Eeckhout, unfairness as the
# max/min slowdown spread): each tenant's slowdown is its cost per access
# sharing the cache divided by its cost running alone in the same cache.


def slowdowns(shared_cpis: Sequence[float],
              alone_cpis: Sequence[float]) -> List[float]:
    """Per-tenant ``CPI_shared / CPI_alone`` (>= 1 when sharing hurts)."""
    _check_same_length(shared_cpis, alone_cpis)
    out = []
    for shared, alone in zip(shared_cpis, alone_cpis):
        if alone <= 0:
            raise ConfigurationError("alone CPI must be positive")
        out.append(shared / alone)
    return out


def unfairness_factor(slowdown_values: Sequence[float]) -> float:
    """Max/min slowdown: 1 is perfectly fair, larger is less fair."""
    if not slowdown_values:
        raise ConfigurationError("slowdowns must not be empty")
    low = min(slowdown_values)
    if low <= 0:
        raise ConfigurationError("slowdowns must be positive")
    return max(slowdown_values) / low


def stp(slowdown_values: Sequence[float]) -> float:
    """System throughput: sum of per-tenant ``1 / slowdown``.

    Equals the tenant count when sharing is free; lower means the mix as
    a whole lost throughput to contention.
    """
    if not slowdown_values:
        raise ConfigurationError("slowdowns must not be empty")
    if any(v <= 0 for v in slowdown_values):
        raise ConfigurationError("slowdowns must be positive")
    return sum(1.0 / v for v in slowdown_values)


def antt(slowdown_values: Sequence[float]) -> float:
    """Average normalized turnaround time: arithmetic mean slowdown."""
    if not slowdown_values:
        raise ConfigurationError("slowdowns must not be empty")
    return sum(slowdown_values) / len(slowdown_values)

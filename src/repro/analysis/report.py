"""Aggregate benchmark outputs into a single reproduction report.

The benchmark harness saves each regenerated figure as a text table under
``benchmarks/results/``; :func:`build_report` collates them into one
markdown document (used to refresh the measured side of EXPERIMENTS.md
after a full harness run)::

    python -m repro.analysis.report benchmarks/results REPORT.md
"""

from __future__ import annotations

import sys
from datetime import date
from pathlib import Path
from typing import List, Optional, Sequence, Union

from ..errors import ConfigurationError

__all__ = ["build_report", "main"]

# Presentation order: paper figures first, then extensions and ablations.
_SECTION_ORDER = [
    "tableII", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8",
    "ext_resizing",
    "ablation_candidates", "ablation_rankings", "ablation_feedback",
    "ablation_hashing", "ablation_vantage_zcache", "ablation_schemes",
]

_TITLES = {
    "tableII": "Table II — system configuration",
    "fig2": "Figure 2 — PF associativity loss",
    "fig3": "Figure 3 — Equation (1) scaling factors",
    "fig4": "Figure 4 — FS vs PF associativity",
    "fig5": "Figure 5 — sizing precision",
    "fig6": "Figure 6 — associativity sensitivity",
    "fig7": "Figure 7 — QoS on a 32-thread CMP",
    "fig8": "Figure 8 — feedback-FS sensitivity",
    "ext_resizing": "Extension — smooth resizing",
    "ablation_candidates": "Ablation — candidate count R",
    "ablation_rankings": "Ablation — futility rankings",
    "ablation_feedback": "Ablation — feedback vs analytic alphas",
    "ablation_hashing": "Ablation — index-hash quality",
    "ablation_vantage_zcache": "Ablation — Vantage on a Z4/52 zcache",
    "ablation_schemes": "Ablation — all schemes, one QoS table",
}


def build_report(results_dir: Union[str, Path],
                 title: str = "Futility Scaling reproduction — "
                              "regenerated results",
                 generated: Optional[str] = None) -> str:
    """Collate every saved result table into one markdown document.

    ``build_report`` is a pure function of the result tables on disk:
    it never reads the wall clock, so regenerating a report from the
    same tables is byte-identical.  Pass ``generated`` (e.g. an ISO
    date) to stamp the header; the CLI does this by default and offers
    ``--no-date`` for reproducible output.
    """
    results_dir = Path(results_dir)
    if not results_dir.is_dir():
        raise ConfigurationError(f"{results_dir} is not a directory")
    available = {p.stem: p for p in sorted(results_dir.glob("*.txt"))}
    if not available:
        raise ConfigurationError(f"no result tables found in {results_dir}")
    ordered: List[str] = [name for name in _SECTION_ORDER
                          if name in available]
    ordered += [name for name in sorted(available) if name not in ordered]
    stamp = f"Generated {generated} from " if generated else "Generated from "
    parts = [f"# {title}", "",
             f"{stamp}`{results_dir}` ({len(ordered)} result tables).", ""]
    for name in ordered:
        parts.append(f"## {_TITLES.get(name, name)}")
        parts.append("")
        parts.append("```")
        parts.append(available[name].read_text().rstrip())
        parts.append("```")
        parts.append("")
    return "\n".join(parts)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point: collate result tables into one markdown file."""
    args = list(sys.argv[1:] if argv is None else argv)
    no_date = "--no-date" in args
    if no_date:
        args.remove("--no-date")
    if not 1 <= len(args) <= 2:
        print("usage: python -m repro.analysis.report "
              "[--no-date] <results-dir> [output.md]", file=sys.stderr)
        return 2
    # Presentation-only stamp on the human-facing document; results and
    # cache keys never see it, and --no-date restores byte-stable output.
    generated = None if no_date else \
        date.today().isoformat()  # reprolint: disable=DET002
    report = build_report(args[0], generated=generated)
    if len(args) == 2:
        Path(args[1]).write_text(report)
        print(f"wrote {args[1]}")
    else:
        print(report)
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Associativity analysis (Section III-A / [17]).

The paper quantifies a partitioning scheme's associativity with the
*associativity distribution*: the probability distribution of evicted
lines' normalized futility.  A fully-associative cache always evicts
futility 1; the worst case (random victims) is the diagonal CDF
``F_WC(x) = x``.  The headline scalar is the Average Eviction Futility
(AEF), the distribution's mean.

These functions consume the per-partition eviction-futility sample buffers
recorded by :class:`repro.cache.stats.CacheStats`.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from ..errors import ConfigurationError

__all__ = ["aef", "associativity_cdf", "worst_case_cdf", "full_assoc_aef",
           "cdf_at"]


def aef(samples: Sequence[float]) -> float:
    """Average Eviction Futility of a sample buffer (NaN when empty)."""
    if len(samples) == 0:
        return float("nan")
    return float(np.mean(np.asarray(samples, dtype=np.float64)))


def associativity_cdf(samples: Sequence[float],
                      grid: int = 101) -> Tuple[np.ndarray, np.ndarray]:
    """Empirical associativity CDF evaluated on a uniform futility grid.

    Returns ``(x, cdf)`` with ``x`` spanning [0, 1] at ``grid`` points —
    the exact curves plotted in Figs. 2a and 4.
    """
    if grid < 2:
        raise ConfigurationError(f"grid must be >= 2, got {grid}")
    if len(samples) == 0:
        raise ConfigurationError("cannot build a CDF from zero samples")
    data = np.sort(np.asarray(samples, dtype=np.float64))
    x = np.linspace(0.0, 1.0, grid)
    cdf = np.searchsorted(data, x, side="right") / len(data)
    return x, cdf


def cdf_at(samples: Sequence[float], futility: float) -> float:
    """Empirical ``P(f_evict <= futility)``."""
    if len(samples) == 0:
        raise ConfigurationError("cannot evaluate a CDF with zero samples")
    data = np.asarray(samples, dtype=np.float64)
    return float(np.count_nonzero(data <= futility) / len(data))


def worst_case_cdf(x: Sequence[float]) -> np.ndarray:
    """The diagonal worst case ``F_WC(x) = x`` (random eviction)."""
    return np.clip(np.asarray(x, dtype=np.float64), 0.0, 1.0)


def full_assoc_aef() -> float:
    """AEF of an ideal fully-associative cache (always evicts futility 1)."""
    return 1.0

"""Sizing-precision analysis (Section IV-D, Fig. 5).

A scheme's sizing quality is measured from the per-eviction samples of
``actual - target`` partition size: the paper plots the CDF of the
deviation and reports its Mean Absolute Deviation (MAD).  PF achieves
MAD < 1 line; FS trades small temporal deviations (MAD of tens of lines,
worst at insertion rate 0.5, still < 0.5% of a 1MB partition) for
associativity.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from ..errors import ConfigurationError

__all__ = ["mean_absolute_deviation", "mean_deviation", "deviation_cdf",
           "absolute_deviation_quantile", "theoretical_step_probability"]


def mean_absolute_deviation(samples: Sequence[float]) -> float:
    """MAD of size-deviation samples (NaN when empty)."""
    if len(samples) == 0:
        return float("nan")
    return float(np.mean(np.abs(np.asarray(samples, dtype=np.float64))))


def mean_deviation(samples: Sequence[float]) -> float:
    """Signed mean deviation — near zero when sizing is statistically
    correct (FS's property: the average size equals the target)."""
    if len(samples) == 0:
        return float("nan")
    return float(np.mean(np.asarray(samples, dtype=np.float64)))


def deviation_cdf(samples: Sequence[float], *, absolute: bool = True,
                  grid: int = 201) -> Tuple[np.ndarray, np.ndarray]:
    """Empirical CDF of (absolute) size deviation, Fig. 5 style.

    Returns ``(x, cdf)``; ``x`` spans the observed deviation range.
    """
    if len(samples) == 0:
        raise ConfigurationError("cannot build a CDF from zero samples")
    if grid < 2:
        raise ConfigurationError(f"grid must be >= 2, got {grid}")
    data = np.asarray(samples, dtype=np.float64)
    if absolute:
        data = np.abs(data)
    data = np.sort(data)
    x = np.linspace(data[0], data[-1] if data[-1] > data[0] else data[0] + 1,
                    grid)
    cdf = np.searchsorted(data, x, side="right") / len(data)
    return x, cdf


def absolute_deviation_quantile(samples: Sequence[float], q: float) -> float:
    """The ``q``-quantile of |deviation| (e.g. q=0.95)."""
    if not 0 <= q <= 1:
        raise ConfigurationError(f"q must be in [0, 1], got {q}")
    if len(samples) == 0:
        return float("nan")
    return float(np.quantile(np.abs(np.asarray(samples, dtype=np.float64)), q))


def theoretical_step_probability(insertion_rate: float) -> float:
    """``I * (1 - I)`` — the per-eviction probability that a partition's
    size takes a +/-1 step under FS (Section IV-D): deviations are widest
    at I = 0.5, where this peaks at 0.25."""
    if not 0 <= insertion_rate <= 1:
        raise ConfigurationError(
            f"insertion_rate must be in [0, 1], got {insertion_rate}")
    return insertion_rate * (1.0 - insertion_rate)

"""Plain-text plotting for terminal experiment reports.

The benchmark harness renders every figure as text; these helpers add
compact visual forms — sparklines and multi-series ASCII line charts — so
the regenerated associativity CDFs read like the paper's figures without a
plotting dependency.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from ..errors import ConfigurationError

__all__ = ["sparkline", "ascii_chart"]

_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], *, low: Optional[float] = None,
              high: Optional[float] = None) -> str:
    """A one-line unicode sparkline of ``values``.

    ``low``/``high`` pin the scale (default: the data range).
    """
    if len(values) == 0:
        raise ConfigurationError("values must not be empty")
    lo = min(values) if low is None else low
    hi = max(values) if high is None else high
    span = hi - lo
    if span <= 0:
        return _SPARK_LEVELS[0] * len(values)
    top = len(_SPARK_LEVELS) - 1
    out = []
    for v in values:
        t = (v - lo) / span
        out.append(_SPARK_LEVELS[max(0, min(top, round(t * top)))])
    return "".join(out)


def ascii_chart(series: Dict[str, Sequence[float]], *, width: int = 61,
                height: int = 12, x_label: str = "x",
                y_label: str = "y") -> str:
    """A multi-series ASCII line chart.

    Each series is a sequence of y-values assumed evenly spaced over the
    x-axis; series are resampled to ``width`` columns and drawn with a
    distinct glyph.  The y-axis spans [min, max] over all series.
    """
    if not series:
        raise ConfigurationError("series must not be empty")
    if width < 8 or height < 3:
        raise ConfigurationError("chart must be at least 8x3")
    glyphs = "*o+x#@%&"
    all_values = [v for ys in series.values() for v in ys]
    if not all_values:
        raise ConfigurationError("series must contain data")
    lo, hi = min(all_values), max(all_values)
    if hi <= lo:
        hi = lo + 1.0
    grid = [[" "] * width for _ in range(height)]
    for (name, ys), glyph in zip(series.items(), glyphs):
        n = len(ys)
        if n == 0:
            continue
        for col in range(width):
            # Nearest-sample resampling onto the column grid.
            idx = round(col * (n - 1) / (width - 1)) if n > 1 else 0
            t = (ys[idx] - lo) / (hi - lo)
            row = height - 1 - round(t * (height - 1))
            grid[row][col] = glyph
    lines = []
    for r, row in enumerate(grid):
        label = hi if r == 0 else (lo if r == height - 1 else None)
        prefix = f"{label:8.3f} |" if label is not None else " " * 8 + " |"
        lines.append(prefix + "".join(row))
    lines.append(" " * 8 + " +" + "-" * width + f"> {x_label}")
    legend = "   ".join(f"{glyph} {name}"
                        for (name, _), glyph in zip(series.items(), glyphs))
    lines.append(" " * 10 + legend)
    return "\n".join(lines)

"""Typed cache event bus: measurement decoupled from the access mechanism.

The access kernel of :class:`~repro.cache.cache.PartitionedCache` emits a
small, fixed vocabulary of events; anything that *measures* the cache —
:class:`~repro.cache.stats.CacheStats`, the reference futility ranking,
ad-hoc experiment probes — subscribes as an observer instead of being
hard-wired into the hot path.  A run with no observers pays nothing beyond
an iteration over an empty tuple per event.

Observers subclass :class:`CacheObserver` and override only the handlers
they care about; the bus detects overridden methods and builds one flat
tuple of bound handlers per event type, so dispatch in the kernel is::

    for handler in bus.evict:
        handler(idx, part, futility, dirty)

Event vocabulary (all ``part`` values are partition ids):

``hit(idx, part, next_use)``
    The access hit the resident line ``idx``.
``miss(addr, part)``
    The access missed; fired *before* victim selection, so observers see
    pre-eviction occupancies.
``evict(idx, part, futility, dirty)``
    A resident line was evicted to make room.  ``futility`` is the
    reference ranking's normalized futility of the victim (``None`` when
    measurement is off) and ``dirty`` is truthy when the line needed a
    writeback.
``insert(idx, part, next_use, evicted)``
    The missing address was installed at ``idx``; ``evicted`` says whether
    the fill displaced a victim (rather than filling an empty slot).
``relocate(src, dst)``
    A resident block moved between slots (zcache walks).
``flush(idx, part, dirty)``
    A line was forcibly invalidated outside the replacement path
    (placement-scheme resizes).
``lifecycle(kind, part)``
    The partition set or target vector changed outside the access path:
    ``kind`` is ``"create"``, ``"retire"`` or ``"retarget"`` and ``part``
    is the affected partition (``-1`` for whole-vector retargets).
    Observers holding per-partition buffers grow them here.

Subscription changes notify the owning cache (via ``on_change``) so it can
rebuild its compiled access kernel with the new handler tuples.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable, Iterator, List, Optional, Tuple

from ..errors import ConfigurationError

__all__ = ["CacheObserver", "CacheEventBus"]


class CacheObserver:
    """Base class for cache event observers (all handlers default to no-ops).

    Subclass and override the handlers you need; unoverridden handlers are
    excluded from dispatch entirely, so a hit-only observer adds zero cost
    to the miss path.
    """

    def on_cache_hit(self, idx: int, part: int,
                     next_use: Optional[int]) -> None:
        """The access hit resident line ``idx``."""

    def on_cache_miss(self, addr: int, part: int) -> None:
        """The access missed (fired before victim selection)."""

    def on_cache_evict(self, idx: int, part: int,
                       futility: Optional[float], dirty: int) -> None:
        """Line ``idx`` of ``part`` was evicted (``dirty`` -> writeback)."""

    def on_cache_insert(self, idx: int, part: int, next_use: Optional[int],
                        evicted: bool) -> None:
        """A missing address was installed at ``idx`` for ``part``."""

    def on_cache_relocate(self, src: int, dst: int) -> None:
        """A resident block moved from slot ``src`` to slot ``dst``."""

    def on_cache_flush(self, idx: int, part: int, dirty: int) -> None:
        """Line ``idx`` was forcibly invalidated (not an eviction)."""

    def on_cache_lifecycle(self, kind: str, part: int) -> None:
        """The partition set changed: ``kind`` in create/retire/retarget."""


#: (event name, handler method name) — the bus exposes one handler tuple
#: attribute per event name.
_EVENTS: Tuple[Tuple[str, str], ...] = (
    ("hit", "on_cache_hit"),
    ("miss", "on_cache_miss"),
    ("evict", "on_cache_evict"),
    ("insert", "on_cache_insert"),
    ("relocate", "on_cache_relocate"),
    ("flush", "on_cache_flush"),
    ("lifecycle", "on_cache_lifecycle"),
)


class CacheEventBus:
    """Registry of :class:`CacheObserver` instances with per-event dispatch
    tuples (``bus.hit``, ``bus.miss``, ``bus.evict``, ``bus.insert``,
    ``bus.relocate``, ``bus.flush``, ``bus.lifecycle``)."""

    __slots__ = ("_observers", "_on_change",
                 "hit", "miss", "evict", "insert", "relocate", "flush",
                 "lifecycle")

    def __init__(self, on_change: Optional[Callable[[], None]] = None) -> None:
        self._observers: List[CacheObserver] = []
        self._on_change = on_change
        self._rebuild()

    def observers(self) -> List[CacheObserver]:
        """The subscribed observers, in subscription order."""
        return list(self._observers)

    def subscribe(self, observer: CacheObserver) -> None:
        """Add ``observer`` and rebuild the dispatch tuples."""
        if not isinstance(observer, CacheObserver):
            raise ConfigurationError(
                f"observers must subclass CacheObserver, got "
                f"{type(observer).__name__}")
        if observer in self._observers:
            raise ConfigurationError("observer is already subscribed")
        self._observers.append(observer)
        self._rebuild()
        if self._on_change is not None:
            self._on_change()

    def unsubscribe(self, observer: CacheObserver) -> None:
        """Remove ``observer``; raises if it was never subscribed."""
        try:
            self._observers.remove(observer)
        except ValueError:
            raise ConfigurationError(
                "observer is not subscribed") from None
        self._rebuild()
        if self._on_change is not None:
            self._on_change()

    @contextmanager
    def subscribed(self, *observers: CacheObserver) -> Iterator["CacheEventBus"]:
        """Subscribe ``observers`` for the duration of a ``with`` block.

        Subscription and the matching unsubscription each rebuild the
        owning cache's compiled kernel, so the block runs with the
        observers live and the kernel reverts to its previous form on
        exit — the idiom for scoped measurement (telemetry recording,
        test probes) that must leave no trace afterwards.
        """
        for obs in observers:
            self.subscribe(obs)
        try:
            yield self
        finally:
            for obs in reversed(observers):
                self.unsubscribe(obs)

    def handlers(self, event: str, exclude: Tuple[CacheObserver, ...] = ()):
        """Dispatch tuple for ``event`` excluding specific observers.

        The cache's kernel compiler uses this to inline its well-known
        observers (the standard stats object, the reference-ranking
        adapter) and dispatch dynamically only to the rest.
        """
        method = dict(_EVENTS)[event]
        base_method = getattr(CacheObserver, method)
        return tuple(
            getattr(obs, method) for obs in self._observers
            if not any(obs is e for e in exclude)
            and getattr(type(obs), method) is not base_method)

    def _rebuild(self) -> None:
        base = CacheObserver
        for event, method in _EVENTS:
            handlers = tuple(
                getattr(obs, method) for obs in self._observers
                if getattr(type(obs), method) is not getattr(base, method))
            setattr(self, event, handlers)

"""Cache substrate: arrays, index hashing, the partitioned-cache engine."""

from .arrays import (
    INVALID,
    CacheArray,
    DirectMappedArray,
    FullyAssociativeArray,
    RandomCandidatesArray,
    SetAssociativeArray,
    SkewAssociativeArray,
    ZCacheArray,
)
from .cache import PartitionedCache
from .hashing import H3Hash, IdentityHash, IndexHash, XorFoldHash, make_hash
from .stats import CacheStats

__all__ = [
    "INVALID",
    "CacheArray",
    "SetAssociativeArray",
    "DirectMappedArray",
    "FullyAssociativeArray",
    "RandomCandidatesArray",
    "SkewAssociativeArray",
    "ZCacheArray",
    "PartitionedCache",
    "CacheStats",
    "IndexHash",
    "IdentityHash",
    "XorFoldHash",
    "H3Hash",
    "make_hash",
]

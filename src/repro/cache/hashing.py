"""Cache index hash functions.

The paper's analytical framework relies on the *Uniformity Assumption*
(Section IV-A): replacement candidates behave as independent uniform draws,
which holds "in a practical cache indexed by good random hash functions".
The evaluated system uses a 16-way set-associative L2 with XOR-based
indexing [19]; skew-associative caches and zcaches use one H3 hash per way.

This module provides the three index-hash families used across the cache
arrays:

* :class:`IdentityHash` — plain modulo indexing (the "bad" baseline; used by
  the hash-quality ablation).
* :class:`XorFoldHash` — XOR-based indexing: the address is split into
  index-width chunks that are XOR-folded together.
* :class:`H3Hash` — the H3 universal hash family: each output bit is the
  parity of a random subset of input bits, implemented as parity of
  ``addr & matrix_row``.

All hashes map a line address (an arbitrary non-negative int) to a bucket in
``[0, buckets)``.  ``buckets`` need not be a power of two for
:class:`IdentityHash`; the bit-mixing hashes require it.
"""

from __future__ import annotations

import random
from typing import List, Optional

from ..errors import ConfigurationError

__all__ = ["IndexHash", "IdentityHash", "XorFoldHash", "H3Hash", "make_hash"]

_ADDRESS_BITS = 48  # enough for any synthetic line address in this library


def _is_power_of_two(n: int) -> bool:
    return n > 0 and (n & (n - 1)) == 0


class IndexHash:
    """Base class for index hashes mapping addresses to buckets."""

    def __init__(self, buckets: int) -> None:
        if buckets <= 0:
            raise ConfigurationError(f"buckets must be positive, got {buckets}")
        self.buckets = int(buckets)

    def __call__(self, addr: int) -> int:
        raise NotImplementedError


class IdentityHash(IndexHash):
    """Modulo indexing: ``addr % buckets``.

    Deliberately weak: strided access patterns map to few buckets, violating
    the uniformity assumption.  Used as the ablation baseline.
    """

    def __call__(self, addr: int) -> int:
        return addr % self.buckets


class XorFoldHash(IndexHash):
    """XOR-based indexing: fold the address into the index width with XOR.

    This is the classic XOR-interleaved index of [19] used by the paper's
    simulated L2.  Requires a power-of-two bucket count.
    """

    def __init__(self, buckets: int) -> None:
        super().__init__(buckets)
        if not _is_power_of_two(buckets):
            raise ConfigurationError(
                f"XorFoldHash requires a power-of-two bucket count, got {buckets}")
        self._bits = buckets.bit_length() - 1

    def __call__(self, addr: int) -> int:
        if self._bits == 0:
            return 0
        mask = self.buckets - 1
        folded = 0
        a = addr
        while a:
            folded ^= a & mask
            a >>= self._bits
        return folded


_MIX_MASK = (1 << 64) - 1


def _mix64(x: int) -> int:
    """SplitMix64 finalizer: a bijective bit scrambler.

    Applied before the H3 parity rows so that low-entropy address sets
    (e.g. small dense ranges) still exercise every input bit; without it, a
    random H3 row whose set bits all fall outside the varying address bits
    would pin one index bit and make a slice of the sets unreachable.
    """
    x &= _MIX_MASK
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MIX_MASK
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MIX_MASK
    return x ^ (x >> 31)


class H3Hash(IndexHash):
    """H3 universal hash: output bit *j* is ``parity(mix(addr) & row[j])``.

    Addresses pass through a bijective SplitMix64 scrambler first (see
    :func:`_mix64`).  The random row matrix is derived deterministically
    from ``seed`` so simulations are reproducible.  Requires a power-of-two
    bucket count.
    """

    def __init__(self, buckets: int, seed: int = 0) -> None:
        super().__init__(buckets)
        if not _is_power_of_two(buckets):
            raise ConfigurationError(
                f"H3Hash requires a power-of-two bucket count, got {buckets}")
        self._bits = buckets.bit_length() - 1
        rng = random.Random(seed)
        max_row = (1 << _ADDRESS_BITS) - 1
        self._rows: List[int] = [rng.randint(1, max_row) for _ in range(self._bits)]

    def __call__(self, addr: int) -> int:
        mixed = _mix64(addr)
        out = 0
        for j, row in enumerate(self._rows):
            if (mixed & row).bit_count() & 1:
                out |= 1 << j
        return out


_HASH_KINDS = {
    "identity": IdentityHash,
    "xor": XorFoldHash,
    "h3": H3Hash,
}


def make_hash(kind: str, buckets: int, seed: Optional[int] = None) -> IndexHash:
    """Construct an index hash by name (``identity``, ``xor`` or ``h3``)."""
    try:
        cls = _HASH_KINDS[kind]
    except KeyError:
        raise ConfigurationError(
            f"unknown hash kind {kind!r}; expected one of {sorted(_HASH_KINDS)}")
    if cls is H3Hash:
        return cls(buckets, seed=0 if seed is None else seed)
    return cls(buckets)

"""The partitioned cache engine.

:class:`PartitionedCache` composes the paper's three cache-model components
(Section III-A): a *cache array* (candidate generation), a *futility
ranking* (per-partition uselessness order) and a *replacement policy* (a
partitioning scheme choosing victims).  It owns all per-line metadata
(owner partition), per-partition occupancy accounting, and the statistics
the evaluation measures.

Measurement note: associativity statistics (eviction futility, AEF) are
always recorded as **normalized rank futility** so they are comparable
across schemes, exactly like the paper's associativity distributions.  When
the decision ranking is approximate (coarse-grain timestamp LRU) a parallel
*reference ranking* (exact LRU by default) is maintained purely for
measurement; with an exact decision ranking the same object serves both
roles at no extra cost.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from ..core.futility import FutilityRanking, LRURanking
from ..core.schemes.base import PartitioningScheme
from ..errors import ConfigurationError
from .arrays import INVALID, CacheArray
from .stats import CacheStats

__all__ = ["PartitionedCache"]


class PartitionedCache:
    """A shared cache partitioned by a replacement-based scheme.

    Parameters
    ----------
    array:
        The cache array organization (candidate provider).
    ranking:
        The futility ranking used for replacement decisions.
    scheme:
        The partitioning scheme (victim selection policy).
    num_partitions:
        Number of partitions (each thread typically gets one).
    targets:
        Per-partition target sizes in lines.  Defaults to an equal split of
        the whole cache.  May be changed at any time via
        :meth:`set_targets` — replacement-based schemes resize smoothly.
    reference_ranking:
        Exact ranking maintained for eviction-futility measurement when
        ``ranking`` is approximate.  ``"auto"`` (default) builds an exact
        LRU reference only when needed; ``None`` disables measurement
        (faster); or pass a :class:`FutilityRanking` instance.
    track_eviction_futility, deviation_partitions, occupancy_sample_period:
        Statistics configuration, see :class:`~repro.cache.stats.CacheStats`.
    """

    def __init__(self, array: CacheArray, ranking: FutilityRanking,
                 scheme: PartitioningScheme, num_partitions: int, *,
                 targets: Optional[Sequence[int]] = None,
                 reference_ranking="auto",
                 track_eviction_futility: bool = True,
                 deviation_partitions: Iterable[int] = (),
                 occupancy_sample_period: int = 64) -> None:
        if num_partitions <= 0:
            raise ConfigurationError("num_partitions must be positive")
        self.array = array
        self.ranking = ranking
        self.scheme = scheme
        self.num_partitions = int(num_partitions)
        self.num_lines = array.num_lines
        self.owner: List[int] = [-1] * self.num_lines
        self.actual_sizes: List[int] = [0] * self.num_partitions
        self.targets: List[int] = [0] * self.num_partitions
        self._dirty = bytearray(self.num_lines)
        self._resident = 0
        #: True when the most recent replacement evicted a dirty line (the
        #: timing engine reads this to charge writeback bandwidth).
        self.writeback_pending = False

        ranking.bind(self.num_lines, self.num_partitions)
        if ranking.exact or not track_eviction_futility:
            self.reference: Optional[FutilityRanking] = (
                ranking if ranking.exact else None)
        elif reference_ranking == "auto":
            self.reference = LRURanking()
        else:
            self.reference = reference_ranking
        self._separate_reference = (self.reference is not None
                                    and self.reference is not ranking)
        if self._separate_reference:
            self.reference.bind(self.num_lines, self.num_partitions)

        self.stats = CacheStats(
            self.num_partitions,
            track_eviction_futility=track_eviction_futility
            and self.reference is not None,
            deviation_partitions=deviation_partitions,
            occupancy_sample_period=occupancy_sample_period)
        self._track_deviation = bool(self.stats.deviation_partitions)

        scheme.bind(self)
        if not scheme.uses_candidates and not hasattr(array, "free_slot"):
            raise ConfigurationError(
                f"scheme {scheme.name!r} needs an array with free_slot() "
                f"(use FullyAssociativeArray)")

        if targets is None:
            base, extra = divmod(self.num_lines, self.num_partitions)
            targets = [base + (1 if p < extra else 0)
                       for p in range(self.num_partitions)]
        self.set_targets(targets)

    # -- configuration -------------------------------------------------------
    def set_targets(self, targets: Sequence[int]) -> None:
        """Set per-partition target sizes (in lines); resizing is smooth."""
        targets = [int(t) for t in targets]
        if len(targets) != self.num_partitions:
            raise ConfigurationError(
                f"expected {self.num_partitions} targets, got {len(targets)}")
        for p, t in enumerate(targets):
            if t < 0:
                raise ConfigurationError(f"targets[{p}] must be >= 0, got {t}")
        if sum(targets) > self.num_lines:
            raise ConfigurationError(
                f"targets sum to {sum(targets)} > {self.num_lines} lines")
        self.targets = targets
        self.ranking.set_targets(targets)
        if self._separate_reference:
            self.reference.set_targets(targets)
        self.scheme.set_targets(targets)

    def reset_stats(self) -> None:
        """Clear statistics (e.g. after cache warm-up)."""
        self.stats.reset()

    # -- queries --------------------------------------------------------------
    def occupancy(self, part: int) -> int:
        """Current number of valid lines owned by ``part``."""
        return self.actual_sizes[part]

    def contains(self, addr: int) -> bool:
        """Whether ``addr`` is currently resident."""
        return self.array.lookup(addr) is not None

    def is_full(self) -> bool:
        """True when every slot is occupied (schemes use this to skip the
        free-slot scan on the hot path)."""
        return self._resident == self.num_lines

    # -- the access path -------------------------------------------------------
    def access(self, addr: int, part: int, next_use: Optional[int] = None,
               *, is_write: bool = False) -> bool:
        """Perform one access; returns ``True`` on a hit.

        ``next_use`` carries Belady future knowledge for OPT rankings (the
        thread-local position of the next reference to ``addr``).
        ``is_write`` marks the line dirty; evicting a dirty line records a
        writeback and raises :attr:`writeback_pending` for the timing
        engine's bandwidth accounting.
        """
        if addr < 0:
            raise ConfigurationError(
                f"addresses must be non-negative, got {addr}")
        array = self.array
        idx = array.lookup(addr)
        if idx is not None:
            self.ranking.on_hit(idx, part, next_use=next_use)
            if self._separate_reference:
                self.reference.on_hit(idx, part, next_use=next_use)
            if is_write:
                self._dirty[idx] = 1
            self.stats.record_access(part, True, self.actual_sizes)
            return True

        self.stats.record_access(part, False, self.actual_sizes)
        scheme = self.scheme
        if scheme.uses_candidates:
            candidates = array.candidates(addr)
            victim = scheme.choose_victim(candidates, part)
        else:
            victim = array.free_slot()
            if victim is None:
                victim = scheme.choose_victim([], part)

        victim_addr = array.addr_at(victim)
        self.writeback_pending = False
        if victim_addr != INVALID:
            vpart = self.owner[victim]
            futility = (self.reference.futility(victim)
                        if self.reference is not None else None)
            self.stats.record_eviction(vpart, futility)
            if self._dirty[victim]:
                self._dirty[victim] = 0
                self.writeback_pending = True
                self.stats.record_writeback(vpart)
            self.ranking.on_evict(victim, vpart)
            if self._separate_reference:
                self.reference.on_evict(victim, vpart)
            scheme.on_evict(victim, vpart)
            self.owner[victim] = -1
            self.actual_sizes[vpart] -= 1
            self._resident -= 1
            array.evict(victim)

        moves = array.place(addr, victim)
        for src, dst in moves:
            self.owner[dst] = self.owner[src]
            self.owner[src] = -1
            self._dirty[dst] = self._dirty[src]
            self._dirty[src] = 0
            self.ranking.on_move(src, dst)
            if self._separate_reference:
                self.reference.on_move(src, dst)
            scheme.on_move(src, dst)
        new_idx = victim if not moves else array.lookup(addr)

        self.owner[new_idx] = part
        self.actual_sizes[part] += 1
        self._resident += 1
        self._dirty[new_idx] = 1 if is_write else 0
        self.ranking.on_insert(new_idx, part, next_use=next_use)
        if self._separate_reference:
            self.reference.on_insert(new_idx, part, next_use=next_use)
        self.stats.record_insertion(part)
        scheme.on_insert(new_idx, part)
        if self._track_deviation and victim_addr != INVALID:
            self.stats.record_deviations(self.actual_sizes, self.targets)
        return False

    def invalidate_index(self, idx: int) -> None:
        """Forcibly invalidate the line at ``idx`` (placement-scheme flush).

        Counted as a flush, not an eviction, so it does not pollute the
        associativity statistics.
        """
        if self.array.addr_at(idx) == INVALID:
            return
        part = self.owner[idx]
        if self._dirty[idx]:
            self._dirty[idx] = 0
            self.stats.record_writeback(part)
        self.ranking.on_evict(idx, part)
        if self._separate_reference:
            self.reference.on_evict(idx, part)
        self.owner[idx] = -1
        self.actual_sizes[part] -= 1
        self._resident -= 1
        self.array.evict(idx)
        self.stats.record_flush()

    # -- invariant checking (used heavily by the test suite) -------------------
    def check_invariants(self) -> None:
        """Verify internal consistency; raises ``AssertionError`` on breakage."""
        resident = 0
        sizes = [0] * self.num_partitions
        for idx in range(self.num_lines):
            addr = self.array.addr_at(idx)
            if addr == INVALID:
                assert self.owner[idx] == -1, f"empty slot {idx} has an owner"
                continue
            resident += 1
            p = self.owner[idx]
            assert 0 <= p < self.num_partitions, f"slot {idx} owner {p} invalid"
            sizes[p] += 1
            assert self.array.lookup(addr) == idx, f"lookup broken at {idx}"
        assert sizes == self.actual_sizes, (
            f"occupancy accounting drifted: {sizes} != {self.actual_sizes}")
        assert resident == self.array.resident_count()
        assert resident == self._resident, (
            f"resident counter drifted: {self._resident} != {resident}")
        for p in range(self.num_partitions):
            assert self.ranking.partition_size(p) == sizes[p], (
                f"ranking size mismatch for partition {p}")
            if self._separate_reference:
                assert self.reference.partition_size(p) == sizes[p]

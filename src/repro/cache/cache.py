"""The partitioned cache engine.

:class:`PartitionedCache` composes the paper's three cache-model components
(Section III-A): a *cache array* (candidate generation), a *futility
ranking* (per-partition uselessness order) and a *replacement policy* (a
partitioning scheme choosing victims).  It owns all per-line metadata
(owner partition, dirty bits — stored in the array's shared
:class:`~repro.cache.linetable.LineTable`) and per-partition occupancy
accounting.

Measurement note: associativity statistics (eviction futility, AEF) are
always recorded as **normalized rank futility** so they are comparable
across schemes, exactly like the paper's associativity distributions.  When
the decision ranking is approximate (coarse-grain timestamp LRU) a parallel
*reference ranking* (exact LRU by default) is maintained purely for
measurement; with an exact decision ranking the same object serves both
roles at no extra cost.

Layering (see DESIGN.md): the access path is a *compiled kernel* — a
closure built by :meth:`PartitionedCache._build_access` that captures the
LineTable buffers, the ranking's event hooks, the scheme's victim chooser
and the current event-handler tuples as locals.  Everything that merely
*measures* the cache (statistics, the reference ranking, experiment
probes) subscribes to the typed :class:`~repro.cache.events.CacheEventBus`
instead of being hard-wired into that kernel, so a run with measurement
disabled iterates empty handler tuples and pays nothing else.  The kernel
is rebuilt whenever the subscription set changes.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Iterable, List, Optional, Sequence

from ..core.futility import (
    TIMESTAMP_MOD,
    CoarseTimestampLRURanking,
    FutilityRanking,
    LRURanking,
)
from ..core.schemes.base import PartitioningScheme
from ..core.schemes.full_assoc import FullAssocScheme
from ..core.schemes.futility_scaling import FeedbackFutilityScalingScheme
from ..errors import ConfigurationError
from .arrays import (INVALID, CacheArray, FullyAssociativeArray,
                     SetAssociativeArray)
from .events import CacheEventBus, CacheObserver
from .hashing import XorFoldHash
from .stats import CacheStats

__all__ = ["PartitionedCache", "RankingObserver"]


class RankingObserver(CacheObserver):
    """Drives a measurement-only (reference) ranking from cache events.

    The wrapped ranking sees exactly the insert/hit/evict/move stream the
    decision ranking sees, but from the event bus — unsubscribing it turns
    reference maintenance off without touching the access kernel.
    """

    def __init__(self, ranking: FutilityRanking) -> None:
        self.ranking = ranking

    def on_cache_hit(self, idx: int, part: int,
                     next_use: Optional[int]) -> None:
        self.ranking.on_hit(idx, part, next_use=next_use)

    def on_cache_insert(self, idx: int, part: int, next_use: Optional[int],
                        evicted: bool) -> None:
        self.ranking.on_insert(idx, part, next_use=next_use)

    def on_cache_evict(self, idx: int, part: int,
                       futility: Optional[float], dirty: int) -> None:
        self.ranking.on_evict(idx, part)

    def on_cache_relocate(self, src: int, dst: int) -> None:
        self.ranking.on_move(src, dst)

    def on_cache_flush(self, idx: int, part: int, dirty: int) -> None:
        self.ranking.on_evict(idx, part)


class PartitionedCache:
    """A shared cache partitioned by a replacement-based scheme.

    Parameters
    ----------
    array:
        The cache array organization (candidate provider).
    ranking:
        The futility ranking used for replacement decisions.
    scheme:
        The partitioning scheme (victim selection policy).
    num_partitions:
        Number of partitions (each thread typically gets one).
    targets:
        Per-partition target sizes in lines.  Defaults to an equal split of
        the whole cache.  May be changed at any time via
        :meth:`set_targets` — replacement-based schemes resize smoothly.
    reference_ranking:
        Exact ranking maintained for eviction-futility measurement when
        ``ranking`` is approximate.  ``"auto"`` (default) builds an exact
        LRU reference only when needed; ``None`` disables measurement
        (faster); or pass a :class:`FutilityRanking` instance.
    track_eviction_futility, deviation_partitions, occupancy_sample_period:
        Statistics configuration, see :class:`~repro.cache.stats.CacheStats`.
    collect_stats:
        When ``False`` the :attr:`stats` object exists but is *not*
        subscribed to the event bus — a pure-replacement run with zero
        measurement cost.  (``cache.events.subscribe(cache.stats)`` turns
        collection on later.)
    """

    def __init__(self, array: CacheArray, ranking: FutilityRanking,
                 scheme: PartitioningScheme, num_partitions: int, *,
                 targets: Optional[Sequence[int]] = None,
                 reference_ranking="auto",
                 track_eviction_futility: bool = True,
                 deviation_partitions: Iterable[int] = (),
                 occupancy_sample_period: int = 64,
                 collect_stats: bool = True) -> None:
        if num_partitions <= 0:
            raise ConfigurationError("num_partitions must be positive")
        self._ready = False
        self.array = array
        self.ranking = ranking
        self.scheme = scheme
        self.num_partitions = int(num_partitions)
        self.num_lines = array.num_lines
        #: Shared struct-of-arrays per-line metadata (owned by the array).
        self.lines = array.lines
        self.owner = self.lines.owner
        self._dirty = self.lines.dirty
        self.actual_sizes: List[int] = [0] * self.num_partitions
        self.targets: List[int] = [0] * self.num_partitions
        self._resident = 0
        #: Partition lifecycle state (control plane): retired partitions
        #: accept no insertions; their resident lines are *orphans* drained
        #: by normal replacement.  Mutated in place — the compiled kernel
        #: binds this list by identity when any partition is retired.
        self._retired: List[bool] = [False] * self.num_partitions
        #: Ordered record of control-plane operations (create / retire /
        #: retarget), each entry a plain dict.  The scenario engine stamps
        #: access counts onto these; telemetry exports them as the
        #: ``lifecycle`` artifact.
        self.lifecycle_log: List[dict] = []
        self._in_lifecycle = False
        #: True when the most recent replacement evicted a dirty line (the
        #: timing engine reads this to charge writeback bandwidth).
        self.writeback_pending = False
        #: Typed event bus; subscription changes rebuild the access kernel.
        self.events = CacheEventBus(on_change=self._rebuild_kernel)

        ranking.bind(self.num_lines, self.num_partitions)
        if ranking.exact or not track_eviction_futility:
            self.reference: Optional[FutilityRanking] = (
                ranking if ranking.exact else None)
        elif reference_ranking == "auto":
            self.reference = LRURanking()
        else:
            self.reference = reference_ranking
        self._separate_reference = (self.reference is not None
                                    and self.reference is not ranking)
        if self._separate_reference:
            self.reference.bind(self.num_lines, self.num_partitions)
            self.events.subscribe(RankingObserver(self.reference))

        self.stats = CacheStats(
            self.num_partitions,
            track_eviction_futility=track_eviction_futility
            and self.reference is not None,
            deviation_partitions=deviation_partitions,
            occupancy_sample_period=occupancy_sample_period)
        self.stats.attach(self)
        if collect_stats:
            self.events.subscribe(self.stats)

        scheme.bind(self)
        if not scheme.uses_candidates and not hasattr(array, "free_slot"):
            raise ConfigurationError(
                f"scheme {scheme.name!r} needs an array with free_slot() "
                f"(use FullyAssociativeArray)")

        if targets is None:
            base, extra = divmod(self.num_lines, self.num_partitions)
            targets = [base + (1 if p < extra else 0)
                       for p in range(self.num_partitions)]
        self.set_targets(targets)
        self._ready = True
        self._rebuild_kernel()

    # -- configuration -------------------------------------------------------
    def set_targets(self, targets: Sequence[int]) -> None:
        """Set per-partition target sizes (in lines); resizing is smooth."""
        targets = [int(t) for t in targets]
        if len(targets) != self.num_partitions:
            raise ConfigurationError(
                f"expected {self.num_partitions} targets, got {len(targets)}")
        for p, t in enumerate(targets):
            if t < 0:
                raise ConfigurationError(f"targets[{p}] must be >= 0, got {t}")
        if sum(targets) > self.num_lines:
            raise ConfigurationError(
                f"targets sum to {sum(targets)} > {self.num_lines} lines")
        self.targets = targets
        self.ranking.set_targets(targets)
        if self._separate_reference:
            self.reference.set_targets(targets)
        self.scheme.set_targets(targets)
        # Rankings may swap internal buffers on retarget (coarse-TS rebuilds
        # its period table); recompile so the kernel sees the new ones.
        self._rebuild_kernel()
        if self._ready and not self._in_lifecycle:
            self._log_lifecycle("retarget", -1)

    # -- partition control plane ----------------------------------------------
    def _log_lifecycle(self, kind: str, part: int) -> None:
        self.lifecycle_log.append({
            "seq": len(self.lifecycle_log), "event": kind, "part": part,
            "targets": list(self.targets)})
        for handler in self.events.lifecycle:
            handler(kind, part)

    def create_partition(self, target: int = 0) -> int:
        """Add a partition (tenant arrival) and return its id.

        The lowest-numbered retired slot that has fully drained is reused
        (deterministically); otherwise every per-partition structure — the
        cache's own accounting, the ranking(s), the scheme and the
        statistics — grows by one zeroed slot and the kernel is recompiled
        for the new partition count.  ``target`` is the new partition's
        initial line target; other targets are untouched (call
        :meth:`set_targets` to re-apportion).
        """
        target = int(target)
        if target < 0:
            raise ConfigurationError(f"target must be >= 0, got {target}")
        for p in range(self.num_partitions):
            if self._retired[p] and self.actual_sizes[p] == 0:
                self._retired[p] = False
                targets = list(self.targets)
                targets[p] = target
                self._apply_targets(targets)
                self._log_lifecycle("create", p)
                return p
        part = self.num_partitions
        self.num_partitions = part + 1
        self.actual_sizes.append(0)
        self._retired.append(False)
        targets = list(self.targets) + [target]
        self.ranking.add_partition()
        if self._separate_reference:
            self.reference.add_partition()
        self.scheme.add_partition()
        self.stats.add_partition()
        self._apply_targets(targets)
        self._log_lifecycle("create", part)
        return part

    def retire_partition(self, part: int) -> None:
        """Retire partition ``part`` (tenant departure): no flush.

        The partition's target drops to 0 and further insertions into it
        raise; its resident lines become *orphans* that every
        replacement-based scheme drains through normal eviction pressure
        (a zero-target partition is maximally oversized).  A drained
        retired slot is reused by the next :meth:`create_partition`.
        """
        if not 0 <= part < self.num_partitions:
            raise ConfigurationError(
                f"partition {part} out of range (0..{self.num_partitions - 1})")
        if self._retired[part]:
            raise ConfigurationError(f"partition {part} is already retired")
        if sum(1 for r in self._retired if not r) <= 1:
            raise ConfigurationError(
                "cannot retire the last active partition")
        self._retired[part] = True
        targets = list(self.targets)
        targets[part] = 0
        try:
            self._apply_targets(targets)
        except Exception:
            self._retired[part] = False
            self._rebuild_kernel()
            raise
        self._log_lifecycle("retire", part)

    def _apply_targets(self, targets: Sequence[int]) -> None:
        """``set_targets`` without the standalone retarget log entry."""
        self._in_lifecycle = True
        try:
            self.set_targets(targets)
        finally:
            self._in_lifecycle = False

    def is_retired(self, part: int) -> bool:
        """Whether ``part`` is retired (draining or drained)."""
        return self._retired[part]

    def active_partitions(self) -> List[int]:
        """Ids of partitions currently accepting insertions."""
        return [p for p in range(self.num_partitions) if not self._retired[p]]

    def reset_stats(self) -> None:
        """Clear statistics (e.g. after cache warm-up)."""
        self.stats.reset()

    # -- queries --------------------------------------------------------------
    def occupancy(self, part: int) -> int:
        """Current number of valid lines owned by ``part``."""
        return self.actual_sizes[part]

    def contains(self, addr: int) -> bool:
        """Whether ``addr`` is currently resident."""
        return self.array.lookup(addr) is not None

    def is_full(self) -> bool:
        """True when every slot is occupied (schemes use this to skip the
        free-slot scan on the hot path)."""
        return self._resident == self.num_lines

    # -- the access path -------------------------------------------------------
    def _rebuild_kernel(self) -> None:
        """(Re)compile the access closure; called on observer changes."""
        if not self._ready:
            return
        self.access = self._build_access()

    def _build_access(self):
        """Compile ``access(addr, part, next_use=None, *, is_write=False)``.

        Returns ``True`` on a hit.  ``next_use`` carries Belady future
        knowledge for OPT rankings (the thread-local position of the next
        reference to ``addr``); ``is_write`` marks the line dirty, and
        evicting a dirty line raises :attr:`writeback_pending` for the
        timing engine's bandwidth accounting.

        The kernel is *generated source*, specialized to this cache's exact
        configuration and compiled once: the LineTable buffers, ranking
        hooks, the scheme's victim chooser and the event-handler tuples are
        bound as globals of the generated function, and any segment that
        cannot apply (no reference ranking, statistics unsubscribed, no
        deviation tracking, non-relocating array, candidate generation for
        a set-associative geometry, ...) is simply not emitted.  The two
        well-known observers — the cache's own
        :class:`~repro.cache.stats.CacheStats` and the reference-ranking
        :class:`RankingObserver` — are recognized and inlined as straight
        counter/hook code; any other observer dispatches through the
        per-event handler tuples as before.  The generated source is kept
        on the kernel as ``access.__kernel_source__`` for inspection.

        Event ordering contract (unchanged from the dispatching kernel):
        ``miss`` fires before victim selection (observers see pre-eviction
        occupancies), ``evict`` fires after the victim is removed (with the
        reference futility computed *before* any mutation), ``insert``
        fires last with an ``evicted`` flag.  Inlined observers fire where
        their dispatched handlers used to, i.e. before dynamically
        dispatched ones.
        """
        array_obj = self.array
        ranking = self.ranking
        reference = self.reference
        scheme = self.scheme
        stats = self.stats
        events = self.events
        base = PartitioningScheme
        stype = type(scheme)

        # The paper's headline configuration — feedback FS over 8-bit coarse
        # timestamps with the default power-of-two changing ratio — gets its
        # victim scan and Algorithm-2 interval counters inlined too: the
        # scaled futility is a masked subtract and a left shift, so going
        # through choose_victim/on_insert/on_evict calls per miss is pure
        # dispatch overhead.
        fb_inline = (stype is FeedbackFutilityScalingScheme
                     and type(ranking) is CoarseTimestampLRURanking
                     and TIMESTAMP_MOD == 256
                     and getattr(scheme, "_shift_scan", False)
                     and getattr(scheme, "_coarse_ranking", None) is ranking)

        # Recognize the observers the compiler knows how to inline.  The
        # telemetry recorder is imported lazily: repro.obs is never pulled
        # in unless a recorder is actually subscribed somewhere.
        import sys
        ts_cls = None
        obs_mod = sys.modules.get("repro.obs.timeseries")
        if obs_mod is not None:
            ts_cls = obs_mod.TimeSeriesRecorder
        fast_stats = None
        ref_obs = None
        ts_obs = None
        for obs in events.observers():
            if obs is stats and type(obs) is CacheStats:
                fast_stats = obs
            elif type(obs) is RankingObserver and obs.ranking is reference:
                ref_obs = obs
            elif (ts_cls is not None and type(obs) is ts_cls
                  and obs._cache is self):
                ts_obs = obs
        exclude = tuple(o for o in (fast_stats, ref_obs, ts_obs)
                        if o is not None)
        handlers = {event: events.handlers(event, exclude)
                    for event in ("hit", "miss", "evict", "insert", "relocate")}

        # Arrays that neither relocate blocks nor keep private slot state
        # get their evict/place bodies inlined.
        simple = (type(array_obj).evict is CacheArray.evict
                  and type(array_obj).place is CacheArray.place)
        # The fully-associative array's extra state is one free list; its
        # evict/place bodies are a handful of list operations, so they
        # inline just as well.
        fa_inline = type(array_obj) is FullyAssociativeArray

        ns = {
            "ConfigurationError": ConfigurationError,
            "where": self.lines.where,
            "where_get": self.lines.where.get,
            "tag": self.lines.tag,
            "owner": self.owner,
            "dirty": self._dirty,
            "actual": self.actual_sizes,
            "cache": self,
            "num_partitions": self.num_partitions,
            "r_hit": ranking.on_hit,
            "r_ins": ranking.on_insert,
            "r_evi": ranking.on_evict,
            "r_move": ranking.on_move,
            "choose": scheme.choose_victim,
            "a_evict": array_obj.evict,
            "a_place": array_obj.place,
            "hit_handlers": handlers["hit"],
            "miss_handlers": handlers["miss"],
            "evict_handlers": handlers["evict"],
            "insert_handlers": handlers["insert"],
            "relocate_handlers": handlers["relocate"],
        }
        if fa_inline:
            ns["a_free"] = array_obj._free
        if stype.on_insert is not base.on_insert:
            ns["s_ins"] = scheme.on_insert
        if stype.on_evict is not base.on_evict:
            ns["s_evi"] = scheme.on_evict
        if stype.on_move is not base.on_move:
            ns["s_move"] = scheme.on_move
        if reference is not None:
            ns["ref_fut"] = reference.futility
        if ref_obs is not None:
            ns["ref_hit"] = reference.on_hit
            ns["ref_ins"] = reference.on_insert
            ns["ref_evi"] = reference.on_evict
            ns["ref_move"] = reference.on_move
        if fast_stats is not None:
            ns["st"] = fast_stats
            ns["st_period"] = fast_stats.occupancy_sample_period
        if ts_obs is not None:
            ns["ts"] = ts_obs
            ns["ts_interval"] = ts_obs.interval
            ns["ts_acc"] = ts_obs._win_acc
            ns["ts_miss"] = ts_obs._win_miss
            ns["ts_ins"] = ts_obs._win_ins
            ns["ts_evi"] = ts_obs._win_evi
            ns["ts_sample"] = ts_obs._sample

        def indent(ind, lines):
            return [ind + line for line in lines]

        def lru_hook_lines(rk, prefix):
            # Inline LRURanking's hook bodies (access-sequence keys are
            # strictly increasing, so maintenance is a bisect-delete plus an
            # append).  When ensure_index() has materialized the
            # most_futile index (FullAssoc consumers), the inline bodies
            # mirror the methods' index upkeep — two dict operations —
            # instead of falling back to a bound-method call.
            ns[prefix] = rk
            ns[prefix + "_key"] = rk._key
            ns[prefix + "_keys"] = rk._keys
            ns[prefix + "_part"] = rk._part
            ns.setdefault("bisect_left", bisect_left)
            key, keys, part_arr = (prefix + "_key", prefix + "_keys",
                                   prefix + "_part")

            return {
                "hit": [
                    "_ks = %s[part]" % keys,
                    "_old = %s[idx]" % key,
                    "del _ks[bisect_left(_ks, _old)]",
                    "_sq = %s._seq + 1" % prefix,
                    "%s._seq = _sq" % prefix,
                    "%s[idx] = _sq" % key,
                    "_ks.append(_sq)",
                    "_io = %s._index_of" % prefix,
                    "if _io is not None:",
                    "    _io = _io[part]",
                    "    del _io[_old]",
                    "    _io[_sq] = idx",
                ],
                "insert": [
                    "_sq = %s._seq + 1" % prefix,
                    "%s._seq = _sq" % prefix,
                    "%s[new_idx] = _sq" % key,
                    "%s[new_idx] = part" % part_arr,
                    "%s[part].append(_sq)" % keys,
                    "_io = %s._index_of" % prefix,
                    "if _io is not None:",
                    "    _io[part][_sq] = new_idx",
                ],
                "evict": [
                    "_ks = %s[vpart]" % keys,
                    "_old = %s[victim]" % key,
                    "del _ks[bisect_left(_ks, _old)]",
                    "_io = %s._index_of" % prefix,
                    "if _io is not None:",
                    "    del _io[vpart][_old]",
                    "%s[victim] = None" % key,
                    "%s[victim] = -1" % part_arr,
                ],
                "move": [
                    "_k = %s[src]" % key,
                    "_pt = %s[src]" % part_arr,
                    "%s[dst] = _k" % key,
                    "%s[dst] = _pt" % part_arr,
                    "_io = %s._index_of" % prefix,
                    "if _io is not None:",
                    "    _io[_pt][_k] = dst",
                    "%s[src] = None" % key,
                    "%s[src] = -1" % part_arr,
                ],
            }

        def coarse_hook_lines(rk, prefix):
            # Inline CoarseTimestampLRURanking's hooks: the tick counter,
            # the 8-bit timestamp stamp and the size accounting are all
            # plain array writes.  (`& 255` == `% TIMESTAMP_MOD`, asserted
            # by the TIMESTAMP_MOD == 256 gate at the call site.)
            ns[prefix + "_ts"] = rk._ts
            ns[prefix + "_part"] = rk._part
            ns[prefix + "_cur"] = rk._cur_ts
            ns[prefix + "_acc"] = rk._acc
            ns[prefix + "_per"] = rk._period
            ns[prefix + "_sizes"] = rk._sizes
            tick = [
                "_ca = %s_acc[part] + 1" % prefix,
                "if _ca >= %s_per[part]:" % prefix,
                "    %s_acc[part] = 0" % prefix,
                "    %s_cur[part] = (%s_cur[part] + 1) & 255" % (prefix, prefix),
                "else:",
                "    %s_acc[part] = _ca" % prefix,
            ]
            return {
                "hit": tick + ["%s_ts[idx] = %s_cur[part]" % (prefix, prefix)],
                "insert": tick + [
                    "%s_ts[new_idx] = %s_cur[part]" % (prefix, prefix),
                    "%s_part[new_idx] = part" % prefix,
                    "%s_sizes[part] += 1" % prefix,
                ],
                "evict": [
                    "%s_sizes[vpart] -= 1" % prefix,
                    "%s_part[victim] = -1" % prefix,
                ],
                "move": [
                    "%s_ts[dst] = %s_ts[src]" % (prefix, prefix),
                    "%s_part[dst] = %s_part[src]" % (prefix, prefix),
                    "%s_part[src] = -1" % prefix,
                ],
            }

        r_seg = {
            "hit": ["r_hit(idx, part, next_use=next_use)"],
            "insert": ["r_ins(new_idx, part, next_use=next_use)"],
            "evict": ["r_evi(victim, vpart)"],
            "move": ["r_move(src, dst)"],
        }
        if type(ranking) is LRURanking:
            r_seg = lru_hook_lines(ranking, "rk")
        elif (type(ranking) is CoarseTimestampLRURanking
              and TIMESTAMP_MOD == 256):
            r_seg = coarse_hook_lines(ranking, "ct")
        ref_seg = {
            "hit": ["ref_hit(idx, part, next_use=next_use)"],
            "insert": ["ref_ins(new_idx, part, next_use=next_use)"],
            "evict": ["ref_evi(victim, vpart)"],
            "move": ["ref_move(src, dst)"],
        }
        if ref_obs is not None and type(reference) is LRURanking:
            ref_seg = lru_hook_lines(reference, "rf")

        def victim_lines(cands_expr):
            # Victim selection over one candidate-list expression: a
            # choose_victim call, or (feedback FS on coarse timestamps) the
            # empty-slot probe plus the Algorithm-2 shift scan inlined.
            # The inline scan mirrors kernels.first_invalid +
            # FeedbackFutilityScalingScheme.choose_victim exactly.
            if not fb_inline:
                return ["    victim = choose(%s, part)" % cands_expr]
            ns["num_lines"] = self.num_lines
            ns["fb_lvl"] = scheme._levels
            return [
                "    _cands = %s" % cands_expr,
                "    victim = -1",
                "    if cache._resident != num_lines:",
                "        for _c in _cands:",
                "            if tag[_c] < 0:",
                "                victim = _c",
                "                break",
                "    if victim < 0:",
                "        _lv = fb_lvl",
                "        victim = _cands[0]",
                "        _p = owner[victim]",
                "        _bf = ((ct_cur[_p] - ct_ts[victim]) & 255) << _lv[_p]",
                "        for _c in _cands[1:]:",
                "            _p = owner[_c]",
                "            _f = ((ct_cur[_p] - ct_ts[_c]) & 255) << _lv[_p]",
                "            if _f > _bf:",
                "                _bf = _f",
                "                victim = _c",
            ]

        if fb_inline:
            ns["fb_ins"] = scheme._ins
            ns["fb_evi"] = scheme._evi
            ns["fb_len"] = scheme.interval_length
            ns["fb_tick"] = scheme._interval_elapsed

        # Candidate generation: set-associative geometries (including
        # direct-mapped) have their index hash inlined into the kernel so a
        # miss pays no candidate-generation calls at all.
        if scheme.uses_candidates:
            inline_sa = (isinstance(array_obj, SetAssociativeArray)
                         and type(array_obj).candidates
                         is SetAssociativeArray.candidates)
            if inline_sa:
                ns["ways"] = array_obj.ways
                hash_obj = array_obj._hash
                if type(hash_obj) is XorFoldHash and hash_obj._bits > 0:
                    ns["set_mask"] = hash_obj.buckets - 1
                    ns["set_bits"] = hash_obj._bits
                    cand = [
                        "    _a = addr",
                        "    _folded = 0",
                        "    while _a:",
                        "        _folded ^= _a & set_mask",
                        "        _a >>= set_bits",
                        "    _base = _folded * ways",
                    ] + victim_lines("range(_base, _base + ways)")
                else:
                    ns["hash_fn"] = hash_obj
                    cand = [
                        "    _base = hash_fn(addr) * ways",
                    ] + victim_lines("range(_base, _base + ways)")
            else:
                ns["get_candidates"] = array_obj.candidates
                cand = victim_lines("get_candidates(addr)")
        else:
            ns["free_slot"] = array_obj.free_slot
            if stype is FullAssocScheme and type(ranking) is LRURanking:
                # FullAssocScheme.choose_victim inlined: the globally most
                # futile line (LRU order head, ks[0] since access-sequence
                # futility is descending) of the most oversized non-empty
                # partition.  bind() has forced ensure_index(), so the
                # key -> line map is maintained by the inline hook bodies.
                cand = [
                    "    victim = free_slot()",
                    "    if victim is None:",
                    "        _tgt = cache.targets",
                    "        _bo = None",
                    "        _bp = -1",
                    "        for _p in range(num_partitions):",
                    "            if actual[_p] == 0:",
                    "                continue",
                    "            _ov = actual[_p] - _tgt[_p]",
                    "            if _bo is None or _ov > _bo:",
                    "                _bo = _ov",
                    "                _bp = _p",
                    "        victim = rk._index_of[_bp][rk_keys[_bp][0]]",
                ]
            else:
                cand = [
                    "    victim = free_slot()",
                    "    if victim is None:",
                    "        victim = choose([], part)",
                ]

        def stats_access(ind, counter):
            # Inlined CacheStats.record_access (counter + periodic
            # occupancy sampling); reset() mutates attributes rather than
            # replacing `st`, so attribute loads stay valid across resets.
            return [
                ind + "st.accesses += 1",
                ind + "st." + counter + "[part] += 1",
                ind + "_n = st._since_occupancy_sample + 1",
                ind + "if _n >= st_period:",
                ind + "    st._since_occupancy_sample = 0",
                ind + "    st._occupancy_samples += 1",
                ind + "    _acc = st._occupancy_sum",
                ind + "    for _p in range(num_partitions):",
                ind + "        _acc[_p] += actual[_p]",
                ind + "else:",
                ind + "    st._since_occupancy_sample = _n",
            ]

        def ts_tick(ind, counter):
            # Inlined TimeSeriesRecorder window accounting: bump the
            # access (and miss) window counters, then sample when the
            # recorder's interval elapses.  reset() zeroes the window
            # lists in place, so the bound lists stay valid.
            head = [ind + "ts_acc[part] += 1"]
            if counter == "miss":
                head.append(ind + "ts_miss[part] += 1")
            return head + [
                ind + "_tn = ts._since + 1",
                ind + "if _tn >= ts_interval:",
                ind + "    ts._since = 0",
                ind + "    ts_sample()",
                ind + "else:",
                ind + "    ts._since = _tn",
            ]

        src = ["def access(addr, part, next_use=None, *, is_write=False):"]
        emit = src.append
        ext = src.extend
        emit("    idx = where_get(addr)")
        emit("    if idx is not None:")
        ext(indent("        ", r_seg["hit"]))
        emit("        if is_write:")
        emit("            dirty[idx] = 1")
        if ref_obs is not None:
            ext(indent("        ", ref_seg["hit"]))
        if fast_stats is not None:
            ext(stats_access("        ", "hits"))
        if ts_obs is not None:
            ext(ts_tick("        ", "hit"))
        if handlers["hit"]:
            emit("        for _h in hit_handlers:")
            emit("            _h(idx, part, next_use)")
        emit("        return True")
        emit("    if addr < 0:")
        emit("        raise ConfigurationError(")
        emit("            'addresses must be non-negative, got %d' % addr)")
        # The retired-partition guard is emitted only while a retired
        # partition exists, so a cache that never sees a lifecycle event
        # compiles byte-identical kernel source (the golden-hash gate).
        if any(self._retired):
            ns["retired"] = self._retired
            emit("    if retired[part]:")
            emit("        raise ConfigurationError(")
            emit("            'partition %d is retired and accepts no "
                 "insertions' % part)")
        if fast_stats is not None:
            ext(stats_access("    ", "misses"))
        if ts_obs is not None:
            ext(ts_tick("    ", "miss"))
        if handlers["miss"]:
            emit("    for _h in miss_handlers:")
            emit("        _h(addr, part)")
        ext(cand)
        emit("    victim_addr = tag[victim]")
        emit("    cache.writeback_pending = False")
        emit("    evicted = victim_addr != -1")
        emit("    if evicted:")
        emit("        vpart = owner[victim]")
        # Exact-LRU reference futility is one bisect and one division;
        # inline it against whichever key arrays hold the reference order
        # (the decision ranking itself when it is exact, the shadow
        # RankingObserver otherwise).
        lru_ref = None
        if reference is not None and type(reference) is LRURanking:
            if reference is ranking:
                lru_ref = "rk"
            elif ref_obs is not None:
                lru_ref = "rf"
        if lru_ref is not None:
            emit("        _ks = %s_keys[vpart]" % lru_ref)
            emit("        _sz = len(_ks)")
            emit("        fut = (_sz - bisect_left(_ks, %s_key[victim]))"
                 " / _sz" % lru_ref)
        elif reference is not None:
            emit("        fut = ref_fut(victim)")
        emit("        was_dirty = dirty[victim]")
        emit("        if was_dirty:")
        emit("            dirty[victim] = 0")
        emit("            cache.writeback_pending = True")
        ext(indent("        ", r_seg["evict"]))
        if fb_inline:
            emit("        # Before the size decrement: the interval check")
            emit("        # reads the pre-eviction actual_sizes (Algorithm 2).")
            emit("        _cnt = fb_evi[vpart] + 1")
            emit("        fb_evi[vpart] = _cnt")
            emit("        if _cnt >= fb_len:")
            emit("            fb_tick(vpart)")
        elif "s_evi" in ns:
            emit("        # Before the size decrement: feedback schemes read")
            emit("        # the pre-eviction actual_sizes (Algorithm 2).")
            emit("        s_evi(victim, vpart)")
        emit("        owner[victim] = -1")
        emit("        actual[vpart] -= 1")
        emit("        cache._resident -= 1")
        if simple:
            emit("        del where[victim_addr]")
            emit("        tag[victim] = -1")
        elif fa_inline:
            emit("        del where[victim_addr]")
            emit("        tag[victim] = -1")
            emit("        a_free.append(victim)")
        else:
            emit("        a_evict(victim)")
        if ref_obs is not None:
            ext(indent("        ", ref_seg["evict"]))
        if fast_stats is not None:
            emit("        st.evictions[vpart] += 1")
            if fast_stats.track_eviction_futility and reference is not None:
                emit("        st.eviction_futilities[vpart].append(fut)")
            emit("        if was_dirty:")
            emit("            st.writebacks[vpart] += 1")
        if ts_obs is not None:
            emit("        ts_evi[vpart] += 1")
        if handlers["evict"]:
            fut_expr = "fut" if reference is not None else "None"
            emit("        for _h in evict_handlers:")
            emit("            _h(victim, vpart, %s, was_dirty)" % fut_expr)
        if simple:
            emit("    tag[victim] = addr")
            emit("    where[addr] = victim")
            emit("    new_idx = victim")
        elif fa_inline:
            emit("    tag[victim] = addr")
            emit("    where[addr] = victim")
            emit("    if a_free and a_free[-1] == victim:")
            emit("        a_free.pop()")
            emit("    elif victim in a_free:")
            emit("        a_free.remove(victim)")
            emit("    new_idx = victim")
        else:
            emit("    moves = a_place(addr, victim)")
            emit("    if moves:")
            emit("        for src, dst in moves:")
            emit("            owner[dst] = owner[src]")
            emit("            owner[src] = -1")
            emit("            dirty[dst] = dirty[src]")
            emit("            dirty[src] = 0")
            ext(indent("            ", r_seg["move"]))
            if "s_move" in ns:
                emit("            s_move(src, dst)")
            if ref_obs is not None:
                ext(indent("            ", ref_seg["move"]))
            if handlers["relocate"]:
                emit("            for _h in relocate_handlers:")
                emit("                _h(src, dst)")
            emit("        new_idx = where_get(addr)")
            emit("    else:")
            emit("        new_idx = victim")
        emit("    owner[new_idx] = part")
        emit("    actual[part] += 1")
        emit("    cache._resident += 1")
        emit("    dirty[new_idx] = 1 if is_write else 0")
        ext(indent("    ", r_seg["insert"]))
        if fb_inline:
            emit("    _cnt = fb_ins[part] + 1")
            emit("    fb_ins[part] = _cnt")
            emit("    if _cnt >= fb_len:")
            emit("        fb_tick(part)")
        elif "s_ins" in ns:
            emit("    s_ins(new_idx, part)")
        if ref_obs is not None:
            ext(indent("    ", ref_seg["insert"]))
        if fast_stats is not None:
            emit("    st.insertions[part] += 1")
            if fast_stats.deviation_partitions:
                emit("    if evicted:")
                emit("        _tgt = cache.targets")
                emit("        for _p, _buf in st.size_deviations.items():")
                emit("            _buf.append(actual[_p] - _tgt[_p])")
        if ts_obs is not None:
            emit("    ts_ins[part] += 1")
        if handlers["insert"]:
            emit("    for _h in insert_handlers:")
            emit("        _h(new_idx, part, next_use, evicted)")
        emit("    return False")

        code = "\n".join(src)
        exec(compile(code, "<access-kernel>", "exec"), ns)
        kernel = ns["access"]
        kernel.__kernel_source__ = code
        return kernel

    def invalidate_index(self, idx: int) -> None:
        """Forcibly invalidate the line at ``idx`` (placement-scheme flush).

        Published as a ``flush`` event, not an eviction, so it does not
        pollute the associativity statistics.
        """
        if self.lines.tag[idx] == INVALID:
            return
        part = self.owner[idx]
        was_dirty = self._dirty[idx]
        if was_dirty:
            self._dirty[idx] = 0
        self.ranking.on_evict(idx, part)
        self.owner[idx] = -1
        self.actual_sizes[part] -= 1
        self._resident -= 1
        self.array.evict(idx)
        for h in self.events.flush:
            h(idx, part, was_dirty)

    # -- pickling (the compiled kernel is rebuilt, not serialized) -------------
    def __getstate__(self):
        state = self.__dict__.copy()
        state.pop("access", None)
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._rebuild_kernel()

    # -- invariant checking (used heavily by the test suite) -------------------
    def check_invariants(self) -> None:
        """Verify internal consistency; raises ``AssertionError`` on breakage."""
        resident = 0
        sizes = [0] * self.num_partitions
        for idx in range(self.num_lines):
            addr = self.array.addr_at(idx)
            if addr == INVALID:
                assert self.owner[idx] == -1, f"empty slot {idx} has an owner"
                continue
            resident += 1
            p = self.owner[idx]
            assert 0 <= p < self.num_partitions, f"slot {idx} owner {p} invalid"
            sizes[p] += 1
            assert self.array.lookup(addr) == idx, f"lookup broken at {idx}"
        assert sizes == self.actual_sizes, (
            f"occupancy accounting drifted: {sizes} != {self.actual_sizes}")
        assert resident == self.array.resident_count()
        assert resident == self._resident, (
            f"resident counter drifted: {self._resident} != {resident}")
        for p in range(self.num_partitions):
            assert self.ranking.partition_size(p) == sizes[p], (
                f"ranking size mismatch for partition {p}")
            if self._separate_reference:
                assert self.reference.partition_size(p) == sizes[p]
            if self._retired[p]:
                assert self.targets[p] == 0, (
                    f"retired partition {p} has non-zero target")

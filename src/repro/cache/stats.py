"""Per-partition cache statistics.

Collects exactly the measurements the paper's evaluation reports:

* hit/miss/insertion/eviction counts (per partition) — Fig. 2b, I_i / E_i;
* eviction futility samples — associativity distributions and AEF
  (Figs. 2a, 4, 7b);
* size deviation samples at every eviction — sizing distributions and MAD
  (Fig. 5);
* periodically sampled occupancy — average occupancy (Fig. 7a).

Futility samples are stored in compact ``array('f')`` buffers; deviation
tracking is opt-in per partition because Fig. 5-style sampling at every
eviction is expensive at 32 partitions.

:class:`CacheStats` is a :class:`~repro.cache.events.CacheObserver`: the
cache no longer calls ``record_*`` from its access kernel but publishes
typed events that the stats object subscribes to (after :meth:`attach`
binds it to the cache whose occupancies it samples).  The ``record_*``
methods remain the public recording API — the observer handlers are thin
adapters over them — so standalone use in tests keeps working.
"""

from __future__ import annotations

from array import array
from typing import Dict, Iterable, List, Optional, Sequence

from ..errors import ConfigurationError
from .events import CacheObserver

__all__ = ["CacheStats"]


class CacheStats(CacheObserver):
    """Counters and sample buffers for a partitioned cache."""

    def __init__(self, num_partitions: int, *,
                 track_eviction_futility: bool = True,
                 deviation_partitions: Iterable[int] = (),
                 occupancy_sample_period: int = 64) -> None:
        if num_partitions <= 0:
            raise ConfigurationError("num_partitions must be positive")
        if occupancy_sample_period <= 0:
            raise ConfigurationError("occupancy_sample_period must be positive")
        self.num_partitions = num_partitions
        self.track_eviction_futility = bool(track_eviction_futility)
        self.deviation_partitions = tuple(sorted(set(deviation_partitions)))
        for p in self.deviation_partitions:
            if not 0 <= p < num_partitions:
                raise ConfigurationError(f"deviation partition {p} out of range")
        self.occupancy_sample_period = int(occupancy_sample_period)
        self._cache = None
        self.reset()

    # -- observer wiring -----------------------------------------------------
    def attach(self, cache) -> "CacheStats":
        """Bind to the cache whose occupancy/targets the samples read.

        Must be called before subscribing to the cache's event bus; returns
        ``self`` for chaining.
        """
        self._cache = cache
        return self

    def on_cache_hit(self, idx: int, part: int,
                     next_use: Optional[int]) -> None:
        self.record_access(part, True, self._cache.actual_sizes)

    def on_cache_miss(self, addr: int, part: int) -> None:
        self.record_access(part, False, self._cache.actual_sizes)

    def on_cache_evict(self, idx: int, part: int,
                       futility: Optional[float], dirty: int) -> None:
        self.record_eviction(part, futility)
        if dirty:
            self.record_writeback(part)

    def on_cache_insert(self, idx: int, part: int, next_use: Optional[int],
                        evicted: bool) -> None:
        self.record_insertion(part)
        if evicted and self.size_deviations:
            cache = self._cache
            self.record_deviations(cache.actual_sizes, cache.targets)

    def on_cache_flush(self, idx: int, part: int, dirty: int) -> None:
        if dirty:
            self.record_writeback(part)
        self.record_flush()

    def add_partition(self) -> int:
        """Grow every per-partition counter/buffer by one zeroed slot.

        Part of the cache's partition control plane (tenant arrival).  The
        lists are extended in place — the compiled access kernel binds them
        by identity — and history is preserved: a reused partition slot is
        the caller's concern (snapshot deltas around lifecycle events).
        """
        part = self.num_partitions
        self.num_partitions = part + 1
        self.hits.append(0)
        self.misses.append(0)
        self.insertions.append(0)
        self.evictions.append(0)
        self.writebacks.append(0)
        if self.eviction_futilities is not None:
            self.eviction_futilities.append(array("f"))
        self._occupancy_sum.append(0)
        return part

    def reset(self) -> None:
        """Zero all counters and clear all sample buffers."""
        n = self.num_partitions
        self.accesses = 0
        self.hits: List[int] = [0] * n
        self.misses: List[int] = [0] * n
        self.insertions: List[int] = [0] * n
        self.evictions: List[int] = [0] * n
        self.writebacks: List[int] = [0] * n
        self.flushes = 0
        self.eviction_futilities: Optional[List[array]] = (
            [array("f") for _ in range(n)] if self.track_eviction_futility
            else None)
        self.size_deviations: Dict[int, array] = {
            p: array("l") for p in self.deviation_partitions}
        self._occupancy_sum: List[int] = [0] * n
        self._occupancy_samples = 0
        self._since_occupancy_sample = 0

    # -- recording (called by the cache hot path) ---------------------------
    def record_access(self, part: int, hit: bool,
                      actual_sizes: Sequence[int]) -> None:
        """Count one access (and periodically sample occupancies)."""
        self.accesses += 1
        if hit:
            self.hits[part] += 1
        else:
            self.misses[part] += 1
        self._since_occupancy_sample += 1
        if self._since_occupancy_sample >= self.occupancy_sample_period:
            self._since_occupancy_sample = 0
            self._occupancy_samples += 1
            acc = self._occupancy_sum
            for p in range(self.num_partitions):
                acc[p] += actual_sizes[p]

    def record_eviction(self, part: int, futility: Optional[float]) -> None:
        """Count an eviction from ``part`` with its normalized futility."""
        self.evictions[part] += 1
        if futility is not None and self.eviction_futilities is not None:
            self.eviction_futilities[part].append(futility)

    def record_insertion(self, part: int) -> None:
        """Count a line fill into ``part``."""
        self.insertions[part] += 1

    def record_writeback(self, part: int) -> None:
        """Count a dirty-line writeback attributed to ``part``."""
        self.writebacks[part] += 1

    def record_deviations(self, actual_sizes: Sequence[int],
                          targets: Sequence[int]) -> None:
        """Sample ``actual - target`` for every tracked partition."""
        for p, buf in self.size_deviations.items():
            buf.append(actual_sizes[p] - targets[p])

    def record_flush(self) -> None:
        """Count a forced invalidation (placement-scheme resize cost)."""
        self.flushes += 1

    # -- derived metrics -----------------------------------------------------
    def total_hits(self) -> int:
        """Hits summed over partitions."""
        return sum(self.hits)

    def total_misses(self) -> int:
        """Misses summed over partitions."""
        return sum(self.misses)

    def hit_rate(self, part: Optional[int] = None) -> float:
        """Hit fraction for one partition (or overall)."""
        if part is None:
            total = self.total_hits() + self.total_misses()
            return self.total_hits() / total if total else 0.0
        total = self.hits[part] + self.misses[part]
        return self.hits[part] / total if total else 0.0

    def miss_rate(self, part: Optional[int] = None) -> float:
        """Miss fraction for one partition (or overall)."""
        total = ((self.hits[part] + self.misses[part]) if part is not None
                 else self.total_hits() + self.total_misses())
        misses = self.misses[part] if part is not None else self.total_misses()
        return misses / total if total else 0.0

    def insertion_fractions(self) -> List[float]:
        """Measured I_i — each partition's share of total insertions."""
        total = sum(self.insertions)
        if total == 0:
            return [0.0] * self.num_partitions
        return [i / total for i in self.insertions]

    def eviction_fractions(self) -> List[float]:
        """Measured E_i — each partition's share of total evictions."""
        total = sum(self.evictions)
        if total == 0:
            return [0.0] * self.num_partitions
        return [e / total for e in self.evictions]

    def aef(self, part: int) -> float:
        """Average Eviction Futility of ``part`` (NaN when unobserved)."""
        if self.eviction_futilities is None:
            raise ConfigurationError("eviction futility tracking is disabled")
        buf = self.eviction_futilities[part]
        if not buf:
            return float("nan")
        return sum(buf) / len(buf)

    def eviction_futility_samples(self, part: int) -> array:
        """Raw eviction-futility sample buffer of ``part``."""
        if self.eviction_futilities is None:
            raise ConfigurationError("eviction futility tracking is disabled")
        return self.eviction_futilities[part]

    def mean_occupancy(self, part: int) -> float:
        """Time-averaged occupancy (lines) of ``part``."""
        if self._occupancy_samples == 0:
            return float("nan")
        return self._occupancy_sum[part] / self._occupancy_samples

    def deviation_samples(self, part: int) -> array:
        """Size-deviation samples of ``part`` (must be tracked)."""
        try:
            return self.size_deviations[part]
        except KeyError:
            raise ConfigurationError(
                f"size-deviation tracking was not enabled for partition {part}")

    def summary(self) -> Dict[str, object]:
        """A plain-dict snapshot convenient for reports and tests."""
        out: Dict[str, object] = {
            "accesses": self.accesses,
            "hits": list(self.hits),
            "misses": list(self.misses),
            "insertions": list(self.insertions),
            "evictions": list(self.evictions),
            "writebacks": list(self.writebacks),
            "flushes": self.flushes,
            "hit_rate": self.hit_rate(),
        }
        if self.eviction_futilities is not None:
            out["aef"] = [self.aef(p) if self.eviction_futilities[p] else None
                          for p in range(self.num_partitions)]
        return out

"""Struct-of-arrays per-line metadata (the ``LineTable``).

Historically every per-line attribute lived in its own Python container
scattered across layers: the array kept ``_slots`` (a list of resident
addresses) and ``_where`` (the reverse map), while the cache kept parallel
``owner`` and ``_dirty`` sequences.  The :class:`LineTable` gathers them
into one struct-of-arrays record shared by :class:`~repro.cache.arrays
.CacheArray` and :class:`~repro.cache.cache.PartitionedCache`:

* ``tag`` — ``array('q')``, resident address per line index (``INVALID``
  when empty).  Addresses are line numbers, well inside int64.
* ``owner`` — ``array('i')``, owning partition id (``-1`` when empty).
* ``dirty`` — ``bytearray``, one dirty bit per line.
* ``where`` — dict mapping resident address -> line index (the associative
  lookup; a hash map stands in for the tag comparators of real hardware).

Flat typed arrays keep the per-line state in three contiguous buffers
instead of ~``num_lines`` boxed ints per attribute, which both shrinks the
footprint and keeps the access kernel's inner loops on C-backed
``__getitem__``/``__setitem__`` paths.  The table is deliberately dumb —
no methods beyond construction and ``clear`` — so every layer indexes it
directly without dispatch overhead.
"""

from __future__ import annotations

from array import array
from typing import Dict

from ..errors import ConfigurationError

__all__ = ["INVALID", "LineTable"]

#: Sentinel for "no resident address" in ``tag`` (and "no owner" in
#: ``owner``).  Kept identical to the historical arrays-module constant.
INVALID = -1


class LineTable:
    """Struct-of-arrays metadata for ``num_lines`` cache lines."""

    __slots__ = ("num_lines", "tag", "owner", "dirty", "where")

    def __init__(self, num_lines: int) -> None:
        if num_lines <= 0:
            raise ConfigurationError(
                f"num_lines must be positive, got {num_lines}")
        self.num_lines = int(num_lines)
        self.tag = array("q", [INVALID]) * self.num_lines
        self.owner = array("i", [INVALID]) * self.num_lines
        self.dirty = bytearray(self.num_lines)
        self.where: Dict[int, int] = {}

    def resident_count(self) -> int:
        """Number of valid (occupied) lines."""
        return len(self.where)

    def clear(self) -> None:
        """Empty every line (all metadata reset in place, aliases stay valid)."""
        for i in range(self.num_lines):
            self.tag[i] = INVALID
            self.owner[i] = INVALID
        self.dirty[:] = bytes(self.num_lines)
        self.where.clear()

"""Shared geometry validation for cache arrays."""

from __future__ import annotations

from ..errors import ConfigurationError

__all__ = ["check_geometry"]


def check_geometry(num_lines: int, ways: int) -> int:
    """Validate an array geometry and return the number of sets.

    ``num_lines`` must be a positive multiple of ``ways`` and the resulting
    set count must be a power of two (required by the bit-mixing index
    hashes used throughout).
    """
    if num_lines <= 0:
        raise ConfigurationError(f"num_lines must be positive, got {num_lines}")
    if ways <= 0:
        raise ConfigurationError(f"ways must be positive, got {ways}")
    if num_lines % ways != 0:
        raise ConfigurationError(
            f"num_lines {num_lines} is not a multiple of ways {ways}")
    num_sets = num_lines // ways
    if num_sets & (num_sets - 1):
        raise ConfigurationError(
            f"number of sets must be a power of two, got {num_sets}")
    return num_sets

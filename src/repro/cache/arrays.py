"""Cache array organizations.

The paper's cache model (Section III-A) separates three concerns: the
*cache array* (associative lookup + a list of replacement candidates per
eviction), the *futility ranking*, and the *replacement policy*.  This
module implements the arrays:

* :class:`SetAssociativeArray` — the evaluated L2 (16-way, XOR indexing).
* :class:`DirectMappedArray` — 1-way special case (Fig. 6 baseline).
* :class:`FullyAssociativeArray` — every line is a candidate (Fig. 6 and the
  FullAssoc ideal scheme).
* :class:`RandomCandidatesArray` — R independent uniform candidates; the
  array that *exactly* satisfies the Uniformity Assumption and is used for
  the paper's analytical-property experiments (Figs. 4 and 5).
* :class:`SkewAssociativeArray` — one hash per way [18].
* :class:`ZCacheArray` — zcache [17]: a candidate walk over alternative
  locations plus block relocation on insert, giving R > W candidates with
  only W ways.

All arrays store *line addresses* (ints) in a shared struct-of-arrays
:class:`~repro.cache.linetable.LineTable`; the owning
:class:`~repro.cache.cache.PartitionedCache` adopts the *same* table for
its per-line metadata (owner partition, dirty bits), so there is exactly
one record of per-line state.  Arrays that relocate resident blocks report
the moves so the cache can keep metadata consistent.

A ``place`` call returns the list of ``(src_idx, dst_idx)`` relocations it
performed (empty for all arrays except the zcache).
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import ConfigurationError
from ._util_arrays import check_geometry
from .hashing import H3Hash, IndexHash, make_hash
from .linetable import INVALID, LineTable

__all__ = [
    "CacheArray",
    "SetAssociativeArray",
    "DirectMappedArray",
    "FullyAssociativeArray",
    "RandomCandidatesArray",
    "SkewAssociativeArray",
    "ZCacheArray",
]


class CacheArray:
    """Base class: associative lookup plus replacement-candidate generation.

    Subclasses must set ``num_lines`` and ``candidate_count`` (the nominal
    number of replacement candidates R provided on an eviction).  Per-line
    state lives in :attr:`lines`, a :class:`LineTable`; ``_slots`` and
    ``_where`` are aliases of its ``tag`` array and ``where`` map.
    """

    def __init__(self, num_lines: int, candidate_count: int) -> None:
        if num_lines <= 0:
            raise ConfigurationError(f"num_lines must be positive, got {num_lines}")
        if candidate_count <= 0:
            raise ConfigurationError(
                f"candidate_count must be positive, got {candidate_count}")
        self.num_lines = int(num_lines)
        self.candidate_count = int(candidate_count)
        #: Struct-of-arrays per-line metadata, shared with the owning cache.
        self.lines = LineTable(self.num_lines)
        self._slots = self.lines.tag
        self._where = self.lines.where

    # -- lookup ----------------------------------------------------------
    def lookup(self, addr: int) -> Optional[int]:
        """Return the line index holding ``addr``, or ``None`` on a miss."""
        return self._where.get(addr)

    def addr_at(self, idx: int) -> int:
        """Resident address at ``idx`` (``INVALID`` if the slot is empty)."""
        return self._slots[idx]

    def resident_count(self) -> int:
        """Number of valid (occupied) lines."""
        return len(self._where)

    # -- replacement -----------------------------------------------------
    def candidates(self, addr: int) -> Sequence[int]:
        """Replacement candidate line indices for an insertion of ``addr``."""
        raise NotImplementedError

    def evict(self, idx: int) -> int:
        """Invalidate the line at ``idx``; returns the evicted address."""
        old = self._slots[idx]
        if old != INVALID:
            del self._where[old]
            self._slots[idx] = INVALID
        return old

    def place(self, addr: int, idx: int) -> List[Tuple[int, int]]:
        """Install ``addr`` at the (empty) slot ``idx``.

        Returns the block relocations performed, as ``(src, dst)`` line-index
        pairs, in the order they were applied.  Non-relocating arrays return
        an empty list.
        """
        if self._slots[idx] != INVALID:
            raise ConfigurationError(
                f"place() target slot {idx} is occupied; evict first")
        self._slots[idx] = addr
        self._where[addr] = idx
        return []


class SetAssociativeArray(CacheArray):
    """A ``ways``-way set-associative array.

    Candidates on an eviction are the ``ways`` lines of the indexed set, so
    R = ways.  The index hash defaults to XOR-based indexing as in the
    paper's simulated L2 (Table II); pass ``hash_kind='h3'`` or
    ``'identity'`` for the ablations.
    """

    def __init__(self, num_lines: int, ways: int, *,
                 hash_kind: str = "xor", hash_seed: int = 0) -> None:
        num_sets = check_geometry(num_lines, ways)
        super().__init__(num_lines, candidate_count=ways)
        self.ways = int(ways)
        self.num_sets = num_sets
        self._hash: IndexHash = make_hash(hash_kind, num_sets, seed=hash_seed)

    def set_of(self, addr: int) -> int:
        """Set index ``addr`` maps to."""
        return self._hash(addr)

    def candidates(self, addr: int) -> Sequence[int]:
        # A range object: candidate lists are consumed by index-array
        # kernels that only iterate, so there is no reason to materialize.
        base = self._hash(addr) * self.ways
        return range(base, base + self.ways)


class DirectMappedArray(SetAssociativeArray):
    """A direct-mapped array: one candidate per eviction (worst case)."""

    def __init__(self, num_lines: int, *, hash_kind: str = "xor",
                 hash_seed: int = 0) -> None:
        super().__init__(num_lines, ways=1, hash_kind=hash_kind,
                         hash_seed=hash_seed)


class FullyAssociativeArray(CacheArray):
    """Every resident line is a replacement candidate (R = num_lines).

    ``candidates`` is O(num_lines); schemes designed for this array (the
    FullAssoc ideal) pick victims from their own per-partition order
    statistics instead of scanning.
    """

    def __init__(self, num_lines: int) -> None:
        super().__init__(num_lines, candidate_count=num_lines)
        self._free: List[int] = list(range(num_lines - 1, -1, -1))

    def free_slot(self) -> Optional[int]:
        """An arbitrary empty slot, or ``None`` when the array is full."""
        return self._free[-1] if self._free else None

    def candidates(self, addr: int) -> List[int]:
        if self._free:
            return [self._free[-1]]
        return list(range(self.num_lines))

    def evict(self, idx: int) -> int:
        old = super().evict(idx)
        if old != INVALID:
            self._free.append(idx)
        return old

    def place(self, addr: int, idx: int) -> List[Tuple[int, int]]:
        moves = super().place(addr, idx)
        if self._free and self._free[-1] == idx:
            self._free.pop()
        elif idx in self._free:          # pragma: no cover - defensive
            self._free.remove(idx)
        return moves


class RandomCandidatesArray(CacheArray):
    """R candidates drawn independently and uniformly over all lines.

    This array realizes the paper's Uniformity Assumption *exactly* and is
    what Section IV's experiments run on ("a 2MB random candidates cache").
    Any line may hold any address.
    """

    def __init__(self, num_lines: int, candidate_count: int, *,
                 seed: int = 0) -> None:
        if candidate_count > num_lines:
            raise ConfigurationError(
                f"candidate_count {candidate_count} exceeds num_lines {num_lines}")
        super().__init__(num_lines, candidate_count)
        self._rng = random.Random(seed)
        # randrange(n) resolves to _randbelow_with_getrandbits: draw
        # n.bit_length() bits, reject draws >= n.  candidates() inlines that
        # loop (same RNG call sequence, so historical streams replay
        # byte-identically) to skip the per-draw wrapper overhead;
        # tests/cache/test_arrays.py pins the sequence against randrange.
        self._draw_bits = self.num_lines.bit_length()

    def candidates(self, addr: int) -> List[int]:
        getrandbits = self._rng.getrandbits
        n = self.num_lines
        k = self._draw_bits
        want = self.candidate_count
        picked: List[int] = []
        append = picked.append
        seen: set = set()
        add = seen.add
        while len(picked) < want:
            idx = getrandbits(k)
            while idx >= n:
                idx = getrandbits(k)
            if idx not in seen:
                add(idx)
                append(idx)
        return picked


class SkewAssociativeArray(CacheArray):
    """Skew-associative cache [18]: one H3 hash per way, R = ways."""

    def __init__(self, num_lines: int, ways: int, *, hash_seed: int = 0) -> None:
        num_sets = check_geometry(num_lines, ways)
        super().__init__(num_lines, candidate_count=ways)
        self.ways = int(ways)
        self.num_sets = num_sets
        self._hashes = [H3Hash(num_sets, seed=hash_seed + 7919 * w)
                        for w in range(ways)]

    def _slot_for(self, addr: int, way: int) -> int:
        return way * self.num_sets + self._hashes[way](addr)

    def candidates(self, addr: int) -> List[int]:
        return [self._slot_for(addr, w) for w in range(self.ways)]


class ZCacheArray(CacheArray):
    """zcache [17]: W ways but R > W replacement candidates via a walk.

    On a miss the first-level candidates are the W slots ``addr`` hashes to.
    Each resident candidate block can itself move to its W-1 alternative
    slots; walking this relocation graph breadth-first yields further
    candidates until ``candidate_count`` slots have been collected.  When a
    victim deeper than the first level is chosen, the blocks along the path
    from the victim back to a first-level slot are relocated so the incoming
    address lands at a slot it hashes to.

    ``place`` reports those relocations so the owning cache can move per-line
    metadata along with the blocks.
    """

    def __init__(self, num_lines: int, ways: int, candidate_count: int, *,
                 hash_seed: int = 0) -> None:
        num_sets = check_geometry(num_lines, ways)
        if candidate_count < ways:
            raise ConfigurationError(
                f"candidate_count {candidate_count} must be >= ways {ways}")
        super().__init__(num_lines, candidate_count)
        self.ways = int(ways)
        self.num_sets = num_sets
        self._hashes = [H3Hash(num_sets, seed=hash_seed + 104729 * w)
                        for w in range(ways)]
        # Walk state from the most recent candidates() call, consumed by the
        # next place() for the same address.
        self._walk_parent: Dict[int, int] = {}
        self._walk_addr: Optional[int] = None

    def _slot_for(self, addr: int, way: int) -> int:
        return way * self.num_sets + self._hashes[way](addr)

    def _slots_for(self, addr: int) -> List[int]:
        return [self._slot_for(addr, w) for w in range(self.ways)]

    def candidates(self, addr: int) -> List[int]:
        parent: Dict[int, int] = {}
        frontier: List[int] = []
        ordered: List[int] = []
        for slot in self._slots_for(addr):
            if slot not in parent:
                parent[slot] = -1  # first level: reachable by the new address
                frontier.append(slot)
                ordered.append(slot)
        i = 0
        while i < len(frontier) and len(ordered) < self.candidate_count:
            slot = frontier[i]
            i += 1
            resident = self._slots[slot]
            if resident == INVALID:
                continue
            for alt in self._slots_for(resident):
                if alt not in parent:
                    parent[alt] = slot
                    frontier.append(alt)
                    ordered.append(alt)
                    if len(ordered) >= self.candidate_count:
                        break
        self._walk_parent = parent
        self._walk_addr = addr
        return ordered

    def place(self, addr: int, idx: int) -> List[Tuple[int, int]]:
        if self._walk_addr != addr or idx not in self._walk_parent:
            # Direct placement without a walk (e.g. warm-up fills): only legal
            # in a first-level slot.
            if idx not in self._slots_for(addr):
                raise ConfigurationError(
                    f"slot {idx} is not reachable for address {addr}")
            return super().place(addr, idx)
        moves: List[Tuple[int, int]] = []
        slot = idx
        while self._walk_parent[slot] != -1:
            src = self._walk_parent[slot]
            moving = self._slots[src]
            # Relocate the parent block down into the freed slot.
            self._slots[slot] = moving
            self._where[moving] = slot
            self._slots[src] = INVALID
            moves.append((src, slot))
            slot = src
        self._slots[slot] = addr
        self._where[addr] = slot
        self._walk_parent = {}
        self._walk_addr = None
        return moves

"""Queue-status CLI: what is the worker fleet doing right now?

::

    python -m repro.store status --store sqlite:results/cache.db
    python -m repro.store status --store local:results/cache --queue fig3 -v

For each work queue in the store, prints the item counts by status and
then the interesting items: who holds each ``claimed`` lease and how
long until it expires (negative = expired, stealable), which items have
been lost/renewed and how often, and the recorded error of every
``failed`` item.  ``--verbose`` lists every item.

This is a *read-only* inspection tool — it never claims, resets, or
otherwise mutates the queue — safe to point at a live sweep from a
second terminal.

Wall-clock note: time-to-expiry compares stored lease deadlines (which
are ``time.time()`` values by protocol, see :mod:`repro.store.queue`)
against the current wall clock.  Display only; nothing feeds back into
results.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Any, Dict, List, Optional, Sequence

from ..errors import ConfigurationError
from .base import ExperimentStore, open_store
from .queue import STATUSES, ItemState, WorkQueue

__all__ = ["main", "queue_status_data", "render_queue_status"]


def _format_lease(state: ItemState, now: float) -> str:
    if state.status != "claimed":
        return ""
    remaining = state.lease_expires - now
    holder = state.worker or "<unknown>"
    if remaining >= 0:
        return f"worker={holder} lease expires in {remaining:.1f}s"
    return f"worker={holder} lease EXPIRED {-remaining:.1f}s ago (stealable)"


def _describe(item_id: int, state: ItemState, label: str,
              now: float) -> str:
    parts = [f"#{item_id:04d} {label}  [{state.status}]"]
    lease = _format_lease(state, now)
    if lease:
        parts.append(lease)
    counters = []
    if state.attempts:
        counters.append(f"attempts={state.attempts}")
    if state.losses:
        counters.append(f"losses={state.losses}")
    if state.renewals:
        counters.append(f"renewals={state.renewals}")
    if counters:
        parts.append(" ".join(counters))
    if state.status == "failed" and state.error_type:
        parts.append(f"{state.error_type}: {state.message}")
    if state.status == "done" and state.elapsed:
        parts.append(f"elapsed={state.elapsed:.3f}s")
    return "  ".join(parts)


def render_queue_status(store: ExperimentStore, name: str, *,
                        now: Optional[float] = None,
                        verbose: bool = False) -> List[str]:
    """Status lines for one queue (``now`` injectable for tests)."""
    queue: WorkQueue = store.make_queue(name)
    snapshot = queue.snapshot()
    if now is None:
        now = time.time()
    counts = {status: 0 for status in STATUSES}
    for state in snapshot.values():
        counts[state.status] = counts.get(state.status, 0) + 1
    lines = [f"queue {name!r} @ {store.url}"]
    lines.append("  " + "  ".join(f"{status}={counts.get(status, 0)}"
                                  for status in STATUSES)
                 + f"  ({len(snapshot)} items)")
    for item_id in sorted(snapshot):
        state = snapshot[item_id]
        interesting = (state.status in ("claimed", "failed")
                       or state.losses or state.renewals)
        if not (verbose or interesting):
            continue
        item = queue.peek(item_id)
        label = item.label if item is not None else "<missing item>"
        lines.append("  " + _describe(item_id, state, label, now))
    return lines


def queue_status_data(store: ExperimentStore, name: str, *,
                      now: Optional[float] = None) -> Dict[str, Any]:
    """One queue's status as a JSON-serializable dict (``--json``).

    The machine-readable twin of :func:`render_queue_status`, so CI
    scripts assert on fields instead of scraping the text output.
    """
    queue: WorkQueue = store.make_queue(name)
    snapshot = queue.snapshot()
    if now is None:
        now = time.time()
    counts = {status: 0 for status in STATUSES}
    items = []
    for item_id in sorted(snapshot):
        state = snapshot[item_id]
        counts[state.status] = counts.get(state.status, 0) + 1
        item = queue.peek(item_id)
        entry: Dict[str, Any] = {
            "item_id": item_id,
            "label": item.label if item is not None else None,
            "status": state.status,
            "attempts": state.attempts,
            "losses": state.losses,
            "renewals": state.renewals,
        }
        if state.status == "claimed":
            entry["worker"] = state.worker
            entry["lease_remaining_s"] = state.lease_expires - now
        if state.status == "failed":
            entry["error_type"] = state.error_type
            entry["message"] = state.message
        if state.status == "done":
            entry["elapsed_s"] = state.elapsed
        items.append(entry)
    return {"queue": name, "store": store.url, "counts": counts,
            "items": items}


def _cmd_status(args: argparse.Namespace) -> int:
    store = open_store(args.store)
    try:
        names = store.queues()
        if args.queue is not None:
            if args.queue not in names:
                print(f"no queue named {args.queue!r} in {store.url} "
                      f"(found: {names or 'none'})", file=sys.stderr)
                return 1
            names = [args.queue]
        if args.json:
            payload = [queue_status_data(store, name) for name in names]
            print(json.dumps(payload, indent=2, sort_keys=True))
            return 0
        if not names:
            print(f"no work queues in {store.url}")
            return 0
        for i, name in enumerate(names):
            if i:
                print()
            for line in render_queue_status(store, name,
                                            verbose=args.verbose):
                print(line)
        return 0
    finally:
        store.close()


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.store",
        description="Inspect experiment stores and their work queues.")
    sub = parser.add_subparsers(dest="command", required=True)
    status = sub.add_parser(
        "status", help="show queue counts, lease holders, losses")
    status.add_argument("--store", required=True,
                        help="store URL (local:PATH or sqlite:PATH)")
    status.add_argument("--queue", default=None,
                        help="only this queue (default: every queue)")
    status.add_argument("-v", "--verbose", action="store_true",
                        help="list every item, not just the interesting ones")
    status.add_argument("--json", action="store_true",
                        help="emit machine-readable JSON instead of text")
    status.set_defaults(func=_cmd_status)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return int(args.func(args))
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())

"""Single-file SQLite store backend, safe for concurrent workers.

``sqlite:PATH`` keeps every entry (and the work queue, and quarantined
corruption evidence) in one database file.  The connection runs in WAL
journal mode with a generous busy timeout, so many independent worker
processes — each with its own connection — can claim queue items and
persist results concurrently without corrupting each other; SQLite's
own locking serializes the writes.

Entries store the exact same checksummed v2 blob as the local backend
(:func:`repro.store.base.encode_entry`), so validation, quarantine
semantics and sweep output are byte-identical across backends.  A
corrupt entry moves to the ``quarantine`` table instead of a
``.corrupt`` sidecar file.

Sidecar artifacts that are inherently files (failure manifests,
telemetry runs, the local queue's directory layout) land next to the
database under ``<path>.aux/``.
"""

from __future__ import annotations

import os
import sqlite3
import threading
import warnings
from contextlib import contextmanager
from pathlib import Path
from typing import (TYPE_CHECKING, Any, Dict, Iterable, Iterator, List,
                    Optional, Tuple, Union)

from .base import (CacheCorruptionWarning, ExperimentStore, PurgeResult,
                   register_backend)

if TYPE_CHECKING:
    from .queue import WorkQueue

__all__ = ["SQLiteStore"]

_SCHEMA = (
    """CREATE TABLE IF NOT EXISTS entries (
        key TEXT PRIMARY KEY,
        blob BLOB NOT NULL)""",
    """CREATE TABLE IF NOT EXISTS quarantine (
        key TEXT PRIMARY KEY,
        blob BLOB NOT NULL)""",
    """CREATE TABLE IF NOT EXISTS work_queue (
        queue TEXT NOT NULL,
        item_id INTEGER NOT NULL,
        key TEXT NOT NULL,
        label TEXT NOT NULL,
        payload BLOB NOT NULL,
        attempts INTEGER NOT NULL DEFAULT 0,
        max_attempts INTEGER NOT NULL DEFAULT 1,
        losses INTEGER NOT NULL DEFAULT 0,
        renewals INTEGER NOT NULL DEFAULT 0,
        status TEXT NOT NULL DEFAULT 'pending',
        worker TEXT NOT NULL DEFAULT '',
        lease_expires REAL NOT NULL DEFAULT 0,
        error_type TEXT NOT NULL DEFAULT '',
        message TEXT NOT NULL DEFAULT '',
        elapsed REAL NOT NULL DEFAULT 0,
        PRIMARY KEY (queue, item_id))""",
    """CREATE TABLE IF NOT EXISTS queue_meta (
        queue TEXT PRIMARY KEY,
        fingerprint TEXT NOT NULL)""",
)

#: Columns grown after the table first shipped; ``CREATE TABLE IF NOT
#: EXISTS`` never alters an existing file, so each is applied as an
#: idempotent ``ALTER TABLE`` migration on connect.
_MIGRATIONS = (
    "ALTER TABLE work_queue ADD COLUMN renewals INTEGER NOT NULL DEFAULT 0",
)


@register_backend
class SQLiteStore(ExperimentStore):
    """WAL-mode single-file store (``sqlite:PATH``)."""

    scheme = "sqlite"

    def __init__(self, path: Union[str, "os.PathLike[str]"],
                 timeout: float = 30.0) -> None:
        super().__init__()
        self.path = Path(path)
        self.timeout = timeout
        self._lock = threading.Lock()
        self._conn: Optional[sqlite3.Connection] = None  # reprolint: guarded-by=_lock
        self._connect()

    def _connect(self) -> None:  # reprolint: requires-lock=_lock
        self.path.parent.mkdir(parents=True, exist_ok=True)
        conn = sqlite3.connect(str(self.path), timeout=self.timeout,
                               isolation_level=None,
                               check_same_thread=False)
        conn.execute("PRAGMA journal_mode=WAL")
        conn.execute("PRAGMA synchronous=NORMAL")
        conn.execute(f"PRAGMA busy_timeout={int(self.timeout * 1000)}")
        for statement in _SCHEMA:
            conn.execute(statement)
        for statement in _MIGRATIONS:
            try:
                conn.execute(statement)
            except sqlite3.OperationalError:
                pass  # column already present (fresh schema or migrated)
        self._conn = conn

    @property
    def connection(self) -> sqlite3.Connection:  # reprolint: requires-lock=_lock
        if self._conn is None:
            self._connect()
        assert self._conn is not None
        return self._conn

    @contextmanager
    def locked(self) -> Iterator[sqlite3.Connection]:
        """The one sanctioned way to borrow the raw connection.

        The connection is opened with ``check_same_thread=False`` and is
        only safe because every use is serialized behind ``_lock``;
        collaborators (the work queue's multi-statement transactions)
        must take it through here rather than reaching into ``_lock`` /
        ``_conn`` themselves.  The connection is only valid inside the
        ``with`` block.
        """
        with self._lock:
            yield self.connection

    def execute(self, sql: str, params: Iterable[Any] = ()) -> None:
        """One serialized write statement (autocommit)."""
        with self.locked() as conn:
            conn.execute(sql, tuple(params))

    def query(self, sql: str,
              params: Iterable[Any] = ()) -> List[Tuple[Any, ...]]:
        """One serialized read; rows are fetched before the lock drops."""
        with self.locked() as conn:
            return conn.execute(sql, tuple(params)).fetchall()

    def transaction(self, statements: Iterable[Tuple[str, Iterable[Any]]],
                    ) -> None:
        """Run ``statements`` inside one immediate transaction."""
        with self.locked() as conn:
            conn.execute("BEGIN IMMEDIATE")
            try:
                for sql, params in statements:
                    conn.execute(sql, tuple(params))
            except BaseException:
                conn.execute("ROLLBACK")
                raise
            conn.execute("COMMIT")

    # -- storage primitives --------------------------------------------

    def _read(self, key: str) -> Optional[bytes]:
        rows = self.query(
            "SELECT blob FROM entries WHERE key = ?", (key,))
        return None if not rows else bytes(rows[0][0])

    def _write(self, key: str, blob: bytes) -> None:
        self.execute(
            "INSERT OR REPLACE INTO entries (key, blob) VALUES (?, ?)",
            (key, sqlite3.Binary(blob)))

    def quarantine(self, key: str) -> Optional[str]:
        """Move ``key``'s row into the ``quarantine`` table atomically.

        Transient errors (a concurrent writer holding the lock) retry
        with bounded backoff; a *permanent* failure warns through the
        :class:`~repro.store.CacheCorruptionWarning` channel and leaves
        the entry in place — never a silent ``None``.
        """
        from .retry import (StoreRetryPolicy, call_with_retries,
                            is_transient_store_error)

        def _move() -> None:
            self.transaction([
                ("INSERT OR REPLACE INTO quarantine (key, blob) "
                 "SELECT key, blob FROM entries WHERE key = ?", (key,)),
                ("DELETE FROM entries WHERE key = ?", (key,)),
            ])

        try:
            call_with_retries(_move, policy=StoreRetryPolicy())
        except sqlite3.Error as exc:
            kind = ("still failing after transient retries"
                    if is_transient_store_error(exc) else "failed")
            warnings.warn(
                f"quarantine of entry {key[:12]}... {kind} "
                f"({type(exc).__name__}: {exc}); the corrupt entry stays "
                f"in place in {self.path}",
                CacheCorruptionWarning, stacklevel=2)
            return None
        return f"{self.path}::quarantine[{key[:12]}...]"

    def contains(self, key: str) -> bool:
        return bool(self.query(
            "SELECT 1 FROM entries WHERE key = ?", (key,)))

    def __len__(self) -> int:
        return int(self.query("SELECT COUNT(*) FROM entries")[0][0])

    def quarantined_count(self) -> int:
        return int(self.query("SELECT COUNT(*) FROM quarantine")[0][0])

    def purge(self) -> PurgeResult:
        entries = len(self)
        quarantined = self.quarantined_count()
        self.transaction([
            ("DELETE FROM entries", ()),
            ("DELETE FROM quarantine", ()),
        ])
        return PurgeResult(entries=entries, quarantined=quarantined)

    # -- identity ------------------------------------------------------

    @property
    def url(self) -> str:
        return f"sqlite:{self.path}"

    def aux_dir(self, name: str) -> Path:
        path = Path(f"{self.path}.aux") / name
        path.mkdir(parents=True, exist_ok=True)
        return path

    def make_queue(self, name: str) -> "WorkQueue":
        from .queue import SQLiteWorkQueue

        return SQLiteWorkQueue(self, name)

    def queues(self) -> List[str]:
        return sorted(str(row[0]) for row in
                      self.query("SELECT queue FROM queue_meta"))

    def close(self) -> None:
        with self._lock:
            if self._conn is not None:
                self._conn.close()
                self._conn = None

    # Connections cannot cross process boundaries; reconnect on unpickle
    # so a store object captured in a config survives a fork/spawn.
    def __getstate__(self) -> Dict[str, Any]:
        state = dict(self.__dict__)
        state["_conn"] = None
        state["_lock"] = None
        return state

    def __setstate__(self, state: Dict[str, Any]) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()
        self._conn = None

"""Pluggable experiment-result stores and the distributed work queue.

Public surface:

* :class:`ExperimentStore` — the abstract checksummed store interface
  (``get``/``put``/``contains``/``quarantine``/``purge``/``stats``).
* :class:`LocalFileStore` (``local:PATH``) — directory of pickles, the
  historical ``ResultCache`` layout.
* :class:`SQLiteStore` (``sqlite:PATH``) — single WAL-mode database
  file, safe for concurrent worker processes.
* :func:`open_store` / :func:`resolve_store` — URL/path/instance →
  store resolution against :data:`STORE_BACKENDS`.
* :mod:`repro.store.queue` — claim/ack/requeue work queue over a store
  for multi-process sweeps (``python -m repro.runner.worker``).

See DESIGN.md (“Experiment store and work queue”) for the architecture
and CONTRIBUTING.md for the add-a-backend checklist.
"""

from .base import (
    STORE_BACKENDS,
    STORE_FORMAT_VERSION,
    STORE_MAGIC,
    CacheCorruptionWarning,
    ExperimentStore,
    PurgeResult,
    StoreSpec,
    StoreStats,
    decode_entry,
    encode_entry,
    open_store,
    register_backend,
    resolve_store,
)
from .local import LocalFileStore
from .queue import ItemState, QueueItem, WorkQueue
from .sqlite import SQLiteStore

__all__ = [
    "STORE_BACKENDS",
    "STORE_FORMAT_VERSION",
    "STORE_MAGIC",
    "CacheCorruptionWarning",
    "ExperimentStore",
    "ItemState",
    "LocalFileStore",
    "PurgeResult",
    "QueueItem",
    "SQLiteStore",
    "StoreSpec",
    "StoreStats",
    "WorkQueue",
    "decode_entry",
    "encode_entry",
    "open_store",
    "register_backend",
    "resolve_store",
]

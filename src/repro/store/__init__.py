"""Pluggable experiment-result stores and the distributed work queue.

Public surface:

* :class:`ExperimentStore` — the abstract checksummed store interface
  (``get``/``put``/``contains``/``quarantine``/``purge``/``stats``).
* :class:`LocalFileStore` (``local:PATH``) — directory of pickles, the
  historical ``ResultCache`` layout.
* :class:`SQLiteStore` (``sqlite:PATH``) — single WAL-mode database
  file, safe for concurrent worker processes.
* :func:`open_store` / :func:`resolve_store` — URL/path/instance →
  store resolution against :data:`STORE_BACKENDS`.
* :mod:`repro.store.queue` — claim/renew/ack/requeue work queue over a
  store for multi-process sweeps (``python -m repro.runner.worker``).
* :mod:`repro.store.retry` — transient-vs-permanent error
  classification and :class:`RetryingStore` / :class:`RetryingQueue`
  bounded-backoff wrappers.
* :mod:`repro.store.faults` — the ``REPRO_STORE_FAULTS`` deterministic
  fault-injection harness (:func:`maybe_faulty_store`).
* ``python -m repro.store status --store URL`` — queue/lease status CLI
  (:mod:`repro.store.__main__`).

See DESIGN.md (“Experiment store and work queue”) for the architecture
and CONTRIBUTING.md for the add-a-backend checklist.
"""

from .base import (
    STORE_BACKENDS,
    STORE_FORMAT_VERSION,
    STORE_MAGIC,
    CacheCorruptionWarning,
    ExperimentStore,
    PurgeResult,
    StoreProxy,
    StoreSpec,
    StoreStats,
    decode_entry,
    encode_entry,
    open_store,
    register_backend,
    resolve_store,
)
from .faults import (
    STORE_FAULTS_ENV,
    FaultyStore,
    StoreFault,
    StoreFaultPlan,
    active_store_plan,
    maybe_faulty_store,
)
from .local import LocalFileStore
from .queue import ItemState, QueueItem, WorkQueue, WorkQueueProxy
from .retry import (
    RetryingQueue,
    RetryingStore,
    StoreRetryPolicy,
    call_with_retries,
    is_transient_store_error,
)
from .sqlite import SQLiteStore

__all__ = [
    "STORE_BACKENDS",
    "STORE_FAULTS_ENV",
    "STORE_FORMAT_VERSION",
    "STORE_MAGIC",
    "CacheCorruptionWarning",
    "ExperimentStore",
    "FaultyStore",
    "ItemState",
    "LocalFileStore",
    "PurgeResult",
    "QueueItem",
    "RetryingQueue",
    "RetryingStore",
    "SQLiteStore",
    "StoreFault",
    "StoreFaultPlan",
    "StoreProxy",
    "StoreRetryPolicy",
    "StoreSpec",
    "StoreStats",
    "WorkQueue",
    "WorkQueueProxy",
    "active_store_plan",
    "call_with_retries",
    "decode_entry",
    "encode_entry",
    "is_transient_store_error",
    "maybe_faulty_store",
    "open_store",
    "register_backend",
    "resolve_store",
]

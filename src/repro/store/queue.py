"""Claim/ack/requeue work queue over an experiment store.

The queue is how a sweep fans out across *independent processes* rather
than one parent's process pool: the coordinator publishes one item per
pending cell (the pickled cell rides along as an opaque payload), any
number of workers (``python -m repro.runner.worker``) claim items,
execute them, persist results to the store and acknowledge; the
coordinator collects results from the store as items finish.

Protocol (mirrors the in-process retry policy of
:mod:`repro.runner.resilience`):

* **claim** — atomically take the lowest-id runnable item and hold a
  wall-clock *lease* on it.  An item whose lease expired is claimable
  again (its worker is presumed dead); each such steal charges the item
  a *loss*, and an item lost more than its loss budget times fails
  permanently — a poison cell cannot wedge the sweep.
* **renew** — extend a held lease from a worker heartbeat.  A live
  worker running a cell longer than its lease renews periodically and
  is never stolen from; only a worker that *stops* renewing (crashed,
  killed, wedged) loses its item.  Renewal is guarded by the holder's
  identity, so a stolen item cannot be revived by its old worker.
* **ack** — the item's result is safely in the store; mark it done.
* **nack** — the attempt raised; the item returns to ``pending`` until
  its ``max_attempts`` budget (retries + 1) is spent, then it is marked
  ``failed`` with the final error, exactly like a
  :class:`~repro.runner.resilience.FailedCell`.

Delivery is **at-least-once**: a worker that stalls past its lease may
race a stealer, and both may execute the same cell.  That is safe by
construction — cells are deterministic (the runner reseeds per attempt
from the cell key), so both produce byte-identical results and the
store's atomic put makes the double write invisible.

Publishing is idempotent and resumable: items are keyed by cell index,
a queue remembers the fingerprint of the cell-key list it was built
for, and re-publishing the same sweep preserves ``done`` states (the
resume path) while a *different* sweep under the same name resets the
queue wholesale.

Wall-clock note: leases deliberately use ``time.time`` — monotonic
clocks are per-process and leases must be comparable *across* worker
processes.  Lease timing schedules work; it never feeds results or
cache keys (reprolint DET002 sanctions this file for exactly that
reason).
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import shutil
import sqlite3
import tempfile
import time
from abc import ABC, abstractmethod
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import (TYPE_CHECKING, Any, Dict, List, Optional, Sequence,
                    Tuple)

if TYPE_CHECKING:  # runtime-free: retry/faults import this module
    from .sqlite import SQLiteStore

__all__ = [
    "ItemState",
    "QueueItem",
    "WorkQueue",
    "WorkQueueProxy",
    "LocalWorkQueue",
    "SQLiteWorkQueue",
    "sweep_fingerprint",
]

#: Item lifecycle states.
STATUSES = ("pending", "claimed", "done", "failed")

#: Error type recorded when an item exhausts its loss budget (workers
#: kept dying while holding its lease).
LOST_ERROR_TYPE = "WorkerLost"


@dataclass(frozen=True)
class QueueItem:
    """One published unit of work: a pending sweep cell.

    ``item_id`` is the cell's index within the sweep (stable across
    runs of the same config — that is what makes resume work);
    ``payload`` is the pickled :class:`~repro.runner.cells.Cell`,
    opaque to the queue.  ``stolen`` is stamped by :meth:`claim` when
    this claim took the item from an expired lease — observability
    only (trace events, dashboards), never part of queue identity, and
    always ``False`` on rows returned by :meth:`publish`/``peek``.
    """

    item_id: int
    key: str
    label: str
    payload: bytes
    attempts: int = 0
    max_attempts: int = 1
    stolen: bool = False

    @property
    def loss_budget(self) -> int:
        """How many lease expiries this item survives (cf.
        :attr:`repro.runner.resilience.RetryPolicy.loss_budget`)."""
        return max(self.max_attempts - 1, 1)


@dataclass
class ItemState:
    """Mutable status of one published item (payload excluded).

    ``worker`` / ``lease_expires`` identify the current claim holder
    (empty / ``0.0`` outside ``claimed``); ``losses`` counts lease
    steals and ``renewals`` heartbeat renewals — together they tell a
    live long cell (renewals, no losses) from a dead worker (losses).
    """

    status: str = "pending"
    attempts: int = 0
    losses: int = 0
    renewals: int = 0
    error_type: str = ""
    message: str = ""
    elapsed: float = 0.0
    worker: str = ""
    lease_expires: float = 0.0


def sweep_fingerprint(items: Sequence[QueueItem]) -> str:
    """Identity of a published sweep: its ordered (index, key) pairs.

    A queue whose stored fingerprint differs was built for a different
    sweep (changed config, changed code) and is reset on publish.
    """
    blob = json.dumps([[item.item_id, item.key] for item in
                       sorted(items, key=lambda it: it.item_id)],
                      separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class WorkQueue(ABC):
    """Abstract claim/ack/requeue queue; one instance per sweep name."""

    @abstractmethod
    def publish(self, items: Sequence[QueueItem]) -> int:
        """Idempotently enqueue ``items``; returns how many were new.

        Items already present (same id, same sweep fingerprint) keep
        their state — that is the resume path.  A fingerprint mismatch
        resets the queue before enqueueing.
        """

    @abstractmethod
    def claim(self, worker: str, lease: float) -> Optional[QueueItem]:
        """Atomically claim the lowest-id runnable item, or ``None``.

        Runnable means ``pending``, or ``claimed`` with an expired
        lease (charged as a loss; over-budget items fail instead).
        """

    @abstractmethod
    def renew(self, item_id: int, worker: str, lease: float) -> bool:
        """Extend ``worker``'s lease on ``item_id`` by ``lease`` seconds.

        The heartbeat operation: succeeds (``True``) only while the
        item is still ``claimed`` *by this worker* — after a steal the
        old holder's renewals return ``False`` and it must abandon the
        item's bookkeeping (finishing the cell itself stays safe:
        delivery is at-least-once and results are idempotent puts).
        A renewal past expiry but before any steal revives the lease —
        the worker is demonstrably alive, just late.
        """

    @abstractmethod
    def ack(self, item_id: int, elapsed: float = 0.0) -> None:
        """Mark ``item_id`` done (its result is in the store)."""

    @abstractmethod
    def nack(self, item_id: int, error_type: str, message: str) -> bool:
        """Record a failed attempt; ``True`` when the item re-queued,
        ``False`` when its attempt budget is spent (now ``failed``)."""

    @abstractmethod
    def requeue_failed(self) -> int:
        """Reset every ``failed`` item to a fresh ``pending`` state.

        The queue analogue of rerunning a ``keep_going`` sweep after a
        failure manifest: only the failed cells execute again (done
        items keep their results).  Returns how many were reset.
        """

    @abstractmethod
    def reset_items(self, item_ids: Sequence[int]) -> int:
        """Reset the given published items to a fresh ``pending`` state.

        The store, not the queue, is the durability source of truth:
        the coordinator uses this to re-run items still marked ``done``
        whose results have vanished from the store (purged, or
        quarantined as corrupt).  Unknown ids are ignored; returns how
        many items were reset.
        """

    @abstractmethod
    def snapshot(self) -> Dict[int, ItemState]:
        """Current state of every published item, by id."""

    @abstractmethod
    def peek(self, item_id: int) -> Optional[QueueItem]:
        """The published item (payload included) without claiming it.

        Inspection hook for the status CLI (``python -m repro.store``);
        ``None`` for unknown ids.
        """

    @abstractmethod
    def clear(self) -> None:
        """Drop the queue's items and metadata entirely."""

    def counts(self) -> Dict[str, int]:
        """Item counts by status (every status always present)."""
        out = {status: 0 for status in STATUSES}
        for state in self.snapshot().values():
            out[state.status] = out.get(state.status, 0) + 1
        return out

    def unfinished(self) -> int:
        """Items not yet ``done`` or ``failed``."""
        counts = self.counts()
        return counts["pending"] + counts["claimed"]


class SQLiteWorkQueue(WorkQueue):
    """Queue rows in the store's own database (``work_queue`` table).

    Claims run inside ``BEGIN IMMEDIATE`` transactions, so concurrent
    workers on one database file serialize through SQLite's write lock;
    the store's WAL mode keeps readers unblocked meanwhile.
    """

    def __init__(self, store: "SQLiteStore", name: str) -> None:
        self.store = store
        self.name = name

    def _fingerprint(self) -> Optional[str]:
        rows = self.store.query(
            "SELECT fingerprint FROM queue_meta WHERE queue = ?",
            (self.name,))
        return rows[0][0] if rows else None

    def publish(self, items: Sequence[QueueItem]) -> int:
        fingerprint = sweep_fingerprint(items)
        stored = self._fingerprint()
        if stored is not None and stored != fingerprint:
            self.clear()
        statements: List[Tuple[str, Tuple[Any, ...]]] = [
            ("INSERT OR REPLACE INTO queue_meta (queue, fingerprint) "
             "VALUES (?, ?)", (self.name, fingerprint))]
        statements += [
            ("INSERT OR IGNORE INTO work_queue "
             "(queue, item_id, key, label, payload, max_attempts) "
             "VALUES (?, ?, ?, ?, ?, ?)",
             (self.name, item.item_id, item.key, item.label,
              sqlite3.Binary(item.payload), item.max_attempts))
            for item in items]
        before = self._count_items()
        self.store.transaction(statements)
        return self._count_items() - before

    def _count_items(self) -> int:
        return int(self.store.query(
            "SELECT COUNT(*) FROM work_queue WHERE queue = ?",
            (self.name,))[0][0])

    def claim(self, worker: str, lease: float) -> Optional[QueueItem]:
        while True:
            now = time.time()
            with self.store.locked() as conn:
                conn.execute("BEGIN IMMEDIATE")
                try:
                    row = conn.execute(
                        "SELECT item_id, key, label, payload, attempts, "
                        "max_attempts, status, losses FROM work_queue "
                        "WHERE queue = ? AND (status = 'pending' OR "
                        "(status = 'claimed' AND lease_expires < ?)) "
                        "ORDER BY item_id LIMIT 1",
                        (self.name, now)).fetchone()
                    if row is None:
                        conn.execute("COMMIT")
                        return None
                    (item_id, key, label, payload, attempts,
                     max_attempts, status, losses) = row
                    item = QueueItem(
                        item_id=int(item_id), key=key, label=label,
                        payload=bytes(payload), attempts=int(attempts),
                        max_attempts=int(max_attempts),
                        stolen=(status == "claimed"))
                    if status == "claimed":
                        # Lease expired under another worker: a loss.
                        losses = int(losses) + 1
                        if losses > item.loss_budget:
                            conn.execute(
                                "UPDATE work_queue SET status = 'failed', "
                                "losses = ?, error_type = ?, message = ? "
                                "WHERE queue = ? AND item_id = ?",
                                (losses, LOST_ERROR_TYPE,
                                 f"lease on {label} expired {losses} "
                                 f"times (worker killed or died?)",
                                 self.name, item_id))
                            conn.execute("COMMIT")
                            continue
                    conn.execute(
                        "UPDATE work_queue SET status = 'claimed', "
                        "worker = ?, lease_expires = ?, losses = ? "
                        "WHERE queue = ? AND item_id = ?",
                        (worker, now + lease, int(losses),
                         self.name, item_id))
                    conn.execute("COMMIT")
                    return item
                except BaseException:
                    conn.execute("ROLLBACK")
                    raise

    def renew(self, item_id: int, worker: str, lease: float) -> bool:
        now = time.time()
        with self.store.locked() as conn:
            cursor = conn.execute(
                "UPDATE work_queue SET lease_expires = ?, "
                "renewals = renewals + 1 "
                "WHERE queue = ? AND item_id = ? AND status = 'claimed' "
                "AND worker = ?",
                (now + lease, self.name, item_id, worker))
            return cursor.rowcount == 1

    def ack(self, item_id: int, elapsed: float = 0.0) -> None:
        self.store.execute(
            "UPDATE work_queue SET status = 'done', elapsed = ?, "
            "error_type = '', message = '', worker = '', "
            "lease_expires = 0 "
            "WHERE queue = ? AND item_id = ?",
            (round(elapsed, 6), self.name, item_id))

    def nack(self, item_id: int, error_type: str, message: str) -> bool:
        with self.store.locked() as conn:
            conn.execute("BEGIN IMMEDIATE")
            try:
                row = conn.execute(
                    "SELECT attempts, max_attempts FROM work_queue "
                    "WHERE queue = ? AND item_id = ?",
                    (self.name, item_id)).fetchone()
                if row is None:
                    conn.execute("COMMIT")
                    return False
                attempts = int(row[0]) + 1
                retry = attempts < int(row[1])
                conn.execute(
                    "UPDATE work_queue SET status = ?, attempts = ?, "
                    "error_type = ?, message = ?, worker = '', "
                    "lease_expires = 0 "
                    "WHERE queue = ? AND item_id = ?",
                    ("pending" if retry else "failed", attempts,
                     error_type, message, self.name, item_id))
                conn.execute("COMMIT")
                return retry
            except BaseException:
                conn.execute("ROLLBACK")
                raise

    def requeue_failed(self) -> int:
        failed = int(self.store.query(
            "SELECT COUNT(*) FROM work_queue "
            "WHERE queue = ? AND status = 'failed'", (self.name,))[0][0])
        if failed:
            # A fresh pending state clears *everything* — the stale
            # worker/lease of the last holder included — matching
            # reset_items and the local backend.
            self.store.execute(
                "UPDATE work_queue SET status = 'pending', attempts = 0, "
                "losses = 0, renewals = 0, error_type = '', message = '', "
                "elapsed = 0, worker = '', lease_expires = 0 "
                "WHERE queue = ? AND status = 'failed'", (self.name,))
        return failed

    def reset_items(self, item_ids: Sequence[int]) -> int:
        wanted = sorted({int(i) for i in item_ids})
        if not wanted:
            return 0
        rows = self.store.query(
            "SELECT item_id FROM work_queue WHERE queue = ?", (self.name,))
        existing = sorted({int(r[0]) for r in rows} & set(wanted))
        if existing:
            self.store.transaction([
                ("UPDATE work_queue SET status = 'pending', attempts = 0, "
                 "losses = 0, renewals = 0, error_type = '', message = '', "
                 "elapsed = 0, worker = '', lease_expires = 0 "
                 "WHERE queue = ? AND item_id = ?", (self.name, item_id))
                for item_id in existing])
        return len(existing)

    def snapshot(self) -> Dict[int, ItemState]:
        rows = self.store.query(
            "SELECT item_id, status, attempts, losses, renewals, "
            "error_type, message, elapsed, worker, lease_expires "
            "FROM work_queue WHERE queue = ?",
            (self.name,))
        return {int(r[0]): ItemState(status=r[1], attempts=int(r[2]),
                                     losses=int(r[3]), renewals=int(r[4]),
                                     error_type=r[5], message=r[6],
                                     elapsed=float(r[7]), worker=r[8],
                                     lease_expires=float(r[9]))
                for r in rows}

    def peek(self, item_id: int) -> Optional[QueueItem]:
        rows = self.store.query(
            "SELECT item_id, key, label, payload, attempts, max_attempts "
            "FROM work_queue WHERE queue = ? AND item_id = ?",
            (self.name, int(item_id)))
        if not rows:
            return None
        row = rows[0]
        return QueueItem(item_id=int(row[0]), key=row[1], label=row[2],
                         payload=bytes(row[3]), attempts=int(row[4]),
                         max_attempts=int(row[5]))

    def clear(self) -> None:
        self.store.transaction([
            ("DELETE FROM work_queue WHERE queue = ?", (self.name,)),
            ("DELETE FROM queue_meta WHERE queue = ?", (self.name,)),
        ])


class LocalWorkQueue(WorkQueue):
    """Directory-backed queue for the ``local`` store backend.

    Layout under the queue root::

        meta.json            sweep fingerprint
        items/<id>.item      pickled QueueItem (written once)
        state/<id>.json      mutable ItemState (atomic replace)
        claims/<id>.tok      claim token {worker, expires}

    Claiming a ``pending`` item creates its token with
    ``O_CREAT | O_EXCL`` — the filesystem arbitrates racing workers.
    An expired token (or an expired ``claimed`` state) is *stolen* with
    an atomic replace; two stealers can race, which at worst double-
    executes a deterministic cell (see the module docstring).
    """

    def __init__(self, root: "os.PathLike[str]") -> None:
        self.root = Path(root)
        for sub in ("items", "state", "claims"):
            (self.root / sub).mkdir(parents=True, exist_ok=True)

    # -- small atomic-file helpers -------------------------------------

    def _item_path(self, item_id: int) -> Path:
        return self.root / "items" / f"{item_id:08d}.item"

    def _state_path(self, item_id: int) -> Path:
        return self.root / "state" / f"{item_id:08d}.json"

    def _token_path(self, item_id: int) -> Path:
        return self.root / "claims" / f"{item_id:08d}.tok"

    @staticmethod
    def _replace_bytes(path: Path, blob: bytes) -> None:
        fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=".w-",
                                   suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(blob)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def _read_state(self, item_id: int) -> Optional[ItemState]:
        try:
            doc = json.loads(self._state_path(item_id).read_text())
        except (OSError, ValueError):
            return None
        state = ItemState()
        for field, value in doc.items():
            if hasattr(state, field):
                setattr(state, field, value)
        return state

    def _write_state(self, item_id: int, state: ItemState) -> None:
        self._replace_bytes(self._state_path(item_id),
                            json.dumps(asdict(state),
                                       sort_keys=True).encode("utf-8"))

    def _read_lease(self, item_id: int) -> float:
        try:
            doc = json.loads(self._state_path(item_id).read_text())
            return float(doc.get("lease_expires", 0.0))
        except (OSError, ValueError):
            return 0.0

    def _read_item(self, item_id: int) -> Optional[QueueItem]:
        try:
            blob = self._item_path(item_id).read_bytes()
        except OSError:
            return None
        item = pickle.loads(blob)
        return item if isinstance(item, QueueItem) else None

    def _ids(self) -> List[int]:
        try:
            names = list((self.root / "items").iterdir())
        except OSError:  # queue cleared (root removed) -> empty
            return []
        return sorted(int(p.stem) for p in names if p.suffix == ".item")

    # -- WorkQueue protocol --------------------------------------------

    def publish(self, items: Sequence[QueueItem]) -> int:
        fingerprint = sweep_fingerprint(items)
        meta = self.root / "meta.json"
        try:
            stored = json.loads(meta.read_text()).get("fingerprint")
        except (OSError, ValueError):
            stored = None
        if stored is not None and stored != fingerprint:
            self.clear()
            for sub in ("items", "state", "claims"):
                (self.root / sub).mkdir(parents=True, exist_ok=True)
        self._replace_bytes(meta, json.dumps(
            {"fingerprint": fingerprint}, sort_keys=True).encode("utf-8"))
        published = 0
        for item in items:
            path = self._item_path(item.item_id)
            if path.exists():
                continue
            self._replace_bytes(path, pickle.dumps(
                item, protocol=pickle.HIGHEST_PROTOCOL))
            self._write_state(item.item_id, ItemState())
            published += 1
        return published

    def _take_token(self, item_id: int, worker: str,
                    expires: float) -> bool:
        """Win the claim token exclusively; steal it when expired."""
        token = self._token_path(item_id)
        blob = json.dumps({"worker": worker, "expires": expires},
                          sort_keys=True).encode("utf-8")
        try:
            fd = os.open(token, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            try:
                held = json.loads(token.read_text()).get("expires", 0.0)
            except (OSError, ValueError):
                held = 0.0
            if held >= time.time():
                return False
            # Expired token: previous holder died between token and
            # state writes (or mid-cell).  Replace is atomic; a racing
            # stealer merely double-executes a deterministic cell.
            self._replace_bytes(token, blob)
            return True
        with os.fdopen(fd, "wb") as fh:
            fh.write(blob)
        return True

    def claim(self, worker: str, lease: float) -> Optional[QueueItem]:
        for item_id in self._ids():
            state = self._read_state(item_id)
            if state is None or state.status in ("done", "failed"):
                continue
            now = time.time()
            stolen = False
            if state.status == "claimed":
                if self._read_lease(item_id) >= now:
                    continue
                stolen = True
            if not self._take_token(item_id, worker, now + lease):
                continue
            item = self._read_item(item_id)
            if item is None:
                continue
            if stolen:
                state.losses += 1
                if state.losses > item.loss_budget:
                    state.status = "failed"
                    state.error_type = LOST_ERROR_TYPE
                    state.message = (f"lease on {item.label} expired "
                                     f"{state.losses} times (worker "
                                     f"killed or died?)")
                    self._write_state(item_id, state)
                    try:
                        os.unlink(self._token_path(item_id))
                    except OSError:
                        pass
                    continue
            state.status = "claimed"
            state.worker = worker
            state.lease_expires = now + lease
            self._write_state(item_id, state)
            return QueueItem(item_id=item.item_id, key=item.key,
                             label=item.label, payload=item.payload,
                             attempts=state.attempts,
                             max_attempts=item.max_attempts,
                             stolen=stolen)
        return None

    def renew(self, item_id: int, worker: str, lease: float) -> bool:
        state = self._read_state(item_id)
        if (state is None or state.status != "claimed"
                or state.worker != worker):
            return False
        now = time.time()
        state.lease_expires = now + lease
        state.renewals += 1
        # The claim token's expiry gates stealing too; refresh both so
        # a renewed holder cannot lose a token race it already won.
        self._replace_bytes(
            self._token_path(item_id),
            json.dumps({"worker": worker, "expires": now + lease},
                       sort_keys=True).encode("utf-8"))
        self._write_state(item_id, state)
        return True

    def ack(self, item_id: int, elapsed: float = 0.0) -> None:
        state = self._read_state(item_id) or ItemState()
        state.status = "done"
        state.elapsed = round(elapsed, 6)
        state.error_type = ""
        state.message = ""
        state.worker = ""
        state.lease_expires = 0.0
        self._write_state(item_id, state)
        try:
            os.unlink(self._token_path(item_id))
        except OSError:
            pass

    def nack(self, item_id: int, error_type: str, message: str) -> bool:
        state = self._read_state(item_id) or ItemState()
        item = self._read_item(item_id)
        max_attempts = item.max_attempts if item is not None else 1
        state.attempts += 1
        retry = state.attempts < max_attempts
        state.status = "pending" if retry else "failed"
        state.error_type = error_type
        state.message = message
        state.worker = ""
        state.lease_expires = 0.0
        self._write_state(item_id, state)
        try:
            os.unlink(self._token_path(item_id))
        except OSError:
            pass
        return retry

    def requeue_failed(self) -> int:
        reset = 0
        for item_id in self._ids():
            state = self._read_state(item_id)
            if state is None or state.status != "failed":
                continue
            self._write_state(item_id, ItemState())
            try:
                os.unlink(self._token_path(item_id))
            except OSError:
                pass
            reset += 1
        return reset

    def reset_items(self, item_ids: Sequence[int]) -> int:
        reset = 0
        for item_id in sorted({int(i) for i in item_ids}):
            if self._read_item(item_id) is None:
                continue
            self._write_state(item_id, ItemState())
            try:
                os.unlink(self._token_path(item_id))
            except OSError:
                pass
            reset += 1
        return reset

    def snapshot(self) -> Dict[int, ItemState]:
        out: Dict[int, ItemState] = {}
        for item_id in self._ids():
            state = self._read_state(item_id)
            if state is not None:
                out[item_id] = state
        return out

    def peek(self, item_id: int) -> Optional[QueueItem]:
        item = self._read_item(int(item_id))
        if item is None:
            return None
        state = self._read_state(int(item_id))
        return QueueItem(item_id=item.item_id, key=item.key,
                         label=item.label, payload=item.payload,
                         attempts=state.attempts if state else item.attempts,
                         max_attempts=item.max_attempts)

    def clear(self) -> None:
        shutil.rmtree(self.root, ignore_errors=True)


class WorkQueueProxy(WorkQueue):
    """Transparent pass-through wrapper around another :class:`WorkQueue`.

    Base class for decorating queues — fault injection
    (:mod:`repro.store.faults`) and transient-error retries
    (:mod:`repro.store.retry`) both subclass this and override only the
    operations they intercept; everything else delegates to ``inner``.
    """

    def __init__(self, inner: WorkQueue) -> None:
        self.inner = inner

    def publish(self, items: Sequence[QueueItem]) -> int:
        return self.inner.publish(items)

    def claim(self, worker: str, lease: float) -> Optional[QueueItem]:
        return self.inner.claim(worker, lease)

    def renew(self, item_id: int, worker: str, lease: float) -> bool:
        return self.inner.renew(item_id, worker, lease)

    def ack(self, item_id: int, elapsed: float = 0.0) -> None:
        self.inner.ack(item_id, elapsed)

    def nack(self, item_id: int, error_type: str, message: str) -> bool:
        return self.inner.nack(item_id, error_type, message)

    def requeue_failed(self) -> int:
        return self.inner.requeue_failed()

    def reset_items(self, item_ids: Sequence[int]) -> int:
        return self.inner.reset_items(item_ids)

    def snapshot(self) -> Dict[int, ItemState]:
        return self.inner.snapshot()

    def peek(self, item_id: int) -> Optional[QueueItem]:
        return self.inner.peek(item_id)

    def clear(self) -> None:
        self.inner.clear()

"""Deterministic fault injection for the store/queue layer.

The storage counterpart of :mod:`repro.runner.faults`: none of the
fleet's storage resilience — transient-error retries
(:mod:`repro.store.retry`), lease renewal under latency, torn-write
quarantine, the coordinator's permanent-error handling — is testable
without a disk that misbehaves on command.  A :class:`StoreFaultPlan`
wraps any :class:`~repro.store.ExperimentStore` /
:class:`~repro.store.queue.WorkQueue` pair and injects failures on a
*deterministic schedule*: each fault counts the operations it matches
and fires on every ``every``-th one (capped by ``times``), or on a
seeded pseudo-random ``rate`` — never on wall-clock state, so a chaos
run's final stdout stays byte-identical to a fault-free run.

The plan travels through :data:`REPRO_STORE_FAULTS <STORE_FAULTS_ENV>`
(inline JSON, or ``@/path/to/plan.json``), which worker processes
inherit — each process wraps its own store on startup and replays the
same schedule.

Fault kinds (raised exceptions are the *real* production types, so the
classification in :mod:`repro.store.retry` is exercised, not mocked):

``busy``
    Raise ``sqlite3.OperationalError('database is locked [injected]')``
    — the transient contention error any concurrent SQLite writer can
    see.
``oserror``
    Raise ``OSError(EAGAIN)`` — a momentarily overloaded disk.
``latency``
    Sleep ``seconds`` before the operation proceeds (a slow disk; pair
    with a short ``--queue-lease`` to exercise heartbeat renewal).
``torn``
    On ``put`` only: write a *truncated* entry (the prefix of the real
    checksummed blob), then raise ``OSError(EIO)`` — a crash mid-write.
    The retry layer rewrites the entry; an unretried torn write is
    caught later by the checksum/quarantine path.
``fatal``
    Raise ``sqlite3.DatabaseError('database disk image is malformed
    [injected]')`` — a *permanent* error; workers must exit with
    :data:`repro.runner.worker.EXIT_STORE_PERMANENT`.

Plan JSON::

    {"faults": [
        {"op": "put", "kind": "busy", "every": 3, "times": 2},
        {"op": "claim", "kind": "latency", "seconds": 0.05, "every": 2},
        {"op": "get", "kind": "oserror", "rate": 0.2, "seed": 7}
    ]}

``op`` is one of :data:`STORE_FAULT_OPS` (``*`` matches any).
"""

from __future__ import annotations

import errno
import json
import os
import random
import sqlite3
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..errors import ConfigurationError
from .base import ExperimentStore, StoreProxy, encode_entry
from .queue import ItemState, QueueItem, WorkQueue, WorkQueueProxy

__all__ = [
    "STORE_FAULTS_ENV",
    "STORE_FAULT_KINDS",
    "STORE_FAULT_OPS",
    "FaultInjector",
    "FaultyQueue",
    "FaultyStore",
    "StoreFault",
    "StoreFaultPlan",
    "active_store_plan",
    "maybe_faulty_store",
]

#: Environment variable carrying the active plan (inline JSON or ``@path``).
STORE_FAULTS_ENV = "REPRO_STORE_FAULTS"

#: Recognized fault kinds.
STORE_FAULT_KINDS = ("busy", "oserror", "latency", "torn", "fatal")

#: Interceptable operations; ``*`` matches all of them.
STORE_FAULT_OPS = ("get", "put", "quarantine", "claim", "ack", "nack",
                   "renew", "publish", "snapshot", "*")

_PLAN_FIELDS = frozenset(
    {"op", "kind", "every", "times", "seconds", "rate", "seed", "message"})


@dataclass(frozen=True)
class StoreFault:
    """One injected storage failure on a deterministic schedule.

    Parameters
    ----------
    op:
        Which store/queue operation to intercept (:data:`STORE_FAULT_OPS`).
    kind:
        One of :data:`STORE_FAULT_KINDS`.
    every:
        Fire on every ``every``-th matching operation (1 = every call).
        Mutually exclusive with ``rate``.
    times:
        Stop firing after this many injections (``None`` = unlimited).
    seconds:
        Sleep duration for ``latency`` faults.
    rate:
        Fire with this seeded pseudo-random probability per matching
        operation instead of the modular ``every`` schedule.
    seed:
        Seed of the fault's private RNG (``rate`` mode only) — the
        schedule is a pure function of (seed, call sequence).
    message:
        Text carried inside the injected exception.
    """

    op: str
    kind: str
    every: int = 1
    times: Optional[int] = None
    seconds: float = 0.05
    rate: Optional[float] = None
    seed: int = 0
    message: str = "injected store fault"

    def __post_init__(self) -> None:
        if self.op not in STORE_FAULT_OPS:
            raise ConfigurationError(
                f"unknown store-fault op {self.op!r}; expected one of "
                f"{list(STORE_FAULT_OPS)}")
        if self.kind not in STORE_FAULT_KINDS:
            raise ConfigurationError(
                f"unknown store-fault kind {self.kind!r}; expected one of "
                f"{list(STORE_FAULT_KINDS)}")
        if self.every < 1:
            raise ConfigurationError(
                f"store-fault every must be >= 1, got {self.every}")
        if self.times is not None and self.times < 0:
            raise ConfigurationError(
                f"store-fault times must be >= 0, got {self.times}")
        if self.seconds < 0:
            raise ConfigurationError(
                f"store-fault seconds must be non-negative, "
                f"got {self.seconds!r}")
        if self.rate is not None and not 0.0 < self.rate <= 1.0:
            raise ConfigurationError(
                f"store-fault rate must be in (0, 1], got {self.rate!r}")
        if self.kind == "torn" and self.op not in ("put", "*"):
            raise ConfigurationError(
                f"torn faults only apply to 'put', got op {self.op!r}")

    def matches(self, op: str) -> bool:
        return self.op == "*" or self.op == op


@dataclass(frozen=True)
class StoreFaultPlan:
    """An ordered collection of :class:`StoreFault`\\ s."""

    faults: Tuple[StoreFault, ...] = ()

    def __bool__(self) -> bool:
        return bool(self.faults)

    def to_json(self) -> str:
        """Serialize to the ``REPRO_STORE_FAULTS`` JSON format."""
        entries: List[Dict[str, Any]] = []
        for f in self.faults:
            entry: Dict[str, Any] = {
                "op": f.op, "kind": f.kind, "every": f.every,
                "seconds": f.seconds, "seed": f.seed, "message": f.message}
            if f.times is not None:
                entry["times"] = f.times
            if f.rate is not None:
                entry["rate"] = f.rate
            entries.append(entry)
        return json.dumps({"faults": entries}, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "StoreFaultPlan":
        """Parse a plan document, failing loudly on malformed input."""
        try:
            doc = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(
                f"store-fault plan is not valid JSON: {exc}") from exc
        if not isinstance(doc, dict) or not isinstance(
                doc.get("faults", []), list):
            raise ConfigurationError(
                "store-fault plan must be an object with a 'faults' list")
        faults: List[StoreFault] = []
        for entry in doc.get("faults", []):
            if not isinstance(entry, dict):
                raise ConfigurationError(
                    f"each store fault must be an object, got {entry!r}")
            unknown = sorted(set(entry) - _PLAN_FIELDS)
            if unknown:
                raise ConfigurationError(
                    f"unknown store-fault fields {unknown}; expected a "
                    f"subset of {sorted(_PLAN_FIELDS)}")
            try:
                op = str(entry["op"])
                kind = str(entry["kind"])
            except KeyError as missing:
                raise ConfigurationError(
                    f"store-fault entry is missing required field "
                    f"{missing}") from missing
            times = entry.get("times")
            rate = entry.get("rate")
            faults.append(StoreFault(
                op=op, kind=kind,
                every=int(entry.get("every", 1)),
                times=None if times is None else int(times),
                seconds=float(entry.get("seconds", 0.05)),
                rate=None if rate is None else float(rate),
                seed=int(entry.get("seed", 0)),
                message=str(entry.get("message", "injected store fault"))))
        return cls(faults=tuple(faults))


def active_store_plan() -> Optional[StoreFaultPlan]:
    """The plan named by ``$REPRO_STORE_FAULTS``, or ``None`` when unset.

    ``@/path/to/plan.json`` loads from a file; anything else parses as
    inline JSON.  (Unlike cell faults, the plan is read once per
    wrapper — injection schedules are stateful counters, so a store
    keeps the plan it was wrapped with.)
    """
    raw = os.environ.get(STORE_FAULTS_ENV)
    if not raw:
        return None
    if raw.startswith("@"):
        path = Path(raw[1:])
        try:
            raw = path.read_text(encoding="utf-8")
        except OSError as exc:
            raise ConfigurationError(
                f"cannot read store-fault plan file {path}: {exc}") from exc
    return StoreFaultPlan.from_json(raw)


class FaultInjector:
    """Stateful schedule evaluator shared by a wrapped store + queues.

    Counts matching operations per fault and decides, deterministically,
    which faults fire on each call.  ``injected`` tallies fired faults
    by ``"op:kind"`` for tests and diagnostics.
    """

    def __init__(self, plan: StoreFaultPlan) -> None:
        self.plan = plan
        self.injected: Dict[str, int] = {}
        self._seen = [0] * len(plan.faults)
        self._fired = [0] * len(plan.faults)
        self._rngs = [random.Random(f.seed) for f in plan.faults]

    def fire(self, op: str) -> List[StoreFault]:
        """Faults firing on this occurrence of ``op``, in plan order."""
        fired: List[StoreFault] = []
        for i, fault in enumerate(self.plan.faults):
            if not fault.matches(op):
                continue
            self._seen[i] += 1
            if fault.times is not None and self._fired[i] >= fault.times:
                continue
            if fault.rate is not None:
                due = self._rngs[i].random() < fault.rate
            else:
                due = self._seen[i] % fault.every == 0
            if due:
                self._fired[i] += 1
                key = f"{op}:{fault.kind}"
                self.injected[key] = self.injected.get(key, 0) + 1
                fired.append(fault)
        return fired

    def raise_or_wait(self, op: str,
                      fired: Sequence[StoreFault]) -> None:
        """Apply non-torn faults: sleep latencies, raise the first error."""
        for fault in fired:
            if fault.kind == "latency":
                time.sleep(fault.seconds)
        for fault in fired:
            if fault.kind == "busy":
                raise sqlite3.OperationalError(
                    f"database is locked [{fault.message}: {op}]")
            if fault.kind == "oserror":
                raise OSError(errno.EAGAIN,
                              f"{fault.message} [{op}]")
            if fault.kind == "fatal":
                raise sqlite3.DatabaseError(
                    f"database disk image is malformed "
                    f"[{fault.message}: {op}]")

    def inject(self, op: str) -> List[StoreFault]:
        """:meth:`fire` + :meth:`raise_or_wait`; returns torn faults."""
        fired = self.fire(op)
        torn = [f for f in fired if f.kind == "torn"]
        self.raise_or_wait(op, fired)
        return torn


class FaultyQueue(WorkQueueProxy):
    """A :class:`~repro.store.queue.WorkQueue` that injects faults."""

    def __init__(self, inner: WorkQueue, injector: FaultInjector) -> None:
        super().__init__(inner)
        self.injector = injector

    def publish(self, items: Sequence[QueueItem]) -> int:
        self.injector.inject("publish")
        return self.inner.publish(items)

    def claim(self, worker: str, lease: float) -> Optional[QueueItem]:
        self.injector.inject("claim")
        return self.inner.claim(worker, lease)

    def renew(self, item_id: int, worker: str, lease: float) -> bool:
        self.injector.inject("renew")
        return self.inner.renew(item_id, worker, lease)

    def ack(self, item_id: int, elapsed: float = 0.0) -> None:
        self.injector.inject("ack")
        self.inner.ack(item_id, elapsed)

    def nack(self, item_id: int, error_type: str, message: str) -> bool:
        self.injector.inject("nack")
        return self.inner.nack(item_id, error_type, message)

    def snapshot(self) -> Dict[int, ItemState]:
        self.injector.inject("snapshot")
        return self.inner.snapshot()


class FaultyStore(StoreProxy):
    """An :class:`~repro.store.ExperimentStore` that injects faults.

    Queues opened through :meth:`make_queue` share this store's
    injector, so one plan's counters cover the whole surface.
    """

    def __init__(self, inner: ExperimentStore,
                 plan: StoreFaultPlan) -> None:
        super().__init__(inner)
        self.injector = FaultInjector(plan)

    def get(self, key: str) -> Tuple[bool, Any]:
        self.injector.inject("get")
        return self.inner.get(key)

    def put(self, key: str, value: Any) -> None:
        torn = self.injector.inject("put")
        if torn:
            # A crash mid-write: persist a truncated prefix of the real
            # entry, then fail the call like the kernel would.
            blob = encode_entry(value)
            self.inner.write_raw(key, blob[:max(len(blob) // 2, 1)])
            raise OSError(errno.EIO, f"{torn[0].message} [torn put]")
        self.inner.put(key, value)

    def quarantine(self, key: str) -> Optional[str]:
        self.injector.inject("quarantine")
        return self.inner.quarantine(key)

    def make_queue(self, name: str) -> WorkQueue:
        return FaultyQueue(self.inner.make_queue(name), self.injector)


def maybe_faulty_store(store: ExperimentStore) -> ExperimentStore:
    """Wrap ``store`` when ``$REPRO_STORE_FAULTS`` names a plan.

    The coordinator and every worker call this on the store they just
    opened; without a plan the store passes through untouched.
    """
    plan = active_store_plan()
    if plan is None or not plan:
        return store
    return FaultyStore(store, plan)

"""Directory-of-pickles store backend: the original on-disk layout.

This is the historical :class:`repro.runner.cache.ResultCache` behavior
extracted behind the :class:`~repro.store.base.ExperimentStore`
interface.  Layout on disk (two-level fan-out keeps directories
small)::

    <root>/<key[:2]>/<key>.pkl

Entries are written atomically (temp file + rename), so a killed run
never leaves a truncated entry behind; corrupt entries are quarantined
in place as ``<entry>.pkl.corrupt``.  Sidecar artifacts (failure
manifests, telemetry, the work queue) live in subdirectories of the
root, exactly where they always have.
"""

from __future__ import annotations

import os
import tempfile
import warnings
from pathlib import Path
from typing import TYPE_CHECKING, List, Optional, Union

from .base import CacheCorruptionWarning, ExperimentStore, PurgeResult, register_backend

if TYPE_CHECKING:
    from .queue import WorkQueue

__all__ = ["LocalFileStore"]


@register_backend
class LocalFileStore(ExperimentStore):
    """Pickle-per-entry store rooted at a directory (``local:PATH``)."""

    scheme = "local"

    def __init__(self, root: Union[str, "os.PathLike[str]"]) -> None:
        super().__init__()
        self.root = Path(root)

    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.pkl"

    def _read(self, key: str) -> Optional[bytes]:
        path = self.path_for(key)
        try:
            return path.read_bytes()
        except FileNotFoundError:
            return None
        except OSError as exc:
            warnings.warn(
                f"result-cache entry {key[:12]}... is unreadable "
                f"({type(exc).__name__}: {exc}); treating as a miss",
                CacheCorruptionWarning, stacklevel=3)
            return None

    def _write(self, key: str, blob: bytes) -> None:
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent,
                                   prefix=f".{key[:8]}-", suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(blob)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def quarantine(self, key: str) -> Optional[str]:
        """Move ``key``'s entry aside to ``*.pkl.corrupt``; None on failure."""
        path = self.path_for(key)
        target = path.with_name(path.name + ".corrupt")
        try:
            os.replace(path, target)
        except OSError:
            return None
        return str(target)

    def contains(self, key: str) -> bool:
        return self.path_for(key).exists()

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*/*.pkl"))

    def quarantined_count(self) -> int:
        return sum(1 for _ in self.root.glob("*/*.pkl.corrupt"))

    def purge(self) -> PurgeResult:
        """Delete every entry and every quarantined ``*.pkl.corrupt``
        file, counting the two separately."""
        removed = corrupt = 0
        for entry in self.root.glob("*/*.pkl"):
            try:
                entry.unlink()
                removed += 1
            except OSError:
                pass
        for entry in self.root.glob("*/*.pkl.corrupt"):
            try:
                entry.unlink()
                corrupt += 1
            except OSError:
                pass
        return PurgeResult(entries=removed, quarantined=corrupt)

    @property
    def url(self) -> str:
        return f"local:{self.root}"

    def aux_dir(self, name: str) -> Path:
        path = self.root / name
        path.mkdir(parents=True, exist_ok=True)
        return path

    def make_queue(self, name: str) -> "WorkQueue":
        from .queue import LocalWorkQueue

        return LocalWorkQueue(self.aux_dir("queue") / name)

    def queues(self) -> List[str]:
        root = self.root / "queue"
        if not root.is_dir():
            return []
        return sorted(p.name for p in root.iterdir() if p.is_dir())

"""The pluggable experiment-store interface and its entry format.

An :class:`ExperimentStore` persists experiment-cell results addressed
by their content hash (:func:`repro.runner.cache.cell_key`).  The store
is the durability layer of every sweep: cache hits short-circuit
execution, fresh results are persisted as each cell completes, and an
interrupted sweep resumes from whatever the store already holds —
locally through the in-process pool, or distributed through the work
queue (:mod:`repro.store.queue`) drained by independent worker
processes.

Backends register under a URL-style scheme (``local:PATH``,
``sqlite:PATH``) in :data:`STORE_BACKENDS`; :func:`open_store` resolves
a URL, bare path, or ready instance to a store object.  All backends
share one *entry format* — the checksummed v2 layout::

    repro/result-cache/v2\\n<sha256-hex of payload>\\n<pickled payload>

so entries validate identically everywhere: a present-but-invalid entry
(bad header, checksum mismatch, unpicklable payload) is **quarantined**
with a :class:`CacheCorruptionWarning` and treated as a miss, never
silently recomputed over.  A missing entry is the one silent case.

Backends implement four storage primitives (:meth:`ExperimentStore._read`,
:meth:`ExperimentStore._write`, :meth:`ExperimentStore.quarantine`,
:meth:`ExperimentStore.purge`) plus bookkeeping; validation, corruption
handling and the hit/miss protocol live here so every backend behaves
identically.  See CONTRIBUTING.md for the backend checklist.
"""

from __future__ import annotations

import hashlib
import os
import pickle
from abc import ABC, abstractmethod
from dataclasses import dataclass
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    List,
    NamedTuple,
    Optional,
    Tuple,
    Type,
    TypeVar,
    Union,
)
import warnings

from ..errors import ConfigurationError

if TYPE_CHECKING:  # avoid a base <-> queue import cycle at runtime
    from .queue import WorkQueue

__all__ = [
    "STORE_FORMAT_VERSION",
    "STORE_MAGIC",
    "STORE_BACKENDS",
    "CacheCorruptionWarning",
    "ExperimentStore",
    "PurgeResult",
    "StoreProxy",
    "StoreStats",
    "decode_entry",
    "encode_entry",
    "open_store",
    "register_backend",
    "resolve_store",
]

#: Bump to invalidate every existing entry after a format change.
#: v2: checksummed entry header (STORE_MAGIC + SHA-256 + payload).
STORE_FORMAT_VERSION = 2

#: Leading bytes of every v2 entry, followed by the 64-hex-char SHA-256
#: of the pickled payload, a newline, then the payload itself.
STORE_MAGIC = b"repro/result-cache/v2\n"


class CacheCorruptionWarning(RuntimeWarning):
    """A store entry failed validation and was quarantined."""


class PurgeResult(NamedTuple):
    """What :meth:`ExperimentStore.purge` removed.

    ``entries`` counts live results deleted; ``quarantined`` counts
    quarantined corrupt entries deleted — reported separately because a
    nonzero count is evidence of earlier corruption worth knowing about
    even while cleaning up.
    """

    entries: int
    quarantined: int

    @property
    def total(self) -> int:
        """Everything removed, live and quarantined."""
        return self.entries + self.quarantined


@dataclass(frozen=True)
class StoreStats:
    """Deterministic facts about a store plus this instance's traffic.

    ``entries`` / ``quarantined`` describe the store's current contents;
    ``hits`` / ``misses`` / ``puts`` / ``quarantines`` count this
    instance's session traffic (they reset with the object, not the
    backing storage).
    """

    backend: str
    location: str
    entries: int
    quarantined: int
    hits: int
    misses: int
    puts: int
    quarantines: int


def encode_entry(value: Any) -> bytes:
    """Serialize ``value`` into the checksummed v2 entry layout."""
    payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
    digest = hashlib.sha256(payload).hexdigest().encode("ascii")
    return STORE_MAGIC + digest + b"\n" + payload


def decode_entry(blob: bytes) -> Tuple[Any, Optional[str]]:
    """``(value, None)`` for a valid entry, ``(None, reason)`` otherwise."""
    head = len(STORE_MAGIC)
    if not blob.startswith(STORE_MAGIC) or blob[head + 64:head + 65] != b"\n":
        return None, "missing or malformed entry header"
    digest = blob[head:head + 64]
    payload = blob[head + 65:]
    if hashlib.sha256(payload).hexdigest().encode("ascii") != digest:
        return None, "SHA-256 checksum mismatch"
    try:
        return pickle.loads(payload), None
    except Exception as exc:
        return None, (f"checksummed payload failed to unpickle "
                      f"({type(exc).__name__}: {exc})")


class ExperimentStore(ABC):
    """Abstract checksummed result store addressed by cell keys.

    Subclasses provide raw-blob storage primitives; this base class owns
    the entry format, corruption quarantine and hit/miss accounting so
    every backend is interchangeable — the conformance suite
    (``tests/store/test_conformance.py``) runs against each registered
    backend to keep it that way.
    """

    #: URL scheme the backend registers under (``local``, ``sqlite``).
    scheme: str = ""

    def __init__(self) -> None:
        self._hits = 0
        self._misses = 0
        self._puts = 0
        self._quarantines = 0

    # -- storage primitives (backend-specific) -------------------------

    @abstractmethod
    def _read(self, key: str) -> Optional[bytes]:
        """Raw entry bytes, or ``None`` for a (clean) miss.

        An entry that exists but cannot be read should warn with
        :class:`CacheCorruptionWarning` and return ``None``.
        """

    @abstractmethod
    def _write(self, key: str, blob: bytes) -> None:
        """Atomically persist raw entry bytes under ``key``."""

    @abstractmethod
    def quarantine(self, key: str) -> Optional[str]:
        """Move ``key``'s entry aside for inspection.

        Returns a human-readable location of the quarantined bytes, or
        ``None`` when quarantining failed (the entry stays in place).
        """

    @abstractmethod
    def purge(self) -> PurgeResult:
        """Delete every entry *and* every quarantined entry."""

    @abstractmethod
    def contains(self, key: str) -> bool:
        """Whether a live entry exists under ``key`` (no validation)."""

    @abstractmethod
    def __len__(self) -> int:
        """Number of live entries."""

    @abstractmethod
    def quarantined_count(self) -> int:
        """Number of quarantined corrupt entries."""

    # -- identity ------------------------------------------------------

    @property
    @abstractmethod
    def url(self) -> str:
        """``<scheme>:<location>`` string that reopens this store
        (what the coordinator hands to worker processes)."""

    @abstractmethod
    def aux_dir(self, name: str) -> Path:
        """Directory for sidecar artifacts (``failures``, ``telemetry``,
        ``queue``) tied to this store's lifetime.  Created on demand."""

    @abstractmethod
    def make_queue(self, name: str) -> "WorkQueue":
        """Open the named work queue backed by this store's storage."""

    @abstractmethod
    def queues(self) -> List[str]:
        """Names of every work queue this store holds (sorted).

        Discovery hook for the status CLI (``python -m repro.store``);
        listing must not create anything.
        """

    def close(self) -> None:
        """Release backend resources (connections); idempotent."""

    # -- shared protocol -----------------------------------------------

    def get(self, key: str) -> Tuple[bool, Any]:
        """``(hit, value)``; a missing entry is a clean miss.

        A *present but invalid* entry — bad header, SHA-256 mismatch,
        payload that will not unpickle — is quarantined with a
        :class:`CacheCorruptionWarning` and reported as a miss, so the
        cell recomputes while the corrupt bytes stay available for
        inspection.
        """
        blob = self._read(key)
        if blob is None:
            self._misses += 1
            return False, None
        value, reason = decode_entry(blob)
        if reason is None:
            self._hits += 1
            return True, value
        self._misses += 1
        self._quarantines += 1
        quarantined = self.quarantine(key)
        where = (f"quarantined to {quarantined}" if quarantined is not None
                 else "quarantine failed; entry left in place")
        warnings.warn(
            f"result-cache entry {key[:12]}... is corrupt ({reason}); "
            f"{where}; the cell will be recomputed",
            CacheCorruptionWarning, stacklevel=2)
        return False, None

    def put(self, key: str, value: Any) -> None:
        """Atomically persist ``value`` (checksummed) under ``key``."""
        self._write(key, encode_entry(value))
        self._puts += 1

    def write_raw(self, key: str, blob: bytes) -> None:
        """Write raw bytes under ``key``, bypassing entry encoding.

        Test and fault-injection hook (:mod:`repro.runner.faults` uses
        it to plant corrupt entries); normal code wants :meth:`put`.
        """
        self._write(key, blob)

    def __contains__(self, key: str) -> bool:
        return self.contains(key)

    def stats(self) -> StoreStats:
        """Current contents plus this instance's session traffic."""
        return StoreStats(
            backend=self.scheme, location=self.url,
            entries=len(self), quarantined=self.quarantined_count(),
            hits=self._hits, misses=self._misses, puts=self._puts,
            quarantines=self._quarantines)

    @classmethod
    def from_url(cls, rest: str) -> "ExperimentStore":
        """Construct from the part of the URL after ``<scheme>:``."""
        return cls(rest)  # type: ignore[call-arg]

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.url!r})"


class StoreProxy(ExperimentStore):
    """Transparent pass-through wrapper around another store.

    Base class for decorating stores — fault injection
    (:mod:`repro.store.faults`) and transient-error retries
    (:mod:`repro.store.retry`) subclass this and override only the
    operations they intercept.  *Every* operation, public protocol
    included, delegates to ``inner``: hit/miss/put traffic keeps
    accruing on the wrapped store's counters, so ``stats()`` telemetry
    is identical with or without a proxy in the stack.
    """

    def __init__(self, inner: ExperimentStore) -> None:
        super().__init__()
        self.inner = inner

    @property
    def scheme(self) -> str:  # type: ignore[override]
        return self.inner.scheme

    # -- storage primitives --------------------------------------------

    def _read(self, key: str) -> Optional[bytes]:
        return self.inner._read(key)

    def _write(self, key: str, blob: bytes) -> None:
        self.inner._write(key, blob)

    def quarantine(self, key: str) -> Optional[str]:
        return self.inner.quarantine(key)

    def purge(self) -> PurgeResult:
        return self.inner.purge()

    def contains(self, key: str) -> bool:
        return self.inner.contains(key)

    def __len__(self) -> int:
        return len(self.inner)

    def quarantined_count(self) -> int:
        return self.inner.quarantined_count()

    # -- shared protocol (delegated so traffic counters stay inner) ----

    def get(self, key: str) -> Tuple[bool, Any]:
        return self.inner.get(key)

    def put(self, key: str, value: Any) -> None:
        self.inner.put(key, value)

    def write_raw(self, key: str, blob: bytes) -> None:
        self.inner.write_raw(key, blob)

    def stats(self) -> StoreStats:
        return self.inner.stats()

    # -- identity ------------------------------------------------------

    @property
    def url(self) -> str:
        return self.inner.url

    def aux_dir(self, name: str) -> Path:
        return self.inner.aux_dir(name)

    def make_queue(self, name: str) -> "WorkQueue":
        return self.inner.make_queue(name)

    def queues(self) -> List[str]:
        return self.inner.queues()

    def close(self) -> None:
        self.inner.close()


#: Registered backends: URL scheme -> store class.
STORE_BACKENDS: Dict[str, Type[ExperimentStore]] = {}

_S = TypeVar("_S", bound=Type[ExperimentStore])


def register_backend(cls: _S) -> _S:
    """Class decorator adding ``cls`` to :data:`STORE_BACKENDS`."""
    if not cls.scheme:
        raise ConfigurationError(
            f"store backend {cls.__name__} must define a scheme")
    STORE_BACKENDS[cls.scheme] = cls
    return cls


StoreSpec = Union[str, "os.PathLike[str]", ExperimentStore]


def open_store(spec: StoreSpec) -> ExperimentStore:
    """Resolve a store URL, bare path, or instance to a store object.

    ``local:PATH`` and ``sqlite:PATH`` select a registered backend; a
    bare path (no scheme, or a one-letter Windows drive) opens the
    default ``local`` backend there, preserving the historical
    cache-directory arguments.  Unknown schemes raise
    :class:`~repro.errors.ConfigurationError` listing what exists.
    """
    if isinstance(spec, ExperimentStore):
        return spec
    text = os.fspath(spec)
    scheme, sep, rest = text.partition(":")
    if sep and len(scheme) > 1:
        try:
            backend = STORE_BACKENDS[scheme]
        except KeyError:
            raise ConfigurationError(
                f"unknown store backend {scheme!r} in {text!r}; "
                f"expected one of {sorted(STORE_BACKENDS)}") from None
        if not rest:
            raise ConfigurationError(
                f"store URL {text!r} has no path after the scheme")
        return backend.from_url(rest)
    return STORE_BACKENDS["local"].from_url(text)


def resolve_store(spec: Optional[StoreSpec]) -> Optional[ExperimentStore]:
    """:func:`open_store`, with ``None`` passing through (no store)."""
    return None if spec is None else open_store(spec)

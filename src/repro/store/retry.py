"""Transient-vs-permanent store-error classification and bounded retries.

A distributed sweep talks to its store from many processes over a disk
(or a database file) that is allowed to be momentarily unhappy: SQLite
signals contention with ``OperationalError: database is locked``, NFS
and overloaded disks surface ``EAGAIN`` / ``EBUSY`` / ``EIO``.  Those
are *transient* — the correct response is a bounded, deterministic
retry with capped exponential backoff, after which throughput degrades
but the sweep still completes.  A malformed database image, a missing
table, or ``ENOSPC`` is *permanent* — retrying cannot help, and the
worker should exit distinctly so the coordinator stops respawning into
a broken store (see :data:`repro.runner.worker.EXIT_STORE_PERMANENT`).

:func:`is_transient_store_error` draws that line;
:class:`StoreRetryPolicy` carries the budget (same ``delay(n) =
min(cap, base * 2**(n-1))`` shape as
:class:`repro.runner.resilience.RetryPolicy`); :class:`RetryingStore` /
:class:`RetryingQueue` wrap any store/queue so every operation gets the
treatment uniformly.  Backoff sleeps schedule work and never feed
results or cache keys, exactly like the runner's retry backoff.
"""

from __future__ import annotations

import errno
import sqlite3
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Sequence, Tuple, TypeVar

from ..errors import ConfigurationError
from .base import ExperimentStore, StoreProxy
from .queue import ItemState, QueueItem, WorkQueue, WorkQueueProxy

__all__ = [
    "TRANSIENT_ERRNOS",
    "StoreRetryPolicy",
    "RetryingQueue",
    "RetryingStore",
    "call_with_retries",
    "is_transient_store_error",
]

#: ``OSError`` errnos that signal momentary pressure, not broken state.
TRANSIENT_ERRNOS = frozenset({
    errno.EAGAIN, errno.EWOULDBLOCK, errno.EBUSY, errno.EINTR,
    errno.ETIMEDOUT, errno.EIO, errno.ENOLCK, errno.ESTALE,
})

#: Substrings of ``sqlite3.OperationalError`` messages that mean
#: "try again" (lock contention, momentary I/O trouble) rather than a
#: broken schema or database image.
_TRANSIENT_SQLITE_MARKERS = ("locked", "busy", "disk i/o", "unable to open")


def is_transient_store_error(exc: BaseException) -> bool:
    """Whether retrying the failed store operation can plausibly help.

    * ``sqlite3.OperationalError`` — transient only for the contention
      family (``database is locked`` / ``busy`` / ``disk I/O error`` /
      ``unable to open``); a missing table or malformed statement is
      permanent.
    * any other ``sqlite3.Error`` (``DatabaseError: malformed`` etc.) —
      permanent.
    * ``OSError`` — transient for :data:`TRANSIENT_ERRNOS`; an unset
      ``errno`` is treated as transient (unknown beats fatal — the
      retry budget keeps it bounded); everything else (``ENOSPC``,
      ``EROFS``, ``ENOENT``...) is permanent.
    * anything else is not a store-layer error: permanent.
    """
    if isinstance(exc, sqlite3.OperationalError):
        message = str(exc).lower()
        return any(marker in message for marker in
                   _TRANSIENT_SQLITE_MARKERS)
    if isinstance(exc, sqlite3.Error):
        return False
    if isinstance(exc, OSError):
        return exc.errno is None or exc.errno in TRANSIENT_ERRNOS
    return False


@dataclass(frozen=True)
class StoreRetryPolicy:
    """Bounded deterministic retry budget for store/queue operations.

    ``delay(n)`` mirrors :meth:`repro.runner.resilience.RetryPolicy.delay`
    — capped exponential, no jitter, so a fault plan plus a budget
    either always recovers or always fails.  The defaults are much
    tighter than cell-retry backoff: store operations are milliseconds,
    not cell executions.
    """

    retries: int = 5
    backoff_base: float = 0.01
    backoff_cap: float = 0.25

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise ConfigurationError(
                f"store retries must be >= 0, got {self.retries}")
        if self.backoff_base < 0 or self.backoff_cap < 0:
            raise ConfigurationError(
                f"store backoff must be non-negative, got "
                f"base={self.backoff_base} cap={self.backoff_cap}")

    def delay(self, failures: int) -> float:
        """Backoff before retry number ``failures`` (1-based)."""
        return min(self.backoff_cap,
                   self.backoff_base * (2 ** max(failures - 1, 0)))


_T = TypeVar("_T")

#: ``on_retry(operation, exc, failures)`` observer, called before each
#: backoff sleep; workers use it for stderr notes and telemetry counts.
RetryObserver = Callable[[str, BaseException, int], None]


def call_with_retries(fn: Callable[[], _T], *,
                      policy: StoreRetryPolicy,
                      operation: str = "store operation",
                      on_retry: Optional[RetryObserver] = None) -> _T:
    """Run ``fn`` retrying transient store errors within the budget.

    Permanent errors — and transient ones past ``policy.retries`` —
    re-raise unchanged, so callers classify the survivor themselves via
    :func:`is_transient_store_error`.
    """
    failures = 0
    while True:
        try:
            return fn()
        except Exception as exc:
            if not is_transient_store_error(exc) or failures >= policy.retries:
                raise
            failures += 1
            if on_retry is not None:
                on_retry(operation, exc, failures)
            time.sleep(policy.delay(failures))


class RetryingQueue(WorkQueueProxy):
    """A :class:`~repro.store.queue.WorkQueue` with transient-error
    retries on every protocol operation."""

    def __init__(self, inner: WorkQueue, policy: StoreRetryPolicy,
                 on_retry: Optional[RetryObserver] = None) -> None:
        super().__init__(inner)
        self.policy = policy
        self.on_retry = on_retry

    def _retry(self, operation: str, fn: Callable[[], _T]) -> _T:
        return call_with_retries(fn, policy=self.policy,
                                 operation=operation,
                                 on_retry=self.on_retry)

    def publish(self, items: Sequence[QueueItem]) -> int:
        return self._retry("queue.publish",
                           lambda: self.inner.publish(items))

    def claim(self, worker: str, lease: float) -> Optional[QueueItem]:
        return self._retry("queue.claim",
                           lambda: self.inner.claim(worker, lease))

    def renew(self, item_id: int, worker: str, lease: float) -> bool:
        return self._retry("queue.renew",
                           lambda: self.inner.renew(item_id, worker, lease))

    def ack(self, item_id: int, elapsed: float = 0.0) -> None:
        self._retry("queue.ack", lambda: self.inner.ack(item_id, elapsed))

    def nack(self, item_id: int, error_type: str, message: str) -> bool:
        return self._retry(
            "queue.nack",
            lambda: self.inner.nack(item_id, error_type, message))

    def requeue_failed(self) -> int:
        return self._retry("queue.requeue_failed", self.inner.requeue_failed)

    def reset_items(self, item_ids: Sequence[int]) -> int:
        return self._retry("queue.reset_items",
                           lambda: self.inner.reset_items(item_ids))

    def snapshot(self) -> Dict[int, ItemState]:
        return self._retry("queue.snapshot", self.inner.snapshot)

    def peek(self, item_id: int) -> Optional[QueueItem]:
        return self._retry("queue.peek", lambda: self.inner.peek(item_id))


class RetryingStore(StoreProxy):
    """An :class:`~repro.store.ExperimentStore` with transient-error
    retries on every operation; queues it opens are wrapped too."""

    def __init__(self, inner: ExperimentStore, policy: StoreRetryPolicy,
                 on_retry: Optional[RetryObserver] = None) -> None:
        super().__init__(inner)
        self.policy = policy
        self.on_retry = on_retry

    def _retry(self, operation: str, fn: Callable[[], _T]) -> _T:
        return call_with_retries(fn, policy=self.policy,
                                 operation=operation,
                                 on_retry=self.on_retry)

    def get(self, key: str) -> Tuple[bool, Any]:
        return self._retry("store.get", lambda: self.inner.get(key))

    def put(self, key: str, value: Any) -> None:
        self._retry("store.put", lambda: self.inner.put(key, value))

    def write_raw(self, key: str, blob: bytes) -> None:
        self._retry("store.write_raw",
                    lambda: self.inner.write_raw(key, blob))

    def quarantine(self, key: str) -> Optional[str]:
        return self._retry("store.quarantine",
                           lambda: self.inner.quarantine(key))

    def contains(self, key: str) -> bool:
        return self._retry("store.contains",
                           lambda: self.inner.contains(key))

    def __len__(self) -> int:
        return self._retry("store.len", lambda: len(self.inner))

    def quarantined_count(self) -> int:
        return self._retry("store.quarantined_count",
                           self.inner.quarantined_count)

    def make_queue(self, name: str) -> WorkQueue:
        return RetryingQueue(self.inner.make_queue(name), self.policy,
                             self.on_retry)

"""Futility Scaling: High-Associativity Cache Partitioning — reproduction.

A from-scratch, trace-driven reproduction of Wang & Chen, *Futility
Scaling: High-Associativity Cache Partitioning* (MICRO 2014): the FS
partitioning scheme (analytical and feedback-based hardware designs), the
baselines it is evaluated against (PF, Vantage, PriSM, FullAssoc,
way-partitioning), and the full experimental substrate (cache arrays,
futility rankings, synthetic SPEC-like workloads, a multiprogrammed CMP
timing model, allocation policies) plus analysis tools and per-figure
experiment drivers.

Quick start::

    from repro import (SetAssociativeArray, CoarseTimestampLRURanking,
                       FeedbackFutilityScalingScheme, PartitionedCache)

    cache = PartitionedCache(
        SetAssociativeArray(num_lines=131072, ways=16),
        CoarseTimestampLRURanking(),
        FeedbackFutilityScalingScheme(),
        num_partitions=4,
        targets=[65536, 32768, 16384, 16384])
    cache.access(addr=0x1234, part=0)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every figure.
"""

from importlib.metadata import PackageNotFoundError
from importlib.metadata import version as _dist_version

try:
    #: Resolved from the installed distribution metadata so a pip/editable
    #: install reports its true version; the fallback covers running
    #: straight from a source checkout via PYTHONPATH=src.
    __version__ = _dist_version("repro")
except PackageNotFoundError:  # uninstalled source tree
    __version__ = "1.0.0"

from . import alloc, analysis, cache, core, obs, runner, sim, trace
from .alloc import (
    EqualSharePolicy,
    QoSPolicy,
    StaticPolicy,
    UtilityBasedPolicy,
    UtilityMonitor,
    profile_miss_curve,
)
from .analysis import (
    aef,
    associativity_cdf,
    mean_absolute_deviation,
    weighted_speedup,
)
from .cache import (
    CacheStats,
    DirectMappedArray,
    FullyAssociativeArray,
    PartitionedCache,
    RandomCandidatesArray,
    SetAssociativeArray,
    SkewAssociativeArray,
    ZCacheArray,
)
from .core import (
    CQVPScheme,
    CoarseTimestampLRURanking,
    FeedbackFutilityScalingScheme,
    FullAssocScheme,
    FutilityScalingScheme,
    LFURanking,
    LRURanking,
    OPTRanking,
    PartitioningFirstScheme,
    PriSMScheme,
    RandomRanking,
    UnpartitionedScheme,
    VantageScheme,
    WayPartitionScheme,
    available_schemes,
    make_ranking,
    make_scheme,
    scaling,
)
from .api import build_array, build_cache, run_experiment
from .obs import MetricsRegistry, TelemetrySession, TimeSeriesRecorder
from .errors import (
    CellTimeoutError,
    ConfigurationError,
    InfeasiblePartitioningError,
    ReproError,
    SimulationError,
    SweepError,
    TraceError,
    WorkerError,
)
from .runner import Cell, FailedCell, ResultCache, RunConfig, run_cells
from .store import ExperimentStore, LocalFileStore, SQLiteStore, open_store
from .sim import (
    TABLE_II,
    MultiprogramSimulator,
    SystemConfig,
    simulate_single_thread,
)
from .trace import (
    BENCHMARKS,
    Trace,
    benchmark_names,
    benchmark_trace,
    run_insertion_rate_controlled,
    run_round_robin,
)

__all__ = [
    "__version__",
    # subpackages
    "alloc", "analysis", "cache", "core", "obs", "runner", "sim", "store", "trace",
    # observability
    "MetricsRegistry", "TelemetrySession", "TimeSeriesRecorder",
    # stable facade
    "build_array", "build_cache", "run_experiment",
    # experiment runner
    "Cell", "FailedCell", "ResultCache", "RunConfig", "run_cells",
    # experiment store
    "ExperimentStore", "LocalFileStore", "SQLiteStore", "open_store",
    # errors
    "ReproError", "ConfigurationError", "InfeasiblePartitioningError",
    "TraceError", "SimulationError", "WorkerError", "CellTimeoutError",
    "SweepError",
    # cache substrate
    "PartitionedCache", "CacheStats", "SetAssociativeArray",
    "DirectMappedArray", "FullyAssociativeArray", "RandomCandidatesArray",
    "SkewAssociativeArray", "ZCacheArray",
    # rankings
    "LRURanking", "LFURanking", "OPTRanking", "RandomRanking",
    "CoarseTimestampLRURanking", "make_ranking",
    # schemes
    "UnpartitionedScheme", "CQVPScheme", "PartitioningFirstScheme",
    "FutilityScalingScheme",
    "FeedbackFutilityScalingScheme", "VantageScheme", "PriSMScheme",
    "FullAssocScheme", "WayPartitionScheme", "make_scheme",
    "available_schemes", "scaling",
    # traces
    "Trace", "BENCHMARKS", "benchmark_names", "benchmark_trace",
    "run_round_robin", "run_insertion_rate_controlled",
    # sim
    "SystemConfig", "TABLE_II", "MultiprogramSimulator",
    "simulate_single_thread",
    # alloc
    "StaticPolicy", "EqualSharePolicy", "QoSPolicy", "UtilityBasedPolicy",
    "UtilityMonitor", "profile_miss_curve",
    # analysis
    "aef", "associativity_cdf", "mean_absolute_deviation", "weighted_speedup",
]

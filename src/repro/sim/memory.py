"""Off-chip memory controller model (the MCU row of Table II).

Latency model: each line fill costs the zero-load latency (200 cycles)
plus any queueing delay imposed by the bandwidth limit.  Bandwidth is a
single-server token model: at 32 GB/s and 2 GHz the channel moves 16 bytes
per cycle, so one 64B line occupies the channel for 4 cycles; requests
arriving faster than that queue up.  This is the standard first-order MCU
model for trace-driven LLC studies — misses see growing latency as the mix
becomes bandwidth-bound, which is what couples the threads in Fig. 7's
QoS experiments.
"""

from __future__ import annotations

from ..errors import ConfigurationError
from .config import SystemConfig

__all__ = ["MemoryController"]


class MemoryController:
    """Bandwidth-limited, fixed-latency memory channel."""

    def __init__(self, config: SystemConfig) -> None:
        self.latency = int(config.memory_latency)
        self.cycles_per_line = float(config.memory_cycles_per_line)
        if self.cycles_per_line <= 0:
            raise ConfigurationError("memory bandwidth model is degenerate")
        self._channel_free_at = 0.0
        #: Total demand line transfers served.
        self.requests = 0
        #: Total writeback transfers served.
        self.writebacks = 0
        #: Accumulated queueing delay (cycles) across all demand requests.
        self.total_queue_delay = 0.0

    def request(self, now: float) -> float:
        """Issue a line fill at cycle ``now``; returns its total latency."""
        start = self._channel_free_at if self._channel_free_at > now else now
        queue_delay = start - now
        self._channel_free_at = start + self.cycles_per_line
        self.requests += 1
        self.total_queue_delay += queue_delay
        return queue_delay + self.latency

    def writeback(self, now: float) -> None:
        """Post a dirty-line writeback at cycle ``now``.

        Writebacks are off the load critical path (the core does not wait
        for them) but occupy the channel, delaying later demand fills.
        """
        start = self._channel_free_at if self._channel_free_at > now else now
        self._channel_free_at = start + self.cycles_per_line
        self.writebacks += 1

    def mean_queue_delay(self) -> float:
        """Average queueing delay per request (0 when idle)."""
        if self.requests == 0:
            return 0.0
        return self.total_queue_delay / self.requests

    def utilization(self, elapsed_cycles: float) -> float:
        """Fraction of channel time busy over ``elapsed_cycles``."""
        if elapsed_cycles <= 0:
            return 0.0
        transfers = self.requests + self.writebacks
        return min(1.0, transfers * self.cycles_per_line / elapsed_cycles)

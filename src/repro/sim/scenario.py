"""Deterministic lifecycle scenarios: tenant churn driven off access counts.

A :class:`ScenarioScript` is a timeline of control-plane events — tenants
arriving and departing, shares being re-apportioned, workloads shifting
phase — each pinned to an exact *global access index*.  The engine replays
the script against a :class:`~repro.cache.cache.PartitionedCache` built
through the partition control plane (``create_partition`` /
``retire_partition`` / ``set_targets``), so the same script exercises
tenant churn under every enforcement scheme.

Determinism is load-bearing: event times are access counts (never wall
clock), workload address streams are pure functions of each tenant's own
access index, and the round-robin interleaving depends only on the set of
active tenants.  Two replays of one script are byte-identical regardless
of host, parallelism or scheduling — the property the reprolint DET004
rule pins for this module.

Fairness accounting: the engine records every tenant's address stream,
replays it into an *alone* baseline cache (the tenant owning the whole
capacity), and reports per-tenant slowdowns plus the scenario-level
unfairness factor, STP and ANTT from :mod:`repro.analysis.metrics`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from ..analysis.metrics import antt, slowdowns, stp, unfairness_factor
from ..errors import ConfigurationError

__all__ = [
    "WorkloadSpec",
    "Tenant",
    "TenantArrival",
    "TenantDeparture",
    "Reapportion",
    "PhaseShift",
    "ScenarioScript",
    "TenantReport",
    "ScenarioResult",
    "run_scenario",
    "apportion_by_shares",
]

#: Address-space stride separating tenants (each arrival gets a fresh
#: disjoint region, so a recreated partition's orphans never alias the
#: new tenant's lines).
ADDRESS_SPACING = 1 << 40

_KINDS = ("loop", "scan", "random")


@dataclass(frozen=True)
class WorkloadSpec:
    """A synthetic access pattern as a pure function of the access index.

    ``kind``:

    * ``"loop"`` — cyclic sweep over ``working_set`` lines (LRU-friendly,
      hit rate tracks allocated capacity).
    * ``"scan"`` — streaming with no reuse (the adversarial flood: every
      access a cold miss, profits from zero capacity).
    * ``"random"`` — uniform over ``working_set`` lines via a hash of the
      access index (no clock, no RNG state).

    ``offset`` shifts the footprint within the tenant's address region, so
    a :class:`PhaseShift` to a different offset models hot-set migration
    (the old lines become dead weight the scheme must drain).
    """

    kind: str
    working_set: int
    seed: int = 0
    offset: int = 0

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ConfigurationError(
                f"workload kind must be one of {_KINDS}, got {self.kind!r}")
        if self.working_set < 1:
            raise ConfigurationError(
                f"working_set must be >= 1, got {self.working_set}")
        if self.offset < 0:
            raise ConfigurationError(
                f"offset must be >= 0, got {self.offset}")

    def address(self, i: int) -> int:
        """Line address of this workload's ``i``-th access (``i`` counts
        from 0 within the current phase)."""
        if self.kind == "loop":
            return self.offset + i % self.working_set
        if self.kind == "scan":
            return self.offset + i
        # Knuth-style multiplicative hash: deterministic stand-in for a
        # uniform draw, keyed only by (seed, i).
        mixed = (i * 2654435761 + self.seed * 40503 + 12345) & 0x7FFFFFFF
        return self.offset + mixed % self.working_set


@dataclass(frozen=True)
class Tenant:
    """A scenario participant: a named workload with a capacity share."""

    name: str
    workload: WorkloadSpec
    share: float = 1.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("tenant name must be non-empty")
        if self.share <= 0:
            raise ConfigurationError(
                f"tenant share must be positive, got {self.share}")


@dataclass(frozen=True)
class TenantArrival:
    """At global access ``at``, ``tenant`` joins (a partition is created
    or a drained retired slot is reused) and targets are re-apportioned."""

    at: int
    tenant: Tenant


@dataclass(frozen=True)
class TenantDeparture:
    """At global access ``at``, the named tenant leaves: its partition is
    retired (orphans drain under normal replacement — no flush) and the
    freed share is re-apportioned among the remaining tenants."""

    at: int
    name: str


@dataclass(frozen=True)
class Reapportion:
    """At global access ``at``, replace the named tenants' shares and
    recompute every target (tenants not named keep their share)."""

    at: int
    shares: Tuple[Tuple[str, float], ...]

    def __post_init__(self) -> None:
        for _, share in self.shares:
            if share <= 0:
                raise ConfigurationError(
                    f"shares must be positive, got {share}")


@dataclass(frozen=True)
class PhaseShift:
    """At global access ``at``, the named tenant switches to a new
    workload (its per-phase access index restarts at 0)."""

    at: int
    name: str
    workload: WorkloadSpec


ScenarioEvent = Union[TenantArrival, TenantDeparture, Reapportion, PhaseShift]


@dataclass(frozen=True)
class ScenarioScript:
    """An initial tenant mix plus an event timeline, both deterministic.

    Events fire *before* the access with the same global index, in
    timeline order; ties at one index apply in listed order.
    """

    initial: Tuple[Tenant, ...]
    events: Tuple[ScenarioEvent, ...] = ()
    total_accesses: int = 0

    def __post_init__(self) -> None:
        if not self.initial:
            raise ConfigurationError(
                "a scenario needs at least one initial tenant")
        names = [t.name for t in self.initial]
        if len(set(names)) != len(names):
            raise ConfigurationError(
                f"duplicate initial tenant names: {names}")
        if self.total_accesses < 1:
            raise ConfigurationError(
                f"total_accesses must be >= 1, got {self.total_accesses}")
        last = 0
        for event in self.events:
            if event.at < last:
                raise ConfigurationError(
                    "events must be ordered by access index "
                    f"({event.at} after {last})")
            last = event.at
            if event.at >= self.total_accesses:
                raise ConfigurationError(
                    f"event at access {event.at} is beyond the scenario "
                    f"length {self.total_accesses}")


def apportion_by_shares(shares: Sequence[float], total_lines: int,
                        *, minimum: int = 1) -> List[int]:
    """Largest-remainder apportionment of ``total_lines`` by ``shares``.

    Every share gets at least ``minimum`` lines (the control plane keeps
    even a starved tenant schedulable), remainders break ties toward the
    earlier index — stable and independent of float summation order.
    """
    if not shares:
        raise ConfigurationError("shares must not be empty")
    if total_lines < minimum * len(shares):
        raise ConfigurationError(
            f"cannot give {len(shares)} tenants {minimum} line(s) each "
            f"out of {total_lines}")
    total_share = float(sum(shares))
    quotas = [share / total_share * total_lines for share in shares]
    out = [max(minimum, int(q)) for q in quotas]
    remainders = sorted(
        range(len(shares)), key=lambda i: (-(quotas[i] - int(quotas[i])), i))
    excess = total_lines - sum(out)
    i = 0
    while excess > 0:
        out[remainders[i % len(remainders)]] += 1
        excess -= 1
        i += 1
    while excess < 0:
        # Overshoot from minimum floors: shave the largest holdings.
        biggest = max(range(len(out)), key=lambda i: (out[i], -i))
        if out[biggest] <= minimum:
            break
        out[biggest] -= 1
        excess += 1
    return out


@dataclass
class TenantReport:
    """One tenant's scenario outcome."""

    name: str
    part: int
    arrived_at: int
    departed_at: Optional[int]
    accesses: int
    hits: int
    misses: int
    shared_cpi: float
    alone_cpi: Optional[float] = None
    slowdown: Optional[float] = None

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


@dataclass
class ScenarioResult:
    """Everything a scenario run produced, fairness metrics included."""

    tenants: List[TenantReport]
    total_accesses: int
    events_applied: int
    #: ``cache.lifecycle_log`` rows stamped with the global access index.
    lifecycle: List[dict] = field(default_factory=list)
    unfairness: Optional[float] = None
    stp: Optional[float] = None
    antt: Optional[float] = None
    final_occupancy: List[int] = field(default_factory=list)
    final_targets: List[int] = field(default_factory=list)

    def tenant(self, name: str) -> TenantReport:
        for report in self.tenants:
            if report.name == name:
                return report
        raise ConfigurationError(f"no tenant named {name!r} in the result")


class _TenantState:
    __slots__ = ("tenant", "part", "addr_base", "workload", "phase_index",
                 "accesses", "hits", "stream", "arrived_at", "departed_at")

    def __init__(self, tenant: Tenant, part: int, addr_base: int,
                 arrived_at: int) -> None:
        self.tenant = tenant
        self.part = part
        self.addr_base = addr_base
        self.workload = tenant.workload
        self.phase_index = 0
        self.accesses = 0
        self.hits = 0
        self.stream: List[int] = []
        self.arrived_at = arrived_at
        self.departed_at: Optional[int] = None


def run_scenario(script: ScenarioScript,
                 cache_factory: Callable[[int], "object"], *,
                 hit_latency: float = 1.0,
                 miss_latency: float = 10.0,
                 controller=None,
                 baselines: bool = True) -> ScenarioResult:
    """Replay ``script`` against a cache built by ``cache_factory``.

    ``cache_factory(num_partitions)`` must return a fresh
    :class:`~repro.cache.cache.PartitionedCache`; it is called once with
    the initial tenant count for the shared run and, when ``baselines``
    is on, once per tenant with ``1`` for the alone run that anchors the
    slowdown metrics.

    ``controller`` is an optional
    :class:`~repro.alloc.reapportion.ReapportionController`; when given,
    it observes every shared access and its epoch decisions override the
    share-based targets online.
    """
    if hit_latency <= 0 or miss_latency <= 0:
        raise ConfigurationError(
            "hit_latency and miss_latency must be positive")
    cache = cache_factory(len(script.initial))
    if getattr(cache.ranking, "needs_future", False):
        raise ConfigurationError(
            "scenario replay cannot drive future-knowledge (OPT) rankings")

    states: Dict[str, _TenantState] = {}
    history: List[_TenantState] = []
    active: List[str] = []
    arrivals = 0
    for tenant in script.initial:
        state = _TenantState(tenant, part=arrivals,
                             addr_base=(arrivals + 1) * ADDRESS_SPACING,
                             arrived_at=0)
        states[tenant.name] = state
        history.append(state)
        active.append(tenant.name)
        arrivals += 1
        if controller is not None:
            controller.register(state.part)

    log_mark = len(cache.lifecycle_log)

    def stamp(access_index: int) -> None:
        nonlocal log_mark
        while log_mark < len(cache.lifecycle_log):
            cache.lifecycle_log[log_mark]["access"] = access_index
            log_mark += 1

    def apportion(access_index: int) -> None:
        shares = [states[name].tenant.share for name in active]
        lines = apportion_by_shares(shares, cache.num_lines)
        targets = [0] * cache.num_partitions
        for name, amount in zip(active, lines):
            targets[states[name].part] = amount
        cache.set_targets(targets)
        stamp(access_index)

    def apply_controller(decision: Dict[int, int], access_index: int) -> None:
        targets = [0] * cache.num_partitions
        for part, amount in decision.items():
            targets[part] = amount
        spill = sum(targets) - cache.num_lines
        if spill > 0:
            targets[max(decision, key=lambda p: (targets[p], -p))] -= spill
        cache.set_targets(targets)
        stamp(access_index)

    def apply_event(event: ScenarioEvent, access_index: int) -> None:
        nonlocal arrivals
        if isinstance(event, TenantArrival):
            if event.tenant.name in states and \
                    states[event.tenant.name].departed_at is None:
                raise ConfigurationError(
                    f"tenant {event.tenant.name!r} is already active")
            part = cache.create_partition()
            state = _TenantState(event.tenant, part,
                                 addr_base=(arrivals + 1) * ADDRESS_SPACING,
                                 arrived_at=access_index)
            arrivals += 1
            states[event.tenant.name] = state
            history.append(state)
            active.append(event.tenant.name)
            if controller is not None:
                controller.register(part)
            apportion(access_index)
        elif isinstance(event, TenantDeparture):
            state = _require_active(states, active, event.name)
            cache.retire_partition(state.part)
            state.departed_at = access_index
            active.remove(event.name)
            if controller is not None:
                controller.deregister(state.part)
            apportion(access_index)
        elif isinstance(event, Reapportion):
            for name, share in event.shares:
                state = _require_active(states, active, name)
                # Tenant is frozen; rebind with the new share.
                states[name].tenant = Tenant(
                    name=state.tenant.name, workload=state.tenant.workload,
                    share=share)
            apportion(access_index)
        else:  # PhaseShift
            state = _require_active(states, active, event.name)
            state.workload = event.workload
            state.phase_index = 0

    apportion(0)

    events = list(script.events)
    next_event = 0
    applied = 0
    for g in range(script.total_accesses):
        while next_event < len(events) and events[next_event].at == g:
            apply_event(events[next_event], g)
            next_event += 1
            applied += 1
        name = active[g % len(active)]
        state = states[name]
        addr = state.addr_base + state.workload.address(state.phase_index)
        state.phase_index += 1
        hit = cache.access(addr, state.part)
        state.accesses += 1
        if hit:
            state.hits += 1
        state.stream.append(addr)
        if controller is not None:
            decision = controller.observe(state.part, addr)
            if decision:
                apply_controller(decision, g)
    stamp(script.total_accesses)
    cache.check_invariants()

    # Telemetry-enabled runs persist the control-plane event log as a
    # lifecycle/*.jsonl artifact; with telemetry off this is a no-op.
    from ..obs.runtime import write_lifecycle
    write_lifecycle(cache)

    reports: List[TenantReport] = []
    for state in history:
        misses = state.accesses - state.hits
        shared_cpi = (
            (state.hits * hit_latency + misses * miss_latency)
            / state.accesses) if state.accesses else hit_latency
        reports.append(TenantReport(
            name=state.tenant.name, part=state.part,
            arrived_at=state.arrived_at, departed_at=state.departed_at,
            accesses=state.accesses, hits=state.hits, misses=misses,
            shared_cpi=shared_cpi))

    measurable = [(state, report) for state, report in zip(history, reports)
                  if report.accesses > 0]
    if baselines and measurable:
        for state, report in measurable:
            report.alone_cpi = _alone_cpi(
                cache_factory, state.stream, hit_latency, miss_latency)
        slows = slowdowns([r.shared_cpi for _, r in measurable],
                          [r.alone_cpi for _, r in measurable])
        for (_, report), value in zip(measurable, slows):
            report.slowdown = value
        result_unfairness = unfairness_factor(slows)
        result_stp = stp(slows)
        result_antt = antt(slows)
    else:
        result_unfairness = result_stp = result_antt = None

    return ScenarioResult(
        tenants=reports,
        total_accesses=script.total_accesses,
        events_applied=applied,
        lifecycle=[dict(row) for row in cache.lifecycle_log],
        unfairness=result_unfairness,
        stp=result_stp,
        antt=result_antt,
        final_occupancy=list(cache.actual_sizes),
        final_targets=list(cache.targets),
    )


def _require_active(states: Dict[str, _TenantState], active: List[str],
                    name: str) -> _TenantState:
    if name not in active:
        raise ConfigurationError(f"tenant {name!r} is not active")
    return states[name]


def _alone_cpi(cache_factory, stream: List[int],
               hit_latency: float, miss_latency: float) -> float:
    """Replay one tenant's recorded stream into a single-partition cache
    (the tenant alone, owning the whole capacity)."""
    alone = cache_factory(1)
    access = alone.access
    hits = 0
    for addr in stream:
        if access(addr, 0):
            hits += 1
    misses = len(stream) - hits
    return (hits * hit_latency + misses * miss_latency) / len(stream)

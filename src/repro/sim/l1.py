"""Private L1 cache model.

The paper's traces are L2 accesses collected below per-core private L1s
(Sniper models the cores and L1s; the trace-driven simulator models the L2
onward).  Our synthetic benchmark profiles already describe the *L2-level*
access stream, so the main simulation path does not re-filter through an
L1.  This model exists for methodological completeness: it lets raw
address streams be filtered the way the paper's collection pipeline did
(see :func:`filter_through_l1`), and it is exercised by tests and the
trace-generation example.
"""

from __future__ import annotations

from typing import List, Optional

from ..errors import ConfigurationError
from ..trace.access import Trace

__all__ = ["L1Cache", "filter_through_l1"]


class L1Cache:
    """A small private set-associative LRU cache (hit/miss filter only)."""

    def __init__(self, num_lines: int, ways: int) -> None:
        if num_lines <= 0 or ways <= 0 or num_lines % ways:
            raise ConfigurationError(
                f"bad L1 geometry: {num_lines} lines, {ways} ways")
        self.num_lines = num_lines
        self.ways = ways
        self.num_sets = num_lines // ways
        # Per-set LRU stacks, most-recent first.
        self._sets: List[List[int]] = [[] for _ in range(self.num_sets)]
        self.hits = 0
        self.misses = 0

    def access(self, addr: int) -> bool:
        """One access; returns True on hit.  Evicts LRU on fill."""
        lru = self._sets[addr % self.num_sets]
        try:
            lru.remove(addr)
            hit = True
            self.hits += 1
        except ValueError:
            hit = False
            self.misses += 1
            if len(lru) >= self.ways:
                lru.pop()
        lru.insert(0, addr)
        return hit

    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


def filter_through_l1(trace: Trace, l1: Optional[L1Cache] = None, *,
                      num_lines: int = 512, ways: int = 4) -> Trace:
    """The L2 access stream a private L1 would forward for ``trace``.

    Gaps are merged so the filtered trace preserves the instruction count:
    each surviving access carries its own gap plus the gaps of the L1 hits
    absorbed since the previous L2 access.
    """
    cache = l1 if l1 is not None else L1Cache(num_lines, ways)
    addresses = []
    gaps = []
    pending_gap = 0
    for addr, gap in zip(trace.addresses, trace.gaps):
        pending_gap += gap
        if not cache.access(addr):
            addresses.append(addr)
            gaps.append(pending_gap)
            pending_gap = 0
    return Trace(addresses, gaps, name=f"{trace.name}.l2")

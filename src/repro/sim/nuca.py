"""Banked NUCA L2 latency model (Table II: 4 banks, 8-cycle access,
4-cycle average L1-to-L2 network latency).

Addresses are interleaved across banks by low-order line-address bits.
Each bank is a single-ported server: overlapping accesses to the same bank
queue.  The returned latency for an access is network + access + any bank
queueing delay.
"""

from __future__ import annotations

from typing import List

from ..errors import ConfigurationError
from .config import SystemConfig

__all__ = ["NUCAModel"]


class NUCAModel:
    """Bank-interleaved L2 access latency."""

    #: Cycles a bank is busy per access (pipelined tag+data assumed).
    BANK_OCCUPANCY = 1.0

    def __init__(self, config: SystemConfig) -> None:
        if config.l2_banks <= 0:
            raise ConfigurationError(
                f"l2_banks must be positive, got {config.l2_banks}")
        self.banks = int(config.l2_banks)
        self.network_latency = int(config.l1_to_l2_latency)
        self.access_latency = int(config.l2_access_latency)
        self._bank_free_at: List[float] = [0.0] * self.banks
        self.accesses = 0
        self.total_queue_delay = 0.0

    def bank_of(self, addr: int) -> int:
        return addr % self.banks

    def access(self, addr: int, now: float) -> float:
        """L2 lookup latency for ``addr`` starting at cycle ``now``."""
        bank = addr % self.banks
        free_at = self._bank_free_at[bank]
        start = free_at if free_at > now else now
        queue_delay = start - now
        self._bank_free_at[bank] = start + self.BANK_OCCUPANCY
        self.accesses += 1
        self.total_queue_delay += queue_delay
        return self.network_latency + queue_delay + self.access_latency

    def mean_queue_delay(self) -> float:
        if self.accesses == 0:
            return 0.0
        return self.total_queue_delay / self.accesses

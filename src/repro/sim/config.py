"""System configuration (Table II of the paper).

The evaluated system: a 32-core CMP of 2 GHz in-order x86-64 cores with
private split 32KB L1s, an 8MB shared 16-way set-associative non-inclusive
L2 (NUCA, 4 banks, XOR indexing, 64B lines, 8-cycle access, 4-cycle average
L1-to-L2 latency) and an off-chip memory with 200-cycle zero-load latency
and 32 GB/s peak bandwidth.

:data:`TABLE_II` is the paper-exact configuration;
:func:`scaled_config` shrinks the L2 (and nothing else) for bench-friendly
runs while keeping every ratio that matters (ways, R, latencies).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict

from ..errors import ConfigurationError

__all__ = ["SystemConfig", "TABLE_II", "scaled_config"]

LINE_BYTES = 64


@dataclass(frozen=True)
class SystemConfig:
    """Table II system parameters (line size fixed at 64B)."""

    cores: int = 32
    frequency_ghz: float = 2.0
    cpi_base: float = 1.0                 # in-order core
    l1_size_kb: int = 32                  # split I/D, private, per core
    l1_ways: int = 4
    l1_latency: int = 1
    l2_size_mb: float = 8.0               # shared NUCA L2
    l2_ways: int = 16
    l2_access_latency: int = 8
    l1_to_l2_latency: int = 4             # average NUCA hop latency
    l2_banks: int = 4
    memory_latency: int = 200             # zero-load cycles
    memory_bandwidth_gbps: float = 32.0   # peak
    #: Seed for every stochastic knob of a simulation built from this
    #: config (write marking, ...); simulators derive a private
    #: ``random.Random`` from it so replays are reproducible and two
    #: concurrent simulations never share generator state.
    rng_seed: int = 0

    def __post_init__(self) -> None:
        if self.cores <= 0:
            raise ConfigurationError(f"cores must be positive, got {self.cores}")
        if self.l2_ways <= 0 or self.l2_size_mb <= 0:
            raise ConfigurationError("L2 geometry must be positive")
        if self.memory_bandwidth_gbps <= 0 or self.frequency_ghz <= 0:
            raise ConfigurationError("bandwidth and frequency must be positive")

    @property
    def l2_lines(self) -> int:
        """Total L2 lines."""
        return int(self.l2_size_mb * 1024 * 1024) // LINE_BYTES

    @property
    def l1_lines(self) -> int:
        """Lines per private L1 (each of I and D)."""
        return self.l1_size_kb * 1024 // LINE_BYTES

    @property
    def l2_hit_latency(self) -> int:
        """Total L1-miss-to-L2-hit latency in cycles."""
        return self.l1_to_l2_latency + self.l2_access_latency

    @property
    def memory_cycles_per_line(self) -> float:
        """Minimum cycles between line transfers at peak bandwidth."""
        bytes_per_cycle = (self.memory_bandwidth_gbps * 1e9
                           / (self.frequency_ghz * 1e9))
        return LINE_BYTES / bytes_per_cycle

    def describe(self) -> Dict[str, str]:
        """Table II rows, ready to print."""
        return {
            "Cores": (f"{self.frequency_ghz:g} GHz in-order, x86-64 ISA, "
                      f"{self.cores} cores"),
            "L1 $s": (f"split I/D, private, {self.l1_size_kb}KB, "
                      f"{self.l1_ways}-way set associative, "
                      f"{self.l1_latency}-cycle latency, {LINE_BYTES}B line"),
            "L2 $": (f"{self.l2_ways}-way set associative, non-inclusive, "
                     f"unified, shared, {self.l2_access_latency}-cycle access "
                     f"latency, {LINE_BYTES}B line, {self.l2_size_mb:g} MB "
                     f"NUCA, {self.l2_banks} banks, "
                     f"{self.l1_to_l2_latency}-cycle average L1-to-L2 latency"),
            "MCU": (f"{self.memory_latency} cycles zero-load latency, "
                    f"{self.memory_bandwidth_gbps:g} GB/s peak memory BW"),
        }


#: The paper's exact Table II configuration.
TABLE_II = SystemConfig()


def scaled_config(l2_size_mb: float, *, cores: int = 32) -> SystemConfig:
    """A configuration with a smaller L2 (and optionally fewer cores) for
    scaled-down experiments; everything else stays Table II."""
    return replace(TABLE_II, l2_size_mb=l2_size_mb, cores=cores)

"""CMP timing simulation: Table II configuration, memory/NUCA models,
private L1 filter, the multiprogrammed trace-replay engine, and the
deterministic lifecycle scenario engine."""

from .config import TABLE_II, SystemConfig, scaled_config
from .engine import (
    MultiprogramSimulator,
    SimulationResult,
    ThreadResult,
    simulate_single_thread,
)
from .l1 import L1Cache, filter_through_l1
from .memory import MemoryController
from .nuca import NUCAModel
from .scenario import (
    PhaseShift,
    Reapportion,
    ScenarioResult,
    ScenarioScript,
    Tenant,
    TenantArrival,
    TenantDeparture,
    TenantReport,
    WorkloadSpec,
    apportion_by_shares,
    run_scenario,
)

__all__ = [
    "SystemConfig",
    "TABLE_II",
    "scaled_config",
    "MemoryController",
    "NUCAModel",
    "L1Cache",
    "filter_through_l1",
    "MultiprogramSimulator",
    "SimulationResult",
    "ThreadResult",
    "simulate_single_thread",
    "WorkloadSpec",
    "Tenant",
    "TenantArrival",
    "TenantDeparture",
    "Reapportion",
    "PhaseShift",
    "ScenarioScript",
    "TenantReport",
    "ScenarioResult",
    "run_scenario",
    "apportion_by_shares",
]

"""CMP timing simulation: Table II configuration, memory/NUCA models,
private L1 filter, and the multiprogrammed trace-replay engine."""

from .config import TABLE_II, SystemConfig, scaled_config
from .engine import (
    MultiprogramSimulator,
    SimulationResult,
    ThreadResult,
    simulate_single_thread,
)
from .l1 import L1Cache, filter_through_l1
from .memory import MemoryController
from .nuca import NUCAModel

__all__ = [
    "SystemConfig",
    "TABLE_II",
    "scaled_config",
    "MemoryController",
    "NUCAModel",
    "L1Cache",
    "filter_through_l1",
    "MultiprogramSimulator",
    "SimulationResult",
    "ThreadResult",
    "simulate_single_thread",
]

"""Trace-driven multiprogrammed CMP simulation engine (Section VII-A).

Reproduces the paper's methodology: the simulator models the shared L2, the
NUCA banking, and off-chip memory; each thread replays its L2 access trace,
and "network and memory access latency will be fed back into trace timing
and, thus, delay future L2 cache accesses accordingly".

Implementation: each thread has a virtual clock.  Threads are scheduled
through a min-heap on virtual time; the earliest thread issues its next
access, the latency is computed (L2 hit vs miss through the bandwidth-
limited MCU), and the thread's clock advances by the instruction gap times
the base CPI plus the access latency — an in-order core stalling on every
L2 access.

Each thread runs until it retires ``instruction_limit`` instructions
(paper: 250M per thread); threads that finish early keep replaying their
traces to preserve interference, but their statistics freeze at the finish
line (standard multiprogrammed-simulation practice).
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..cache.cache import PartitionedCache
from ..errors import ConfigurationError, SimulationError
from ..trace.access import Trace
from ..trace.mixing import TraceCursor
from .config import SystemConfig, TABLE_II
from .l1 import L1Cache
from .memory import MemoryController
from .nuca import NUCAModel

__all__ = ["ThreadResult", "SimulationResult", "MultiprogramSimulator",
           "simulate_single_thread"]


@dataclass
class ThreadResult:
    """Per-thread outcome of a timed simulation."""

    thread: int
    instructions: int
    cycles: float
    accesses: int
    misses: int

    @property
    def ipc(self) -> float:
        """Instructions per cycle while the thread was being measured."""
        return self.instructions / self.cycles if self.cycles > 0 else 0.0

    @property
    def mpki(self) -> float:
        """L2 misses per kilo-instruction."""
        if self.instructions == 0:
            return 0.0
        return self.misses / self.instructions * 1000.0

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


@dataclass
class SimulationResult:
    """Outcome of a multiprogrammed run."""

    threads: List[ThreadResult]
    total_cycles: float

    @property
    def ipcs(self) -> List[float]:
        return [t.ipc for t in self.threads]

    def thread(self, tid: int) -> ThreadResult:
        return self.threads[tid]


class _ThreadState:
    __slots__ = ("cursor", "vtime", "instructions", "accesses", "misses",
                 "finished", "result")

    def __init__(self, cursor: TraceCursor) -> None:
        self.cursor = cursor
        self.vtime = 0.0
        self.instructions = 0
        self.accesses = 0
        self.misses = 0
        self.finished = False
        self.result: Optional[ThreadResult] = None


class MultiprogramSimulator:
    """Timed replay of one trace per thread against a shared partitioned L2."""

    def __init__(self, cache: PartitionedCache, traces: Sequence[Trace],
                 config: SystemConfig = TABLE_II, *,
                 instruction_limit: int = 1_000_000,
                 write_fractions: Optional[Sequence[float]] = None,
                 model_l1: bool = False,
                 seed: Optional[int] = None) -> None:
        if len(traces) != cache.num_partitions:
            raise ConfigurationError(
                f"{len(traces)} traces for {cache.num_partitions} partitions; "
                f"threads map 1:1 onto partitions")
        if instruction_limit <= 0:
            raise ConfigurationError(
                f"instruction_limit must be positive, got {instruction_limit}")
        if write_fractions is not None:
            if len(write_fractions) != len(traces):
                raise ConfigurationError(
                    f"{len(write_fractions)} write fractions for "
                    f"{len(traces)} traces")
            for i, w in enumerate(write_fractions):
                if not 0.0 <= w <= 1.0:
                    raise ConfigurationError(
                        f"write_fractions[{i}] must be in [0, 1], got {w}")
        self.write_fractions = (list(write_fractions)
                                if write_fractions is not None else None)
        # Private, config-seeded generator: never the module-level RNG,
        # whose global state would couple unrelated simulations and break
        # replay determinism (reprolint DET001 polices this repo-wide).
        self._rng = random.Random(config.rng_seed if seed is None else seed)
        # With model_l1, traces are *raw* per-core address streams: each
        # thread gets a private Table II L1 (unified here for simplicity)
        # and only L1 misses reach the shared L2 — the collection pipeline
        # the paper's traces went through, done online.
        self._l1s: Optional[List[L1Cache]] = None
        if model_l1:
            self._l1s = [L1Cache(config.l1_lines, config.l1_ways)
                         for _ in traces]
        self.cache = cache
        self.config = config
        self.instruction_limit = int(instruction_limit)
        self.memory = MemoryController(config)
        self.nuca = NUCAModel(config)
        needs_future = cache.ranking.needs_future
        self._threads = [
            _ThreadState(TraceCursor(t, with_next_use=needs_future))
            for t in traces]

    def run(self) -> SimulationResult:
        """Run until every thread retires its instruction limit.

        When telemetry is active (:mod:`repro.obs.runtime`) the run is
        wrapped in a per-partition series recording: the recorder is
        subscribed *before* the loop captures the compiled access
        kernel, and unsubscribed (restoring the telemetry-free kernel)
        when the loop finishes.  With telemetry off this is a no-op and
        no obs module state is touched.
        """
        from ..obs.runtime import record_series
        with record_series(self.cache):
            return self._run_loop()

    def _run_loop(self) -> SimulationResult:
        cache = self.cache
        access = cache.access
        nuca_access = self.nuca.access
        memory_request = self.memory.request
        memory_writeback = self.memory.writeback
        write_fractions = self.write_fractions
        rng_random = self._rng.random
        l1s = self._l1s
        l1_latency = self.config.l1_latency
        cpi = self.config.cpi_base
        limit = self.instruction_limit
        threads = self._threads
        unfinished = len(threads)
        heap = [(0.0, tid) for tid in range(len(threads))]
        heapq.heapify(heap)
        max_time = 0.0
        while unfinished > 0:
            if not heap:  # pragma: no cover - defensive
                raise SimulationError("scheduler heap drained unexpectedly")
            vtime, tid = heapq.heappop(heap)
            state = threads[tid]
            addr, next_use, gap = state.cursor.next()
            is_write = (write_fractions is not None
                        and rng_random() < write_fractions[tid])
            if l1s is not None and l1s[tid].access(addr):
                # Private-L1 hit: the shared L2 never sees the access.
                latency = l1_latency
                hit = True
            else:
                latency = nuca_access(addr, vtime)
                hit = access(addr, tid, next_use, is_write=is_write)
                if not hit:
                    latency += memory_request(vtime + latency)
                    if cache.writeback_pending:
                        memory_writeback(vtime + latency)
            state.vtime = vtime + gap * cpi + latency
            if not state.finished:
                state.instructions += gap
                state.accesses += 1
                if not hit:
                    state.misses += 1
                if state.instructions >= limit:
                    state.finished = True
                    state.result = ThreadResult(
                        thread=tid, instructions=state.instructions,
                        cycles=state.vtime, accesses=state.accesses,
                        misses=state.misses)
                    unfinished -= 1
                    max_time = max(max_time, state.vtime)
            if unfinished > 0:
                heapq.heappush(heap, (state.vtime, tid))
        results = [s.result for s in threads]
        return SimulationResult(threads=results, total_cycles=max_time)


def simulate_single_thread(cache: PartitionedCache, trace: Trace,
                           config: SystemConfig = TABLE_II, *,
                           instruction_limit: Optional[int] = None
                           ) -> ThreadResult:
    """Convenience wrapper: one thread, one partition (Fig. 6 style runs).

    When ``instruction_limit`` is omitted the trace is replayed exactly
    once.
    """
    if cache.num_partitions != 1:
        raise ConfigurationError(
            "simulate_single_thread expects a single-partition cache")
    limit = instruction_limit if instruction_limit is not None else trace.instructions
    sim = MultiprogramSimulator(cache, [trace], config,
                                instruction_limit=limit)
    return sim.run().threads[0]

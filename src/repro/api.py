"""Stable top-level facade for assembling caches and running experiments.

The library composes three axes — array organization, futility ranking,
partitioning scheme — whose constructors were historically scattered
(:func:`make_ranking`, :func:`make_scheme`, per-array classes).
:func:`build_cache` is the one-call entry point: every axis accepts
*either* a registry name string *or* an already-built instance, all
inputs are validated up front, and misconfiguration raises
:class:`~repro.errors.ConfigurationError` with an actionable message.

:func:`run_experiment` is the matching one-call entry point for the
experiment side: registry lookup, config construction, the parallel
cached runner and its fault-tolerance knobs (retries, per-cell
timeouts, keep-going sweeps) behind a single function.

Example::

    from repro import build_cache, run_experiment
    from repro.runner import RunConfig

    cache = build_cache(array="set-assoc", num_lines=131_072, ways=16,
                        ranking="coarse-ts-lru", scheme="fs-feedback",
                        num_partitions=32, targets=[4096] * 32)
    result = run_experiment(
        "fig3", scale="smoke",
        run_config=RunConfig(jobs=4, retries=2, keep_going=True))
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Any, Callable, Dict, Optional, Sequence, Union

from .cache.arrays import (
    CacheArray,
    DirectMappedArray,
    FullyAssociativeArray,
    RandomCandidatesArray,
    SetAssociativeArray,
    SkewAssociativeArray,
    ZCacheArray,
)
from .cache.cache import PartitionedCache
from .core.futility import FutilityRanking, make_ranking
from .core.schemes.base import PartitioningScheme, make_scheme
from .errors import ConfigurationError

if TYPE_CHECKING:  # lazy at runtime: keeps `import repro` light
    from .runner import RunConfig

__all__ = ["ARRAY_KINDS", "build_array", "build_cache", "run_experiment"]

#: Array registry: name -> constructor taking (num_lines, ways,
#: candidates, seed) and using whichever parameters apply.
ARRAY_KINDS: Dict[str, Callable[[int, int, int, int], CacheArray]] = {
    "set-assoc": lambda n, ways, cand, seed: SetAssociativeArray(n, ways),
    "random": lambda n, ways, cand, seed: RandomCandidatesArray(
        n, cand, seed=seed),
    "skew": lambda n, ways, cand, seed: SkewAssociativeArray(
        n, ways, hash_seed=seed),
    "zcache": lambda n, ways, cand, seed: ZCacheArray(
        n, ways, cand, hash_seed=seed),
    "full-assoc": lambda n, ways, cand, seed: FullyAssociativeArray(n),
    "direct-mapped": lambda n, ways, cand, seed: DirectMappedArray(n),
}


def build_array(kind: Union[str, CacheArray], num_lines: Optional[int] = None,
                *, ways: int = 16, candidates: int = 16,
                seed: int = 0) -> CacheArray:
    """Array factory accepting a kind name or a ready instance.

    ``kind`` is one of ``set-assoc`` (XOR-indexed, the Table II L2),
    ``random`` (the Uniformity-Assumption array of Figs. 4/5), ``skew``,
    ``zcache``, ``full-assoc`` or ``direct-mapped`` — or an existing
    :class:`CacheArray`, returned unchanged.
    """
    if isinstance(kind, CacheArray):
        return kind
    if not isinstance(kind, str):
        raise ConfigurationError(
            f"array must be a kind name or a CacheArray instance, "
            f"got {type(kind).__name__}")
    try:
        ctor = ARRAY_KINDS[kind]
    except KeyError:
        raise ConfigurationError(
            f"unknown array kind {kind!r}; expected one of "
            f"{sorted(ARRAY_KINDS)}") from None
    if num_lines is None:
        raise ConfigurationError(
            f"num_lines is required to build a {kind!r} array by name")
    return ctor(int(num_lines), ways, candidates, seed)


def build_cache(*, array: Union[str, CacheArray],
                ranking: Union[str, FutilityRanking] = "lru",
                scheme: Union[str, PartitioningScheme] = "fs-feedback",
                num_partitions: Optional[int] = None,
                targets: Optional[Sequence[int]] = None,
                num_lines: Optional[int] = None, ways: int = 16,
                candidates: int = 16, seed: int = 0,
                **cache_kwargs: Any) -> PartitionedCache:
    """Build a :class:`PartitionedCache` from names or instances.

    Parameters
    ----------
    array:
        Array kind name (with ``num_lines`` and, as applicable, ``ways``
        / ``candidates`` / ``seed``) or a :class:`CacheArray` instance.
    ranking:
        Futility ranking name (``lru``, ``lfu``, ``opt``,
        ``coarse-ts-lru``, ``random``) or instance.
    scheme:
        Partitioning scheme name (``fs``, ``fs-feedback``, ``pf``,
        ``vantage``, ``prism``, ...) or instance.
    num_partitions:
        Number of partitions; defaults to ``len(targets)`` when targets
        are given.
    targets:
        Optional per-partition target sizes in lines; must match
        ``num_partitions``.
    cache_kwargs:
        Forwarded to :class:`PartitionedCache` (``reference_ranking``,
        ``deviation_partitions``, ...).
    """
    built_array = build_array(array, num_lines, ways=ways,
                              candidates=candidates, seed=seed)
    if isinstance(ranking, str):
        ranking = make_ranking(ranking)
    elif not isinstance(ranking, FutilityRanking):
        raise ConfigurationError(
            f"ranking must be a name or FutilityRanking instance, "
            f"got {type(ranking).__name__}")
    if isinstance(scheme, str):
        scheme = make_scheme(scheme)
    elif not isinstance(scheme, PartitioningScheme):
        raise ConfigurationError(
            f"scheme must be a name or PartitioningScheme instance, "
            f"got {type(scheme).__name__}")

    if num_partitions is None:
        if targets is None:
            raise ConfigurationError(
                "num_partitions is required when targets are not given")
        num_partitions = len(targets)
    num_partitions = int(num_partitions)
    if num_partitions < 1:
        raise ConfigurationError(
            f"num_partitions must be >= 1, got {num_partitions}")
    if targets is not None:
        targets = [int(t) for t in targets]
        if len(targets) != num_partitions:
            raise ConfigurationError(
                f"targets has {len(targets)} entries for "
                f"{num_partitions} partitions")
        if any(t < 0 for t in targets):
            raise ConfigurationError("targets must be non-negative")
        if sum(targets) > built_array.num_lines:
            raise ConfigurationError(
                f"targets sum to {sum(targets)} lines but the array has "
                f"only {built_array.num_lines}")
        cache_kwargs["targets"] = targets
    return PartitionedCache(built_array, ranking, scheme, num_partitions,
                            **cache_kwargs)


def run_experiment(name: str, *, scale: str = "scaled",
                   config: Optional[Any] = None,
                   run_config: Optional["RunConfig"] = None,
                   telemetry: Union[str, "os.PathLike[str]", None] = None,
                   telemetry_interval: int = 1024,
                   telemetry_profile: bool = False,
                   **legacy: Any) -> Any:
    """Run a registered experiment end to end and return its result.

    One-call front door to the experiment registry and the
    fault-tolerant parallel runner:

    - ``name`` is a registry key (``"fig2"`` ... ``"fig8"``,
      ``"tableII"``); unknown names raise
      :class:`~repro.errors.ConfigurationError` listing what exists.
    - ``config`` overrides the config object; otherwise it is built
      from ``scale`` (``smoke``/``scaled``/``paper``).
    - ``run_config`` is a :class:`~repro.runner.RunConfig` saying how
      to execute the sweep: parallelism (``jobs`` /
      ``queue_workers``), the experiment store (``local:PATH`` /
      ``sqlite:PATH`` URL, bare path, instance, or ``None`` for no
      memoization), and the resilience knobs (``retries``,
      ``cell_timeout``, ``keep_going``).  Under ``keep_going`` a sweep
      with permanently failed cells raises
      :class:`~repro.errors.SweepError` carrying the
      :class:`~repro.runner.FailedCell` sentinels and partial results.
    - The historical keyword style (``jobs=4, store=..., retries=2``)
      still works behind a deprecation shim emitting a single
      :class:`DeprecationWarning`; the removed ``cache=`` alias of
      ``store`` is an error.
    - ``telemetry`` names a directory: the run records metrics, per-cell
      spans, per-partition time series (one sample every
      ``telemetry_interval`` accesses) and, with
      ``telemetry_profile=True``, per-cell cProfile captures there, plus
      a ``manifest.json`` tying them together.  Recording never changes
      results, figure bytes, or cache keys.  Inspect with
      ``python -m repro.obs report DIR``.
    """
    # Lazy: `repro` imports this module at package-import time, and the
    # experiment modules register themselves on first import — pulling
    # them in here keeps `import repro` light and cycle-free.
    from .experiments import registry as _registry
    from .runner import Progress
    from .runner.config import coerce_run_config

    try:
        spec = _registry.get_experiment(name)
    except KeyError:
        raise ConfigurationError(
            f"unknown experiment {name!r}; registered: "
            f"{_registry.experiment_names()}") from None
    rc = coerce_run_config(run_config, legacy, where="repro.run_experiment")
    if config is None:
        config = spec.config(scale)
    if rc.progress is None:
        rc = rc.replace(progress=Progress(enabled=False))
    if telemetry is None:
        return spec.run(config, run_config=rc)
    from .obs import TelemetrySession

    session = TelemetrySession(os.fspath(telemetry), experiment=name,
                               interval=telemetry_interval,
                               profile=telemetry_profile)
    with session:
        with session.phase("sweep"):
            return spec.run(config,
                            run_config=rc.replace(
                                telemetry=session.telemetry))

"""SimPoint-style representative-region selection [23].

The paper simulates a 250M-instruction SimPoint region per benchmark
instead of whole programs.  This module reproduces the methodology for our
synthetic traces: split a trace into fixed-size intervals, build a
per-interval feature vector (an address-region histogram — the trace-level
analog of SimPoint's basic-block vectors), cluster the intervals with
k-means, and return one representative interval per cluster together with
its weight (cluster population share).

Use :func:`select_regions` to pick regions and
:func:`representative_trace` to splice the single highest-weight region (or
a weighted concatenation) back into a compact trace for simulation.
"""

from __future__ import annotations

from typing import List, NamedTuple, Optional

import numpy as np

from ..errors import ConfigurationError, TraceError
from .access import Trace

__all__ = ["Region", "interval_features", "kmeans", "select_regions",
           "representative_trace"]


class Region(NamedTuple):
    """A representative trace region."""

    start: int      #: first access index of the interval
    length: int     #: interval length in accesses
    weight: float   #: fraction of intervals its cluster covers


def interval_features(trace: Trace, interval: int,
                      num_buckets: int = 64) -> np.ndarray:
    """Per-interval address-region histograms, L1-normalized.

    Returns an array of shape ``(num_intervals, num_buckets)``; a trailing
    partial interval is dropped (as SimPoint does).
    """
    if interval <= 0:
        raise ConfigurationError(f"interval must be positive, got {interval}")
    if num_buckets <= 0:
        raise ConfigurationError(f"num_buckets must be positive, got {num_buckets}")
    addresses = np.frombuffer(trace.addresses, dtype=np.int64)
    num_intervals = len(addresses) // interval
    if num_intervals == 0:
        raise TraceError(
            f"trace of {len(trace)} accesses has no complete interval of "
            f"{interval}")
    clipped = addresses[:num_intervals * interval]
    # Bucket by address-space region: shift off low bits so that one bucket
    # covers a contiguous chunk of the footprint.
    span = int(clipped.max()) - int(clipped.min()) + 1
    shift = max(0, (span // num_buckets)).bit_length()
    buckets = ((clipped - clipped.min()) >> shift) % num_buckets
    features = np.zeros((num_intervals, num_buckets), dtype=np.float64)
    interval_index = np.repeat(np.arange(num_intervals), interval)
    np.add.at(features, (interval_index, buckets), 1.0)
    features /= interval
    return features


def kmeans(features: np.ndarray, k: int, *, seed: int = 0,
           max_iterations: int = 100) -> np.ndarray:
    """Plain k-means; returns the cluster label of each row.

    Deterministic for a given seed (k-means++ style farthest-point
    initialization on a seeded RNG).
    """
    n = len(features)
    if k <= 0:
        raise ConfigurationError(f"k must be positive, got {k}")
    k = min(k, n)
    rng = np.random.default_rng(seed)
    centroids = np.empty((k, features.shape[1]))
    centroids[0] = features[rng.integers(n)]
    distances = np.full(n, np.inf)
    for j in range(1, k):
        distances = np.minimum(
            distances, ((features - centroids[j - 1]) ** 2).sum(axis=1))
        total = distances.sum()
        if total <= 0:
            centroids[j:] = features[rng.integers(n, size=k - j)]
            break
        centroids[j] = features[rng.choice(n, p=distances / total)]
    labels = np.zeros(n, dtype=np.intp)
    for _ in range(max_iterations):
        dist = ((features[:, None, :] - centroids[None, :, :]) ** 2).sum(axis=2)
        new_labels = dist.argmin(axis=1)
        if np.array_equal(new_labels, labels) and _ > 0:
            break
        labels = new_labels
        for j in range(k):
            members = features[labels == j]
            if len(members):
                centroids[j] = members.mean(axis=0)
    return labels


def select_regions(trace: Trace, interval: int, k: int, *,
                   num_buckets: int = 64, seed: int = 0) -> List[Region]:
    """Pick ``k`` representative regions, sorted by descending weight."""
    features = interval_features(trace, interval, num_buckets)
    labels = kmeans(features, k, seed=seed)
    regions: List[Region] = []
    num_intervals = len(features)
    for j in np.unique(labels):
        members = np.flatnonzero(labels == j)
        centroid = features[members].mean(axis=0)
        representative = members[
            ((features[members] - centroid) ** 2).sum(axis=1).argmin()]
        regions.append(Region(start=int(representative) * interval,
                              length=interval,
                              weight=len(members) / num_intervals))
    regions.sort(key=lambda r: r.weight, reverse=True)
    return regions


def representative_trace(trace: Trace, regions: List[Region],
                         name: Optional[str] = None) -> Trace:
    """Concatenate the selected regions into one compact trace."""
    if not regions:
        raise ConfigurationError("regions must not be empty")
    out = trace.slice(regions[0].start, regions[0].start + regions[0].length)
    for region in regions[1:]:
        out = out.concatenate(
            trace.slice(region.start, region.start + region.length))
    return Trace(out.addresses, out.gaps,
                 name=name or f"{trace.name}.simpoint")

"""Synthetic workload generators (the SPEC-trace substitution substrate).

The paper drives its simulator with L2 access traces of SPEC CPU2006
SimPoint regions.  Those are unavailable offline, so this module provides
*stack-distance workload models*: seeded generators that emit address
streams whose LRU stack-distance (reuse-distance) distribution is
controlled by a :class:`ReuseProfile`.  Reuse-distance structure is the
only workload property the paper's experiments exercise — it determines
both the miss-ratio-vs-size curve and associativity sensitivity — so the
substitution preserves the behaviours under study (see DESIGN.md).

Mechanics: the generator keeps an LRU stack of previously touched line
addresses.  Each access either touches a *new* address (with the profile's
``new_fraction`` — the compulsory/streaming component) or re-touches the
address at a sampled stack depth, moving it to the top.  By construction
the emitted trace's reuse-distance distribution matches the sampled one.

Components available for profiles:

* ``uniform(lo, hi)`` — flat reuse mass across a depth range;
* ``loguniform(lo, hi)`` — heavy-tailed mass spread over scales (mcf-like);
* ``geometric(mean)`` — concentrated short-distance reuse (tight loops);
* ``fixed(depth)`` — a cyclic-scan component: constant re-reference depth,
  the classic LRU-pathological pattern (cactusADM-like).

Also included: :class:`SequentialStreamGenerator` (pure streaming, lbm /
libquantum-like) and :class:`CyclicScanGenerator` (a loop over a fixed
working set, maximal LRU pathology).
"""

from __future__ import annotations

import math
import random
from array import array
from typing import Callable, List, Optional, Sequence, Tuple

from ..errors import ConfigurationError, TraceError
from .access import Trace

__all__ = [
    "ReuseComponent",
    "uniform",
    "loguniform",
    "geometric",
    "fixed",
    "ReuseProfile",
    "StackDistanceGenerator",
    "SequentialStreamGenerator",
    "CyclicScanGenerator",
    "PhasedGenerator",
]


class ReuseComponent:
    """One mixture component of a reuse-distance distribution."""

    __slots__ = ("weight", "_sampler", "label")

    def __init__(self, weight: float, sampler: Callable[[random.Random], int],
                 label: str) -> None:
        if weight <= 0:
            raise ConfigurationError(f"component weight must be positive, got {weight}")
        self.weight = float(weight)
        self._sampler = sampler
        self.label = label

    def sample(self, rng: random.Random) -> int:
        return self._sampler(rng)


def uniform(weight: float, lo: int, hi: int) -> ReuseComponent:
    """Reuse depths uniform over ``[lo, hi)``."""
    if not 0 <= lo < hi:
        raise ConfigurationError(f"need 0 <= lo < hi, got [{lo}, {hi})")
    return ReuseComponent(weight, lambda rng: rng.randrange(lo, hi),
                          f"uniform[{lo},{hi})")


def loguniform(weight: float, lo: int, hi: int) -> ReuseComponent:
    """Reuse depths log-uniform over ``[lo, hi)`` (heavy-tailed, mcf-like)."""
    if not 1 <= lo < hi:
        raise ConfigurationError(f"need 1 <= lo < hi, got [{lo}, {hi})")
    log_lo, log_hi = math.log(lo), math.log(hi)
    span = log_hi - log_lo

    def sampler(rng: random.Random) -> int:
        return min(hi - 1, int(math.exp(log_lo + rng.random() * span)))

    return ReuseComponent(weight, sampler, f"loguniform[{lo},{hi})")


def geometric(weight: float, mean: float) -> ReuseComponent:
    """Geometric reuse depths with the given mean (tight-loop reuse)."""
    if mean <= 0:
        raise ConfigurationError(f"mean must be positive, got {mean}")
    p = 1.0 / (1.0 + mean)
    log1mp = math.log(1.0 - p)

    def sampler(rng: random.Random) -> int:
        return int(math.log(max(rng.random(), 1e-300)) / log1mp)

    return ReuseComponent(weight, sampler, f"geometric(mean={mean})")


def fixed(weight: float, depth: int) -> ReuseComponent:
    """Constant reuse depth (cyclic-scan / LRU-pathological component)."""
    if depth < 0:
        raise ConfigurationError(f"depth must be >= 0, got {depth}")
    return ReuseComponent(weight, lambda rng: depth, f"fixed({depth})")


class ReuseProfile:
    """A reuse-distance mixture plus a compulsory (new-address) fraction.

    ``new_fraction`` of accesses touch a never-seen address; the rest draw a
    stack depth from the weighted mixture of components.  A sampled depth
    beyond the current stack also degenerates to a new address (cold start).
    """

    def __init__(self, components: Sequence[ReuseComponent],
                 new_fraction: float = 0.01) -> None:
        if not components and new_fraction < 1.0:
            raise ConfigurationError(
                "a profile with no components must have new_fraction = 1")
        if not 0 <= new_fraction <= 1:
            raise ConfigurationError(
                f"new_fraction must be in [0, 1], got {new_fraction}")
        self.components = list(components)
        self.new_fraction = float(new_fraction)
        total = sum(c.weight for c in self.components)
        self._cumulative: List[Tuple[float, ReuseComponent]] = []
        acc = 0.0
        for c in self.components:
            acc += c.weight / total if total else 0.0
            self._cumulative.append((acc, c))

    def sample_depth(self, rng: random.Random) -> Optional[int]:
        """A stack depth to re-touch, or ``None`` for a new address."""
        if rng.random() < self.new_fraction:
            return None
        x = rng.random()
        for threshold, component in self._cumulative:
            if x <= threshold:
                return component.sample(rng)
        return self._cumulative[-1][1].sample(rng)  # pragma: no cover


class _GapModel:
    """Instruction-gap sampling shared by all generators.

    ``mean_gap`` is the average number of instructions per L2 access (the
    inverse of the thread's L2 APKI / 1000); gaps vary geometrically around
    it so the timing model sees realistic burstiness.
    """

    def __init__(self, mean_gap: float, rng: random.Random) -> None:
        if mean_gap < 1:
            raise ConfigurationError(f"mean_gap must be >= 1, got {mean_gap}")
        self._mean = float(mean_gap)
        self._rng = rng

    def sample(self) -> int:
        if self._mean <= 1.0:
            return 1
        # Geometric with the requested mean, shifted to be >= 1.
        u = max(self._rng.random(), 1e-300)
        return 1 + int(-math.log(u) * (self._mean - 1.0))


class StackDistanceGenerator:
    """Generate a trace whose reuse distances follow a :class:`ReuseProfile`."""

    def __init__(self, profile: ReuseProfile, *, mean_gap: float = 30.0,
                 addr_base: int = 0, seed: int = 0, name: str = "synthetic") -> None:
        self.profile = profile
        self.mean_gap = float(mean_gap)
        self.addr_base = int(addr_base)
        self.seed = int(seed)
        self.name = name

    def generate(self, length: int) -> Trace:
        """Emit ``length`` accesses."""
        if length < 0:
            raise TraceError(f"length must be >= 0, got {length}")
        rng = random.Random(self.seed)
        gaps_model = _GapModel(self.mean_gap, rng)
        stack: List[int] = []
        next_addr = self.addr_base
        addresses = array("q")
        gaps = array("l")
        profile = self.profile
        for _ in range(length):
            depth = profile.sample_depth(rng)
            if depth is None or depth >= len(stack):
                addr = next_addr
                next_addr += 1
                stack.insert(0, addr)
            else:
                addr = stack.pop(depth)
                stack.insert(0, addr)
            addresses.append(addr)
            gaps.append(gaps_model.sample())
        return Trace(addresses, gaps, name=self.name)


class SequentialStreamGenerator:
    """Pure streaming: every access touches a new line (lbm-like).

    With ``wrap`` set, the stream cycles through a working set of ``wrap``
    lines instead of growing forever — reuse exists but at a distance equal
    to the working-set size, so any cache smaller than it sees ~100% misses.
    """

    def __init__(self, *, mean_gap: float = 10.0, addr_base: int = 0,
                 wrap: Optional[int] = None, seed: int = 0,
                 name: str = "stream") -> None:
        if wrap is not None and wrap <= 0:
            raise ConfigurationError(f"wrap must be positive, got {wrap}")
        self.mean_gap = float(mean_gap)
        self.addr_base = int(addr_base)
        self.wrap = wrap
        self.seed = int(seed)
        self.name = name

    def generate(self, length: int) -> Trace:
        rng = random.Random(self.seed)
        gaps_model = _GapModel(self.mean_gap, rng)
        addresses = array("q")
        gaps = array("l")
        for i in range(length):
            offset = i % self.wrap if self.wrap is not None else i
            addresses.append(self.addr_base + offset)
            gaps.append(gaps_model.sample())
        return Trace(addresses, gaps, name=self.name)


class PhasedGenerator:
    """Concatenate generators into a multi-phase workload.

    Real programs move through phases with different reuse behaviour —
    the property SimPoint exploits (Section VII-C's 250M-instruction
    representative regions).  A :class:`PhasedGenerator` strings together
    ``(generator, fraction)`` phases into one trace so the SimPoint
    machinery (and phase-aware allocation studies) have something real to
    find.  Each phase's generator keeps its own address space unless the
    caller gives them a shared ``addr_base``.
    """

    def __init__(self, phases: Sequence[Tuple[object, float]],
                 name: str = "phased") -> None:
        if not phases:
            raise ConfigurationError("at least one phase is required")
        total = sum(fraction for _, fraction in phases)
        if total <= 0:
            raise ConfigurationError("phase fractions must sum to > 0")
        for _, fraction in phases:
            if fraction <= 0:
                raise ConfigurationError(
                    f"phase fractions must be positive, got {fraction}")
        self.phases = [(gen, fraction / total) for gen, fraction in phases]
        self.name = name

    def generate(self, length: int) -> Trace:
        """Emit ``length`` accesses split across the phases by fraction."""
        if length < 0:
            raise TraceError(f"length must be >= 0, got {length}")
        pieces: List[Trace] = []
        remaining = length
        for i, (generator, fraction) in enumerate(self.phases):
            count = (remaining if i == len(self.phases) - 1
                     else min(remaining, int(round(length * fraction))))
            pieces.append(generator.generate(count))
            remaining -= count
        out = pieces[0]
        for piece in pieces[1:]:
            out = out.concatenate(piece)
        return Trace(out.addresses, out.gaps, name=self.name)


class CyclicScanGenerator(SequentialStreamGenerator):
    """A repeated scan over a fixed working set (maximal LRU pathology).

    Equivalent to :class:`SequentialStreamGenerator` with ``wrap`` set to
    the working-set size; named separately because it models a distinct
    behaviour (cactusADM-like loops slightly larger than the cache, where
    improving LRU eviction quality *hurts*: Fig. 6b).
    """

    def __init__(self, working_set: int, *, mean_gap: float = 20.0,
                 addr_base: int = 0, seed: int = 0, name: str = "scan") -> None:
        super().__init__(mean_gap=mean_gap, addr_base=addr_base,
                         wrap=working_set, seed=seed, name=name)
        self.working_set = int(working_set)

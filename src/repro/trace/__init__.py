"""Trace substrate: containers, synthetic generators, SPEC-like profiles,
multiprogrammed feeding and SimPoint-style region selection."""

from .access import Trace, annotate_next_use
from .io import load_trace, save_trace
from .mixing import (
    TraceCursor,
    interleave_round_robin,
    run_insertion_rate_controlled,
    run_round_robin,
)
from .simpoint import Region, representative_trace, select_regions
from .spec import (
    BENCHMARKS,
    KB,
    LINE_BYTES,
    MB,
    BenchmarkProfile,
    benchmark_names,
    benchmark_trace,
    get_profile,
    lines_for_bytes,
)
from .synthetic import (
    CyclicScanGenerator,
    PhasedGenerator,
    ReuseComponent,
    ReuseProfile,
    SequentialStreamGenerator,
    StackDistanceGenerator,
    fixed,
    geometric,
    loguniform,
    uniform,
)

__all__ = [
    "Trace",
    "annotate_next_use",
    "save_trace",
    "load_trace",
    "TraceCursor",
    "interleave_round_robin",
    "run_round_robin",
    "run_insertion_rate_controlled",
    "Region",
    "select_regions",
    "representative_trace",
    "BenchmarkProfile",
    "BENCHMARKS",
    "benchmark_names",
    "benchmark_trace",
    "get_profile",
    "KB",
    "MB",
    "LINE_BYTES",
    "lines_for_bytes",
    "ReuseComponent",
    "ReuseProfile",
    "StackDistanceGenerator",
    "SequentialStreamGenerator",
    "CyclicScanGenerator",
    "PhasedGenerator",
    "uniform",
    "loguniform",
    "geometric",
    "fixed",
]

"""Trace persistence.

Traces can take minutes to synthesize at paper scale; these helpers store
them as compressed ``.npz`` archives so expensive workloads are generated
once and replayed across experiments.

Format: an ``npz`` with ``addresses`` (int64), ``gaps`` (int64) and a
``name`` array holding the UTF-8 label.  Round-trips exactly.
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

import numpy as np

from ..errors import TraceError
from .access import Trace

__all__ = ["save_trace", "load_trace"]


def save_trace(trace: Trace, path: Union[str, Path]) -> Path:
    """Write ``trace`` to ``path`` (``.npz`` appended if missing)."""
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    np.savez_compressed(
        path,
        addresses=np.frombuffer(trace.addresses, dtype=np.int64),
        gaps=np.asarray(trace.gaps, dtype=np.int64),
        name=np.frombuffer(trace.name.encode("utf-8"), dtype=np.uint8))
    return path


def load_trace(path: Union[str, Path]) -> Trace:
    """Load a trace previously written by :func:`save_trace`."""
    path = Path(path)
    if not path.exists():
        raise TraceError(f"trace file not found: {path}")
    with np.load(path) as data:
        try:
            addresses = data["addresses"]
            gaps = data["gaps"]
            name = bytes(data["name"]).decode("utf-8")
        except KeyError as missing:
            raise TraceError(f"{path} is not a trace archive "
                             f"(missing {missing})") from missing
    return Trace(addresses.tolist(), gaps.tolist(), name=name)

"""Multiprogrammed trace feeding.

Two feeding disciplines are used by the paper's experiments:

* **Round-robin interleave** (Figs. 2, 6: untimed workload mixes): threads
  take turns issuing one access each.  Timed experiments instead use the
  event-driven engine in :mod:`repro.sim.engine`, where each thread's
  virtual time controls the interleave.

* **Insertion-rate control** (Figs. 4, 5): "the insertion rate of each
  partition is controlled by adjusting the speed of the trace feeding (i.e.
  the probability of next insertion that belongs to Partition i is equal to
  the pre-configured insertion rate I_i)".  :func:`run_insertion_rate_controlled`
  implements exactly that: it repeatedly samples a partition from the
  configured distribution and feeds that thread's trace *until it produces
  one insertion* (traces wrap around when exhausted).
"""

from __future__ import annotations

import random
from typing import Iterator, List, Optional, Sequence, Tuple

from .._util import check_probabilities
from ..cache.cache import PartitionedCache
from ..errors import TraceError
from .access import Trace

__all__ = ["interleave_round_robin", "run_round_robin",
           "run_insertion_rate_controlled", "TraceCursor"]


class TraceCursor:
    """A cyclic cursor over one thread's trace.

    Tracks position, wraps at the end, and serves the per-access next-use
    annotation OPT rankings need.  ``wraps`` counts completed passes.
    """

    __slots__ = ("trace", "position", "wraps", "_next_use")

    def __init__(self, trace: Trace, *, with_next_use: bool = False) -> None:
        if len(trace) == 0:
            raise TraceError("cannot iterate an empty trace")
        self.trace = trace
        self.position = 0
        self.wraps = 0
        self._next_use = trace.next_use if with_next_use else None

    def next(self) -> Tuple[int, Optional[int], int]:
        """Advance one access: ``(address, next_use, gap)``."""
        i = self.position
        trace = self.trace
        addr = trace.addresses[i]
        gap = trace.gaps[i]
        next_use = None
        if self._next_use is not None:
            # Offset by completed passes so keys stay monotone across wraps.
            next_use = self._next_use[i] + self.wraps * len(trace)
        self.position += 1
        if self.position >= len(trace):
            self.position = 0
            self.wraps += 1
        return addr, next_use, gap

    @property
    def total_accesses(self) -> int:
        return self.wraps * len(self.trace) + self.position


def interleave_round_robin(traces: Sequence[Trace], length: int, *,
                           with_next_use: bool = False
                           ) -> Iterator[Tuple[int, int, Optional[int]]]:
    """Yield ``length`` interleaved accesses as ``(thread, addr, next_use)``."""
    cursors = [TraceCursor(t, with_next_use=with_next_use) for t in traces]
    n = len(cursors)
    for i in range(length):
        tid = i % n
        addr, next_use, _gap = cursors[tid].next()
        yield tid, addr, next_use


def run_round_robin(cache: PartitionedCache, traces: Sequence[Trace],
                    length: int, *, warmup: int = 0) -> None:
    """Drive ``cache`` with a round-robin interleave of ``traces``.

    Thread ``i`` maps to partition ``i``.  When ``warmup`` is positive the
    first ``warmup`` accesses run with statistics discarded.
    """
    from ..obs.runtime import record_series
    needs_future = cache.ranking.needs_future
    with record_series(cache):  # no-op unless telemetry is active
        access = cache.access
        feed = interleave_round_robin(traces, warmup + length,
                                      with_next_use=needs_future)
        for count, (tid, addr, next_use) in enumerate(feed):
            if count == warmup:
                cache.reset_stats()
            access(addr, tid, next_use)


def run_insertion_rate_controlled(cache: PartitionedCache,
                                  traces: Sequence[Trace],
                                  insertion_rates: Sequence[float],
                                  num_insertions: int, *,
                                  warmup_insertions: int = 0,
                                  prefill: bool = False,
                                  seed: int = 0) -> List[int]:
    """The paper's Fig. 4/5 feeding discipline (see module docstring).

    Returns the number of accesses issued per thread.  ``insertion_rates``
    must be a probability vector with one entry per trace/partition.

    With ``prefill`` set, each partition is first fed until its occupancy
    reaches its target (so steady-state measurements are not polluted by
    the sizing transient of growing a partition from cold at a low
    insertion rate); statistics are reset afterwards.
    """
    if len(traces) != len(insertion_rates):
        raise TraceError(
            f"{len(traces)} traces but {len(insertion_rates)} insertion rates")
    check_probabilities(insertion_rates, "insertion_rates")
    from ..obs.runtime import record_series
    rng = random.Random(seed)
    needs_future = cache.ranking.needs_future
    cursors = [TraceCursor(t, with_next_use=needs_future) for t in traces]
    # Series recording (no-op unless telemetry is active) spans prefill
    # and warmup too: the sizing transient and the feedback convergence
    # it triggers are exactly what the per-partition series is for.
    with record_series(cache):
        if prefill:
            n_threads = len(cursors)
            budgets = [50 * cache.targets[tid] + len(traces[tid])
                       for tid in range(n_threads)]
            while True:
                # Re-derive each round: filling one partition can drain
                # another.
                pending = [tid for tid in range(n_threads)
                           if cache.actual_sizes[tid] < cache.targets[tid]
                           and budgets[tid] > 0]
                if not pending:
                    break
                for tid in pending:
                    for _ in range(64):
                        if (cache.actual_sizes[tid] >= cache.targets[tid]
                                or budgets[tid] <= 0):
                            break
                        addr, next_use, _gap = cursors[tid].next()
                        cache.access(addr, tid, next_use)
                        budgets[tid] -= 1
            cache.reset_stats()
        cumulative: List[float] = []
        acc = 0.0
        for r in insertion_rates:
            acc += r
            cumulative.append(acc)
        cumulative[-1] = 1.0
        n = len(cursors)
        access = cache.access
        issued = [0] * n
        total = warmup_insertions + num_insertions
        for count in range(total):
            if count == warmup_insertions:
                cache.reset_stats()
            x = rng.random()
            tid = 0
            while cumulative[tid] < x:
                tid += 1
            cursor = cursors[tid]
            # Feed this thread until it inserts one line (i.e. misses once).
            while True:
                addr, next_use, _gap = cursor.next()
                issued[tid] += 1
                if not access(addr, tid, next_use):
                    break
    return issued

"""Trace containers and Belady (next-use) annotation.

A :class:`Trace` is a sequence of L2 line-address accesses from a single
thread, each carrying the number of instructions executed since the
previous L2 access (the *gap*, used by the timing model to reconstruct
per-thread virtual time exactly like the paper's trace-driven simulator,
Section VII-A).

:func:`annotate_next_use` performs the standard backward pass computing,
for each access, the position of the next reference to the same address —
the future knowledge the OPT futility ranking [14] requires.  Addresses
never referenced again get the sentinel ``len(trace) + position``, which is
strictly larger than every finite next-use position and unique per access.
"""

from __future__ import annotations

from array import array
from typing import Dict, Iterable, Optional, Sequence

from ..errors import TraceError

__all__ = ["Trace", "annotate_next_use"]


def annotate_next_use(addresses: Sequence[int]) -> array:
    """Next-use positions for every access (see module docstring)."""
    n = len(addresses)
    next_use = array("q", bytes(8 * n))
    last_seen: Dict[int, int] = {}
    for i in range(n - 1, -1, -1):
        addr = addresses[i]
        next_use[i] = last_seen.get(addr, n + i)
        last_seen[addr] = i
    return next_use


class Trace:
    """An immutable single-thread L2 access trace.

    Parameters
    ----------
    addresses:
        Line addresses, one per L2 access.
    gaps:
        Instructions executed since the previous L2 access (same length).
        Defaults to a constant gap of 1 when omitted.
    name:
        Label used in experiment reports (e.g. the benchmark name).
    """

    __slots__ = ("addresses", "gaps", "name", "_next_use")

    def __init__(self, addresses: Iterable[int],
                 gaps: Optional[Iterable[int]] = None,
                 name: str = "trace") -> None:
        self.addresses = array("q", addresses)
        if len(self.addresses) and min(self.addresses) < 0:
            raise TraceError("addresses must be non-negative")
        if gaps is None:
            self.gaps = array("l", [1]) * len(self.addresses)
        else:
            self.gaps = array("l", gaps)
        if len(self.gaps) != len(self.addresses):
            raise TraceError(
                f"gaps length {len(self.gaps)} != addresses length "
                f"{len(self.addresses)}")
        self.name = name
        self._next_use: Optional[array] = None

    def __len__(self) -> int:
        return len(self.addresses)

    def __getitem__(self, i: int) -> int:
        return self.addresses[i]

    @property
    def next_use(self) -> array:
        """Next-use positions (computed lazily and cached)."""
        if self._next_use is None:
            self._next_use = annotate_next_use(self.addresses)
        return self._next_use

    @property
    def instructions(self) -> int:
        """Total instructions the trace represents."""
        return sum(self.gaps)

    def footprint(self) -> int:
        """Number of distinct line addresses touched."""
        return len(set(self.addresses))

    def slice(self, start: int, stop: int, name: Optional[str] = None) -> "Trace":
        """A sub-trace over ``[start, stop)`` (next-use recomputed lazily)."""
        if not 0 <= start <= stop <= len(self):
            raise TraceError(f"invalid slice [{start}, {stop}) of {len(self)}")
        return Trace(self.addresses[start:stop], self.gaps[start:stop],
                     name=name or f"{self.name}[{start}:{stop}]")

    def with_offset(self, offset: int, name: Optional[str] = None) -> "Trace":
        """A copy with every address shifted by ``offset`` (gives duplicated
        benchmark threads disjoint address spaces, as in Fig. 2's workloads)."""
        shifted = array("q", (a + offset for a in self.addresses))
        return Trace(shifted, self.gaps, name=name or self.name)

    def concatenate(self, other: "Trace", name: Optional[str] = None) -> "Trace":
        """This trace followed by ``other``."""
        return Trace(self.addresses + other.addresses, self.gaps + other.gaps,
                     name=name or f"{self.name}+{other.name}")

"""Calibrated synthetic models of the SPEC CPU2006 benchmarks the paper uses.

The paper evaluates on multiprogrammed mixes of SPEC CPU2006 benchmarks
(Section VII-C): mcf, omnetpp, gromacs, h264ref, astar, cactusADM,
libquantum and lbm.  This module defines one :class:`BenchmarkProfile` per
benchmark — a seeded stack-distance workload model (see
:mod:`repro.trace.synthetic`) calibrated to reproduce the *behavioural
class* each benchmark exhibits in the paper:

==============  ===============================================================
benchmark       behaviour reproduced
==============  ===============================================================
mcf             very memory-intensive; reuse spread over many scales; the most
                associativity-sensitive workload (>= 25% fully-assoc speedup at
                every size under OPT, Fig. 6a; +37% misses under PF at N=32,
                Fig. 2b)
omnetpp         memory-intensive, moderately associativity-sensitive
gromacs         small working set (~256KB); very sensitive at 128KB, insensitive
                once the cache holds the working set (>= 1MB) — Fig. 6a; used as
                the QoS *subject* thread in Fig. 7
h264ref         compute-bound, small-to-medium working set, mild sensitivity
astar           moderate intensity and sensitivity
cactusADM       scan-dominated with an LRU-pathological loop: under LRU, higher
                associativity can *hurt* (-6% at 4MB, Fig. 6b)
libquantum      streaming over a huge array; insensitive to associativity
lbm             streaming, very high miss rate, lowest reuse; insensitive; used
                as the QoS *background* (cache-polluting) thread in Fig. 7
==============  ===============================================================

Addresses are line addresses (64B granularity); working-set parameters are
expressed in lines (1MB = 16384 lines).  ``mean_gap`` is the average number
of instructions per L2 access and sets each benchmark's memory intensity.
"""

from __future__ import annotations

import zlib
from typing import Callable, Dict, List

from ..errors import ConfigurationError
from .access import Trace
from .synthetic import (
    ReuseProfile,
    StackDistanceGenerator,
    fixed,
    geometric,
    loguniform,
    uniform,
)

__all__ = ["BenchmarkProfile", "BENCHMARKS", "benchmark_names",
           "benchmark_trace", "get_profile", "KB", "MB", "LINE_BYTES",
           "lines_for_bytes"]

LINE_BYTES = 64
KB = 1024
MB = 1024 * KB


def lines_for_bytes(num_bytes: int) -> int:
    """Cache lines needed for ``num_bytes`` of capacity."""
    return num_bytes // LINE_BYTES


class BenchmarkProfile:
    """A named, seeded synthetic model of one SPEC benchmark."""

    def __init__(self, name: str,
                 profile_factory: Callable[[float], ReuseProfile],
                 mean_gap: float, description: str,
                 write_fraction: float = 0.3) -> None:
        self.name = name
        self._profile_factory = profile_factory
        self.mean_gap = float(mean_gap)
        self.description = description
        #: Fraction of L2 accesses that are stores (drives writeback
        #: bandwidth in the timing engine; lbm is the classic write-heavy
        #: stencil code).
        self.write_fraction = float(write_fraction)

    def generator(self, *, seed: int = 0, addr_base: int = 0,
                  scale: float = 1.0) -> StackDistanceGenerator:
        """A trace generator for this benchmark.

        ``seed`` varies the pseudo-random stream; ``addr_base`` offsets the
        address space (distinct per thread in multiprogrammed mixes);
        ``scale`` multiplies every working-set depth parameter, letting
        scaled-down experiments shrink workloads in proportion to their
        caches while preserving the paper's shapes.
        """
        if scale <= 0:
            raise ConfigurationError(f"scale must be positive, got {scale}")
        # zlib.crc32 is deterministic across processes (str.hash is not).
        salt = zlib.crc32(self.name.encode("utf-8")) & 0xFFFF
        return StackDistanceGenerator(
            self._profile_factory(scale), mean_gap=self.mean_gap,
            addr_base=addr_base, seed=seed * 65_537 + salt, name=self.name)

    def trace(self, length: int, *, seed: int = 0, addr_base: int = 0,
              scale: float = 1.0) -> Trace:
        """Generate a trace of ``length`` L2 accesses."""
        return self.generator(seed=seed, addr_base=addr_base,
                              scale=scale).generate(length)


def _depth(base: int, scale: float) -> int:
    """Scale a working-set depth parameter, keeping it at least 1."""
    return max(1, int(round(base * scale)))


def _mcf(scale: float) -> ReuseProfile:
    return ReuseProfile([
        loguniform(0.30, _depth(8, scale), _depth(2_000, scale)),
        loguniform(0.45, _depth(2_000, scale), _depth(160_000, scale)),
        uniform(0.15, 0, _depth(512, scale)),
    ], new_fraction=0.10)


def _omnetpp(scale: float) -> ReuseProfile:
    return ReuseProfile([
        geometric(0.35, 300.0 * scale),
        loguniform(0.45, _depth(500, scale), _depth(60_000, scale)),
    ], new_fraction=0.20)


def _gromacs(scale: float) -> ReuseProfile:
    # Skewed (geometric) reuse: hot lines reused tightly, warm lines at
    # distances around the 256KB working set.  The skew is what makes
    # eviction *quality* matter (the associativity sensitivity the paper
    # measures in Fig. 6a and exploits in the Fig. 7 QoS experiment); a
    # flat reuse distribution would make any resident line equally likely
    # to be reused and hide the difference between schemes.
    return ReuseProfile([
        geometric(0.50, 600.0 * scale),
        geometric(0.32, 2_500.0 * scale),
        loguniform(0.10, _depth(4_096, scale), _depth(40_000, scale)),
    ], new_fraction=0.02)


def _h264ref(scale: float) -> ReuseProfile:
    return ReuseProfile([
        geometric(0.55, 200.0 * scale),
        uniform(0.35, 0, _depth(8_192, scale)),
        loguniform(0.05, _depth(8_192, scale), _depth(30_000, scale)),
    ], new_fraction=0.05)


def _astar(scale: float) -> ReuseProfile:
    return ReuseProfile([
        geometric(0.30, 500.0 * scale),
        loguniform(0.55, _depth(64, scale), _depth(30_000, scale)),
    ], new_fraction=0.15)


def _cactusadm(scale: float) -> ReuseProfile:
    return ReuseProfile([
        fixed(0.45, _depth(66_000, scale)),   # LRU-pathological loop, ~4MB
        geometric(0.45, 600.0 * scale),
    ], new_fraction=0.10)


def _libquantum(scale: float) -> ReuseProfile:
    return ReuseProfile([
        fixed(0.97, _depth(400_000, scale)),  # repeated scan over ~24MB
    ], new_fraction=0.03)


def _lbm(scale: float) -> ReuseProfile:
    # Reuse distance ~100MB: even an 8MB LLC (or OPT ranking) cannot
    # exploit it, giving the near-zero reuse the paper attributes to lbm.
    return ReuseProfile([
        fixed(0.15, _depth(1_500_000, scale)),
    ], new_fraction=0.85)


BENCHMARKS: Dict[str, BenchmarkProfile] = {
    profile.name: profile for profile in [
        BenchmarkProfile("mcf", _mcf, 25.0,
                         "pointer-chasing; most associativity-sensitive"),
        BenchmarkProfile("omnetpp", _omnetpp, 55.0,
                         "discrete-event simulation; moderately sensitive"),
        BenchmarkProfile("gromacs", _gromacs, 150.0,
                         "molecular dynamics; ~256KB working set"),
        BenchmarkProfile("h264ref", _h264ref, 220.0,
                         "video encoding; compute-bound"),
        BenchmarkProfile("astar", _astar, 90.0,
                         "path-finding; moderate"),
        BenchmarkProfile("cactusadm", _cactusadm, 110.0,
                         "stencil; LRU-pathological scan"),
        BenchmarkProfile("libquantum", _libquantum, 18.0,
                         "streaming over a huge array",
                         write_fraction=0.25),
        BenchmarkProfile("lbm", _lbm, 12.0,
                         "streaming; highest miss rate (QoS background)",
                         write_fraction=0.55),
    ]
}


def benchmark_names() -> List[str]:
    """All modeled benchmark names."""
    return sorted(BENCHMARKS)


def get_profile(name: str) -> BenchmarkProfile:
    """Profile lookup with a helpful error."""
    try:
        return BENCHMARKS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown benchmark {name!r}; expected one of {benchmark_names()}")


def benchmark_trace(name: str, length: int, *, seed: int = 0,
                    addr_base: int = 0, scale: float = 1.0) -> Trace:
    """Generate a trace for benchmark ``name`` (see :class:`BenchmarkProfile`)."""
    return get_profile(name).trace(length, seed=seed, addr_base=addr_base,
                                   scale=scale)

"""Ablation: every enforcement scheme on one QoS scenario.

An extension beyond the paper's Fig. 7 scheme set: adds the
placement-based way-partitioning baseline (Section II-B) and the
unpartitioned shared cache, so the full design space is on one table —
including way-partitioning's resize flushes when targets change mid-run
(the placement-scheme penalty replacement-based schemes avoid).
"""

from conftest import run_once

from repro.cache.arrays import (
    FullyAssociativeArray,
    SetAssociativeArray,
)
from repro.cache.cache import PartitionedCache
from repro.core.futility import CoarseTimestampLRURanking, LRURanking
from repro.core.schemes.base import make_scheme
from repro.experiments.common import format_table, mixed_traces, \
    prefill_to_targets
from repro.sim.engine import MultiprogramSimulator

TOTAL_LINES = 8192
WAYS = 16
THREADS = 8
SUBJECT_LINES = 1024
TRACE_LENGTH = 30_000
INSTRUCTION_LIMIT = 200_000
SCALE = 0.25

SCHEMES = ("unpartitioned", "way-partition", "pf", "vantage", "prism",
           "fs-feedback", "full-assoc")


def run_scheme(name):
    scheme = make_scheme(name)
    if name == "full-assoc":
        array = FullyAssociativeArray(TOTAL_LINES)
        ranking = LRURanking()
    else:
        array = SetAssociativeArray(TOTAL_LINES, WAYS)
        ranking = (LRURanking() if name in ("unpartitioned", "way-partition")
                   else CoarseTimestampLRURanking())
    rest = (TOTAL_LINES - SUBJECT_LINES) // (THREADS - 1)
    targets = [SUBJECT_LINES] + [rest] * (THREADS - 1)
    targets[-1] += TOTAL_LINES - sum(targets)
    traces = mixed_traces(["gromacs"] + ["lbm"] * (THREADS - 1),
                          TRACE_LENGTH, scale=SCALE, seed=3)
    cache = PartitionedCache(array, ranking, scheme, THREADS,
                             targets=targets)
    prefill_to_targets(cache, traces)
    # Mid-run retarget exercises smooth vs flush-based resizing.
    result = MultiprogramSimulator(
        cache, traces, instruction_limit=INSTRUCTION_LIMIT).run()
    cache.set_targets([SUBJECT_LINES + 256] + [rest] * (THREADS - 2)
                      + [TOTAL_LINES - (SUBJECT_LINES + 256)
                         - rest * (THREADS - 2)])
    subject = result.threads[0]
    return (name, cache.stats.mean_occupancy(0) / SUBJECT_LINES,
            subject.ipc, cache.stats.aef(0), cache.stats.flushes)


def run_all():
    return [run_scheme(name) for name in SCHEMES]


def test_ablation_schemes(benchmark, report):
    rows = run_once(benchmark, run_all)
    report("ablation_schemes", format_table(
        ["scheme", "subject occ/target", "subject IPC", "subject AEF",
         "resize flushes"],
        [[n, f"{o:.3f}", f"{i:.3f}", f"{a:.3f}", f] for n, o, i, a, f in rows],
        title=(f"Ablation: all schemes, {THREADS}-thread QoS scenario "
               f"(gromacs subject vs lbm polluters) + one resize")))
    by = {n: (o, i, a, f) for n, o, i, a, f in rows}
    # Partitioning protects the subject vs the shared baseline.
    assert by["fs-feedback"][0] > by["unpartitioned"][0]
    assert by["pf"][0] > 0.9
    # Only the placement scheme pays resize flushes.
    for name in SCHEMES:
        if name == "way-partition":
            assert by[name][3] > 0
        else:
            assert by[name][3] == 0
    # FS keeps associativity above PF on this many-partition cache.
    assert by["fs-feedback"][2] > by["pf"][2]
    benchmark.extra_info["subject_ipc"] = {n: round(i, 3)
                                           for n, (o, i, a, f) in by.items()}

"""Figure 4: FS vs PF associativity at controlled size ratios.

Two mcf threads on a random-candidates cache (R=16), equal insertion
rates, splits 9/1 and 6/4.  Paper shapes asserted: FS's unscaled partition
keeps the analytic R/(R+1) associativity at every split; its scaled
partition degrades only mildly (with its alpha); PF's small partition
collapses (paper: AEF 0.86 -> 0.63 as the split goes 6/4 -> 9/1)."""

from conftest import config_for, run_once

from repro.experiments import Fig4Config, format_fig4, run_fig4


def test_fig4(benchmark, report):
    config = config_for(Fig4Config)
    result = run_once(benchmark, run_fig4, config)
    report("fig4", format_fig4(result))

    by = {(m.scheme, m.split): m for m in result.measurements}
    for split in config.size_splits:
        fs = by[("fs", split)]
        pf = by[("pf", split)]
        # FS unscaled partition at the analytic ceiling.
        assert abs(fs.aef[0] - 16 / 17) < 0.03
        # Measured FS AEFs track the analytic predictions.
        assert abs(fs.aef[1] - fs.analytic_aef[1]) < 0.04
        # FS beats PF on the small partition.
        small = 1 if split[1] < split[0] else 0
        assert fs.aef[small] > pf.aef[small]
    if (("pf", (0.9, 0.1)) in by) and (("pf", (0.6, 0.4)) in by):
        # PF: smaller partition -> worse associativity (0.63 vs 0.86).
        assert by[("pf", (0.9, 0.1))].aef[1] < by[("pf", (0.6, 0.4))].aef[1]
    benchmark.extra_info["fs_aef_small"] = round(
        by[("fs", config.size_splits[0])].aef[1], 3)

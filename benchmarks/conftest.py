"""Shared infrastructure for the figure-reproduction benchmark harness.

Every benchmark regenerates one table or figure from the paper's
evaluation: it runs the corresponding experiment driver once (via
``benchmark.pedantic`` so pytest-benchmark reports its wall time), prints
the paper-style rows, saves them under ``benchmarks/results/``, and asserts
the figure's defining qualitative properties.

Scale selection: set ``REPRO_BENCH_SCALE`` to ``smoke``, ``scaled``
(default) or ``paper``.  ``paper`` uses the publication's exact parameters
and takes hours in pure Python; ``scaled`` shrinks capacities and working
sets by the same factor and finishes in minutes while preserving every
qualitative shape (see DESIGN.md section 4).

Parallelism and caching: set ``REPRO_BENCH_JOBS=N`` to fan each figure's
sweep cells across N worker processes, and ``REPRO_BENCH_CACHE=1`` to
memoize cell results in the content-addressed cache (``$REPRO_CACHE_DIR``
or ``~/.cache/repro-experiments``) so repeated or interrupted benchmark
runs skip already-computed cells.  Both route execution through
:mod:`repro.runner`; reduction is ordered, so the printed tables are
identical to the sequential ones.  With the cache on, the reported time
measures only the *uncached* work — use it for resumption, not for
timing comparisons.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


def bench_scale() -> str:
    scale = os.environ.get("REPRO_BENCH_SCALE", "scaled")
    if scale not in ("smoke", "scaled", "paper"):
        raise ValueError(f"REPRO_BENCH_SCALE must be smoke|scaled|paper, "
                         f"got {scale!r}")
    return scale


def bench_jobs() -> int:
    return max(1, int(os.environ.get("REPRO_BENCH_JOBS", "1")))


def bench_cache():
    """The shared result cache, or None when not opted in."""
    if os.environ.get("REPRO_BENCH_CACHE", "0") not in ("", "0"):
        from repro.runner import default_cache_dir
        from repro.store import LocalFileStore
        return LocalFileStore(default_cache_dir())
    return None


def _spec_for(fn, args):
    """Map a ``run_figN`` driver to its registered ExperimentSpec."""
    name = getattr(fn, "__name__", "")
    if not name.startswith("run_"):
        return None
    try:
        from repro.experiments.registry import get_experiment
        spec = get_experiment(name[len("run_"):])
    except KeyError:
        return None
    if args and isinstance(args[0], spec.config_cls):
        return spec
    return None


def config_for(config_cls):
    """Instantiate a figure config at the selected bench scale."""
    return getattr(config_cls, bench_scale())()


@pytest.fixture
def report():
    """Print a figure's regenerated rows and persist them to results/."""
    def _report(name: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        print(f"\n{text}\n")
    return _report


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing.

    Registered figure drivers opt into the parallel runner and the
    result cache via ``REPRO_BENCH_JOBS`` / ``REPRO_BENCH_CACHE``;
    everything else runs the plain callable.
    """
    jobs, cache = bench_jobs(), bench_cache()
    spec = _spec_for(fn, args) if (jobs > 1 or cache is not None) else None
    if spec is not None and not kwargs:
        config = args[0]
        return benchmark.pedantic(
            lambda: spec.run(config, jobs=jobs, store=cache),
            rounds=1, iterations=1, warmup_rounds=0)
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)

"""Shared infrastructure for the figure-reproduction benchmark harness.

Every benchmark regenerates one table or figure from the paper's
evaluation: it runs the corresponding experiment driver once (via
``benchmark.pedantic`` so pytest-benchmark reports its wall time), prints
the paper-style rows, saves them under ``benchmarks/results/``, and asserts
the figure's defining qualitative properties.

Scale selection: set ``REPRO_BENCH_SCALE`` to ``smoke``, ``scaled``
(default) or ``paper``.  ``paper`` uses the publication's exact parameters
and takes hours in pure Python; ``scaled`` shrinks capacities and working
sets by the same factor and finishes in minutes while preserving every
qualitative shape (see DESIGN.md section 4).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


def bench_scale() -> str:
    scale = os.environ.get("REPRO_BENCH_SCALE", "scaled")
    if scale not in ("smoke", "scaled", "paper"):
        raise ValueError(f"REPRO_BENCH_SCALE must be smoke|scaled|paper, "
                         f"got {scale!r}")
    return scale


def config_for(config_cls):
    """Instantiate a figure config at the selected bench scale."""
    return getattr(config_cls, bench_scale())()


@pytest.fixture
def report():
    """Print a figure's regenerated rows and persist them to results/."""
    def _report(name: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        print(f"\n{text}\n")
    return _report


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)

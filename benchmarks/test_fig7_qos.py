"""Figure 7: the headline QoS comparison on a 32-thread CMP.

Subject threads (gromacs, guaranteed space) against lbm polluters under
five enforcement schemes.  Regenerates all three panels: occupancy/target
(7a), subject AEF (7b) and subject performance (7c).

Paper shapes asserted: FullAssoc/PF/FS hold subjects at target while
Vantage and PriSM fall below; FullAssoc's AEF is 1 and PF's collapses
while FS stays high; and FS outperforms both Vantage and PriSM on subject
IPC (paper: by up to 6.0% and 13.7%), approaching the FullAssoc ideal.

This is the most expensive benchmark (~10 minutes at the default scale).
"""

from conftest import config_for, run_once

from repro.experiments import Fig7Config, format_fig7, run_fig7


def test_fig7(benchmark, report):
    config = config_for(Fig7Config)
    result = run_once(benchmark, run_fig7, config)
    report("fig7", format_fig7(result))

    ranking = config.rankings[0]
    ns = config.subject_counts

    def cells(scheme):
        return result.cells.get((scheme, ranking), {})

    # 7a: sizing.
    for scheme in ("full-assoc", "pf", "fs-feedback"):
        if cells(scheme):
            for cell in cells(scheme).values():
                assert cell.occupancy_ratio > 0.8, (scheme, cell.num_subjects)
    # 7b: associativity ordering FullAssoc > FS > PF.
    for n in ns:
        fa = cells("full-assoc").get(n)
        fs = cells("fs-feedback").get(n)
        pf = cells("pf").get(n)
        if fa and fs and pf:
            assert fa.subject_aef > 0.99
            assert fs.subject_aef > pf.subject_aef + 0.1
    # 7c: the abstract's claim — FS beats Vantage and PriSM.
    for rival in ("vantage", "prism"):
        if cells(rival) and cells("fs-feedback"):
            ratios = result.subject_ipc_ratio("fs-feedback", rival, ranking)
            if ratios:
                assert max(ratios.values()) > 1.0
                benchmark.extra_info[f"fs_over_{rival}_pct"] = round(
                    (max(ratios.values()) - 1) * 100, 1)
    # PriSM's victim-selection abnormality is the paper's diagnosis.
    for cell in cells("prism").values():
        if "abnormality_rate" in cell.diagnostics:
            assert cell.diagnostics["abnormality_rate"] > 0.2

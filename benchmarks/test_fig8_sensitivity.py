"""Figure 8: feedback-FS sensitivity to the interval length l and the
changing ratio (Section VIII-B).

Paper shape asserted: the design is robust around its defaults (l=16,
ratio=2) — sizing error stays bounded across the sweep, with very long
intervals reacting most sluggishly."""

from conftest import config_for, run_once

from repro.experiments import Fig8Config, format_fig8, run_fig8


def test_fig8(benchmark, report):
    config = config_for(Fig8Config)
    result = run_once(benchmark, run_fig8, config)
    report("fig8", format_fig8(result))

    default = result.cells[(config.default_interval, config.default_ratio)]
    # The default point sizes within a few percent of target.
    assert default.mad_fraction < 0.10
    for cell in result.cells.values():
        # Robustness: no knob setting explodes sizing or associativity.
        assert cell.mad_fraction < 0.25
        assert cell.subject_aef > 0.6
    # The longest interval is the most sluggish sizer in the sweep.
    longest = result.cells[(max(config.interval_lengths),
                            config.default_ratio)]
    shortest = result.cells[(min(config.interval_lengths),
                             config.default_ratio)]
    assert longest.mad >= shortest.mad * 0.8
    benchmark.extra_info["default_mad_pct"] = round(
        default.mad_fraction * 100, 2)

"""Ablation: index-hash quality and the Uniformity Assumption.

The analytical framework assumes candidates behave as uniform draws, which
holds "in a practical cache indexed by good random hash functions".  This
ablation partitions the same strided-heavy workload on set-associative
arrays indexed by identity (weak), XOR-folding (the paper's L2) and H3,
plus the ideal random-candidates array, and compares conflict behaviour.
"""

from conftest import run_once

from repro.cache.arrays import RandomCandidatesArray, SetAssociativeArray
from repro.cache.cache import PartitionedCache
from repro.core.futility import LRURanking
from repro.core.schemes.futility_scaling import FutilityScalingScheme
from repro.experiments.common import format_table

NUM_LINES = 2048
STRIDE = 128  # pathological for identity indexing


def run_variants():
    rows = []
    variants = [
        ("identity", SetAssociativeArray(NUM_LINES, 16,
                                         hash_kind="identity")),
        ("xor", SetAssociativeArray(NUM_LINES, 16, hash_kind="xor")),
        ("h3", SetAssociativeArray(NUM_LINES, 16, hash_kind="h3")),
        ("random-cand", RandomCandidatesArray(NUM_LINES, 16, seed=1)),
    ]
    for label, array in variants:
        cache = PartitionedCache(array, LRURanking(),
                                 FutilityScalingScheme(alphas=[1.0, 1.0]),
                                 2)
        # Partition 0 strides (conflict-prone); partition 1 is dense.
        for i in range(40_000):
            if i % 2:
                cache.access(10**9 + (i // 2) % 1500, 1)
            else:
                cache.access(((i // 2) % 384) * STRIDE, 0)
        rows.append((label, cache.stats.hit_rate(0), cache.stats.aef(0)))
    return rows


def test_ablation_hashing(benchmark, report):
    rows = run_once(benchmark, run_variants)
    report("ablation_hashing", format_table(
        ["index hash", "strided hit rate", "AEF p0"],
        [[label, f"{h:.3f}", f"{a:.3f}"] for label, h, a in rows],
        title="Ablation: index hashing vs the Uniformity Assumption "
              f"(stride {STRIDE})"))
    by = {label: h for label, h, _ in rows}
    # Identity indexing collapses the strided working set onto few sets;
    # any mixing hash must beat it decisively.
    assert by["xor"] > by["identity"] + 0.2
    assert by["h3"] > by["identity"] + 0.2
    benchmark.extra_info["hit_rates"] = {k: round(v, 3)
                                         for k, v in by.items()}

"""Ablation: Vantage's isolation vs the candidate count of the array.

Section VIII-A observes that Vantage's weak isolation on the 16-way L2
comes from forced evictions — with unmanaged fraction u and R candidates,
every candidate is managed with probability (1-u)^R, i.e. 18.5% at R=16 —
and notes Vantage "could provide a higher degree of isolation on a cache
that provides more replacement candidates (e.g., Z4/52 zcache)".

This ablation runs the same QoS pressure scenario on a 16-way
set-associative array vs a 4-way/52-candidate zcache: forced evictions
collapse ((0.9)^52 ~ 0.4%) and the protected partition's occupancy rises.
"""

import random

from conftest import run_once

from repro.cache.arrays import SetAssociativeArray, ZCacheArray
from repro.cache.cache import PartitionedCache
from repro.core.futility import LRURanking
from repro.core.schemes.vantage import VantageScheme
from repro.experiments.common import format_table

NUM_LINES = 2048
ACCESSES = 80_000


def run_variant(label, array):
    scheme = VantageScheme()
    cache = PartitionedCache(array, LRURanking(), scheme, 2,
                             targets=[512, 1536])
    rng = random.Random(7)
    # Partition 0: small protected working set, touched rarely.
    # Partition 1: heavy polluter.
    for i in range(ACCESSES):
        if i % 12 == 0:
            cache.access(10**9 + rng.randrange(600), 0)
        else:
            cache.access(rng.randrange(50_000), 1)
    evictions = sum(cache.stats.evictions) or 1
    forced_rate = scheme.forced_evictions / evictions
    return (label, array.candidate_count, forced_rate,
            cache.actual_sizes[0] / 512, cache.stats.aef(0))


def run_all():
    return [
        run_variant("16-way set-assoc",
                    SetAssociativeArray(NUM_LINES, 16)),
        run_variant("zcache Z4/52",
                    ZCacheArray(NUM_LINES, 4, 52, hash_seed=3)),
    ]


def test_ablation_vantage_zcache(benchmark, report):
    rows = run_once(benchmark, run_all)
    report("ablation_vantage_zcache", format_table(
        ["array", "R", "forced-eviction rate", "protected occ/target",
         "AEF p0"],
        [[l, r, f"{f:.3f}", f"{o:.3f}", f"{a:.3f}"]
         for l, r, f, o, a in rows],
        title="Ablation: Vantage isolation vs candidate count "
              "(theory: forced rate = 0.9**R)"))
    by = {label: (r, f, o) for label, r, f, o, _ in rows}
    sa_forced = by["16-way set-assoc"][1]
    z_forced = by["zcache Z4/52"][1]
    # Forced evictions in the ballpark of (1-u)**R for the 16-way array...
    assert 0.05 < sa_forced < 0.45
    # ...and far rarer with 52 candidates.
    assert z_forced < sa_forced / 4
    benchmark.extra_info["forced_sa"] = round(sa_forced, 3)
    benchmark.extra_info["forced_zcache"] = round(z_forced, 4)

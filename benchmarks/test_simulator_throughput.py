"""Simulator-throughput benchmarks and ``BENCH_throughput.json`` emission.

Not a paper figure: these measure the reproduction's own hot path —
single-thread accesses per second through the partitioned-cache access
kernel — for one configuration per registered partitioning scheme, in the
shape the figure experiments actually run it (exact-LRU decision ranking
with full measurement attached; the feedback-FS hardware pairing uses the
8-bit coarse-timestamp ranking as in Fig. 7).

The workload is a hot/cold mix (85% of accesses to a per-partition hot set
that fits in cache, 15% to a large cold space), approximating the locality
the paper's L2 traces exhibit rather than a pure-thrash stream; both the
miss path (victim selection) and the hit path (ranking/statistics upkeep)
carry realistic weight.

Two entry points:

* pytest-benchmark (``make bench``): per-scheme timing history.
* ``python benchmarks/test_simulator_throughput.py --out BENCH_throughput.json
  --label after`` (``make bench-throughput``): measure every config
  (best-of-5) and merge the lines/sec into the machine-readable JSON under
  the given label.  With both ``before`` and ``after`` recorded the file
  gains per-config speedups and their geometric mean.  The committed file
  was captured by running ``--label before`` on the pre-refactor tree
  (``git stash``) and ``--label after`` on the same machine in the same
  session.

``test_throughput_regression`` guards the committed numbers in CI: it
re-measures each config and fails if throughput drops more than 30% below
the committed ``after`` value, after normalizing machine speed through the
recorded spin-loop calibration.
"""

import json
import random
import sys
import time
from pathlib import Path

import pytest

from repro.cache.arrays import FullyAssociativeArray, SetAssociativeArray
from repro.cache.cache import PartitionedCache
from repro.core.futility import CoarseTimestampLRURanking, LRURanking
from repro.core.schemes.base import available_schemes, make_scheme

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_throughput.json"

ACCESSES = 30_000
WARM_ACCESSES = 20_000
PARTS = 2
LINES = 4096
WAYS = 16
HOT_LINES = 1_400          # per-partition hot set; both fit in cache
HOT_FRACTION = 0.85
COLD_SPACE = 1_000_000
SEED = 0
WARM_SEED = 99
ROUNDS = 5

WORKLOAD = {
    "accesses": ACCESSES, "warm_accesses": WARM_ACCESSES, "parts": PARTS,
    "lines": LINES, "ways": WAYS, "hot_lines": HOT_LINES,
    "hot_fraction": HOT_FRACTION, "cold_space": COLD_SPACE,
    "seed": SEED, "warm_seed": WARM_SEED, "rounds": ROUNDS,
}


def make_stream(accesses=ACCESSES, seed=SEED):
    rng = random.Random(seed)
    randrange = rng.randrange
    rand = rng.random
    return [(part * 10**9 + (randrange(HOT_LINES) if rand() < HOT_FRACTION
                             else HOT_LINES + randrange(COLD_SPACE)), part)
            for part in (randrange(PARTS) for _ in range(accesses))]


def _setassoc(scheme, ranking=None, **cache_kwargs):
    return PartitionedCache(SetAssociativeArray(LINES, WAYS),
                            ranking if ranking is not None else LRURanking(),
                            scheme, PARTS, **cache_kwargs)


#: One configuration per registered scheme, keyed by registry name.
CONFIGS = {
    "cqvp": lambda: _setassoc(make_scheme("cqvp")),
    "fs": lambda: _setassoc(make_scheme("fs", alphas=[1.0, 2.0])),
    # The hardware design point: feedback FS over 8-bit coarse timestamps
    # (Section V / Fig. 7), not the exact-LRU ranking.
    "fs-feedback": lambda: _setassoc(make_scheme("fs-feedback"),
                                     ranking=CoarseTimestampLRURanking()),
    "full-assoc": lambda: PartitionedCache(
        FullyAssociativeArray(LINES), LRURanking(),
        make_scheme("full-assoc"), PARTS),
    "pf": lambda: _setassoc(make_scheme("pf")),
    "prism": lambda: _setassoc(make_scheme("prism")),
    "unpartitioned": lambda: _setassoc(make_scheme("unpartitioned")),
    "vantage": lambda: _setassoc(make_scheme("vantage")),
    "way-partition": lambda: _setassoc(make_scheme("way-partition")),
}


def drive(cache, stream):
    access = cache.access
    for addr, part in stream:
        access(addr, part)


def measure(factory, stream, warm, rounds=ROUNDS):
    """Best-of-``rounds`` lines/sec for one configuration."""
    best = None
    for _ in range(rounds):
        cache = factory()
        drive(cache, warm)
        t0 = time.perf_counter()
        drive(cache, stream)
        dt = time.perf_counter() - t0
        best = dt if best is None else min(best, dt)
    cache.check_invariants()
    return len(stream) / best


def spin_calibration(loops=2_000_000):
    """Wall time of a fixed pure-Python spin loop (machine-speed proxy).

    Cross-machine comparisons of lines/sec are meaningless; the regression
    gate compares *work per spin-unit* instead, which cancels most of the
    host-speed difference.  Best of 3 to dodge scheduler noise.
    """
    best = None
    for _ in range(3):
        t0 = time.perf_counter()
        acc = 0
        for i in range(loops):
            acc += i
        dt = time.perf_counter() - t0
        best = dt if best is None else min(best, dt)
    return best


def test_benchmark_covers_every_scheme():
    assert sorted(CONFIGS) == available_schemes()


@pytest.mark.parametrize("label", sorted(CONFIGS))
def test_access_throughput(benchmark, label):
    stream = make_stream()
    warm = make_stream(WARM_ACCESSES, seed=WARM_SEED)
    cache = CONFIGS[label]()
    drive(cache, warm)
    benchmark.pedantic(drive, args=(cache, stream), rounds=3,
                       iterations=1, warmup_rounds=0)
    cache.check_invariants()
    benchmark.extra_info["accesses_per_round"] = ACCESSES


@pytest.mark.skipif(not BENCH_JSON.exists(),
                    reason="no committed BENCH_throughput.json")
def test_throughput_regression():
    """CI smoke: fail when throughput regresses >30% vs the committed
    numbers (spin-calibrated, so a slower CI host does not false-alarm)."""
    committed = json.loads(BENCH_JSON.read_text())
    ref_spin = committed["calibration_spin_seconds"]
    local_spin = spin_calibration()
    stream = make_stream()
    warm = make_stream(WARM_ACCESSES, seed=WARM_SEED)
    failures = []
    for label, entry in sorted(committed["configs"].items()):
        expected = entry.get("after")
        if expected is None or label not in CONFIGS:
            continue
        measured = measure(CONFIGS[label], stream, warm, rounds=3)
        # Machine-normalized: lines per spin-unit of compute.
        norm_measured = measured * local_spin
        norm_expected = expected * ref_spin
        if norm_measured < 0.7 * norm_expected:
            failures.append(
                f"{label}: {measured:.0f} lines/s "
                f"(normalized {norm_measured:.0f} vs committed "
                f"{norm_expected:.0f}, floor 70%)")
    assert not failures, (
        "throughput regression vs BENCH_throughput.json:\n  "
        + "\n  ".join(failures))


def _emit(out_path: Path, label: str) -> None:
    stream = make_stream()
    warm = make_stream(WARM_ACCESSES, seed=WARM_SEED)
    data = (json.loads(out_path.read_text()) if out_path.exists()
            else {"benchmark": "benchmarks/test_simulator_throughput.py",
                  "metric": "single-thread cache-access lines/sec "
                            "(best of %d)" % ROUNDS,
                  "workload": WORKLOAD, "configs": {}})
    data["calibration_spin_seconds"] = spin_calibration()
    for name in sorted(CONFIGS):
        lps = measure(CONFIGS[name], stream, warm)
        data["configs"].setdefault(name, {})[label] = round(lps, 1)
        print(f"{name:16s} {label}: {lps:>10.0f} lines/s", flush=True)
    speedups = []
    for name, entry in sorted(data["configs"].items()):
        if entry.get("before") and entry.get("after"):
            entry["speedup"] = round(entry["after"] / entry["before"], 3)
            speedups.append(entry["speedup"])
    if speedups:
        geomean = 1.0
        for s in speedups:
            geomean *= s
        data["geomean_speedup"] = round(geomean ** (1.0 / len(speedups)), 3)
        print(f"geomean speedup: {data['geomean_speedup']}x")
    out_path.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(
        description="Measure per-scheme throughput into BENCH_throughput.json")
    parser.add_argument("--out", type=Path, default=BENCH_JSON)
    parser.add_argument("--label", choices=("before", "after"),
                        default="after")
    args = parser.parse_args()
    sys.exit(_emit(args.out, args.label))

"""Simulator-throughput microbenchmarks (performance regression tracking).

Not a paper figure: these measure the reproduction's own hot paths —
accesses per second through the partitioned-cache engine for the
configurations the figure benches lean on — so slowdowns in the core loop
show up in benchmark history rather than as mysteriously longer figure
runs.
"""

import random

import pytest

from repro.cache.arrays import RandomCandidatesArray, SetAssociativeArray
from repro.cache.cache import PartitionedCache
from repro.core.futility import CoarseTimestampLRURanking, LRURanking
from repro.core.schemes.futility_scaling import (
    FeedbackFutilityScalingScheme,
    FutilityScalingScheme,
)
from repro.core.schemes.partitioning_first import PartitioningFirstScheme

ACCESSES = 30_000


def drive(cache, accesses=ACCESSES, parts=2, space=6000, seed=0):
    rng = random.Random(seed)
    randrange = rng.randrange
    access = cache.access
    for _ in range(accesses):
        part = randrange(parts)
        access(part * 10**9 + randrange(space), part)


@pytest.mark.parametrize("label,factory", [
    ("pf_lru_setassoc", lambda: PartitionedCache(
        SetAssociativeArray(4096, 16), LRURanking(),
        PartitioningFirstScheme(), 2)),
    ("fsfb_coarsets_setassoc", lambda: PartitionedCache(
        SetAssociativeArray(4096, 16), CoarseTimestampLRURanking(),
        FeedbackFutilityScalingScheme(), 2)),
    ("fsfb_coarsets_no_stats", lambda: PartitionedCache(
        SetAssociativeArray(4096, 16), CoarseTimestampLRURanking(),
        FeedbackFutilityScalingScheme(), 2,
        track_eviction_futility=False)),
    ("fs_lru_randomcand", lambda: PartitionedCache(
        RandomCandidatesArray(4096, 16, seed=1), LRURanking(),
        FutilityScalingScheme(alphas=[1.0, 2.0]), 2)),
])
def test_access_throughput(benchmark, label, factory):
    cache = factory()
    drive(cache, accesses=2_000)  # warm the structures
    result = benchmark.pedantic(drive, args=(cache,), rounds=3,
                                iterations=1, warmup_rounds=0)
    cache.check_invariants()
    benchmark.extra_info["accesses_per_round"] = ACCESSES

"""Ablation: replacement-candidate count R.

Both of FS's properties depend on R: associativity (analytic AEF of an
unscaled partition is R/(R+1)) and enforceability (the feasibility bound
I >= S**R).  Sweeps R over {2, 4, 8, 16, 32} on the random-candidates
array and checks the measured AEF tracks the analytic curve while sizing
error stays bounded."""

from ablation_common import run_two_partition, sizing_error, NUM_LINES
from conftest import run_once

from repro.cache.arrays import RandomCandidatesArray
from repro.core.futility import LRURanking
from repro.core.scaling import analytic_aef, solve_scaling_factors
from repro.core.schemes.futility_scaling import FutilityScalingScheme
from repro.errors import InfeasiblePartitioningError
from repro.experiments.common import format_table

SWEEP = (2, 4, 8, 16, 32)
SIZES = (0.75, 0.25)
INSERTIONS = (0.5, 0.5)


def run_sweep():
    rows = []
    for r in SWEEP:
        try:
            alphas = solve_scaling_factors(list(SIZES), list(INSERTIONS), r)
        except InfeasiblePartitioningError:
            # The Section IV-B bound in action: at small R a 75% partition
            # cannot be held with a 50% insertion share (0.75**R > 0.5).
            rows.append((r, None, None, None, None))
            continue
        cache = run_two_partition(
            RandomCandidatesArray(NUM_LINES, r, seed=r),
            LRURanking(), FutilityScalingScheme(alphas=alphas))
        predicted = analytic_aef(alphas, list(SIZES), r, 0)
        rows.append((r, alphas[1], cache.stats.aef(0), predicted,
                     sizing_error(cache)))
    return rows


def test_ablation_candidates(benchmark, report):
    rows = run_once(benchmark, run_sweep)
    table_rows = []
    for r, a, m, p, e in rows:
        if a is None:
            table_rows.append([r] + ["infeasible (I < S**R)"] * 4)
        else:
            table_rows.append([r, f"{a:.3f}", f"{m:.3f}", f"{p:.3f}",
                               f"{e:.3f}"])
    report("ablation_candidates", format_table(
        ["R", "alpha_2", "AEF p1 (measured)", "AEF p1 (analytic)",
         "sizing err"],
        table_rows,
        title="Ablation: candidate count R (FS, static Eq.1 alphas, "
              "75/25 split at I=0.5)"))
    feasible = [(r, a, m, p, e) for r, a, m, p, e in rows if a is not None]
    infeasible = [r for r, a, *_ in rows if a is None]
    # The bound kicks in exactly where theory says: 0.75**R > 0.5 <=> R=2.
    assert infeasible == [r for r in SWEEP if SIZES[0] ** r > INSERTIONS[0]]
    for r, alpha, measured, predicted, err in feasible:
        assert abs(measured - predicted) < 0.05
        assert err < 0.25
    # More candidates -> better associativity, monotone across the sweep.
    aefs = [m for _, _, m, _, _ in feasible]
    assert aefs == sorted(aefs)
    benchmark.extra_info["aef_min_r"] = round(aefs[0], 3)
    benchmark.extra_info["aef_r32"] = round(aefs[-1], 3)

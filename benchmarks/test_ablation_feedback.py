"""Ablations: feedback vs analytical alphas, and shift quantization.

1. **Feedback vs Eq. (1)** — how closely Algorithm 2's register-driven
   controller tracks the closed-form scaling factors: both must hold the
   targets; the feedback design trades a little sizing/associativity
   precision for needing no knowledge of insertion rates.
2. **Quantized (power-of-two shifts, the 3-bit hardware register) vs a
   finer changing ratio** — the hardware quantization costs little.
"""

from ablation_common import NUM_LINES, TARGETS, run_two_partition, sizing_error
from conftest import run_once

from repro.cache.arrays import RandomCandidatesArray
from repro.core.futility import LRURanking
from repro.core.scaling import solve_scaling_factors
from repro.core.schemes.futility_scaling import (
    FeedbackFutilityScalingScheme,
    FutilityScalingScheme,
)
from repro.experiments.common import format_table


def run_variants():
    sizes = [t / NUM_LINES for t in TARGETS]
    alphas = solve_scaling_factors(sizes, [0.5, 0.5], 16)
    variants = [
        ("analytic Eq.(1)", FutilityScalingScheme(alphas=alphas)),
        ("feedback 2x (hw)", FeedbackFutilityScalingScheme()),
        ("feedback 1.3x", FeedbackFutilityScalingScheme(changing_ratio=1.3,
                                                        max_level=20)),
        ("feedback 4x", FeedbackFutilityScalingScheme(changing_ratio=4.0)),
    ]
    rows = []
    for label, scheme in variants:
        cache = run_two_partition(
            RandomCandidatesArray(NUM_LINES, 16, seed=9), LRURanking(),
            scheme, seed=4)
        rows.append((label, sizing_error(cache), cache.stats.aef(0),
                     cache.stats.aef(1)))
    return rows, alphas


def test_ablation_feedback(benchmark, report):
    rows, alphas = run_once(benchmark, run_variants)
    report("ablation_feedback", format_table(
        ["controller", "sizing err", "AEF p0", "AEF p1"],
        [[label, f"{e:.3f}", f"{a0:.3f}", f"{a1:.3f}"]
         for label, e, a0, a1 in rows],
        title=(f"Ablation: feedback vs analytic alphas "
               f"(Eq.1 alpha_2 = {alphas[1]:.3f})")))
    by = {label: (e, a0, a1) for label, e, a0, a1 in rows}
    # Every controller holds the 3:1 split.
    for label, (err, _, _) in by.items():
        assert err < 0.2, label
    # The analytic alphas are the precision reference.
    assert by["analytic Eq.(1)"][0] < 0.1
    # Hardware 2x quantization is competitive with the finer ratio.
    assert abs(by["feedback 2x (hw)"][0] - by["feedback 1.3x"][0]) < 0.15
    benchmark.extra_info["sizing_errors"] = {label: round(e, 3)
                                             for label, (e, _, _) in by.items()}

"""Extension: smooth resizing measured (the paper's property 1).

The paper asserts replacement-based schemes resize with "no data flushing
or migrating" while placement-based schemes pay a large penalty
(Section II); this bench measures both sides of that claim on a 3:1 -> 1:3
allocation flip."""

from conftest import config_for, run_once

from repro.experiments import ResizingConfig, format_resizing, run_resizing


def test_ext_resizing(benchmark, report):
    config = config_for(ResizingConfig)
    result = run_once(benchmark, run_resizing, config)
    report("ext_resizing", format_resizing(result))

    way = result.cells.get("way-partition")
    for name, cell in result.cells.items():
        if name == "way-partition":
            # The placement scheme invalidates every transferred way.
            assert cell.flushed_lines > 0
        else:
            # Replacement-based schemes flush nothing...
            assert cell.flushed_lines == 0
            # ...and the shrinking thread's post-flip miss rate barely
            # moves (smooth hand-over).
            assert cell.disruption < 0.05
    if way is not None:
        smooth = [c.disruption for n, c in result.cells.items()
                  if n != "way-partition"]
        # The flush translates into a much larger post-flip miss spike.
        assert way.disruption > max(smooth) + 0.02
    benchmark.extra_info["disruption"] = {
        n: round(c.disruption, 3) for n, c in result.cells.items()}

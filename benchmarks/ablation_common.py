"""Shared mini-drivers for the ablation benchmarks.

Ablations probe the design choices DESIGN.md section 5 calls out, on a
two-partition pressure scenario: symmetric insertion, asymmetric 3:1
targets, so the scheme must actively scale futility to hold the split.
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from repro.cache.arrays import CacheArray, RandomCandidatesArray
from repro.cache.cache import PartitionedCache
from repro.core.futility import FutilityRanking
from repro.core.schemes.base import PartitioningScheme

NUM_LINES = 2048
TARGETS = (1536, 512)
ACCESSES = 60_000
ADDRESS_SPACE = 6_000


def run_two_partition(array: CacheArray, ranking: FutilityRanking,
                      scheme: PartitioningScheme, *,
                      targets: Tuple[int, int] = TARGETS,
                      accesses: int = ACCESSES,
                      seed: int = 0) -> PartitionedCache:
    """Drive the standard ablation scenario and return the cache."""
    cache = PartitionedCache(array, ranking, scheme, 2,
                             targets=list(targets))
    rng = random.Random(seed)
    next_use_state: Optional[List] = None
    for _ in range(accesses):
        part = rng.randrange(2)
        addr = part * 10**9 + rng.randrange(ADDRESS_SPACE)
        cache.access(addr, part)
    return cache


def sizing_error(cache: PartitionedCache) -> float:
    """Mean |actual - target| / target over partitions."""
    errors = [abs(a - t) / t for a, t in zip(cache.actual_sizes,
                                             cache.targets) if t > 0]
    return sum(errors) / len(errors)

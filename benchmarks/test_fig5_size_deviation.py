"""Figure 5: sizing precision of FS vs PF.

Equal split on the random-candidates cache; insertion splits 9/1 and 5/5.
Paper shapes asserted: PF's MAD is below one line; FS is statistically
centered with a bounded temporal deviation that is *worst at I=0.5*
(I(1-I) maximal) and still a small fraction of the partition (paper:
MAD 67.4 lines on a 16K-line partition, < 0.5%)."""

from conftest import config_for, run_once

from repro.experiments import Fig5Config, format_fig5, run_fig5


def test_fig5(benchmark, report):
    config = config_for(Fig5Config)
    result = run_once(benchmark, run_fig5, config)
    report("fig5", format_fig5(result))

    partition = config.num_lines // 2
    for split in config.insertion_splits:
        i1 = split[0]
        assert result.mad_of("pf", i1) < 1.5
        mad_fs = result.mad_of("fs", i1)
        assert mad_fs > result.mad_of("pf", i1)
        assert mad_fs < 0.05 * partition
    if len(config.insertion_splits) == 2:
        # Worst temporal deviation at I=0.5 (Section IV-D).
        assert result.mad_of("fs", 0.5) > result.mad_of("fs", 0.9)
    benchmark.extra_info["fs_mad_I0.5"] = round(
        result.mad_of("fs", config.insertion_splits[-1][0]), 1)

"""Figure 3: Equation (1) scaling factors over the paper's exact sweep.

Purely analytical — also cross-validates the closed form against the
N-partition numerical solver at every point and checks the worked example
from the text (a 1%-insertion partition can hold ~75% of the cache at
R=16)."""

from conftest import config_for, run_once

from repro.experiments import Fig3Config, format_fig3, run_fig3


def test_fig3(benchmark, report):
    config = config_for(Fig3Config)
    result = run_once(benchmark, run_fig3, config)
    report("fig3", format_fig3(result))

    # Closed form == solver everywhere.
    assert result.max_solver_error < 1e-6
    # The paper's I=0.01 example.
    assert abs(result.holdable_at_1pct - 0.75) < 0.01
    # Monotonicity in I2 at fixed S2 (the fan of curves in the figure).
    s2 = config.size_fractions[0]
    column = [result.alphas[i2][s2] for i2 in config.insertion_rates]
    assert column == sorted(column)
    benchmark.extra_info["alpha_at_I0.9_S0.2"] = round(
        result.alphas[max(config.insertion_rates)][s2], 3)
